// The full paper walkthrough: builds the Figure 1 scheme and Figure 2/3
// hyper-media instance and replays every operation figure (4-19),
// printing what the paper says should happen and what the engine did.
//
//   ./build/examples/hypermedia_tour

#include <cstdio>

#include "hypermedia/hypermedia.h"
#include "pattern/matcher.h"
#include "program/dot.h"

using good::Sym;
using good::hypermedia::Labels;

namespace hm = good::hypermedia;

namespace {

void Banner(const char* figure, const char* what) {
  std::printf("\n=== %s — %s ===\n", figure, what);
}

}  // namespace

int main() {
  auto scheme = hm::BuildScheme().ValueOrDie();
  Banner("Figure 1", "the hyper-media object base scheme");
  std::printf("%s\n", scheme.ToString().c_str());

  auto built = hm::BuildInstance(scheme).ValueOrDie();
  auto& instance = built.instance;
  auto& nodes = built.nodes;
  Banner("Figures 2-3", "the hyper-media instance");
  std::printf("nodes=%zu edges=%zu (validates: %s)\n", instance.num_nodes(),
              instance.num_edges(),
              instance.Validate(scheme).ok() ? "yes" : "NO");

  Banner("Figures 4-5", "pattern matching");
  auto fig4 = hm::Fig4Pattern(scheme).ValueOrDie();
  auto matchings = good::pattern::FindMatchings(fig4.pattern, instance);
  std::printf("the Rock/Jan-14 pattern has %zu matchings (paper: 2)\n",
              matchings.size());

  Banner("Figures 6-7", "node addition tags the linked documents");
  auto na6 = hm::Fig6NodeAddition(scheme).ValueOrDie();
  good::ops::ApplyStats stats;
  na6.Apply(&scheme, &instance, &stats).OrDie();
  std::printf("matchings=%zu, Rock tags added=%zu (paper: 2)\n",
              stats.matchings, stats.nodes_added);

  Banner("Figure 8", "node addition derives date aggregates");
  stats = {};
  hm::Fig8NodeAddition(scheme).ValueOrDie().Apply(&scheme, &instance,
                                                  &stats).OrDie();
  std::printf("matchings=%zu (paper: 4), distinct Pair objects=%zu\n",
              stats.matchings, stats.nodes_added);

  Banner("Figures 10-11", "edge addition attaches data-creation dates");
  stats = {};
  hm::Fig10EdgeAddition(scheme).ValueOrDie().Apply(&scheme, &instance,
                                                   &stats).OrDie();
  std::printf("data-creation edges added=%zu (paper: 2)\n",
              stats.edges_added);

  Banner("Figures 12-13", "building the set of Jan-14 documents");
  hm::Fig12NodeAddition(scheme).ValueOrDie().Apply(&scheme, &instance)
      .OrDie();
  stats = {};
  hm::Fig13EdgeAddition(scheme).ValueOrDie().Apply(&scheme, &instance,
                                                   &stats).OrDie();
  std::printf("contains edges added=%zu (paper: 2 — rock_new, pinkfloyd)\n",
              stats.edges_added);

  Banner("Figures 14-15", "node deletion removes Classical Music");
  stats = {};
  hm::Fig14NodeDeletion(scheme).ValueOrDie().Apply(&scheme, &instance,
                                                   &stats).OrDie();
  std::printf("nodes deleted=%zu; Mozart now isolated: %s\n",
              stats.nodes_deleted,
              instance.InEdges(nodes.mozart).empty() ? "yes" : "no");

  Banner("Figure 16", "update = edge deletion + edge addition");
  hm::Fig16EdgeDeletion(scheme).ValueOrDie().Apply(&scheme, &instance)
      .OrDie();
  hm::Fig16EdgeAddition(scheme).ValueOrDie().Apply(&scheme, &instance)
      .OrDie();
  auto modified = instance.FunctionalTarget(nodes.music_history,
                                            Labels::Get().modified);
  std::printf("Music History modified = %s (paper: Jan 16, 1990)\n",
              instance.PrintValueOf(*modified)->ToString().c_str());

  Banner("Figures 17-19", "abstraction groups equal link-sets");
  auto versions = hm::BuildVersionInstance(scheme).ValueOrDie();
  auto fig18 = hm::Fig18Abstraction(scheme).ValueOrDie();
  fig18.tag_new.Apply(&scheme, &versions).OrDie();
  fig18.tag_old.Apply(&scheme, &versions).OrDie();
  stats = {};
  fig18.abstraction.Apply(&scheme, &versions, &stats).OrDie();
  std::printf("Same-Info groups created=%zu over %zu matchings\n",
              stats.nodes_added, stats.matchings);
  for (auto group : versions.NodesWithLabel(Sym("Same-Info"))) {
    std::printf("  group #%u contains %zu infos\n", group.id,
                versions.OutTargets(group, Sym("contains")).size());
  }

  std::printf("\nAll figures replayed. Render the final Figure-7 era "
              "instance with GraphViz:\n"
              "  ./build/examples/hypermedia_tour | tail -n +%d | dot -Tpng\n",
              0);
  return 0;
}
