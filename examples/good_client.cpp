// Interactive client for the good_server text protocol.
//
// Connects to a running good_server and passes protocol commands
// through from stdin, printing each response. Commands that carry a
// body (exec, count, match) read body lines until a line containing
// only "." — exactly the wire format, so a session transcript doubles
// as protocol documentation:
//
//   $ ./build/examples/good_client --port 7070
//   > hello
//   ok good/1 base 0
//   > count
//   | pattern {
//   |   node n0 Info;
//   | }
//   | .
//   ok count 13
//   > quit
//   ok bye
//
// Usage:
//   good_client [--port N] [--unix PATH] [--host H]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/client.h"
#include "server/socket.h"

namespace server = good::server;

namespace {

bool TakesBody(const std::string& line) {
  return line.rfind("exec", 0) == 0 || line.rfind("count", 0) == 0 ||
         line.rfind("match", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string unix_path;
  int port = 7070;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--port N] [--unix PATH] [--host H]\n",
                   argv[0]);
      return 2;
    }
  }

  auto transport =
      unix_path.empty()
          ? server::SocketTransport::ConnectTcp(host, port)
          : server::SocketTransport::ConnectUnix(unix_path);
  if (!transport.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 transport.status().ToString().c_str());
    return 1;
  }
  server::Transport& wire = **transport;

  bool tty = ::isatty(0);
  std::string line;
  if (tty) std::fputs("> ", stdout), std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string request = line + "\n";
    if (TakesBody(line)) {
      std::string body_line;
      if (tty) std::fputs("| ", stdout), std::fflush(stdout);
      while (std::getline(std::cin, body_line)) {
        request += body_line + "\n";
        if (body_line == ".") break;
        if (tty) std::fputs("| ", stdout), std::fflush(stdout);
      }
    }
    if (!wire.Write(request).ok()) {
      std::fprintf(stderr, "connection lost\n");
      return 1;
    }
    auto status_line = wire.ReadLine();
    if (!status_line.ok()) {
      std::fprintf(stderr, "%s\n", status_line.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", status_line->c_str());
    if (status_line->rfind("ok+", 0) == 0) {
      for (;;) {
        auto body_line = wire.ReadLine();
        if (!body_line.ok()) {
          std::fprintf(stderr, "%s\n",
                       body_line.status().ToString().c_str());
          return 1;
        }
        std::printf("%s\n", body_line->c_str());
        if (*body_line == ".") break;
      }
    }
    if (line.rfind("quit", 0) == 0) break;
    if (tty) std::fputs("> ", stdout), std::fflush(stdout);
  }
  return 0;
}
