// Quickstart: define a scheme, build an instance, query it with a
// pattern, and transform it with a node addition.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "graph/instance.h"
#include "ops/operations.h"
#include "pattern/builder.h"
#include "pattern/matcher.h"
#include "program/dot.h"
#include "schema/scheme.h"

using good::Status;
using good::Sym;
using good::Value;
using good::graph::Instance;
using good::graph::NodeId;
using good::pattern::GraphBuilder;
using good::schema::Scheme;

int main() {
  // --- 1. A scheme is a labeled graph of classes (Section 2). ---------
  Scheme scheme;
  scheme.AddObjectLabel(Sym("Person")).OrDie();
  scheme.AddPrintableLabel(Sym("Name"), good::ValueKind::kString).OrDie();
  scheme.AddFunctionalEdgeLabel(Sym("name")).OrDie();
  scheme.AddMultivaluedEdgeLabel(Sym("follows")).OrDie();
  scheme.AddTriple(Sym("Person"), Sym("name"), Sym("Name")).OrDie();
  scheme.AddTriple(Sym("Person"), Sym("follows"), Sym("Person")).OrDie();

  // --- 2. An instance is a graph of objects conforming to it. ---------
  Instance db;
  auto person = [&](const char* who) {
    NodeId p = db.AddObjectNode(scheme, Sym("Person")).ValueOrDie();
    NodeId n = db.AddPrintableNode(scheme, Sym("Name"), Value(who))
                   .ValueOrDie();
    db.AddEdge(scheme, p, Sym("name"), n).OrDie();
    return p;
  };
  NodeId ada = person("ada");
  NodeId bob = person("bob");
  NodeId cyd = person("cyd");
  db.AddEdge(scheme, ada, Sym("follows"), bob).OrDie();
  db.AddEdge(scheme, bob, Sym("follows"), cyd).OrDie();
  db.AddEdge(scheme, cyd, Sym("follows"), ada).OrDie();
  db.AddEdge(scheme, ada, Sym("follows"), cyd).OrDie();

  // --- 3. Queries are patterns; answers are matchings (Section 3). ----
  GraphBuilder qb(scheme);
  NodeId who = qb.Object("Person");
  NodeId target = qb.Object("Person");
  NodeId target_name = qb.Printable("Name", Value("cyd"));
  qb.Edge(who, "follows", target).Edge(target, "name", target_name);
  auto pattern = qb.BuildOrDie();
  std::printf("Who follows cyd?\n");
  for (const auto& m : good::pattern::FindMatchings(pattern, db)) {
    NodeId n = *db.FunctionalTarget(m.At(who), Sym("name"));
    std::printf("  - %s\n", db.PrintValueOf(n)->ToString().c_str());
  }

  // --- 4. Transformations: tag mutual followers (node addition). ------
  GraphBuilder tb(scheme);
  NodeId x = tb.Object("Person");
  NodeId y = tb.Object("Person");
  tb.Edge(x, "follows", y).Edge(y, "follows", x);
  good::ops::NodeAddition tag(tb.BuildOrDie(), Sym("MutualPair"),
                              {{Sym("fst"), x}, {Sym("snd"), y}});
  good::ops::ApplyStats stats;
  tag.Apply(&scheme, &db, &stats).OrDie();
  std::printf("Mutual-follow pairs found: %zu (nodes added: %zu)\n",
              stats.matchings, stats.nodes_added);

  // --- 5. Visualization (the paper's raison d'etre). ------------------
  std::printf("\nDOT rendering of the instance:\n%s",
              good::program::InstanceToDot(scheme, db).c_str());
  return 0;
}
