// Version-control scenario: the hyper-media versioning machinery as a
// small application — create document versions, find stale ones with
// negated patterns, group equal-content versions with abstraction, and
// garbage-collect history with the recursive Remove-Old-Versions method
// (Figure 22).
//
//   ./build/examples/version_control

#include <cstdio>

#include "hypermedia/hypermedia.h"
#include "macro/negation.h"
#include "method/method.h"
#include "pattern/builder.h"
#include "pattern/matcher.h"

using good::Sym;
using good::Value;
using good::graph::Instance;
using good::graph::NodeId;
using good::hypermedia::Labels;
using good::pattern::GraphBuilder;

namespace {

/// The Figure 22 method, as in the paper: recursively delete every
/// older version reachable from the receiver.
good::method::Method RemoveOldVersions(const good::schema::Scheme& scheme) {
  good::method::Method rov;
  rov.spec.name = "R-O-V";
  rov.spec.receiver_label = Sym("Info");
  {
    GraphBuilder b(scheme);
    NodeId receiver = b.Object("Info");
    NodeId version = b.Object("Version");
    NodeId older = b.Object("Info");
    b.Edge(version, "new", receiver).Edge(version, "old", older);
    good::method::MethodCallOp rec;
    rec.pattern = b.BuildOrDie();
    rec.method_name = "R-O-V";
    rec.receiver = older;
    good::method::HeadBinding head;
    head.receiver = receiver;
    rov.body.push_back({std::move(rec), head});
  }
  {
    GraphBuilder b(scheme);
    NodeId receiver = b.Object("Info");
    NodeId version = b.Object("Version");
    NodeId older = b.Object("Info");
    b.Edge(version, "new", receiver).Edge(version, "old", older);
    good::ops::NodeDeletion nd(b.BuildOrDie(), older);
    good::method::HeadBinding head;
    head.receiver = receiver;
    rov.body.push_back({std::move(nd), head});
  }
  {
    GraphBuilder b(scheme);
    NodeId receiver = b.Object("Info");
    NodeId version = b.Object("Version");
    b.Edge(version, "new", receiver);
    good::ops::NodeDeletion nd(b.BuildOrDie(), version);
    good::method::HeadBinding head;
    head.receiver = receiver;
    rov.body.push_back({std::move(nd), head});
  }
  return rov;
}

}  // namespace

int main() {
  auto scheme = good::hypermedia::BuildScheme().ValueOrDie();
  const Labels& l = Labels::Get();

  // A document with five versions v5 (current) ... v1 (oldest).
  Instance db;
  NodeId current{};
  NodeId previous{};
  for (int v = 1; v <= 5; ++v) {
    NodeId doc = db.AddObjectNode(scheme, l.info).ValueOrDie();
    NodeId name = db.AddPrintableNode(scheme, l.string,
                                      Value("report-v" + std::to_string(v)))
                      .ValueOrDie();
    db.AddEdge(scheme, doc, l.name, name).OrDie();
    if (previous.valid()) {
      NodeId version = db.AddObjectNode(scheme, l.version).ValueOrDie();
      db.AddEdge(scheme, version, l.new_edge, doc).OrDie();
      db.AddEdge(scheme, version, l.old_edge, previous).OrDie();
    }
    previous = doc;
    current = doc;
  }
  std::printf("history: %zu documents, %zu version links\n",
              db.CountNodesWithLabel(l.info),
              db.CountNodesWithLabel(l.version));

  // Which documents are CURRENT (not the old side of any version)?
  // A negated (crossed) pattern, Section 4.1.
  GraphBuilder nb(scheme);
  NodeId doc = nb.Object("Info");
  NodeId version = nb.Object("Version");
  nb.Edge(version, "old", doc);
  good::macros::NegatedPattern current_pattern;
  current_pattern.full = nb.BuildOrDie();
  current_pattern.positive_nodes = {doc};
  auto currents =
      good::macros::EvaluateNegated(current_pattern, db).ValueOrDie();
  std::printf("current documents (never an old version): %zu\n",
              currents.size());
  for (const auto& m : currents) {
    auto name = db.FunctionalTarget(m.At(doc), l.name);
    std::printf("  - %s\n", db.PrintValueOf(*name)->ToString().c_str());
  }

  // Garbage-collect: call Remove-Old-Versions on the current document.
  good::method::MethodRegistry registry;
  registry.Register(RemoveOldVersions(scheme)).OrDie();
  good::method::Executor executor(&registry);
  GraphBuilder cb(scheme);
  NodeId target = cb.Object("Info");
  NodeId nm = cb.Printable("String", Value("report-v5"));
  cb.Edge(target, "name", nm);
  good::method::MethodCallOp call;
  call.pattern = cb.BuildOrDie();
  call.method_name = "R-O-V";
  call.receiver = target;
  executor.Execute(call, &scheme, &db).OrDie();

  std::printf("after R-O-V: %zu documents, %zu version links "
              "(current survives: %s)\n",
              db.CountNodesWithLabel(l.info),
              db.CountNodesWithLabel(l.version),
              db.HasNode(current) ? "yes" : "no");
  return 0;
}
