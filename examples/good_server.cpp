// Multi-session database server over the text protocol.
//
// Usage:
//   good_server <dir> [--port N]       serve <dir> on 127.0.0.1:N
//   good_server <dir> --unix <path>    serve <dir> on a unix socket
//   good_server --selftest             end-to-end smoke test (temp dir,
//                                      ephemeral port, scripted clients)
//
// Overload limits (see src/server/limits.h for semantics/defaults):
//   --max-conns N      concurrent connections before shedding
//   --max-sessions N   concurrent sessions before busy errors
//   --idle-ms N        idle eviction timeout (slow-loris cutoff)
//   --max-line N       longest protocol line in bytes
//   --max-body N       largest request body in bytes
//   --max-working N    max working-copy growth (nodes+edges) per session
//
// The directory is created (with the paper's hyper-media object base as
// the initial state) when it holds no database yet. The database is
// opened with per-append fsync OFF: durability comes from the commit
// pipeline's group-commit barrier — every acknowledged commit has been
// fsynced, adjacent commits share one fsync.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/good_server /tmp/gooddb --port 7070
//   ./build/examples/good_client --port 7070

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "hypermedia/hypermedia.h"
#include "program/op_serialize.h"
#include "program/serialize.h"
#include "server/client.h"
#include "server/session.h"
#include "server/socket.h"
#include "storage/database.h"

namespace hm = good::hypermedia;
namespace server = good::server;
namespace storage = good::storage;
namespace program = good::program;

using good::method::Operation;

namespace {

program::Database PaperDatabase() {
  auto scheme = hm::BuildScheme().ValueOrDie();
  auto instance = std::move(hm::BuildInstance(scheme).ValueOrDie().instance);
  return program::Database{std::move(scheme), std::move(instance)};
}

storage::Options GroupCommitOptions() {
  storage::Options options;
  options.sync_every_append = false;  // the pipeline batches fsyncs
  return options;
}

int Serve(const std::string& dir, server::SocketServer::Options bind,
          const server::ServerLimits& limits) {
  auto db = storage::Database::Open(dir, PaperDatabase(),
                                    GroupCommitOptions());
  if (!db.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 db.status().ToString().c_str());
    return 1;
  }
  server::ServerOptions server_options;
  server_options.limits = limits;
  auto srv = server::Server::Open(std::move(*db), server_options);
  if (!srv.ok()) {
    std::fprintf(stderr, "server: %s\n", srv.status().ToString().c_str());
    return 1;
  }
  auto listener = server::SocketServer::Listen(srv->get(), bind);
  if (!listener.ok()) {
    std::fprintf(stderr, "listen: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  if ((*listener)->port() != 0) {
    std::printf("serving %s on 127.0.0.1:%d\n", dir.c_str(),
                (*listener)->port());
  } else {
    std::printf("serving %s on %s\n", dir.c_str(),
                (*listener)->unix_path().c_str());
  }
  std::printf("press Ctrl-C to stop\n");
  std::fflush(stdout);

  // Park until killed; connections are handled on their own threads.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("\nsignal %d: shutting down\n", sig);
  (*listener)->Stop();
  server::OverloadStats overload = (*srv)->overload_stats();
  std::printf(
      "overload: %llu shed, %llu session sheds, %llu evicted, "
      "%llu quota rejections\n",
      static_cast<unsigned long long>(overload.shed_connections),
      static_cast<unsigned long long>(overload.shed_sessions),
      static_cast<unsigned long long>(overload.evicted_sessions),
      static_cast<unsigned long long>(overload.quota_rejections));
  return (*srv)->Close().ok() ? 0 : 1;
}

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    auto _st = (expr);                                                  \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   _st.ToString().c_str());                             \
      return 1;                                                         \
    }                                                                   \
  } while (false)

#define CHECK_TRUE(cond)                                                \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,      \
                   #cond);                                              \
      return 1;                                                         \
    }                                                                   \
  } while (false)

int SelfTest() {
  std::string dir = "/tmp/good_server_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }

  auto db = storage::Database::Open(dir, PaperDatabase(),
                                    GroupCommitOptions());
  CHECK_OK(db.status());
  auto srv = server::Server::Open(std::move(*db), {});
  CHECK_OK(srv.status());
  auto listener = server::SocketServer::Listen(srv->get(), {});
  CHECK_OK(listener.status());
  std::printf("listening on 127.0.0.1:%d\n", (*listener)->port());

  auto connect = [&]() {
    return server::SocketTransport::ConnectTcp("127.0.0.1",
                                               (*listener)->port());
  };

  // --- Client 1: handshake, read the scheme, count a paper pattern. ---
  auto t1 = connect();
  CHECK_OK(t1.status());
  server::Client c1(t1->get());
  CHECK_OK(c1.Hello());
  auto dump = c1.Dump();
  CHECK_OK(dump.status());
  auto parsed = program::ParseDatabase(*dump);
  CHECK_OK(parsed.status());
  const auto& scheme = parsed->scheme;

  auto fig4 = hm::Fig4Pattern(scheme).ValueOrDie();
  std::string fig4_text = program::WritePattern(scheme, fig4.pattern);
  auto count = c1.Count(fig4_text);
  CHECK_OK(count.status());
  CHECK_TRUE(*count == 2);  // Figure 4 has exactly two matchings
  std::printf("figure 4 pattern: %zu matchings\n", *count);

  // --- Client 2 pins the base version before client 1 commits. --------
  auto t2 = connect();
  CHECK_OK(t2.status());
  server::Client c2(t2->get());
  CHECK_OK(c2.Hello());

  Operation fig12(hm::Fig12NodeAddition(scheme).ValueOrDie());
  CHECK_OK(c1.Exec(scheme, {fig12}));
  auto ack1 = c1.Commit();
  CHECK_OK(ack1.status());
  CHECK_TRUE(ack1->version == 1);
  std::printf("client 1 committed version %llu (batch %zu)\n",
              static_cast<unsigned long long>(ack1->version),
              ack1->batch_size);

  // Client 2 still reads its pinned snapshot; refresh moves it forward.
  auto base = c2.Base();
  CHECK_OK(base.status());
  CHECK_TRUE(*base == 0);
  auto refreshed = c2.Refresh();
  CHECK_OK(refreshed.status());
  CHECK_TRUE(*refreshed == 1);
  std::printf("client 2 refreshed: base 0 -> 1\n");

  // --- First-committer-wins: both delete the same edge. ---------------
  auto latest_dump = c1.Dump();
  CHECK_OK(latest_dump.status());
  auto latest = program::ParseDatabase(*latest_dump);
  CHECK_OK(latest.status());
  Operation fig16(hm::Fig16EdgeDeletion(latest->scheme).ValueOrDie());
  std::string fig16_text =
      program::WriteOperations(latest->scheme, {fig16}).ValueOrDie();

  CHECK_OK(c1.Exec(fig16_text));
  CHECK_OK(c2.Exec(fig16_text));
  auto ack2 = c1.Commit();
  CHECK_OK(ack2.status());
  // Client 2 loses the race; its wrapper replays and retries
  // automatically (the replayed deletion finds no matchings and the
  // retried commit goes through).
  auto ack3 = c2.Commit();
  CHECK_OK(ack3.status());
  CHECK_TRUE(ack3->retries >= 1);
  std::printf("client 2 lost first-committer-wins, auto-retried %zu time(s), "
              "committed version %llu\n",
              ack3->retries, static_cast<unsigned long long>(ack3->version));

  // The stats command reports overload + pipeline counters.
  auto wire_stats = c1.Stats();
  CHECK_OK(wire_stats.status());
  std::printf("stats: %s\n", wire_stats->c_str());
  CHECK_TRUE(wire_stats->rfind(
                 "stats shed 0 shed_sessions 0 evicted 0 quota 0", 0) == 0);

  CHECK_OK(c1.Quit());
  CHECK_OK(c2.Quit());

  auto stats = (*srv)->pipeline_stats();
  std::printf("pipeline: %llu committed, %llu conflicts, %llu fsync "
              "batches\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.conflicts),
              static_cast<unsigned long long>(stats.batches));
  CHECK_TRUE(stats.conflicts >= 1);

  (*listener)->Stop();
  CHECK_OK((*srv)->Close());
  std::printf("OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "usage: %s <dir> [--port N | --unix PATH]\n"
      "          [--max-conns N] [--max-sessions N] [--idle-ms N]\n"
      "          [--max-line N] [--max-body N] [--max-working N]\n"
      "       %s --selftest\n";
  std::string dir;
  server::SocketServer::Options bind;
  server::ServerLimits limits;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--port" && i + 1 < argc) {
      bind.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--unix" && i + 1 < argc) {
      bind.unix_path = argv[++i];
    } else if (arg == "--max-conns" && i + 1 < argc) {
      limits.max_connections = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      limits.max_sessions = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--idle-ms" && i + 1 < argc) {
      limits.idle_timeout =
          std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else if (arg == "--max-line" && i + 1 < argc) {
      limits.max_line_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-body" && i + 1 < argc) {
      limits.max_body_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-working" && i + 1 < argc) {
      limits.max_working_delta = std::strtoull(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] != '-') {
      dir = arg;
    } else {
      std::fprintf(stderr, usage, argv[0], argv[0]);
      return 2;
    }
  }
  if (selftest) return SelfTest();
  if (dir.empty()) {
    std::fprintf(stderr, usage, argv[0], argv[0]);
    return 2;
  }
  return Serve(dir, bind, limits);
}
