// good_run — a small command-line front end: load a database and a
// program from text files, run the program (query or update mode), and
// emit the result as text or GraphViz DOT.
//
//   good_run <database.good> <program.goodp> [--methods file.goodm]
//            [--mode query|update] [--format text|dot]
//
// Try the bundled sample:
//   ./build/examples/good_run examples/data/music.good
//       examples/data/tag_rock.goodp --format dot   (one line)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "program/dot.h"
#include "program/method_serialize.h"
#include "program/op_serialize.h"
#include "program/program.h"
#include "program/serialize.h"

namespace {

good::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return good::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int Fail(const good::Status& status) {
  std::fprintf(stderr, "good_run: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: good_run <database.good> <program.goodp> "
                 "[--methods f] [--mode query|update] [--format text|dot]\n");
    return 2;
  }
  std::string db_path = argv[1];
  std::string program_path = argv[2];
  std::string methods_path;
  std::string mode = "query";
  std::string format = "text";
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--methods") == 0) {
      methods_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      mode = argv[i + 1];
    } else if (std::strcmp(argv[i], "--format") == 0) {
      format = argv[i + 1];
    } else {
      std::fprintf(stderr, "good_run: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  auto db_text = ReadFile(db_path);
  if (!db_text.ok()) return Fail(db_text.status());
  auto database = good::program::ParseDatabase(*db_text);
  if (!database.ok()) return Fail(database.status());

  auto program_text = ReadFile(program_path);
  if (!program_text.ok()) return Fail(program_text.status());
  good::program::Program program;
  {
    auto ops =
        good::program::ParseOperations(database->scheme, *program_text);
    if (!ops.ok()) return Fail(ops.status());
    program.operations = std::move(*ops);
  }
  if (!methods_path.empty()) {
    auto methods_text = ReadFile(methods_path);
    if (!methods_text.ok()) return Fail(methods_text.status());
    auto registry =
        good::program::ParseMethods(database->scheme, *methods_text);
    if (!registry.ok()) return Fail(registry.status());
    program.methods = std::move(*registry);
  }

  good::program::Interpreter interpreter;
  good::program::RunStats stats;
  good::program::Database result;
  if (mode == "query") {
    auto query = interpreter.Query(program, *database, &stats);
    if (!query.ok()) return Fail(query.status());
    result = std::move(*query);
  } else if (mode == "update") {
    auto status = interpreter.Update(program, &*database, &stats);
    if (!status.ok()) return Fail(status);
    result = std::move(*database);
  } else {
    std::fprintf(stderr, "good_run: bad --mode '%s'\n", mode.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "good_run: %zu operations, %zu matchings, +%zu nodes, "
               "+%zu edges, -%zu nodes, -%zu edges\n",
               program.operations.size(), stats.totals.matchings,
               stats.totals.nodes_added, stats.totals.edges_added,
               stats.totals.nodes_deleted, stats.totals.edges_deleted);

  if (format == "dot") {
    std::fputs(
        good::program::InstanceToDot(result.scheme, result.instance).c_str(),
        stdout);
  } else if (format == "text") {
    std::fputs(good::program::WriteDatabase(result).c_str(), stdout);
  } else {
    std::fprintf(stderr, "good_run: bad --format '%s'\n", format.c_str());
    return 2;
  }
  return 0;
}
