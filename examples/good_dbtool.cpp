// good_dbtool: offline inspection of a partitioned database directory.
// The operator's first stop on a red recovery — it never writes to the
// directory it examines.
//
//   good_dbtool list <dir>     print the manifest's partition table
//   good_dbtool verify <dir>   recompute every file's size and CRC-32
//                              against the manifest (exit 1 on mismatch)
//   good_dbtool report <dir>   open read-only-degraded and print the
//                              RecoveryReport, per-partition outcomes,
//                              and any quarantine sidecars
//   good_dbtool --selftest     build a scratch database, damage it, and
//                              check the three commands see the damage
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/good_dbtool list /path/to/db

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "hypermedia/hypermedia.h"
#include "program/program.h"
#include "storage/crc32.h"
#include "storage/database.h"
#include "storage/file_env.h"
#include "storage/partition.h"

namespace hm = good::hypermedia;
namespace storage = good::storage;

using good::Result;
using good::Status;
using good::method::Operation;

namespace {

/// Reads and decodes manifest.good, falling back to manifest.prev the
/// way recovery does; says which one it used.
Result<storage::Manifest> ReadManifest(storage::FileEnv* env,
                                       const std::string& dir,
                                       std::string* which) {
  for (const std::string& path : {storage::Database::ManifestPath(dir),
                                  storage::Database::PreviousManifestPath(dir)}) {
    if (!env->FileExists(path)) continue;
    auto bytes = env->ReadFileToString(path);
    if (!bytes.ok()) return bytes.status();
    auto manifest = storage::DecodeManifest(*bytes);
    if (manifest.ok()) {
      *which = path;
      return manifest;
    }
    std::printf("  (skipping damaged %s: %s)\n", path.c_str(),
                manifest.status().ToString().c_str());
  }
  return Status::NotFound("no readable manifest under " + dir);
}

void PrintEntry(const char* cls, const storage::PartitionEntry& entry) {
  std::printf("  %-16s %-16s %10llu bytes  crc %08x  %llu nodes, %llu edges\n",
              cls, entry.file.c_str(),
              static_cast<unsigned long long>(entry.bytes), entry.crc,
              static_cast<unsigned long long>(entry.nodes),
              static_cast<unsigned long long>(entry.edges));
}

int List(storage::FileEnv* env, const std::string& dir) {
  std::string which;
  auto manifest = ReadManifest(env, dir, &which);
  if (!manifest.ok()) {
    std::printf("error: %s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("manifest: %s\n", which.c_str());
  std::printf("  next_seq %llu, next file number %llu\n",
              static_cast<unsigned long long>(manifest->next_seq),
              static_cast<unsigned long long>(manifest->file_number));
  PrintEntry("<scheme>", manifest->scheme);
  for (const auto& [cls, entry] : manifest->partitions) {
    PrintEntry(cls.c_str(), entry);
  }
  return 0;
}

/// Recomputes one file's size and whole-file CRC against its manifest
/// entry. Returns true when they agree.
bool VerifyEntry(storage::FileEnv* env, const std::string& dir,
                 const std::string& cls,
                 const storage::PartitionEntry& entry) {
  auto bytes = env->ReadFileToString(dir + "/" + entry.file);
  if (!bytes.ok()) {
    std::printf("  %-16s %-16s UNREADABLE: %s\n", cls.c_str(),
                entry.file.c_str(), bytes.status().ToString().c_str());
    return false;
  }
  if (bytes->size() != entry.bytes) {
    std::printf("  %-16s %-16s SIZE MISMATCH: %zu bytes on disk, manifest "
                "says %llu\n",
                cls.c_str(), entry.file.c_str(), bytes->size(),
                static_cast<unsigned long long>(entry.bytes));
    return false;
  }
  uint32_t crc = storage::Crc32(*bytes);
  if (crc != entry.crc) {
    std::printf("  %-16s %-16s CRC MISMATCH: %08x on disk, manifest says "
                "%08x\n",
                cls.c_str(), entry.file.c_str(), crc, entry.crc);
    return false;
  }
  std::printf("  %-16s %-16s ok\n", cls.c_str(), entry.file.c_str());
  return true;
}

int Verify(storage::FileEnv* env, const std::string& dir) {
  std::string which;
  auto manifest = ReadManifest(env, dir, &which);
  if (!manifest.ok()) {
    std::printf("error: %s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("verifying against %s\n", which.c_str());
  int bad = 0;
  if (!VerifyEntry(env, dir, "<scheme>", manifest->scheme)) ++bad;
  for (const auto& [cls, entry] : manifest->partitions) {
    if (!VerifyEntry(env, dir, cls, entry)) ++bad;
  }
  if (bad != 0) {
    std::printf("%d file(s) FAILED verification\n", bad);
    return 1;
  }
  std::printf("all files verified\n");
  return 0;
}

void CatIfPresent(storage::FileEnv* env, const std::string& path,
                  const char* heading) {
  if (!env->FileExists(path)) return;
  auto bytes = env->ReadFileToString(path);
  std::printf("%s (%s):\n", heading, path.c_str());
  if (!bytes.ok()) {
    std::printf("  unreadable: %s\n", bytes.status().ToString().c_str());
    return;
  }
  std::printf("%s", bytes->c_str());
  if (!bytes->empty() && bytes->back() != '\n') std::printf("\n");
}

int Report(const std::string& dir) {
  // kReadOnlyDegraded loads exactly what a salvaging recovery would —
  // quarantining damaged partitions and torn log records — but writes
  // nothing, so inspecting a directory never changes it. Note: `call`
  // records replay only with the original method registry, which an
  // offline tool does not have; such records end the salvaged prefix.
  storage::Options options;
  options.salvage_mode = storage::SalvageMode::kReadOnlyDegraded;
  auto db = storage::Database::Open(dir, options);
  if (!db.ok()) {
    std::printf("open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  const storage::RecoveryReport& recovery = db->recovery();
  std::printf("recovery: %s\n", recovery.ToString().c_str());
  std::printf("  %llu nodes, %llu edges loaded\n",
              static_cast<unsigned long long>(db->instance().num_nodes()),
              static_cast<unsigned long long>(db->instance().num_edges()));
  for (const auto& partition : recovery.partitions) {
    std::printf("  %s\n", partition.ToString().c_str());
  }
  auto* env = storage::FileEnv::Default();
  CatIfPresent(env, storage::Database::PartitionQuarantinePath(dir),
               "partition quarantine");
  CatIfPresent(env, storage::Database::QuarantinePath(dir),
               "wal quarantine");
  return recovery.partitions_quarantined == 0 &&
                 recovery.ops_quarantined == 0
             ? 0
             : 2;  // distinct exit for "opened, but something is red"
}

/// Builds a scratch database, exercises the three commands on the
/// healthy directory, then corrupts one partition and checks verify and
/// report both turn red while list still works.
int SelfTest() {
  std::string dir = "/tmp/good_dbtool_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  auto* env = storage::FileEnv::Default();
  {
    auto scheme = hm::BuildScheme().ValueOrDie();
    auto instance =
        std::move(hm::BuildInstance(scheme).ValueOrDie().instance);
    storage::Database db =
        storage::Database::Open(
            dir, good::program::Database{std::move(scheme),
                                         std::move(instance)})
            .ValueOrDie();
    db.Apply(Operation(hm::Fig6NodeAddition(db.scheme()).ValueOrDie()))
        .OrDie();
    db.Checkpoint().OrDie();
  }
  std::printf("== list ==\n");
  if (List(env, dir) != 0) return 1;
  std::printf("== verify (healthy) ==\n");
  if (Verify(env, dir) != 0) return 1;
  std::printf("== report (healthy) ==\n");
  if (Report(dir) != 0) return 1;

  // Flip one byte inside some partition file and re-run.
  std::string which;
  auto manifest = ReadManifest(env, dir, &which).ValueOrDie();
  const std::string victim =
      dir + "/" + manifest.partitions.begin()->second.file;
  std::string bytes = env->ReadFileToString(victim).ValueOrDie();
  bytes[bytes.size() / 2] ^= 0x40;
  {
    auto file = env->NewWritableFile(victim, /*truncate=*/true).ValueOrDie();
    file->Append(bytes).OrDie();
    file->Close().OrDie();
  }
  std::printf("== verify (one partition corrupted) ==\n");
  if (Verify(env, dir) != 1) {
    std::printf("FAIL: verify missed the corruption\n");
    return 1;
  }
  std::printf("== report (one partition corrupted) ==\n");
  if (Report(dir) != 2) {
    std::printf("FAIL: report did not flag the quarantine\n");
    return 1;
  }
  if (auto files = env->ListDir(dir); files.ok()) {
    for (const std::string& name : *files) {
      (void)env->RemoveFile(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
  std::printf("\nOK\n");
  return 0;
}

int Usage() {
  std::printf("usage: good_dbtool {list|verify|report} <dir>\n"
              "       good_dbtool --selftest\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  if (argc != 3) return Usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  auto* env = storage::FileEnv::Default();
  if (command == "list") return List(env, dir);
  if (command == "verify") return Verify(env, dir);
  if (command == "report") return Report(dir);
  return Usage();
}
