// Computational completeness, live: a binary-increment Turing machine
// compiled to a GOOD scheme plus one recursive method, run by the
// method executor, and cross-checked against a direct interpreter
// (Section 4.3).
//
//   ./build/examples/turing_demo [binary-string]

#include <cstdio>
#include <string>

#include "turing/turing.h"

using good::turing::RunDirect;
using good::turing::TuringMachine;
using good::turing::TuringSimulator;

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "10011";

  TuringMachine increment;
  increment.initial = "R";
  increment.halting = {"H"};
  increment.transitions = {
      {"R", '0', "R", '0', +1}, {"R", '1', "R", '1', +1},
      {"R", '_', "C", '_', -1}, {"C", '1', "C", '0', -1},
      {"C", '0', "H", '1', +1}, {"C", '_', "H", '1', +1},
  };

  std::printf("input:  %s\n", input.c_str());
  auto direct = RunDirect(increment, input, 10000).ValueOrDie();
  std::printf("direct interpreter:  tape=%s state=%s steps=%zu\n",
              direct.tape.c_str(), direct.final_state.c_str(),
              direct.steps);

  TuringSimulator sim(increment);
  auto good_run = sim.Run(input, 1000000).ValueOrDie();
  std::printf("GOOD simulation:     tape=%s state=%s (executor ops=%zu)\n",
              good_run.tape.c_str(), good_run.final_state.c_str(),
              good_run.steps);
  std::printf("final tape graph: %zu cells, %zu nodes total\n",
              sim.instance().CountNodesWithLabel(good::Sym("Cell")),
              sim.instance().num_nodes());
  std::printf("%s\n", good_run.tape == direct.tape
                          ? "AGREEMENT: the GOOD method mechanism simulated "
                            "the machine exactly."
                          : "MISMATCH (bug!)");
  return good_run.tape == direct.tape ? 0 : 1;
}
