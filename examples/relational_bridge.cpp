// The two Section 5 implementation routes and the Section 4.3
// relational-completeness simulation in one demo:
//  1. store the hyper-media instance in the relational backend and run
//     the Figure 4 pattern as an algebra query;
//  2. store it in the Tarski binary-relation backend and do the same;
//  3. run a Codd-algebra pipeline (select / project / difference)
//     entirely as GOOD node additions and deletions.
//
//   ./build/examples/relational_bridge

#include <cstdio>

#include "codd/codd.h"
#include "hypermedia/hypermedia.h"
#include "pattern/matcher.h"
#include "relational/backend.h"
#include "tarski/backend.h"

using good::Sym;
using good::Value;

int main() {
  auto scheme = good::hypermedia::BuildScheme().ValueOrDie();
  auto built = good::hypermedia::BuildInstance(scheme).ValueOrDie();
  auto& instance = built.instance;

  // --- Route 1: the Antwerp mapping (classes as tables). --------------
  auto relational =
      good::relational::RelationalBackend::Load(scheme, instance)
          .ValueOrDie();
  auto info_table = relational.Table(Sym("Info")).ValueOrDie();
  std::printf("relational backend: Info table has %zu rows, header:",
              (*info_table).size());
  for (const auto& attr : (*info_table).header()) {
    std::printf(" %s", attr.name.c_str());
  }
  std::printf("\n");
  auto fig4 = good::hypermedia::Fig4Pattern(scheme).ValueOrDie();
  auto rel_matchings = relational.FindMatchings(fig4.pattern).ValueOrDie();
  std::printf("Figure 4 pattern via SQL-style compilation: %zu matchings\n",
              rel_matchings.size());

  // --- Route 2: the Indiana mapping (binary relations). ---------------
  auto tarski =
      good::tarski::TarskiBackend::Load(scheme, instance).ValueOrDie();
  auto tarski_matchings = tarski.FindMatchings(fig4.pattern).ValueOrDie();
  std::printf("Figure 4 pattern via Tarski semijoins:     %zu matchings\n",
              tarski_matchings.size());
  auto closure = tarski.Closure(Sym("links-to"));
  std::printf("links-to transitive closure: %zu pairs "
              "(composition to fixpoint)\n",
              closure.size());

  // --- Route 3: Codd algebra as restricted GOOD (Section 4.3). --------
  good::codd::CoddSimulator sim;
  sim.DeclareRelation({"Track",
                       {{"title", good::ValueKind::kString},
                        {"artist", good::ValueKind::kString},
                        {"year", good::ValueKind::kInt}}})
      .OrDie();
  auto T = [](const char* t, const char* a, int y) {
    return std::vector<Value>{Value(t), Value(a), Value(int64_t{y})};
  };
  sim.InsertTuple("Track", T("Echoes", "Pinkfloyd", 1971)).OrDie();
  sim.InsertTuple("Track", T("Time", "Pinkfloyd", 1973)).OrDie();
  sim.InsertTuple("Track", T("Light My Fire", "The Doors", 1967)).OrDie();
  sim.InsertTuple("Track", T("The End", "The Doors", 1967)).OrDie();

  sim.Select("Track", "artist", Value("Pinkfloyd"), "PF").OrDie();
  sim.Project("PF", {"title"}, "PFTitles").OrDie();
  auto titles = sim.Export("PFTitles").ValueOrDie();
  std::printf("\nGOOD-simulated sigma/pi (Pinkfloyd titles):\n%s",
              titles.ToString().c_str());

  sim.Select("Track", "year", Value(int64_t{1967}), "Old").OrDie();
  sim.DifferenceRel("Track", "Old", "Modern").OrDie();
  auto modern = sim.Export("Modern").ValueOrDie();
  std::printf("GOOD-simulated difference (tracks after 1967):\n%s",
              modern.ToString().c_str());
  return 0;
}
