// Durable store: open a database directory, apply the paper's update
// operations through the write-ahead log, "crash" by dropping the
// handle without closing, and reopen to watch recovery replay the log
// onto the last snapshot. Finishes with an explicit checkpoint that
// compacts the log away.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/durable_store

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/isomorphism.h"
#include "hypermedia/hypermedia.h"
#include "hypermedia/methods.h"
#include "program/program.h"
#include "storage/database.h"
#include "storage/file_env.h"

namespace hm = good::hypermedia;
namespace storage = good::storage;

using good::graph::IsIsomorphic;
using good::method::MethodRegistry;
using good::method::Operation;

namespace {

good::program::Database PaperDatabase() {
  auto scheme = hm::BuildScheme().ValueOrDie();
  auto instance =
      std::move(hm::BuildInstance(scheme).ValueOrDie().instance);
  return good::program::Database{std::move(scheme), std::move(instance)};
}

bool Matches(const storage::Database& db,
             const good::program::Database& expected) {
  return db.scheme() == expected.scheme &&
         IsIsomorphic(db.instance(), expected.instance);
}

}  // namespace

int main() {
  std::string dir = "/tmp/good_durable_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  std::printf("database directory: %s\n\n", dir.c_str());

  // Methods are code, not data: replaying a logged `call` record needs
  // the same registry the original database ran with.
  auto scheme = hm::BuildScheme().ValueOrDie();
  MethodRegistry registry;
  registry.Register(hm::MakeUpdateMethod(scheme).ValueOrDie()).OrDie();
  storage::Options options;
  options.methods = &registry;

  // --- 1. Open, mutate, crash. ----------------------------------------
  good::program::Database expected;
  {
    storage::Database db =
        storage::Database::Open(dir, PaperDatabase(), options).ValueOrDie();
    std::printf("opened fresh: bootstrap snapshot written, log empty\n");

    // Each Apply appends the operation to the log (and fsyncs) BEFORE
    // executing it, so everything below survives the "crash". Figure
    // 13's pattern mentions the label Figure 12 introduces, which is
    // why each operation is serialized against the current scheme.
    db.Apply(Operation(hm::Fig6NodeAddition(db.scheme()).ValueOrDie()))
        .OrDie();
    db.Apply(Operation(hm::Fig12NodeAddition(db.scheme()).ValueOrDie()))
        .OrDie();
    db.Apply(Operation(hm::Fig13EdgeAddition(db.scheme()).ValueOrDie()))
        .OrDie();
    db.Apply(Operation(hm::Fig16EdgeDeletion(db.scheme()).ValueOrDie()))
        .OrDie();
    db.Apply(Operation(hm::Fig16EdgeAddition(db.scheme()).ValueOrDie()))
        .OrDie();
    db.Apply(Operation(hm::MakeUpdateCall(db.scheme(), "Music History",
                                          good::Date{1990, 1, 16})
                           .ValueOrDie()))
        .OrDie();
    std::printf("applied %zu operations (%llu bytes in the log)\n",
                db.log_ops(),
                static_cast<unsigned long long>(db.log_bytes()));
    expected = good::program::Database{db.scheme(), db.instance()};
    std::printf("crashing without Close() or Checkpoint()...\n\n");
  }  // handle dropped: only the snapshot and the log remain

  // --- 2. Reopen: snapshot + log tail replay. -------------------------
  {
    storage::Database db =
        storage::Database::Open(dir, options).ValueOrDie();
    std::printf("recovered: %zu operations replayed%s\n",
                db.recovery().ops_replayed,
                db.recovery().dropped_torn_tail ? " (torn tail dropped)"
                                                : "");
    if (!Matches(db, expected)) {
      std::printf("FAIL: recovered database differs from pre-crash state\n");
      return 1;
    }
    std::printf("recovered state is isomorphic to the pre-crash state\n\n");

    // --- 3. Checkpoint compacts the log into the snapshot. ------------
    db.Checkpoint().OrDie();
    std::printf("checkpointed: log truncated to %zu operations\n",
                db.log_ops());
  }

  {
    storage::Database db =
        storage::Database::Open(dir, options).ValueOrDie();
    if (db.recovery().ops_replayed != 0 || !Matches(db, expected)) {
      std::printf("FAIL: post-checkpoint reopen differs\n");
      return 1;
    }
    std::printf("reopen after checkpoint: 0 replays, same state\n");
  }

  auto* env = storage::FileEnv::Default();
  // The partitioned layout holds a variable set of files (manifest,
  // per-class partitions, log), so sweep the directory instead of
  // naming them.
  if (auto files = env->ListDir(dir); files.ok()) {
    for (const std::string& name : *files) {
      (void)env->RemoveFile(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
  std::printf("\nOK\n");
  return 0;
}
