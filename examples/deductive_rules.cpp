// Deductive rules over a GOOD object base — the direction the paper's
// concluding remarks point at (G-Log): patterns as rule conditions,
// bold parts as actions, run to fixpoint. Derives reachability and
// "dead-end" documents over the hyper-media instance, then browses the
// result.
//
//   ./build/examples/deductive_rules

#include <cstdio>

#include "hypermedia/hypermedia.h"
#include "pattern/builder.h"
#include "program/browse.h"
#include "program/dot.h"
#include "rules/rules.h"

using good::Sym;
using good::graph::NodeId;
using good::pattern::GraphBuilder;

int main() {
  auto scheme = good::hypermedia::BuildScheme().ValueOrDie();
  auto built = good::hypermedia::BuildInstance(scheme).ValueOrDie();
  auto db = std::move(built.instance);

  good::rules::RuleEngine engine;

  // reach(x, y) <- links-to(x, y).
  {
    GraphBuilder b(scheme);
    NodeId x = b.Object("Info");
    NodeId y = b.Object("Info");
    b.Edge(x, "links-to", y);
    good::rules::Rule seed;
    seed.name = "reach-base";
    seed.condition.full = b.BuildOrDie();
    seed.condition.positive_nodes = {x, y};
    seed.edges = {{x, Sym("reach"), y, /*functional=*/false}};
    engine.AddRule(std::move(seed)).OrDie();
  }
  // reach(x, z) <- reach(x, y), links-to(y, z).
  {
    auto ext = scheme;
    ext.EnsureMultivaluedEdgeLabel(Sym("reach")).OrDie();
    ext.EnsureTriple(Sym("Info"), Sym("reach"), Sym("Info")).OrDie();
    GraphBuilder b(ext);
    NodeId x = b.Object("Info");
    NodeId y = b.Object("Info");
    NodeId z = b.Object("Info");
    b.Edge(x, "reach", y).Edge(y, "links-to", z);
    good::rules::Rule step;
    step.name = "reach-step";
    step.condition.full = b.BuildOrDie();
    step.condition.positive_nodes = {x, y, z};
    step.edges = {{x, Sym("reach"), z, /*functional=*/false}};
    engine.AddRule(std::move(step)).OrDie();
  }
  // dead-end(x) <- Info(x), NOT links-to(x, _): tag documents that link
  // nowhere (negation as a crossed pattern part).
  {
    GraphBuilder b(scheme);
    NodeId x = b.Object("Info");
    NodeId anywhere = b.Object("Info");
    b.Edge(x, "links-to", anywhere);
    good::rules::Rule dead;
    dead.name = "dead-end";
    dead.condition.full = b.BuildOrDie();
    dead.condition.positive_nodes = {x};  // `anywhere` is crossed.
    dead.node = good::rules::NodeAction{Sym("DeadEnd"), {{Sym("doc"), x}}};
    engine.AddRule(std::move(dead)).OrDie();
  }

  auto report = engine.Run(&scheme, &db).ValueOrDie();
  std::printf("fixpoint after %zu rounds: +%zu nodes, +%zu edges\n",
              report.rounds, report.nodes_added, report.edges_added);

  // How far does Music History reach?
  size_t reach = 0;
  for (const auto& e : db.AllEdges()) {
    if (e.label == Sym("reach") && e.source == built.nodes.music_history) {
      ++reach;
    }
  }
  std::printf("Music History transitively reaches %zu documents\n", reach);
  std::printf("dead-end documents: %zu\n",
              db.CountNodesWithLabel(Sym("DeadEnd")));

  // Pattern-directed browsing of the derived structure.
  GraphBuilder b(scheme);
  NodeId tag = b.Object("DeadEnd");
  auto view = good::program::BrowsePattern(scheme, db, b.BuildOrDie(), tag)
                  .ValueOrDie();
  std::printf("browse view around dead-ends: %zu nodes, %zu edges\n",
              view.num_nodes(), view.num_edges());
  return 0;
}
