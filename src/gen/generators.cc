#include "gen/generators.h"

#include <random>
#include <vector>

#include "hypermedia/hypermedia.h"

namespace good::gen {

using graph::Instance;
using graph::NodeId;
using hypermedia::Labels;
using schema::Scheme;

Result<Instance> ScaledHyperMedia(const Scheme& scheme,
                                  const HyperMediaOptions& options) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(options.seed);
  Instance g;
  std::vector<NodeId> docs;
  docs.reserve(options.num_docs);

  const int64_t epoch = Date{1990, 1, 1}.ToDayNumber();
  std::vector<NodeId> dates;
  for (size_t d = 0; d < std::max<size_t>(options.distinct_dates, 1); ++d) {
    GOOD_ASSIGN_OR_RETURN(
        NodeId date,
        g.AddPrintableNode(
            scheme, l.date,
            Value(Date::FromDayNumber(epoch + static_cast<int64_t>(d)))));
    dates.push_back(date);
  }

  for (size_t i = 0; i < options.num_docs; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId doc, g.AddObjectNode(scheme, l.info));
    GOOD_RETURN_NOT_OK(
        g.AddEdge(scheme, doc, l.created, dates[i % dates.size()]));
    if (rng() % 100 < options.named_percent) {
      GOOD_ASSIGN_OR_RETURN(
          NodeId name,
          g.AddPrintableNode(scheme, l.string,
                             Value("doc" + std::to_string(i))));
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, doc, l.name, name));
    }
    docs.push_back(doc);
  }
  if (docs.size() > 1) {
    for (NodeId doc : docs) {
      for (size_t k = 0; k < options.links_per_doc; ++k) {
        NodeId target = docs[rng() % docs.size()];
        if (target == doc) continue;
        GOOD_RETURN_NOT_OK(g.AddEdge(scheme, doc, l.links_to, target));
      }
    }
    for (size_t v = 0; v + 1 < options.num_versions + 1 &&
                       v + 1 < docs.size();
         ++v) {
      GOOD_ASSIGN_OR_RETURN(NodeId version,
                            g.AddObjectNode(scheme, l.version));
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, version, l.new_edge, docs[v]));
      GOOD_RETURN_NOT_OK(
          g.AddEdge(scheme, version, l.old_edge, docs[v + 1]));
    }
  }
  return g;
}

Result<Instance> RandomInfoGraph(const Scheme& scheme, size_t n,
                                 size_t edges, uint64_t seed,
                                 bool allow_self_loops) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(seed);
  Instance g;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId node, g.AddObjectNode(scheme, l.info));
    nodes.push_back(node);
  }
  if (n > 1) {
    for (size_t e = 0; e < edges; ++e) {
      NodeId a = nodes[rng() % n];
      NodeId b = nodes[rng() % n];
      if (a == b && !allow_self_loops) continue;
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, a, l.links_to, b));
    }
  }
  return g;
}

Result<Instance> RandomLinkPattern(const Scheme& scheme, size_t num_nodes,
                                   size_t extra_edges, uint64_t seed,
                                   bool allow_self_loops) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(seed);
  Instance p;
  std::vector<NodeId> nodes;
  nodes.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId node, p.AddObjectNode(scheme, l.info));
    if (i > 0) {
      NodeId other = nodes[rng() % i];
      if (rng() % 2 == 0) {
        GOOD_RETURN_NOT_OK(p.AddEdge(scheme, other, l.links_to, node));
      } else {
        GOOD_RETURN_NOT_OK(p.AddEdge(scheme, node, l.links_to, other));
      }
    }
    nodes.push_back(node);
  }
  if (!nodes.empty()) {
    for (size_t e = 0; e < extra_edges; ++e) {
      NodeId a = nodes[rng() % num_nodes];
      NodeId b = nodes[rng() % num_nodes];
      if (a == b && !allow_self_loops) continue;
      GOOD_RETURN_NOT_OK(p.AddEdge(scheme, a, l.links_to, b));
    }
  }
  return p;
}

Result<Instance> InfoChain(const Scheme& scheme, size_t n) {
  const Labels& l = Labels::Get();
  Instance g;
  NodeId previous{};
  for (size_t i = 0; i < n; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId node, g.AddObjectNode(scheme, l.info));
    if (previous.valid()) {
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, previous, l.links_to, node));
    }
    previous = node;
  }
  return g;
}

Result<Instance> VersionChains(const Scheme& scheme, size_t chains,
                               size_t length, size_t pool, uint64_t seed) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(seed);
  Instance g;
  std::vector<NodeId> targets;
  for (size_t p = 0; p < std::max<size_t>(pool, 2); ++p) {
    GOOD_ASSIGN_OR_RETURN(NodeId t, g.AddObjectNode(scheme, l.info));
    targets.push_back(t);
  }
  for (size_t c = 0; c < chains; ++c) {
    // Two target sets per chain: the first half of the chain's docs
    // share one, the second half the other — so abstraction groups the
    // halves.
    std::vector<NodeId> set_a{targets[rng() % targets.size()],
                              targets[rng() % targets.size()]};
    std::vector<NodeId> set_b{targets[rng() % targets.size()]};
    NodeId previous{};
    for (size_t i = 0; i < length; ++i) {
      GOOD_ASSIGN_OR_RETURN(NodeId doc, g.AddObjectNode(scheme, l.info));
      const auto& set = (i < length / 2) ? set_a : set_b;
      for (NodeId t : set) {
        if (t == doc) continue;
        GOOD_RETURN_NOT_OK(g.AddEdge(scheme, doc, l.links_to, t));
      }
      if (previous.valid()) {
        GOOD_ASSIGN_OR_RETURN(NodeId version,
                              g.AddObjectNode(scheme, l.version));
        GOOD_RETURN_NOT_OK(
            g.AddEdge(scheme, version, l.new_edge, previous));
        GOOD_RETURN_NOT_OK(g.AddEdge(scheme, version, l.old_edge, doc));
      }
      previous = doc;
    }
  }
  return g;
}

}  // namespace good::gen
