#include "gen/generators.h"

#include <random>
#include <string>
#include <vector>

#include "hypermedia/hypermedia.h"
#include "pattern/builder.h"

namespace good::gen {

using graph::Instance;
using graph::NodeId;
using hypermedia::Labels;
using schema::Scheme;

Result<Instance> ScaledHyperMedia(const Scheme& scheme,
                                  const HyperMediaOptions& options) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(options.seed);
  Instance g;
  std::vector<NodeId> docs;
  docs.reserve(options.num_docs);

  const int64_t epoch = Date{1990, 1, 1}.ToDayNumber();
  std::vector<NodeId> dates;
  for (size_t d = 0; d < std::max<size_t>(options.distinct_dates, 1); ++d) {
    GOOD_ASSIGN_OR_RETURN(
        NodeId date,
        g.AddPrintableNode(
            scheme, l.date,
            Value(Date::FromDayNumber(epoch + static_cast<int64_t>(d)))));
    dates.push_back(date);
  }

  for (size_t i = 0; i < options.num_docs; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId doc, g.AddObjectNode(scheme, l.info));
    GOOD_RETURN_NOT_OK(
        g.AddEdge(scheme, doc, l.created, dates[i % dates.size()]));
    if (rng() % 100 < options.named_percent) {
      GOOD_ASSIGN_OR_RETURN(
          NodeId name,
          g.AddPrintableNode(scheme, l.string,
                             Value("doc" + std::to_string(i))));
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, doc, l.name, name));
    }
    docs.push_back(doc);
  }
  if (docs.size() > 1) {
    for (NodeId doc : docs) {
      for (size_t k = 0; k < options.links_per_doc; ++k) {
        NodeId target = docs[rng() % docs.size()];
        if (target == doc) continue;
        GOOD_RETURN_NOT_OK(g.AddEdge(scheme, doc, l.links_to, target));
      }
    }
    for (size_t v = 0; v + 1 < options.num_versions + 1 &&
                       v + 1 < docs.size();
         ++v) {
      GOOD_ASSIGN_OR_RETURN(NodeId version,
                            g.AddObjectNode(scheme, l.version));
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, version, l.new_edge, docs[v]));
      GOOD_RETURN_NOT_OK(
          g.AddEdge(scheme, version, l.old_edge, docs[v + 1]));
    }
  }
  return g;
}

Result<Instance> RandomInfoGraph(const Scheme& scheme, size_t n,
                                 size_t edges, uint64_t seed,
                                 bool allow_self_loops) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(seed);
  Instance g;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId node, g.AddObjectNode(scheme, l.info));
    nodes.push_back(node);
  }
  if (n > 1) {
    for (size_t e = 0; e < edges; ++e) {
      NodeId a = nodes[rng() % n];
      NodeId b = nodes[rng() % n];
      if (a == b && !allow_self_loops) continue;
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, a, l.links_to, b));
    }
  }
  return g;
}

Result<Instance> RandomLinkPattern(const Scheme& scheme, size_t num_nodes,
                                   size_t extra_edges, uint64_t seed,
                                   bool allow_self_loops) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(seed);
  Instance p;
  std::vector<NodeId> nodes;
  nodes.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId node, p.AddObjectNode(scheme, l.info));
    if (i > 0) {
      NodeId other = nodes[rng() % i];
      if (rng() % 2 == 0) {
        GOOD_RETURN_NOT_OK(p.AddEdge(scheme, other, l.links_to, node));
      } else {
        GOOD_RETURN_NOT_OK(p.AddEdge(scheme, node, l.links_to, other));
      }
    }
    nodes.push_back(node);
  }
  if (!nodes.empty()) {
    for (size_t e = 0; e < extra_edges; ++e) {
      NodeId a = nodes[rng() % num_nodes];
      NodeId b = nodes[rng() % num_nodes];
      if (a == b && !allow_self_loops) continue;
      GOOD_RETURN_NOT_OK(p.AddEdge(scheme, a, l.links_to, b));
    }
  }
  return p;
}

Result<Instance> InfoChain(const Scheme& scheme, size_t n) {
  const Labels& l = Labels::Get();
  Instance g;
  NodeId previous{};
  for (size_t i = 0; i < n; ++i) {
    GOOD_ASSIGN_OR_RETURN(NodeId node, g.AddObjectNode(scheme, l.info));
    if (previous.valid()) {
      GOOD_RETURN_NOT_OK(g.AddEdge(scheme, previous, l.links_to, node));
    }
    previous = node;
  }
  return g;
}

Result<Instance> VersionChains(const Scheme& scheme, size_t chains,
                               size_t length, size_t pool, uint64_t seed) {
  const Labels& l = Labels::Get();
  std::mt19937_64 rng(seed);
  Instance g;
  std::vector<NodeId> targets;
  for (size_t p = 0; p < std::max<size_t>(pool, 2); ++p) {
    GOOD_ASSIGN_OR_RETURN(NodeId t, g.AddObjectNode(scheme, l.info));
    targets.push_back(t);
  }
  for (size_t c = 0; c < chains; ++c) {
    // Two target sets per chain: the first half of the chain's docs
    // share one, the second half the other — so abstraction groups the
    // halves.
    std::vector<NodeId> set_a{targets[rng() % targets.size()],
                              targets[rng() % targets.size()]};
    std::vector<NodeId> set_b{targets[rng() % targets.size()]};
    NodeId previous{};
    for (size_t i = 0; i < length; ++i) {
      GOOD_ASSIGN_OR_RETURN(NodeId doc, g.AddObjectNode(scheme, l.info));
      const auto& set = (i < length / 2) ? set_a : set_b;
      for (NodeId t : set) {
        if (t == doc) continue;
        GOOD_RETURN_NOT_OK(g.AddEdge(scheme, doc, l.links_to, t));
      }
      if (previous.valid()) {
        GOOD_ASSIGN_OR_RETURN(NodeId version,
                              g.AddObjectNode(scheme, l.version));
        GOOD_RETURN_NOT_OK(
            g.AddEdge(scheme, version, l.new_edge, previous));
        GOOD_RETURN_NOT_OK(g.AddEdge(scheme, version, l.old_edge, doc));
      }
      previous = doc;
    }
  }
  return g;
}

namespace {

/// A relation available for rule conditions: a registered scheme triple
/// (src, label, dst). The generator only produces Info-targeted
/// relations, so any relation can feed a hop that continues from an
/// Info node.
struct Rel {
  Symbol src;
  Symbol label;
  Symbol dst;
};

}  // namespace

Result<std::vector<rules::Rule>> RandomStratifiedRuleSet(
    schema::Scheme* scheme, size_t num_strata, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const Symbol info = Sym("Info");
  const Symbol links = Sym("links-to");
  // Relations usable by conditions of the current stratum — stratum 0
  // sees only the base links-to; each stratum appends what it derives.
  std::vector<Rel> rels{{info, links, info}};
  auto pick_rel = [&](bool info_sourced_only) -> const Rel& {
    if (!info_sourced_only) return rels[rng() % rels.size()];
    std::vector<size_t> eligible;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].src == info) eligible.push_back(i);
    }
    return rels[eligible[rng() % eligible.size()]];  // links-to always there
  };
  const bool edge_actions_functional = false;  // derived edges multivalued

  std::vector<rules::Rule> out;
  for (size_t i = 0; i < num_strata; ++i) {
    const std::string suffix = std::to_string(i);
    const Symbol di = Sym("d" + suffix);
    const Symbol tagi = Sym("Tag" + suffix);
    const Symbol ofi = Sym("of" + suffix);
    bool has_tag_rel = false;
    for (const Rel& r : rels) {
      if (r.src != info) has_tag_rel = true;
    }
    size_t shape = rng() % 7;
    if (shape == 5 && !has_tag_rel) shape = 0;  // tag join needs a tag
    switch (shape) {
      case 0: {  // Two-hop join: x -a-> y -b-> z  =>  x -d_i-> z.
        const Rel a = pick_rel(/*info_sourced_only=*/false);
        const Rel b = pick_rel(/*info_sourced_only=*/true);
        pattern::GraphBuilder p(*scheme);
        graph::NodeId x = p.Object(SymName(a.src));
        graph::NodeId y = p.Object(SymName(a.dst));
        graph::NodeId z = p.Object(SymName(b.dst));
        p.Edge(x, SymName(a.label), y).Edge(y, SymName(b.label), z);
        rules::Rule rule;
        rule.name = "two-hop-" + suffix;
        GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
        rule.condition.positive_nodes = {x, y, z};
        rule.edges = {ops::EdgeSpec{x, di, z, edge_actions_functional}};
        GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(di));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(a.src, di, b.dst));
        rels.push_back(Rel{a.src, di, b.dst});
        out.push_back(std::move(rule));
        break;
      }
      case 1: {  // Inverse: x -a-> y  =>  y -d_i-> x.
        const Rel a = pick_rel(/*info_sourced_only=*/true);
        pattern::GraphBuilder p(*scheme);
        graph::NodeId x = p.Object(SymName(a.src));
        graph::NodeId y = p.Object(SymName(a.dst));
        p.Edge(x, SymName(a.label), y);
        rules::Rule rule;
        rule.name = "inverse-" + suffix;
        GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
        rule.condition.positive_nodes = {x, y};
        rule.edges = {ops::EdgeSpec{y, di, x, edge_actions_functional}};
        GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(di));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(a.dst, di, a.src));
        rels.push_back(Rel{a.dst, di, a.src});
        out.push_back(std::move(rule));
        break;
      }
      case 2: {  // Crossed-edge guard: x -a-> y, NOT x -c-> y => x -d_i-> y.
        const Rel a = pick_rel(/*info_sourced_only=*/true);
        const Rel c = pick_rel(/*info_sourced_only=*/true);
        pattern::GraphBuilder p(*scheme);
        graph::NodeId x = p.Object(SymName(a.src));
        graph::NodeId y = p.Object(SymName(a.dst));
        p.Edge(x, SymName(a.label), y);
        if (!(c.label == a.label)) p.Edge(x, SymName(c.label), y);
        rules::Rule rule;
        rule.name = "guard-" + suffix;
        GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
        rule.condition.positive_nodes = {x, y};
        if (!(c.label == a.label)) {
          rule.condition.crossed_edges = {graph::Edge{x, c.label, y}};
        }
        rule.edges = {ops::EdgeSpec{x, di, y, edge_actions_functional}};
        GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(di));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(a.src, di, a.dst));
        rels.push_back(Rel{a.src, di, a.dst});
        out.push_back(std::move(rule));
        break;
      }
      case 3: {  // Crossed-node orphan: Info x with NO incoming c => tag.
        const Rel c = pick_rel(/*info_sourced_only=*/true);
        pattern::GraphBuilder p(*scheme);
        graph::NodeId x = p.Object(SymName(c.dst));
        graph::NodeId s = p.Object(SymName(c.src));
        p.Edge(s, SymName(c.label), x);
        rules::Rule rule;
        rule.name = "orphan-" + suffix;
        GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
        rule.condition.positive_nodes = {x};  // s is crossed
        rule.node = rules::NodeAction{tagi, {{ofi, x}}};
        GOOD_RETURN_NOT_OK(scheme->EnsureObjectLabel(tagi));
        GOOD_RETURN_NOT_OK(scheme->EnsureFunctionalEdgeLabel(ofi));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(tagi, ofi, c.dst));
        rels.push_back(Rel{tagi, ofi, c.dst});
        out.push_back(std::move(rule));
        break;
      }
      case 4: {  // Keyed node rule: x -a-> y => one Tag_i per distinct y.
        const Rel a = pick_rel(/*info_sourced_only=*/false);
        pattern::GraphBuilder p(*scheme);
        graph::NodeId x = p.Object(SymName(a.src));
        graph::NodeId y = p.Object(SymName(a.dst));
        p.Edge(x, SymName(a.label), y);
        rules::Rule rule;
        rule.name = "tag-" + suffix;
        GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
        rule.condition.positive_nodes = {x, y};
        rule.node = rules::NodeAction{tagi, {{ofi, y}}};
        GOOD_RETURN_NOT_OK(scheme->EnsureObjectLabel(tagi));
        GOOD_RETURN_NOT_OK(scheme->EnsureFunctionalEdgeLabel(ofi));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(tagi, ofi, a.dst));
        rels.push_back(Rel{tagi, ofi, a.dst});
        out.push_back(std::move(rule));
        break;
      }
      case 5: {  // Tag join: t -l-> y (t a lower-stratum tag), y -b-> z.
        std::vector<size_t> tags;
        for (size_t r = 0; r < rels.size(); ++r) {
          if (rels[r].src != info) tags.push_back(r);
        }
        const Rel t_rel = rels[tags[rng() % tags.size()]];
        const Rel b = pick_rel(/*info_sourced_only=*/true);
        pattern::GraphBuilder p(*scheme);
        graph::NodeId t = p.Object(SymName(t_rel.src));
        graph::NodeId y = p.Object(SymName(t_rel.dst));
        graph::NodeId z = p.Object(SymName(b.dst));
        p.Edge(t, SymName(t_rel.label), y).Edge(y, SymName(b.label), z);
        rules::Rule rule;
        rule.name = "tag-join-" + suffix;
        GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
        rule.condition.positive_nodes = {t, y, z};
        rule.edges = {ops::EdgeSpec{t, di, z, edge_actions_functional}};
        GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(di));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(t_rel.src, di, b.dst));
        rels.push_back(Rel{t_rel.src, di, b.dst});
        out.push_back(std::move(rule));
        break;
      }
      default: {  // Transitive closure pair: the one recursive shape.
        const Rel a = pick_rel(/*info_sourced_only=*/true);
        GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(di));
        GOOD_RETURN_NOT_OK(scheme->EnsureTriple(info, di, info));
        {
          pattern::GraphBuilder p(*scheme);
          graph::NodeId x = p.Object(SymName(a.src));
          graph::NodeId y = p.Object(SymName(a.dst));
          p.Edge(x, SymName(a.label), y);
          rules::Rule rule;
          rule.name = "closure-seed-" + suffix;
          GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
          rule.condition.positive_nodes = {x, y};
          rule.edges = {ops::EdgeSpec{x, di, y, edge_actions_functional}};
          out.push_back(std::move(rule));
        }
        {
          pattern::GraphBuilder p(*scheme);
          graph::NodeId x = p.Object(SymName(info));
          graph::NodeId y = p.Object(SymName(info));
          graph::NodeId z = p.Object(SymName(a.dst));
          p.Edge(x, SymName(di), y).Edge(y, SymName(a.label), z);
          rules::Rule rule;
          rule.name = "closure-step-" + suffix;
          GOOD_ASSIGN_OR_RETURN(rule.condition.full, p.Build());
          rule.condition.positive_nodes = {x, y, z};
          rule.edges = {ops::EdgeSpec{x, di, z, edge_actions_functional}};
          out.push_back(std::move(rule));
        }
        rels.push_back(Rel{info, di, info});
        break;
      }
    }
  }
  return out;
}

}  // namespace good::gen
