/// \file generators.h
/// \brief Synthetic workload generators for benchmarks and property
/// tests.
///
/// The paper reports no performance numbers (its evaluation is
/// semantic), so the benchmark harness characterizes our implementation
/// on synthetic workloads that scale the paper's running example: bigger
/// hyper-media object bases, longer version chains, denser link graphs.

#ifndef GOOD_GEN_GENERATORS_H_
#define GOOD_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/instance.h"
#include "rules/rules.h"
#include "schema/scheme.h"

namespace good::gen {

/// \brief Parameters for a scaled hyper-media object base.
struct HyperMediaOptions {
  /// Number of Info documents.
  size_t num_docs = 100;
  /// Outgoing links-to edges per document (to random targets).
  size_t links_per_doc = 3;
  /// Number of Version nodes chaining consecutive documents.
  size_t num_versions = 10;
  /// Distinct creation dates cycled over the documents (controls the
  /// selectivity of date-valued patterns).
  size_t distinct_dates = 10;
  /// Fraction (0..100) of documents that carry a name.
  size_t named_percent = 100;
  uint64_t seed = 42;
};

/// \brief A scaled instance over the Figure 1 hyper-media scheme.
/// Document i is named "doc<i>" (if named) and created on one of the
/// distinct dates (derived from Jan 1, 1990).
Result<graph::Instance> ScaledHyperMedia(const schema::Scheme& scheme,
                                         const HyperMediaOptions& options);

/// \brief n Info nodes with `edges` random links-to edges — the
/// substrate for matcher-scaling and transitive-closure benchmarks.
/// With `allow_self_loops`, an edge draw may produce (a, links-to, a);
/// the scheme's (Info, links-to, Info) triple licenses such loops, and
/// the matcher differential sweeps rely on them being present.
Result<graph::Instance> RandomInfoGraph(const schema::Scheme& scheme,
                                        size_t n, size_t edges,
                                        uint64_t seed,
                                        bool allow_self_loops = false);

/// \brief A small random links-to pattern over `num_nodes` Info nodes:
/// a random spanning arborescence (random direction per edge) keeps it
/// connected, plus `extra_edges` additional random edges. With
/// `allow_self_loops`, extra-edge draws may produce pattern self-loops
/// (m, links-to, m) — the shape that historically escaped feasibility
/// checking, kept in the differential sweeps forever.
Result<graph::Instance> RandomLinkPattern(const schema::Scheme& scheme,
                                          size_t num_nodes,
                                          size_t extra_edges, uint64_t seed,
                                          bool allow_self_loops = false);

/// \brief A links-to chain of n Info nodes (worst case for transitive
/// closure: the closure has n(n-1)/2 edges).
Result<graph::Instance> InfoChain(const schema::Scheme& scheme, size_t n);

/// \brief `chains` version chains of `length` documents each, where
/// consecutive documents share links-to targets drawn from a pool of
/// `pool` documents — the Figure 17/18 abstraction workload. Documents
/// in the same chain half share target sets, so abstraction finds
/// non-trivial groups.
Result<graph::Instance> VersionChains(const schema::Scheme& scheme,
                                      size_t chains, size_t length,
                                      size_t pool, uint64_t seed);

/// \brief A seeded random *stratified* rule set over the hyper-media
/// scheme, for naive-vs-incremental fixpoint differentials.
///
/// Stratum i (0 <= i < num_strata) derives only its own fresh labels —
/// a multivalued edge label "d<i>", or an object label "Tag<i>" with
/// functional edge "of<i>" — from links-to and labels of strictly lower
/// strata; crossed (negated) parts likewise reference only lower
/// strata. Drawn templates: two-hop join, inverse edge, crossed-edge
/// guard, crossed-node orphan tagging, keyed node (tag) rule, tag join,
/// and a seed+step transitive-closure pair (the one genuinely recursive
/// shape — its step rule reads its own derived label). Every action
/// either adds edges between existing nodes or is a node rule keyed by
/// a lower-stratum node, so the set always terminates.
///
/// Registers every derived label and triple in `scheme` (so conditions
/// of later strata can be built over it) and returns the rules in
/// application order. The closure template emits two rules, so the
/// result may hold more than `num_strata` rules.
Result<std::vector<rules::Rule>> RandomStratifiedRuleSet(
    schema::Scheme* scheme, size_t num_strata, uint64_t seed);

}  // namespace good::gen

#endif  // GOOD_GEN_GENERATORS_H_
