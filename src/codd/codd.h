/// \file codd.h
/// \brief Relational completeness of the restricted GOOD language
/// (Section 4.3).
///
/// "Suppose we represent a relation R with attributes A1 A2 A3 with
/// domains D1 D2 D3 as a class R with functional edges labeled A1 A2 A3
/// to printable classes D1 D2 D3. Tuples of R are represented by objects
/// of this class. Then ... every relation computable in the relational
/// algebra is also computable in the restricted GOOD language" — the
/// fragment with only node/edge additions and deletions (no
/// abstraction, no methods).
///
/// CoddSimulator realizes that simulation: it owns a GOOD database,
/// encodes relations as classes, and implements each Codd operator as a
/// GOOD program in the restricted fragment:
///  - selection by constant: a pattern with a valued printable node;
///  - selection by attribute equality: a pattern where both attribute
///    edges share one printable node (printable dedup makes equal
///    values the same node);
///  - projection: a node addition with bold edges for the kept
///    attributes only (the "if not exists" dedup gives set semantics);
///  - product, rename, union: node additions;
///  - difference: the tag-then-delete negation technique of Section 3.3.
/// Export() reads a relation class back as a relational::Relation so
/// tests can compare against the direct algebra of src/relational.

#ifndef GOOD_CODD_CODD_H_
#define GOOD_CODD_CODD_H_

#include <string>
#include <vector>

#include "graph/instance.h"
#include "relational/relation.h"
#include "schema/scheme.h"

namespace good::codd {

/// \brief The schema of a simulated relation: name plus named, typed
/// attributes.
struct RelSchema {
  std::string name;
  std::vector<std::pair<std::string, ValueKind>> attrs;
};

class CoddSimulator {
 public:
  CoddSimulator() = default;

  /// Declares a relation class: object label `schema.name`, functional
  /// attribute edges into per-domain printable classes.
  Status DeclareRelation(const RelSchema& schema);

  /// Inserts a tuple into a declared relation (the "load" phase; not
  /// part of the algebra).
  Status InsertTuple(const std::string& relation,
                     const std::vector<Value>& values);

  // ---- The Codd algebra, each operator a restricted-GOOD program. ----

  /// out := σ_{attr = constant}(in).
  Status Select(const std::string& in, const std::string& attr,
                const Value& constant, const std::string& out);

  /// out := σ_{a = b}(in).
  Status SelectAttrEquals(const std::string& in, const std::string& a,
                          const std::string& b, const std::string& out);

  /// out := π_{attrs}(in).
  Status Project(const std::string& in,
                 const std::vector<std::string>& attrs,
                 const std::string& out);

  /// out := in1 × in2 (attribute names must be disjoint).
  Status Product(const std::string& in1, const std::string& in2,
                 const std::string& out);

  /// out := in1 ∪ in2 (same attribute lists).
  Status UnionRel(const std::string& in1, const std::string& in2,
                  const std::string& out);

  /// out := in1 − in2 (same attribute lists).
  Status DifferenceRel(const std::string& in1, const std::string& in2,
                       const std::string& out);

  /// out := ρ(in) with attributes renamed per `renames` (old -> new).
  Status RenameRel(
      const std::string& in,
      const std::vector<std::pair<std::string, std::string>>& renames,
      const std::string& out);

  /// Reads a relation class back as a relational::Relation (attribute
  /// order as declared).
  Result<relational::Relation> Export(const std::string& relation) const;

  const schema::Scheme& scheme() const { return scheme_; }
  const graph::Instance& instance() const { return instance_; }

 private:
  /// The printable label used for domain `kind` ("dom:int", ...).
  static Symbol DomainLabel(ValueKind kind);

  Result<RelSchema> SchemaOf(const std::string& relation) const;

  /// Declares `out` with the given attribute list if not yet declared;
  /// errors if declared differently.
  Status EnsureDeclared(const RelSchema& schema);

  schema::Scheme scheme_;
  graph::Instance instance_;
  std::vector<RelSchema> declared_;
};

}  // namespace good::codd

#endif  // GOOD_CODD_CODD_H_
