#include "codd/codd.h"

#include <algorithm>
#include <map>
#include <set>

#include "ops/operations.h"
#include "pattern/matcher.h"

namespace good::codd {

using graph::Instance;
using graph::NodeId;
using pattern::Pattern;
using schema::Scheme;

Symbol CoddSimulator::DomainLabel(ValueKind kind) {
  return Sym("dom:" + std::string(ValueKindToString(kind)));
}

Result<RelSchema> CoddSimulator::SchemaOf(
    const std::string& relation) const {
  // Returned by value: callers mutate declared_ (EnsureDeclared), which
  // would invalidate references into it.
  for (const RelSchema& s : declared_) {
    if (s.name == relation) return s;
  }
  return Status::NotFound("relation '" + relation + "' is not declared");
}

Status CoddSimulator::EnsureDeclared(const RelSchema& schema) {
  for (const RelSchema& s : declared_) {
    if (s.name != schema.name) continue;
    if (s.attrs != schema.attrs) {
      return Status::InvalidArgument("relation '" + schema.name +
                                     "' already declared with a different "
                                     "attribute list");
    }
    return Status::OK();
  }
  return DeclareRelation(schema);
}

Status CoddSimulator::DeclareRelation(const RelSchema& schema) {
  if (SchemaOf(schema.name).ok()) {
    return Status::AlreadyExists("relation '" + schema.name +
                                 "' already declared");
  }
  std::set<std::string> seen;
  for (const auto& [attr, kind] : schema.attrs) {
    if (!seen.insert(attr).second) {
      return Status::InvalidArgument("attribute '" + attr + "' repeats");
    }
    (void)kind;
  }
  Symbol class_label = Sym(schema.name);
  GOOD_RETURN_NOT_OK(scheme_.EnsureObjectLabel(class_label));
  for (const auto& [attr, kind] : schema.attrs) {
    GOOD_RETURN_NOT_OK(scheme_.EnsurePrintableLabel(DomainLabel(kind), kind));
    GOOD_RETURN_NOT_OK(scheme_.EnsureFunctionalEdgeLabel(Sym(attr)));
    GOOD_RETURN_NOT_OK(
        scheme_.EnsureTriple(class_label, Sym(attr), DomainLabel(kind)));
  }
  declared_.push_back(schema);
  return Status::OK();
}

Status CoddSimulator::InsertTuple(const std::string& relation,
                                  const std::vector<Value>& values) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema schema, SchemaOf(relation));
  if (values.size() != schema.attrs.size()) {
    return Status::InvalidArgument("tuple arity mismatch for '" + relation +
                                   "'");
  }
  GOOD_ASSIGN_OR_RETURN(NodeId row,
                        instance_.AddObjectNode(scheme_, Sym(relation)));
  for (size_t i = 0; i < values.size(); ++i) {
    const auto& [attr, kind] = schema.attrs[i];
    if (values[i].kind() != kind) {
      return Status::InvalidArgument("value kind mismatch for attribute '" +
                                     attr + "'");
    }
    GOOD_ASSIGN_OR_RETURN(
        NodeId v, instance_.AddPrintableNode(scheme_, DomainLabel(kind),
                                             values[i]));
    GOOD_RETURN_NOT_OK(instance_.AddEdge(scheme_, row, Sym(attr), v));
  }
  return Status::OK();
}

namespace {

/// A tuple pattern for `schema`: one object node with one valueless
/// (or pinned) printable per attribute. Returns the object node and the
/// per-attribute printable nodes.
struct TuplePattern {
  NodeId row;
  std::vector<NodeId> attr_nodes;
};

Result<TuplePattern> AddTuplePattern(
    Pattern* pattern, const Scheme& scheme, const RelSchema& schema,
    const std::map<std::string, Value>& pinned,
    const std::map<std::string, NodeId>& shared) {
  TuplePattern out;
  GOOD_ASSIGN_OR_RETURN(out.row,
                        pattern->AddObjectNode(scheme, Sym(schema.name)));
  for (const auto& [attr, kind] : schema.attrs) {
    Symbol domain = Sym("dom:" + std::string(ValueKindToString(kind)));
    NodeId node;
    auto shared_it = shared.find(attr);
    if (shared_it != shared.end()) {
      node = shared_it->second;
    } else if (auto it = pinned.find(attr); it != pinned.end()) {
      GOOD_ASSIGN_OR_RETURN(
          node, pattern->AddPrintableNode(scheme, domain, it->second));
    } else {
      GOOD_ASSIGN_OR_RETURN(
          node, pattern->AddValuelessPrintableNode(scheme, domain));
    }
    GOOD_RETURN_NOT_OK(pattern->AddEdge(scheme, out.row, Sym(attr), node));
    out.attr_nodes.push_back(node);
  }
  return out;
}

}  // namespace

Status CoddSimulator::Select(const std::string& in, const std::string& attr,
                             const Value& constant, const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema schema, SchemaOf(in));
  RelSchema out_schema{out, schema.attrs};
  GOOD_RETURN_NOT_OK(EnsureDeclared(out_schema));
  Pattern p;
  GOOD_ASSIGN_OR_RETURN(
      TuplePattern t,
      AddTuplePattern(&p, scheme_, schema, {{attr, constant}}, {}));
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (size_t i = 0; i < schema.attrs.size(); ++i) {
    bold.emplace_back(Sym(schema.attrs[i].first), t.attr_nodes[i]);
  }
  ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
  return na.Apply(&scheme_, &instance_);
}

Status CoddSimulator::SelectAttrEquals(const std::string& in,
                                       const std::string& a,
                                       const std::string& b,
                                       const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema schema, SchemaOf(in));
  // Both attributes must share a domain; the shared pattern node makes
  // the equality hold by printable dedup.
  ValueKind ka{}, kb{};
  for (const auto& [attr, kind] : schema.attrs) {
    if (attr == a) ka = kind;
    if (attr == b) kb = kind;
  }
  if (ka != kb) {
    return Status::InvalidArgument(
        "attribute equality requires equal domains");
  }
  RelSchema out_schema{out, schema.attrs};
  GOOD_RETURN_NOT_OK(EnsureDeclared(out_schema));
  Pattern p;
  Symbol domain = DomainLabel(ka);
  GOOD_ASSIGN_OR_RETURN(NodeId shared_node,
                        p.AddValuelessPrintableNode(scheme_, domain));
  GOOD_ASSIGN_OR_RETURN(
      TuplePattern t,
      AddTuplePattern(&p, scheme_, schema, {},
                      {{a, shared_node}, {b, shared_node}}));
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (size_t i = 0; i < schema.attrs.size(); ++i) {
    bold.emplace_back(Sym(schema.attrs[i].first), t.attr_nodes[i]);
  }
  ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
  return na.Apply(&scheme_, &instance_);
}

Status CoddSimulator::Project(const std::string& in,
                              const std::vector<std::string>& attrs,
                              const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema schema, SchemaOf(in));
  RelSchema out_schema{out, {}};
  for (const std::string& attr : attrs) {
    bool found = false;
    for (const auto& [name, kind] : schema.attrs) {
      if (name == attr) {
        out_schema.attrs.emplace_back(name, kind);
        found = true;
      }
    }
    if (!found) {
      return Status::NotFound("attribute '" + attr + "' not in '" + in +
                              "'");
    }
  }
  GOOD_RETURN_NOT_OK(EnsureDeclared(out_schema));
  Pattern p;
  GOOD_ASSIGN_OR_RETURN(TuplePattern t,
                        AddTuplePattern(&p, scheme_, schema, {}, {}));
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (const std::string& attr : attrs) {
    for (size_t i = 0; i < schema.attrs.size(); ++i) {
      if (schema.attrs[i].first == attr) {
        bold.emplace_back(Sym(attr), t.attr_nodes[i]);
      }
    }
  }
  ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
  return na.Apply(&scheme_, &instance_);
}

Status CoddSimulator::Product(const std::string& in1, const std::string& in2,
                              const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema s1, SchemaOf(in1));
  GOOD_ASSIGN_OR_RETURN(const RelSchema s2, SchemaOf(in2));
  RelSchema out_schema{out, s1.attrs};
  for (const auto& [attr, kind] : s2.attrs) {
    for (const auto& [a1, k1] : s1.attrs) {
      (void)k1;
      if (a1 == attr) {
        return Status::InvalidArgument(
            "product attribute lists must be disjoint ('" + attr + "')");
      }
    }
    out_schema.attrs.emplace_back(attr, kind);
  }
  GOOD_RETURN_NOT_OK(EnsureDeclared(out_schema));
  Pattern p;
  GOOD_ASSIGN_OR_RETURN(TuplePattern t1,
                        AddTuplePattern(&p, scheme_, s1, {}, {}));
  GOOD_ASSIGN_OR_RETURN(TuplePattern t2,
                        AddTuplePattern(&p, scheme_, s2, {}, {}));
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (size_t i = 0; i < s1.attrs.size(); ++i) {
    bold.emplace_back(Sym(s1.attrs[i].first), t1.attr_nodes[i]);
  }
  for (size_t i = 0; i < s2.attrs.size(); ++i) {
    bold.emplace_back(Sym(s2.attrs[i].first), t2.attr_nodes[i]);
  }
  ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
  return na.Apply(&scheme_, &instance_);
}

Status CoddSimulator::UnionRel(const std::string& in1, const std::string& in2,
                               const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema s1, SchemaOf(in1));
  GOOD_ASSIGN_OR_RETURN(const RelSchema s2, SchemaOf(in2));
  if (s1.attrs != s2.attrs) {
    return Status::InvalidArgument("union requires equal attribute lists");
  }
  GOOD_RETURN_NOT_OK(EnsureDeclared(RelSchema{out, s1.attrs}));
  for (const RelSchema* s : {&s1, &s2}) {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(TuplePattern t,
                          AddTuplePattern(&p, scheme_, *s, {}, {}));
    std::vector<std::pair<Symbol, NodeId>> bold;
    for (size_t i = 0; i < s->attrs.size(); ++i) {
      bold.emplace_back(Sym(s->attrs[i].first), t.attr_nodes[i]);
    }
    ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
    GOOD_RETURN_NOT_OK(na.Apply(&scheme_, &instance_));
  }
  return Status::OK();
}

Status CoddSimulator::DifferenceRel(const std::string& in1,
                                    const std::string& in2,
                                    const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema s1, SchemaOf(in1));
  GOOD_ASSIGN_OR_RETURN(const RelSchema s2, SchemaOf(in2));
  if (s1.attrs != s2.attrs) {
    return Status::InvalidArgument(
        "difference requires equal attribute lists");
  }
  GOOD_RETURN_NOT_OK(EnsureDeclared(RelSchema{out, s1.attrs}));
  // Step 1: tag every in1 tuple with an out object (Section 3.3's
  // negation technique).
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(TuplePattern t,
                          AddTuplePattern(&p, scheme_, s1, {}, {}));
    std::vector<std::pair<Symbol, NodeId>> bold;
    for (size_t i = 0; i < s1.attrs.size(); ++i) {
      bold.emplace_back(Sym(s1.attrs[i].first), t.attr_nodes[i]);
    }
    ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
    GOOD_RETURN_NOT_OK(na.Apply(&scheme_, &instance_));
  }
  // Step 2: delete the out objects whose values also form an in2 tuple
  // (shared printable nodes make the value equality structural).
  {
    Pattern p;
    RelSchema tagged{out, s1.attrs};
    GOOD_ASSIGN_OR_RETURN(TuplePattern t,
                          AddTuplePattern(&p, scheme_, tagged, {}, {}));
    std::map<std::string, NodeId> shared;
    for (size_t i = 0; i < s1.attrs.size(); ++i) {
      shared[s1.attrs[i].first] = t.attr_nodes[i];
    }
    GOOD_RETURN_NOT_OK(
        AddTuplePattern(&p, scheme_, s2, {}, shared).status());
    ops::NodeDeletion nd(std::move(p), t.row);
    GOOD_RETURN_NOT_OK(nd.Apply(&scheme_, &instance_));
  }
  return Status::OK();
}

Status CoddSimulator::RenameRel(
    const std::string& in,
    const std::vector<std::pair<std::string, std::string>>& renames,
    const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const RelSchema schema, SchemaOf(in));
  std::map<std::string, std::string> mapping(renames.begin(), renames.end());
  RelSchema out_schema{out, {}};
  for (const auto& [attr, kind] : schema.attrs) {
    auto it = mapping.find(attr);
    out_schema.attrs.emplace_back(it == mapping.end() ? attr : it->second,
                                  kind);
  }
  std::set<std::string> seen;
  for (const auto& [attr, kind] : out_schema.attrs) {
    (void)kind;
    if (!seen.insert(attr).second) {
      return Status::InvalidArgument("rename duplicates attribute '" + attr +
                                     "'");
    }
  }
  GOOD_RETURN_NOT_OK(EnsureDeclared(out_schema));
  Pattern p;
  GOOD_ASSIGN_OR_RETURN(TuplePattern t,
                        AddTuplePattern(&p, scheme_, schema, {}, {}));
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (size_t i = 0; i < out_schema.attrs.size(); ++i) {
    bold.emplace_back(Sym(out_schema.attrs[i].first), t.attr_nodes[i]);
  }
  ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
  return na.Apply(&scheme_, &instance_);
}

Result<relational::Relation> CoddSimulator::Export(
    const std::string& relation) const {
  GOOD_ASSIGN_OR_RETURN(const RelSchema schema, SchemaOf(relation));
  std::vector<relational::Attribute> header;
  for (const auto& [attr, kind] : schema.attrs) {
    header.push_back(relational::Attribute{attr, kind});
  }
  relational::Relation out(std::move(header));
  for (NodeId row : instance_.NodesWithLabel(Sym(relation))) {
    relational::Tuple tuple;
    for (const auto& [attr, kind] : schema.attrs) {
      (void)kind;
      auto target = instance_.FunctionalTarget(row, Sym(attr));
      if (!target.has_value()) {
        return Status::Internal("relation object misses attribute '" + attr +
                                "'");
      }
      tuple.push_back(*instance_.PrintValueOf(*target));
    }
    GOOD_RETURN_NOT_OK(out.Insert(std::move(tuple)).status());
  }
  return out;
}

}  // namespace good::codd
