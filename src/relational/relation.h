/// \file relation.h
/// \brief A small typed relational engine — the substrate for the
/// Section 5 implementation route ("a prototype of the actual data
/// management is implemented on top of a relational system").
///
/// Relations are sets of tuples over a named, typed header. Cells are
/// optional values: the GOOD storage mapping stores absent functional
/// properties as NULLs. NULL follows SQL-ish semantics where it matters
/// (NULLs never compare equal in joins/selections), while tuple-level
/// set semantics treats NULL cells as equal for deduplication.

#ifndef GOOD_RELATIONAL_RELATION_H_
#define GOOD_RELATIONAL_RELATION_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace good::relational {

/// \brief One column of a relation header.
struct Attribute {
  std::string name;
  ValueKind type;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// \brief A cell: a typed value or NULL.
using Cell = std::optional<Value>;

/// \brief A tuple of cells, positionally matching the header.
using Tuple = std::vector<Cell>;

/// \brief A relation: header plus a set of tuples (duplicates are
/// removed on insertion).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<Attribute> header)
      : header_(std::move(header)) {}

  const std::vector<Attribute>& header() const { return header_; }
  size_t arity() const { return header_.size(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Index of the attribute named `name`; NotFound if absent.
  Result<size_t> IndexOf(const std::string& name) const;
  bool HasAttribute(const std::string& name) const;

  /// Inserts a tuple; checks arity and cell types. Duplicate tuples are
  /// silently ignored (set semantics). Returns true if inserted.
  Result<bool> Insert(Tuple tuple);

  /// Removes a tuple if present; returns true if removed.
  bool Erase(const Tuple& tuple);

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Sorted copy of the tuples (canonical order for comparisons).
  std::vector<Tuple> SortedTuples() const;

  /// Set equality: same header (names, types, order) and same tuples.
  friend bool operator==(const Relation& a, const Relation& b);

  std::string ToString() const;

 private:
  std::vector<Attribute> header_;
  std::vector<Tuple> tuples_;
  // Dedup index: canonical strings of the stored tuples.
  std::unordered_set<std::string> keys_;
};

/// Total order on cells: NULL first, then by value. Used for canonical
/// sorting and dedup.
bool CellLess(const Cell& a, const Cell& b);
bool CellEq(const Cell& a, const Cell& b);

}  // namespace good::relational

#endif  // GOOD_RELATIONAL_RELATION_H_
