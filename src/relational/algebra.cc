#include "relational/algebra.h"

#include <map>
#include <set>
#include <unordered_map>

namespace good::relational {

namespace {

Status RequireSameHeader(const Relation& a, const Relation& b,
                         const char* op) {
  if (a.header() != b.header()) {
    return Status::InvalidArgument(std::string(op) +
                                   " requires identical headers");
  }
  return Status::OK();
}

std::string JoinKey(const Tuple& tuple, const std::vector<size_t>& columns) {
  std::string key;
  for (size_t c : columns) {
    key += std::to_string(static_cast<int>(tuple[c]->kind()));
    key += ':';
    key += tuple[c]->ToString();
    key += '\x02';
  }
  return key;
}

}  // namespace

Relation Select(const Relation& input, const RowPredicate& predicate) {
  Relation out(input.header());
  for (const Tuple& t : input.tuples()) {
    if (predicate(input, t)) out.Insert(t).ValueOrDie();
  }
  return out;
}

Result<Relation> SelectEquals(const Relation& input, const std::string& attr,
                              const Value& constant) {
  GOOD_ASSIGN_OR_RETURN(size_t index, input.IndexOf(attr));
  return Select(input, [index, &constant](const Relation&, const Tuple& t) {
    return t[index].has_value() && *t[index] == constant;
  });
}

Result<Relation> SelectAttrEquals(const Relation& input, const std::string& a,
                                  const std::string& b) {
  GOOD_ASSIGN_OR_RETURN(size_t ia, input.IndexOf(a));
  GOOD_ASSIGN_OR_RETURN(size_t ib, input.IndexOf(b));
  return Select(input, [ia, ib](const Relation&, const Tuple& t) {
    return t[ia].has_value() && t[ib].has_value() && *t[ia] == *t[ib];
  });
}

Result<Relation> SelectNotNull(const Relation& input,
                               const std::string& attr) {
  GOOD_ASSIGN_OR_RETURN(size_t index, input.IndexOf(attr));
  return Select(input, [index](const Relation&, const Tuple& t) {
    return t[index].has_value();
  });
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attrs) {
  std::vector<size_t> indices;
  std::vector<Attribute> header;
  std::set<std::string> seen;
  for (const std::string& name : attrs) {
    GOOD_ASSIGN_OR_RETURN(size_t index, input.IndexOf(name));
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("projection repeats attribute '" +
                                     name + "'");
    }
    indices.push_back(index);
    header.push_back(input.header()[index]);
  }
  Relation out(std::move(header));
  for (const Tuple& t : input.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (size_t index : indices) projected.push_back(t[index]);
    GOOD_RETURN_NOT_OK(out.Insert(std::move(projected)).status());
  }
  return out;
}

Result<Relation> Rename(
    const Relation& input,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::map<std::string, std::string> mapping(renames.begin(), renames.end());
  std::vector<Attribute> header;
  std::set<std::string> seen;
  for (const Attribute& attr : input.header()) {
    auto it = mapping.find(attr.name);
    std::string name = it == mapping.end() ? attr.name : it->second;
    if (it != mapping.end()) mapping.erase(it);
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("rename would duplicate attribute '" +
                                     name + "'");
    }
    header.push_back(Attribute{std::move(name), attr.type});
  }
  if (!mapping.empty()) {
    return Status::NotFound("rename references missing attribute '" +
                            mapping.begin()->first + "'");
  }
  Relation out(std::move(header));
  for (const Tuple& t : input.tuples()) {
    GOOD_RETURN_NOT_OK(out.Insert(t).status());
  }
  return out;
}

Result<Relation> Product(const Relation& a, const Relation& b) {
  std::vector<Attribute> header = a.header();
  for (const Attribute& attr : b.header()) {
    if (a.HasAttribute(attr.name)) {
      return Status::InvalidArgument("product headers share attribute '" +
                                     attr.name + "'");
    }
    header.push_back(attr);
  }
  Relation out(std::move(header));
  for (const Tuple& ta : a.tuples()) {
    for (const Tuple& tb : b.tuples()) {
      Tuple joined = ta;
      joined.insert(joined.end(), tb.begin(), tb.end());
      GOOD_RETURN_NOT_OK(out.Insert(std::move(joined)).status());
    }
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& a, const Relation& b) {
  // Identify shared attributes.
  std::vector<size_t> a_shared, b_shared, b_rest;
  for (size_t j = 0; j < b.header().size(); ++j) {
    auto index = a.IndexOf(b.header()[j].name);
    if (index.ok()) {
      if (a.header()[*index].type != b.header()[j].type) {
        return Status::InvalidArgument(
            "join attribute '" + b.header()[j].name +
            "' has conflicting types");
      }
      a_shared.push_back(*index);
      b_shared.push_back(j);
    } else {
      b_rest.push_back(j);
    }
  }
  if (a_shared.empty()) return Product(a, b);

  std::vector<Attribute> header = a.header();
  for (size_t j : b_rest) header.push_back(b.header()[j]);
  Relation out(std::move(header));

  // Hash the smaller input on the shared columns; NULLs never join.
  std::unordered_map<std::string, std::vector<const Tuple*>> hashed;
  for (const Tuple& tb : b.tuples()) {
    bool has_null = false;
    for (size_t j : b_shared) {
      if (!tb[j].has_value()) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    hashed[JoinKey(tb, b_shared)].push_back(&tb);
  }
  for (const Tuple& ta : a.tuples()) {
    bool has_null = false;
    for (size_t i : a_shared) {
      if (!ta[i].has_value()) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    auto it = hashed.find(JoinKey(ta, a_shared));
    if (it == hashed.end()) continue;
    for (const Tuple* tb : it->second) {
      Tuple joined = ta;
      for (size_t j : b_rest) joined.push_back((*tb)[j]);
      GOOD_RETURN_NOT_OK(out.Insert(std::move(joined)).status());
    }
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  GOOD_RETURN_NOT_OK(RequireSameHeader(a, b, "union"));
  Relation out = a;
  for (const Tuple& t : b.tuples()) {
    GOOD_RETURN_NOT_OK(out.Insert(t).status());
  }
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  GOOD_RETURN_NOT_OK(RequireSameHeader(a, b, "difference"));
  Relation out = a;
  for (const Tuple& t : b.tuples()) out.Erase(t);
  return out;
}

Result<Relation> Intersect(const Relation& a, const Relation& b) {
  GOOD_RETURN_NOT_OK(RequireSameHeader(a, b, "intersect"));
  GOOD_ASSIGN_OR_RETURN(Relation diff, Difference(a, b));
  return Difference(a, diff);
}

}  // namespace good::relational
