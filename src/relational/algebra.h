/// \file algebra.h
/// \brief Relational algebra operators over relational::Relation.
///
/// The classical operator set (selection, projection, rename, product,
/// natural join, union, difference, distinct-by-construction) used by
/// the GOOD-on-relations backend (backend.h) and by the Section 4.3
/// relational-completeness harness (codd module). Joins are hash joins;
/// NULLs never satisfy equality predicates.

#ifndef GOOD_RELATIONAL_ALGEBRA_H_
#define GOOD_RELATIONAL_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace good::relational {

/// \brief Row predicate used by generic selection.
using RowPredicate = std::function<bool(const Relation&, const Tuple&)>;

/// σ: tuples satisfying `predicate`.
Relation Select(const Relation& input, const RowPredicate& predicate);

/// σ attr = constant. NULL cells never match.
Result<Relation> SelectEquals(const Relation& input, const std::string& attr,
                              const Value& constant);

/// σ attrA = attrB (both non-NULL).
Result<Relation> SelectAttrEquals(const Relation& input,
                                  const std::string& a,
                                  const std::string& b);

/// σ attr IS NOT NULL.
Result<Relation> SelectNotNull(const Relation& input,
                               const std::string& attr);

/// π: keeps `attrs` in the given order (duplicates collapse: set
/// semantics).
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attrs);

/// ρ: renames attributes; `renames` maps old name -> new name. Names
/// not mentioned stay. The resulting header must not contain
/// duplicates.
Result<Relation> Rename(
    const Relation& input,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// ×: Cartesian product. Headers must be disjoint.
Result<Relation> Product(const Relation& a, const Relation& b);

/// ⋈: natural join on all shared attribute names (hash join on the
/// shared columns; NULLs never join). Shared attributes must agree on
/// type; the output carries a's header followed by b's non-shared
/// attributes.
Result<Relation> NaturalJoin(const Relation& a, const Relation& b);

/// ∪: headers must be identical.
Result<Relation> Union(const Relation& a, const Relation& b);

/// −: headers must be identical.
Result<Relation> Difference(const Relation& a, const Relation& b);

/// ∩: headers must be identical.
Result<Relation> Intersect(const Relation& a, const Relation& b);

}  // namespace good::relational

#endif  // GOOD_RELATIONAL_ALGEBRA_H_
