#include "relational/relation.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace good::relational {

namespace {

std::string CellKey(const Cell& cell) {
  if (!cell.has_value()) return "\x01NULL";
  return std::to_string(static_cast<int>(cell->kind())) + ":" +
         cell->ToString();
}

std::string TupleKey(const Tuple& tuple) {
  std::string key;
  for (const Cell& c : tuple) {
    key += CellKey(c);
    key += '\x02';
  }
  return key;
}

}  // namespace

bool CellEq(const Cell& a, const Cell& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return *a == *b;
}

bool CellLess(const Cell& a, const Cell& b) {
  if (!a.has_value()) return b.has_value();
  if (!b.has_value()) return false;
  return *a < *b;
}

Result<size_t> Relation::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

bool Relation::HasAttribute(const std::string& name) const {
  return IndexOf(name).ok();
}

Result<bool> Relation::Insert(Tuple tuple) {
  if (tuple.size() != header_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match header arity " + std::to_string(header_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].has_value() && tuple[i]->kind() != header_[i].type) {
      return Status::InvalidArgument(
          "cell " + std::to_string(i) + " has kind " +
          std::string(ValueKindToString(tuple[i]->kind())) +
          ", attribute '" + header_[i].name + "' expects " +
          std::string(ValueKindToString(header_[i].type)));
    }
  }
  std::string key = TupleKey(tuple);
  if (!keys_.insert(std::move(key)).second) return false;
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::Erase(const Tuple& tuple) {
  std::string key = TupleKey(tuple);
  if (keys_.erase(key) == 0) return false;
  for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
    if (TupleKey(*it) == key) {
      tuples_.erase(it);
      return true;
    }
  }
  return true;  // Unreachable in practice; the index and store agree.
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out = tuples_;
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (CellLess(a[i], b[i])) return true;
      if (CellLess(b[i], a[i])) return false;
    }
    return a.size() < b.size();
  });
  return out;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.header_ != b.header_) return false;
  if (a.size() != b.size()) return false;
  auto sa = a.SortedTuples();
  auto sb = b.SortedTuples();
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].size() != sb[i].size()) return false;
    for (size_t j = 0; j < sa[i].size(); ++j) {
      if (!CellEq(sa[i][j], sb[i][j])) return false;
    }
  }
  return true;
}

std::string Relation::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) os << " | ";
    os << header_[i].name;
  }
  os << "\n";
  for (const Tuple& t : SortedTuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) os << " | ";
      os << (t[i].has_value() ? t[i]->ToString() : "NULL");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace good::relational
