/// \file backend.h
/// \brief The Section 5 (Antwerp) implementation route: GOOD on top of
/// a relational system.
///
/// "Classes are stored as relations with attributes for the object
/// identifier and the functional properties. Multivalued edges are
/// stored as binary relations. The set of all matchings of the pattern
/// of a GOOD operation is expressed as an SQL query. The actual
/// transformation is performed using SQL's update capabilities."
///
/// This backend reproduces that design against the in-repo relational
/// engine:
///  - each object class K has a table K(oid, f:α1, ..., f:αk) with one
///    nullable oid-valued column per functional label α with a triple
///    (K, α, ·) in P;
///  - each printable class L has a table L(oid, value);
///  - each multivalued label m has a binary table m(src, tgt);
///  - pattern matching compiles to a select-project-join expression
///    (MatchPattern returns the matchings relation; FindMatchings
///    decodes it);
///  - the five operations run as relational updates.
/// Export() converts the store back into a graph::Instance so that
/// differential tests can compare against the native engine.

#ifndef GOOD_RELATIONAL_BACKEND_H_
#define GOOD_RELATIONAL_BACKEND_H_

#include <map>
#include <string>
#include <vector>

#include "ops/operations.h"
#include "pattern/matcher.h"
#include "relational/algebra.h"
#include "relational/relation.h"
#include "schema/scheme.h"

namespace good::relational {

class RelationalBackend {
 public:
  /// Builds the relational store for `instance` over `scheme`. The
  /// backend keeps its own copy of the scheme and evolves it as
  /// operations extend it.
  static Result<RelationalBackend> Load(const schema::Scheme& scheme,
                                        const graph::Instance& instance);

  // ---- Pattern matching (the "SQL query" of the paper) -------------------

  /// Compiles `pattern` to an algebra expression and evaluates it. The
  /// result has one column "$<k>" of kind int per pattern node (in
  /// Pattern::AllNodes order), one tuple per matching.
  Result<Relation> MatchPattern(const pattern::Pattern& pattern) const;

  /// Decodes MatchPattern into Matching objects keyed by pattern nodes
  /// and instance oids (oid == NodeId id of the originally loaded
  /// instance for loaded nodes).
  Result<std::vector<pattern::Matching>> FindMatchings(
      const pattern::Pattern& pattern) const;

  // ---- Operations as relational updates ----------------------------------

  Status Apply(const ops::NodeAddition& op);
  Status Apply(const ops::EdgeAddition& op);
  Status Apply(const ops::NodeDeletion& op);
  Status Apply(const ops::EdgeDeletion& op);
  Status Apply(const ops::Abstraction& op);

  // ---- Introspection ------------------------------------------------------

  const schema::Scheme& scheme() const { return scheme_; }
  /// The class/printable table of `label` (error if unknown).
  Result<const Relation*> Table(Symbol label) const;
  /// The binary table of multivalued label `label`.
  Result<const Relation*> EdgeTable(Symbol label) const;

  /// Converts the store back into a labeled graph over scheme().
  Result<graph::Instance> Export() const;

 private:
  RelationalBackend() = default;

  static std::string FunctionalColumn(Symbol label) {
    return "f:" + SymName(label);
  }

  /// Ensures the table layouts cover `scheme_` (new labels/triples get
  /// tables/columns; existing rows get NULLs in new columns).
  Status SyncLayout();

  /// Store primitives.
  Result<int64_t> InsertObject(Symbol label);
  Result<int64_t> InsertPrintable(Symbol label, const Value& value);
  Status SetFunctional(Symbol class_label, int64_t oid, Symbol edge,
                       std::optional<int64_t> target);
  Result<std::optional<int64_t>> GetFunctional(Symbol class_label,
                                               int64_t oid,
                                               Symbol edge) const;
  Status InsertMultivalued(Symbol edge, int64_t src, int64_t tgt);
  Status DeleteNode(Symbol label, int64_t oid);

  /// The class label of the row holding `oid`, if any.
  Result<Symbol> LabelOfOid(int64_t oid) const;

  schema::Scheme scheme_;
  std::map<Symbol, Relation> tables_;       // class & printable tables
  std::map<Symbol, Relation> edge_tables_;  // multivalued binary tables
  std::map<int64_t, Symbol> oid_labels_;    // oid -> class label
  int64_t next_oid_ = 0;
};

}  // namespace good::relational

#endif  // GOOD_RELATIONAL_BACKEND_H_
