#include "relational/backend.h"

#include <algorithm>
#include <set>

namespace good::relational {

using graph::Instance;
using graph::NodeId;
using pattern::Matching;
using pattern::Pattern;
using schema::Scheme;

namespace {

Value Oid(int64_t oid) { return Value(oid); }

// Append form avoids the GCC 12 -Werror=restrict false positive that
// `"$" + std::to_string(...)` triggers in optimized builds.
std::string NodeColumn(size_t k) {
  std::string s("$");
  s.append(std::to_string(k));
  return s;
}
std::string FunctionalNodeColumn(size_t k, Symbol edge) {
  std::string s = NodeColumn(k);
  s.push_back('.');
  s.append(SymName(edge));
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Layout & loading
// ---------------------------------------------------------------------------

Status RelationalBackend::SyncLayout() {
  // Desired functional columns per object label.
  std::map<Symbol, std::vector<Symbol>> functional_labels;
  for (const schema::Triple& t : scheme_.triples()) {
    if (scheme_.IsFunctionalEdgeLabel(t.edge)) {
      auto& labels = functional_labels[t.source];
      if (std::find(labels.begin(), labels.end(), t.edge) == labels.end()) {
        labels.push_back(t.edge);
      }
    }
  }
  for (auto& [label, labels] : functional_labels) {
    (void)label;
    std::sort(labels.begin(), labels.end(),
              [](Symbol a, Symbol b) { return SymName(a) < SymName(b); });
  }

  for (Symbol label : scheme_.object_labels()) {
    std::vector<Attribute> header{{"oid", ValueKind::kInt}};
    for (Symbol edge : functional_labels[label]) {
      header.push_back(Attribute{FunctionalColumn(edge), ValueKind::kInt});
    }
    auto it = tables_.find(label);
    if (it == tables_.end()) {
      tables_.emplace(label, Relation(header));
      continue;
    }
    if (it->second.header() == header) continue;
    // Rebuild with the extended header, padding new columns with NULL.
    Relation rebuilt(header);
    for (const Tuple& row : it->second.tuples()) {
      Tuple extended(header.size());
      for (size_t i = 0; i < header.size(); ++i) {
        auto old_index = it->second.IndexOf(header[i].name);
        extended[i] = old_index.ok() ? row[*old_index] : Cell{};
      }
      GOOD_RETURN_NOT_OK(rebuilt.Insert(std::move(extended)).status());
    }
    it->second = std::move(rebuilt);
  }
  for (Symbol label : scheme_.printable_labels()) {
    if (!tables_.contains(label)) {
      GOOD_ASSIGN_OR_RETURN(ValueKind domain, scheme_.DomainOf(label));
      tables_.emplace(label,
                      Relation({{"oid", ValueKind::kInt}, {"value", domain}}));
    }
  }
  for (Symbol label : scheme_.multivalued_edge_labels()) {
    if (!edge_tables_.contains(label)) {
      edge_tables_.emplace(
          label, Relation({{"src", ValueKind::kInt}, {"tgt", ValueKind::kInt}}));
    }
  }
  return Status::OK();
}

Result<RelationalBackend> RelationalBackend::Load(const Scheme& scheme,
                                                  const Instance& instance) {
  RelationalBackend backend;
  backend.scheme_ = scheme;
  GOOD_RETURN_NOT_OK(backend.SyncLayout());

  for (NodeId node : instance.AllNodes()) {
    const Symbol label = instance.LabelOf(node);
    const int64_t oid = node.id;
    backend.next_oid_ = std::max(backend.next_oid_, oid + 1);
    backend.oid_labels_[oid] = label;
    Relation& table = backend.tables_.at(label);
    Tuple row(table.arity());
    row[0] = Oid(oid);
    if (scheme.IsPrintableLabel(label)) {
      if (instance.HasPrintValue(node)) {
        row[1] = *instance.PrintValueOf(node);
      }
    } else {
      for (const auto& [edge, target] : instance.OutEdges(node)) {
        if (!scheme.IsFunctionalEdgeLabel(edge)) continue;
        GOOD_ASSIGN_OR_RETURN(size_t col,
                              table.IndexOf(FunctionalColumn(edge)));
        row[col] = Oid(target.id);
      }
    }
    GOOD_RETURN_NOT_OK(table.Insert(std::move(row)).status());
  }
  for (const graph::Edge& e : instance.AllEdges()) {
    if (!scheme.IsMultivaluedEdgeLabel(e.label)) continue;
    GOOD_RETURN_NOT_OK(
        backend.InsertMultivalued(e.label, e.source.id, e.target.id));
  }
  return backend;
}

// ---------------------------------------------------------------------------
// Store primitives
// ---------------------------------------------------------------------------

Result<const Relation*> RelationalBackend::Table(Symbol label) const {
  auto it = tables_.find(label);
  if (it == tables_.end()) {
    return Status::NotFound("no table for label '" + SymName(label) + "'");
  }
  return &it->second;
}

Result<const Relation*> RelationalBackend::EdgeTable(Symbol label) const {
  auto it = edge_tables_.find(label);
  if (it == edge_tables_.end()) {
    return Status::NotFound("no edge table for label '" + SymName(label) +
                            "'");
  }
  return &it->second;
}

Result<int64_t> RelationalBackend::InsertObject(Symbol label) {
  auto it = tables_.find(label);
  if (it == tables_.end()) {
    return Status::NotFound("no class table for '" + SymName(label) + "'");
  }
  int64_t oid = next_oid_++;
  Tuple row(it->second.arity());
  row[0] = Oid(oid);
  GOOD_RETURN_NOT_OK(it->second.Insert(std::move(row)).status());
  oid_labels_[oid] = label;
  return oid;
}

Result<int64_t> RelationalBackend::InsertPrintable(Symbol label,
                                                   const Value& value) {
  auto it = tables_.find(label);
  if (it == tables_.end()) {
    return Status::NotFound("no printable table for '" + SymName(label) +
                            "'");
  }
  // Printable dedup: one row per (label, value).
  for (const Tuple& row : it->second.tuples()) {
    if (row[1].has_value() && *row[1] == value) return row[0]->AsInt();
  }
  int64_t oid = next_oid_++;
  GOOD_RETURN_NOT_OK(it->second.Insert({Oid(oid), value}).status());
  oid_labels_[oid] = label;
  return oid;
}

Status RelationalBackend::SetFunctional(Symbol class_label, int64_t oid,
                                        Symbol edge,
                                        std::optional<int64_t> target) {
  Relation& table = tables_.at(class_label);
  GOOD_ASSIGN_OR_RETURN(size_t col, table.IndexOf(FunctionalColumn(edge)));
  for (const Tuple& row : table.tuples()) {
    if (row[0].has_value() && row[0]->AsInt() == oid) {
      Tuple updated = row;
      updated[col].reset();
      if (target.has_value()) updated[col] = Oid(*target);
      table.Erase(row);
      return table.Insert(std::move(updated)).status();
    }
  }
  return Status::NotFound("no row with oid " + std::to_string(oid));
}

Result<std::optional<int64_t>> RelationalBackend::GetFunctional(
    Symbol class_label, int64_t oid, Symbol edge) const {
  const Relation& table = tables_.at(class_label);
  auto col = table.IndexOf(FunctionalColumn(edge));
  if (!col.ok()) return std::optional<int64_t>{};
  for (const Tuple& row : table.tuples()) {
    if (row[0].has_value() && row[0]->AsInt() == oid) {
      if (!row[*col].has_value()) return std::optional<int64_t>{};
      return std::optional<int64_t>{row[*col]->AsInt()};
    }
  }
  return Status::NotFound("no row with oid " + std::to_string(oid));
}

Status RelationalBackend::InsertMultivalued(Symbol edge, int64_t src,
                                            int64_t tgt) {
  auto it = edge_tables_.find(edge);
  if (it == edge_tables_.end()) {
    return Status::NotFound("no edge table for '" + SymName(edge) + "'");
  }
  return it->second.Insert({Oid(src), Oid(tgt)}).status();
}

Status RelationalBackend::DeleteNode(Symbol label, int64_t oid) {
  Relation& table = tables_.at(label);
  for (const Tuple& row : table.tuples()) {
    if (row[0].has_value() && row[0]->AsInt() == oid) {
      table.Erase(row);
      break;
    }
  }
  oid_labels_.erase(oid);
  // Multivalued edges touching the node.
  for (auto& [edge, edge_table] : edge_tables_) {
    (void)edge;
    std::vector<Tuple> doomed;
    for (const Tuple& row : edge_table.tuples()) {
      if ((row[0].has_value() && row[0]->AsInt() == oid) ||
          (row[1].has_value() && row[1]->AsInt() == oid)) {
        doomed.push_back(row);
      }
    }
    for (const Tuple& row : doomed) edge_table.Erase(row);
  }
  // Functional references into the node: NULL them out.
  for (auto& [class_label, class_table] : tables_) {
    if (scheme_.IsPrintableLabel(class_label)) continue;
    std::vector<std::pair<Tuple, Tuple>> updates;
    for (const Tuple& row : class_table.tuples()) {
      Tuple updated = row;
      bool changed = false;
      for (size_t c = 1; c < updated.size(); ++c) {
        if (updated[c].has_value() && updated[c]->AsInt() == oid) {
          updated[c] = Cell{};
          changed = true;
        }
      }
      if (changed) updates.emplace_back(row, std::move(updated));
    }
    for (auto& [old_row, new_row] : updates) {
      class_table.Erase(old_row);
      GOOD_RETURN_NOT_OK(class_table.Insert(std::move(new_row)).status());
    }
  }
  return Status::OK();
}

Result<Symbol> RelationalBackend::LabelOfOid(int64_t oid) const {
  auto it = oid_labels_.find(oid);
  if (it == oid_labels_.end()) {
    return Status::NotFound("unknown oid " + std::to_string(oid));
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Pattern compilation (the "SQL query")
// ---------------------------------------------------------------------------

Result<Relation> RelationalBackend::MatchPattern(
    const Pattern& pattern) const {
  std::vector<NodeId> nodes = pattern.AllNodes();
  if (nodes.empty()) {
    // The empty pattern has exactly one (empty) matching.
    Relation unit{std::vector<Attribute>{}};
    GOOD_RETURN_NOT_OK(unit.Insert({}).status());
    return unit;
  }
  std::map<NodeId, size_t> position;
  for (size_t k = 0; k < nodes.size(); ++k) position[nodes[k]] = k;

  // Per-node relations: oid renamed to $k; used functional columns to
  // $k.<edge>; printable value constraints applied here.
  auto node_relation = [&](size_t k) -> Result<Relation> {
    NodeId m = nodes[k];
    Symbol label = pattern.LabelOf(m);
    auto table = Table(label);
    if (!table.ok()) {
      // Unknown label: no candidates.
      return Relation({{NodeColumn(k), ValueKind::kInt}});
    }
    Relation base = **table;
    if (pattern.HasPrintValue(m)) {
      GOOD_ASSIGN_OR_RETURN(
          base, SelectEquals(base, "value", *pattern.PrintValueOf(m)));
    }
    std::vector<std::pair<std::string, std::string>> renames{
        {"oid", NodeColumn(k)}};
    std::vector<std::string> keep{NodeColumn(k)};
    for (const auto& [edge, target] : pattern.OutEdges(m)) {
      (void)target;
      if (!scheme_.IsFunctionalEdgeLabel(edge)) continue;
      renames.emplace_back(FunctionalColumn(edge),
                           FunctionalNodeColumn(k, edge));
      keep.push_back(FunctionalNodeColumn(k, edge));
    }
    GOOD_ASSIGN_OR_RETURN(Relation renamed, Rename(base, renames));
    return Project(renamed, keep);
  };

  // Connectivity-aware fold order: after the first node, prefer nodes
  // adjacent to the already-joined set so each NaturalJoin shares a
  // column (a Cartesian product only happens between genuinely
  // disconnected pattern components).
  std::vector<size_t> order;
  {
    std::vector<bool> placed(nodes.size(), false);
    auto adjacent = [&](size_t k) {
      NodeId m = nodes[k];
      for (const auto& [edge, target] : pattern.OutEdges(m)) {
        (void)edge;
        if (placed[position.at(target)]) return true;
      }
      for (const auto& [source, edge] : pattern.InEdges(m)) {
        (void)edge;
        if (placed[position.at(source)]) return true;
      }
      return false;
    };
    while (order.size() < nodes.size()) {
      size_t pick = nodes.size();
      for (size_t k = 0; k < nodes.size(); ++k) {
        if (placed[k]) continue;
        if (!order.empty() && adjacent(k)) {
          pick = k;
          break;
        }
        if (pick == nodes.size()) pick = k;
      }
      order.push_back(pick);
      placed[pick] = true;
    }
  }

  auto edge_relation = [&](Symbol edge, size_t src_k,
                           size_t tgt_k) -> Result<Relation> {
    auto edge_table = EdgeTable(edge);
    Relation binary =
        edge_table.ok()
            ? **edge_table
            : Relation({{"src", ValueKind::kInt}, {"tgt", ValueKind::kInt}});
    return Rename(binary, {{"src", NodeColumn(src_k)},
                           {"tgt", NodeColumn(tgt_k)}});
  };

  GOOD_ASSIGN_OR_RETURN(Relation acc, node_relation(order[0]));
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> applied;
  std::vector<bool> present(nodes.size(), false);
  present[order[0]] = true;

  // Applies every not-yet-applied constraint among present nodes.
  auto apply_edges = [&]() -> Status {
    for (size_t k = 0; k < nodes.size(); ++k) {
      if (!present[k]) continue;
      NodeId m = nodes[k];
      for (const auto& [edge, target] : pattern.OutEdges(m)) {
        size_t tk = position.at(target);
        if (!present[tk]) continue;
        auto key = std::make_tuple(m.id, edge.id, target.id);
        if (applied.contains(key)) continue;
        applied.insert(key);
        if (scheme_.IsFunctionalEdgeLabel(edge)) {
          GOOD_ASSIGN_OR_RETURN(
              acc, SelectAttrEquals(acc, FunctionalNodeColumn(k, edge),
                                    NodeColumn(tk)));
        } else {
          GOOD_ASSIGN_OR_RETURN(Relation renamed, edge_relation(edge, k, tk));
          GOOD_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, renamed));
        }
      }
    }
    return Status::OK();
  };
  GOOD_RETURN_NOT_OK(apply_edges());

  for (size_t idx = 1; idx < order.size(); ++idx) {
    size_t k = order[idx];
    NodeId m = nodes[k];
    GOOD_ASSIGN_OR_RETURN(Relation rk, node_relation(k));

    // Make the join with acc share a column: pre-join a connecting
    // multivalued edge table, or turn a connecting functional edge into
    // a column rename, before the node relation joins in.
    bool connected = false;
    bool rk_joined = false;
    // Incoming multivalued edge from a present node.
    for (const auto& [source, edge] : pattern.InEdges(m)) {
      size_t sk = position.at(source);
      if (!present[sk] || scheme_.IsFunctionalEdgeLabel(edge)) continue;
      auto key = std::make_tuple(source.id, edge.id, m.id);
      if (applied.contains(key)) continue;
      applied.insert(key);
      GOOD_ASSIGN_OR_RETURN(Relation renamed, edge_relation(edge, sk, k));
      GOOD_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, renamed));
      connected = true;
      break;
    }
    if (!connected) {
      // Outgoing multivalued edge to a present node.
      for (const auto& [edge, target] : pattern.OutEdges(m)) {
        size_t tk = position.at(target);
        if (!present[tk] || scheme_.IsFunctionalEdgeLabel(edge)) continue;
        auto key = std::make_tuple(m.id, edge.id, target.id);
        if (applied.contains(key)) continue;
        applied.insert(key);
        GOOD_ASSIGN_OR_RETURN(Relation renamed, edge_relation(edge, k, tk));
        GOOD_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, renamed));
        connected = true;
        break;
      }
    }
    if (!connected) {
      // Incoming functional edge from a present node i: rename rk's oid
      // column to $i.<edge> so the natural join equates them, then name
      // the merged column $k.
      for (const auto& [source, edge] : pattern.InEdges(m)) {
        size_t sk = position.at(source);
        if (!present[sk] || !scheme_.IsFunctionalEdgeLabel(edge)) continue;
        auto key = std::make_tuple(source.id, edge.id, m.id);
        if (applied.contains(key)) continue;
        applied.insert(key);
        GOOD_ASSIGN_OR_RETURN(
            rk, Rename(rk, {{NodeColumn(k),
                             FunctionalNodeColumn(sk, edge)}}));
        GOOD_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, rk));
        GOOD_ASSIGN_OR_RETURN(
            acc, Rename(acc, {{FunctionalNodeColumn(sk, edge),
                               NodeColumn(k)}}));
        connected = true;
        rk_joined = true;
        break;
      }
    }
    if (!connected) {
      // Outgoing functional edge to a present node i: rk's $k.<edge>
      // column renames to $i (the merged oid column of node i).
      for (const auto& [edge, target] : pattern.OutEdges(m)) {
        size_t tk = position.at(target);
        if (!present[tk] || !scheme_.IsFunctionalEdgeLabel(edge)) continue;
        auto key = std::make_tuple(m.id, edge.id, target.id);
        if (applied.contains(key)) continue;
        applied.insert(key);
        GOOD_ASSIGN_OR_RETURN(
            rk, Rename(rk, {{FunctionalNodeColumn(k, edge),
                             NodeColumn(tk)}}));
        GOOD_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, rk));
        connected = true;
        rk_joined = true;
        break;
      }
    }
    if (!rk_joined) {
      // Either a multivalued edge table already introduced $k (a shared
      // column, so this is a real join) or the component is genuinely
      // disconnected (a product).
      (void)connected;
      GOOD_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, rk));
    }
    present[k] = true;
    GOOD_RETURN_NOT_OK(apply_edges());
  }

  // Keep only the node columns.
  std::vector<std::string> columns;
  for (size_t k = 0; k < nodes.size(); ++k) columns.push_back(NodeColumn(k));
  return Project(acc, columns);
}

Result<std::vector<Matching>> RelationalBackend::FindMatchings(
    const Pattern& pattern) const {
  GOOD_ASSIGN_OR_RETURN(Relation matchings, MatchPattern(pattern));
  std::vector<NodeId> nodes = pattern.AllNodes();
  std::vector<Matching> out;
  for (const Tuple& row : matchings.SortedTuples()) {
    Matching m;
    for (size_t k = 0; k < nodes.size(); ++k) {
      m.Bind(nodes[k], NodeId{static_cast<uint32_t>(row[k]->AsInt())});
    }
    out.push_back(std::move(m));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Operations as relational updates
// ---------------------------------------------------------------------------

namespace {

Status RejectFilter(const ops::PatternOperation& op) {
  if (op.filter()) {
    return Status::Unimplemented(
        "the relational backend covers the core language; Section 4.1 "
        "match filters are not supported");
  }
  return Status::OK();
}

}  // namespace

Status RelationalBackend::Apply(const ops::NodeAddition& op) {
  GOOD_RETURN_NOT_OK(RejectFilter(op));
  const Pattern& pattern = op.source_pattern();
  // Materialize system-given printables, as the native engine does.
  for (NodeId m : pattern.AllNodes()) {
    if (pattern.HasPrintValue(m)) {
      GOOD_RETURN_NOT_OK(
          InsertPrintable(pattern.LabelOf(m), *pattern.PrintValueOf(m))
              .status());
    }
  }
  // Minimal scheme extension, then layout sync.
  GOOD_RETURN_NOT_OK(scheme_.EnsureObjectLabel(op.new_label()));
  for (const auto& [edge, node] : op.edges()) {
    GOOD_RETURN_NOT_OK(scheme_.EnsureFunctionalEdgeLabel(edge));
    GOOD_RETURN_NOT_OK(
        scheme_.EnsureTriple(op.new_label(), edge, pattern.LabelOf(node)));
  }
  GOOD_RETURN_NOT_OK(SyncLayout());

  GOOD_ASSIGN_OR_RETURN(auto matchings, FindMatchings(pattern));

  // Existing K-rows by bold-target tuple.
  std::set<std::vector<int64_t>> served;
  {
    const Relation& k_table = tables_.at(op.new_label());
    for (const Tuple& row : k_table.tuples()) {
      std::vector<int64_t> key;
      bool complete = true;
      for (const auto& [edge, node] : op.edges()) {
        (void)node;
        auto col = k_table.IndexOf(FunctionalColumn(edge));
        if (!col.ok() || !row[*col].has_value()) {
          complete = false;
          break;
        }
        key.push_back(row[*col]->AsInt());
      }
      if (complete) served.insert(std::move(key));
    }
  }
  for (const Matching& matching : matchings) {
    std::vector<int64_t> key;
    for (const auto& [edge, node] : op.edges()) {
      (void)edge;
      key.push_back(matching.At(node).id);
    }
    if (!served.insert(key).second) continue;
    GOOD_ASSIGN_OR_RETURN(int64_t oid, InsertObject(op.new_label()));
    for (size_t e = 0; e < op.edges().size(); ++e) {
      GOOD_RETURN_NOT_OK(SetFunctional(op.new_label(), oid,
                                       op.edges()[e].first, key[e]));
    }
  }
  return Status::OK();
}

Status RelationalBackend::Apply(const ops::EdgeAddition& op) {
  GOOD_RETURN_NOT_OK(RejectFilter(op));
  const Pattern& pattern = op.source_pattern();
  for (NodeId m : pattern.AllNodes()) {
    if (pattern.HasPrintValue(m)) {
      GOOD_RETURN_NOT_OK(
          InsertPrintable(pattern.LabelOf(m), *pattern.PrintValueOf(m))
              .status());
    }
  }
  for (const ops::EdgeSpec& spec : op.edges()) {
    if (spec.functional) {
      GOOD_RETURN_NOT_OK(scheme_.EnsureFunctionalEdgeLabel(spec.label));
    } else {
      GOOD_RETURN_NOT_OK(scheme_.EnsureMultivaluedEdgeLabel(spec.label));
    }
    GOOD_RETURN_NOT_OK(scheme_.EnsureTriple(pattern.LabelOf(spec.source),
                                            spec.label,
                                            pattern.LabelOf(spec.target)));
  }
  GOOD_RETURN_NOT_OK(SyncLayout());

  GOOD_ASSIGN_OR_RETURN(auto matchings, FindMatchings(pattern));
  // Gather, consistency-check, then apply (as in the native engine).
  std::set<std::tuple<int64_t, Symbol, int64_t>> to_add;
  for (const Matching& matching : matchings) {
    for (const ops::EdgeSpec& spec : op.edges()) {
      to_add.emplace(matching.At(spec.source).id, spec.label,
                     matching.At(spec.target).id);
    }
  }
  std::map<std::pair<int64_t, Symbol>, std::set<int64_t>> targets;
  for (const auto& [src, label, tgt] : to_add) {
    targets[{src, label}].insert(tgt);
  }
  for (auto& [key, target_set] : targets) {
    const auto& [src, label] = key;
    GOOD_ASSIGN_OR_RETURN(Symbol src_label, LabelOfOid(src));
    if (scheme_.IsFunctionalEdgeLabel(label)) {
      GOOD_ASSIGN_OR_RETURN(auto existing, GetFunctional(src_label, src, label));
      if (existing.has_value()) target_set.insert(*existing);
      if (target_set.size() > 1) {
        return Status::FailedPrecondition(
            "edge addition undefined: functional conflict on '" +
            SymName(label) + "'");
      }
    } else {
      const auto* edge_table = &edge_tables_.at(label);
      for (const Tuple& row : edge_table->tuples()) {
        if (row[0]->AsInt() == src) target_set.insert(row[1]->AsInt());
      }
      std::optional<Symbol> first;
      for (int64_t tgt : target_set) {
        GOOD_ASSIGN_OR_RETURN(Symbol tgt_label, LabelOfOid(tgt));
        if (!first.has_value()) {
          first = tgt_label;
        } else if (*first != tgt_label) {
          return Status::FailedPrecondition(
              "edge addition undefined: successor-label conflict on '" +
              SymName(label) + "'");
        }
      }
    }
  }
  for (const auto& [src, label, tgt] : to_add) {
    GOOD_ASSIGN_OR_RETURN(Symbol src_label, LabelOfOid(src));
    if (scheme_.IsFunctionalEdgeLabel(label)) {
      GOOD_RETURN_NOT_OK(SetFunctional(src_label, src, label, tgt));
    } else {
      GOOD_RETURN_NOT_OK(InsertMultivalued(label, src, tgt));
    }
  }
  return Status::OK();
}

Status RelationalBackend::Apply(const ops::NodeDeletion& op) {
  GOOD_RETURN_NOT_OK(RejectFilter(op));
  GOOD_ASSIGN_OR_RETURN(auto matchings, FindMatchings(op.source_pattern()));
  std::set<int64_t> doomed;
  for (const Matching& matching : matchings) {
    doomed.insert(matching.At(op.target()).id);
  }
  for (int64_t oid : doomed) {
    GOOD_ASSIGN_OR_RETURN(Symbol label, LabelOfOid(oid));
    GOOD_RETURN_NOT_OK(DeleteNode(label, oid));
  }
  return Status::OK();
}

Status RelationalBackend::Apply(const ops::EdgeDeletion& op) {
  GOOD_RETURN_NOT_OK(RejectFilter(op));
  GOOD_ASSIGN_OR_RETURN(auto matchings, FindMatchings(op.source_pattern()));
  std::set<std::tuple<int64_t, Symbol, int64_t>> doomed;
  for (const Matching& matching : matchings) {
    for (const ops::EdgeRef& ref : op.edges()) {
      doomed.emplace(matching.At(ref.source).id, ref.label,
                     matching.At(ref.target).id);
    }
  }
  for (const auto& [src, label, tgt] : doomed) {
    GOOD_ASSIGN_OR_RETURN(Symbol src_label, LabelOfOid(src));
    if (scheme_.IsFunctionalEdgeLabel(label)) {
      GOOD_ASSIGN_OR_RETURN(auto existing, GetFunctional(src_label, src, label));
      if (existing.has_value() && *existing == tgt) {
        GOOD_RETURN_NOT_OK(
            SetFunctional(src_label, src, label, std::nullopt));
      }
    } else {
      edge_tables_.at(label).Erase({Oid(src), Oid(tgt)});
    }
  }
  return Status::OK();
}

Status RelationalBackend::Apply(const ops::Abstraction& op) {
  GOOD_RETURN_NOT_OK(RejectFilter(op));
  if (!scheme_.IsMultivaluedEdgeLabel(op.grouping_edge())) {
    return Status::InvalidArgument("grouping edge must be multivalued");
  }
  GOOD_RETURN_NOT_OK(scheme_.EnsureObjectLabel(op.set_label()));
  GOOD_RETURN_NOT_OK(scheme_.EnsureMultivaluedEdgeLabel(op.member_edge()));
  GOOD_RETURN_NOT_OK(
      scheme_.EnsureTriple(op.set_label(), op.member_edge(),
                           op.source_pattern().LabelOf(op.node())));
  GOOD_RETURN_NOT_OK(SyncLayout());

  GOOD_ASSIGN_OR_RETURN(auto matchings, FindMatchings(op.source_pattern()));
  std::set<int64_t> matched;
  for (const Matching& matching : matchings) {
    matched.insert(matching.At(op.node()).id);
  }
  // β-successor sets from the grouping edge table.
  const Relation& beta = edge_tables_.at(op.grouping_edge());
  std::map<std::set<int64_t>, std::set<int64_t>> classes;
  for (int64_t oid : matched) {
    std::set<int64_t> successors;
    for (const Tuple& row : beta.tuples()) {
      if (row[0]->AsInt() == oid) successors.insert(row[1]->AsInt());
    }
    classes[std::move(successors)].insert(oid);
  }
  // Existing set objects already serving a class exactly.
  std::set<std::set<int64_t>> served;
  {
    const Relation& alpha = edge_tables_.at(op.member_edge());
    for (const Tuple& row : tables_.at(op.set_label()).tuples()) {
      int64_t k_oid = row[0]->AsInt();
      std::set<int64_t> members;
      for (const Tuple& e : alpha.tuples()) {
        if (e[0]->AsInt() == k_oid) members.insert(e[1]->AsInt());
      }
      served.insert(std::move(members));
    }
  }
  for (const auto& [beta_set, members] : classes) {
    (void)beta_set;
    if (served.contains(members)) continue;
    GOOD_ASSIGN_OR_RETURN(int64_t k_oid, InsertObject(op.set_label()));
    for (int64_t member : members) {
      GOOD_RETURN_NOT_OK(InsertMultivalued(op.member_edge(), k_oid, member));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

Result<Instance> RelationalBackend::Export() const {
  Instance out;
  std::map<int64_t, NodeId> ids;
  // Nodes first (ascending oid for determinism).
  for (const auto& [oid, label] : oid_labels_) {
    if (scheme_.IsPrintableLabel(label)) {
      const Relation& table = tables_.at(label);
      Cell value;
      for (const Tuple& row : table.tuples()) {
        if (row[0]->AsInt() == oid) {
          value = row[1];
          break;
        }
      }
      if (value.has_value()) {
        GOOD_ASSIGN_OR_RETURN(NodeId node,
                              out.AddPrintableNode(scheme_, label, *value));
        ids[oid] = node;
      } else {
        GOOD_ASSIGN_OR_RETURN(NodeId node,
                              out.AddValuelessPrintableNode(scheme_, label));
        ids[oid] = node;
      }
    } else {
      GOOD_ASSIGN_OR_RETURN(NodeId node, out.AddObjectNode(scheme_, label));
      ids[oid] = node;
    }
  }
  // Functional edges from class tables.
  for (const auto& [label, table] : tables_) {
    if (scheme_.IsPrintableLabel(label)) continue;
    for (const Tuple& row : table.tuples()) {
      NodeId src = ids.at(row[0]->AsInt());
      for (size_t c = 1; c < table.arity(); ++c) {
        if (!row[c].has_value()) continue;
        // Column name is "f:<edge>".
        Symbol edge = Sym(table.header()[c].name.substr(2));
        GOOD_RETURN_NOT_OK(
            out.AddEdge(scheme_, src, edge, ids.at(row[c]->AsInt())));
      }
    }
  }
  // Multivalued edges.
  for (const auto& [edge, table] : edge_tables_) {
    for (const Tuple& row : table.tuples()) {
      GOOD_RETURN_NOT_OK(out.AddEdge(scheme_, ids.at(row[0]->AsInt()), edge,
                                     ids.at(row[1]->AsInt())));
    }
  }
  return out;
}

}  // namespace good::relational
