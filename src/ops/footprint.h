/// \file footprint.h
/// \brief Write footprints for first-committer-wins conflict checks.
///
/// A transaction's *footprint* is the set of nodes and edges its
/// mutations touched: every node it added or killed, every edge it
/// added or removed, and — because an edge mutation changes what its
/// endpoints mean to a reader — the endpoints of those edges. The
/// footprint is derived from the undo journal the transaction already
/// keeps for rollback (graph/undo_journal.h), so collecting it costs
/// one pass over entries the transaction recorded anyway.
///
/// The server's commit pipeline uses footprints for snapshot-isolation
/// validation: a transaction built against version B conflicts with a
/// transaction that committed at version V > B iff their footprints
/// overlap — the classic first-committer-wins write-write rule. Node
/// ids are stable across instance copies (copying an Instance preserves
/// ids), so footprints computed against a session's private snapshot
/// copy compare directly against footprints the committer computed on
/// the authoritative instance.
///
/// Nodes the transaction itself *created* are excluded (along with
/// edges incident to them, which count only their pre-existing
/// endpoint): a fresh node was invisible to every concurrent snapshot,
/// so no other transaction can touch it — and fresh ids are
/// session-local (each working copy allocates the same next id), so
/// including them would make independent concurrent inserts conflict
/// spuriously.
///
/// Scheme extensions are deliberately NOT part of the footprint: every
/// scheme mutation the operations perform is a monotone, idempotent
/// Ensure (add a label, add a triple), so two transactions extending
/// the scheme serialize cleanly in either order. The `scheme_changed`
/// flag is kept for observability only.

#ifndef GOOD_OPS_FOOTPRINT_H_
#define GOOD_OPS_FOOTPRINT_H_

#include <string>
#include <unordered_set>

#include "graph/instance.h"
#include "graph/undo_journal.h"

namespace good::ops {

/// \brief The nodes and edges a transaction wrote.
struct Footprint {
  std::unordered_set<graph::NodeId> nodes;
  std::unordered_set<graph::Edge, graph::EdgeHash> edges;
  /// True iff the transaction extended the scheme (informational; see
  /// the file comment for why this does not participate in conflicts).
  bool scheme_changed = false;

  bool empty() const { return nodes.empty() && edges.empty(); }

  /// Records a node mutation.
  void AddNode(graph::NodeId node) { nodes.insert(node); }

  /// Records an edge mutation; the endpoints join the node set too,
  /// so endpoint-sharing transactions conflict even when the edges
  /// themselves differ.
  void AddEdge(graph::NodeId source, Symbol label, graph::NodeId target) {
    edges.insert(graph::Edge{source, label, target});
    nodes.insert(source);
    nodes.insert(target);
  }

  /// Folds in everything `journal` recorded.
  void AddFromJournal(const graph::UndoJournal& journal);

  /// True iff the two footprints touch a common node or edge — the
  /// first-committer-wins conflict condition.
  bool Overlaps(const Footprint& other) const;

  /// Compact rendering for logs: "nodes=12 edges=4 scheme+".
  std::string ToString() const;
};

/// Convenience: the footprint of one journaled region.
Footprint CollectFootprint(const graph::UndoJournal& journal);

}  // namespace good::ops

#endif  // GOOD_OPS_FOOTPRINT_H_
