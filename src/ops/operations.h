/// \file operations.h
/// \brief The five basic GOOD operations (Section 3 of the paper).
///
/// Each operation consists of a *source pattern* J plus a designation of
/// what to add or delete (the bold / double-outlined part of the
/// figures). Applying an operation to a database (S, I):
///  1. computes ALL matchings of J in I (against the pre-state — the
///     paper stresses this set-oriented, parallel application as the key
///     difference from graph grammars),
///  2. minimally extends the scheme S so the result pattern J' is a
///     pattern over it (NA / EA / AB only),
///  3. transforms I per the operation's declarative definition, realized
///     by the procedural algorithm of Figure 9 and its analogues.
/// All operations are deterministic up to the choice of new object ids.

#ifndef GOOD_OPS_OPERATIONS_H_
#define GOOD_OPS_OPERATIONS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"
#include "graph/instance.h"
#include "pattern/matcher.h"
#include "schema/scheme.h"

namespace good::ops {

using graph::NodeId;
using pattern::Pattern;

/// \brief A predicate over matchings — the Section 4.1 "additional
/// predicates on printable objects" extension (QBE-style condition
/// boxes, possibly invoking external functions). An operation with a
/// filter applies only to the matchings the filter accepts. The filter
/// receives the instance being matched so it can express dynamic
/// conditions (e.g. crossed-edge absence checks that must see edges
/// added by earlier fixpoint rounds, Figure 29).
///
/// Filters return Result<bool> so a filter that itself searches the
/// instance (negation filters run a backtracking extension check) can
/// surface kDeadlineExceeded/kCancelled instead of masking an interrupt
/// as "rejected". Plain predicate lambdas returning bool convert
/// implicitly — only interrupt-aware filters need to spell Result out.
using MatchFilter = std::function<Result<bool>(const pattern::Matching&,
                                               const graph::Instance&)>;

/// \brief Fixpoint evaluation strategy for the drivers that re-apply
/// additive operations to convergence (rules::RuleEngine,
/// macros::RecursiveEdgeAddition). Lives here — the lowest layer both
/// drivers share — so the macro layer need not depend on rules.
enum class EvalMode {
  /// Re-enumerate every matching of every condition in full each round.
  kNaive,
  /// Semi-naive: from a rule's second evaluation on, only enumerate
  /// matchings that bind at least one pattern node/edge into the delta
  /// of instance growth since its previous evaluation (read off the
  /// undo journal), falling back to full re-evaluation when the delta
  /// is a large fraction of the instance. Exact for the additive
  /// rule/macro workloads because NA/EA are idempotent and crossed
  /// (negated) conditions — which still see the full current database —
  /// are anti-monotone under growth: a matching rejected once stays
  /// rejected, and an accepted one already fired.
  kIncremental,
};

/// \brief Mutation counters reported by Apply.
struct ApplyStats {
  size_t matchings = 0;
  size_t nodes_added = 0;
  size_t edges_added = 0;
  size_t nodes_deleted = 0;
  size_t edges_deleted = 0;
  /// WAL append attempts that failed transiently and were retried by
  /// storage::Database::Apply before the record landed. Zero outside
  /// the storage layer.
  size_t wal_retries = 0;
  /// Matcher search-effort counters for the operation's pattern
  /// evaluation (candidates scanned, feasibility rejections, backtracks,
  /// per-depth fanout).
  pattern::MatchStats match;

  ApplyStats& operator+=(const ApplyStats& other) {
    matchings += other.matchings;
    nodes_added += other.nodes_added;
    edges_added += other.edges_added;
    nodes_deleted += other.nodes_deleted;
    edges_deleted += other.edges_deleted;
    wal_retries += other.wal_retries;
    match += other.match;
    return *this;
  }
};

/// \brief Common base of the five operations: holds the source pattern
/// and an optional matching filter (the Section 4.1 predicate
/// extension).
class PatternOperation {
 public:
  const Pattern& source_pattern() const { return pattern_; }

  /// Restricts the operation to the matchings the filter accepts.
  void set_filter(MatchFilter filter) { filter_ = std::move(filter); }
  const MatchFilter& filter() const { return filter_; }

  /// Worker threads for pattern matching and per-matching designator
  /// extraction; 0 (the default) keeps the fully serial path. Parallel
  /// application partitions work into chunks merged in chunk order, so
  /// the resulting database and ApplyStats are identical to a serial
  /// application (ApplyStats::match.workers_used aside).
  void set_num_threads(size_t num_threads) { num_threads_ = num_threads; }
  size_t num_threads() const { return num_threads_; }

  /// Minimum work-list size (depth-0 candidates for matching, matchings
  /// for extraction) before parallelism engages; see
  /// pattern::MatchOptions::parallel_threshold.
  void set_parallel_threshold(size_t threshold) {
    parallel_threshold_ = threshold;
  }
  size_t parallel_threshold() const { return parallel_threshold_; }

  /// Semi-naive delta restriction (not owned; may be null, the
  /// default): when set, pattern matching only enumerates matchings
  /// that bind at least one pattern node/edge into the delta — see
  /// pattern::MatchOptions::delta for the exact contract. The filter
  /// (negation included) still sees the full current database.
  void set_delta(const pattern::DeltaSet* delta) { delta_ = delta; }
  const pattern::DeltaSet* delta() const { return delta_; }

  /// Per-run plan store (not owned; may be null): pins compiled search
  /// plans across the stats-epoch churn of a fixpoint run — see
  /// pattern::MatchOptions::plan_pin.
  void set_plan_pin(pattern::PlanPin* pin) { plan_pin_ = pin; }
  pattern::PlanPin* plan_pin() const { return plan_pin_; }

 protected:
  explicit PatternOperation(Pattern pattern) : pattern_(std::move(pattern)) {}

  /// All matchings of the source pattern, filtered. When `stats` is
  /// non-null, matcher search-effort counters accumulate into it.
  /// Honors num_threads()/parallel_threshold(). A non-null armed
  /// `deadline` interrupts enumeration with kDeadlineExceeded /
  /// kCancelled.
  Result<std::vector<pattern::Matching>> Matchings(
      const graph::Instance& instance, pattern::MatchStats* stats = nullptr,
      const common::Deadline* deadline = nullptr) const;

  Pattern pattern_;
  MatchFilter filter_;
  size_t num_threads_ = 0;
  size_t parallel_threshold_ = pattern::kDefaultParallelThreshold;
  const pattern::DeltaSet* delta_ = nullptr;
  pattern::PlanPin* plan_pin_ = nullptr;
};

/// \brief Node addition NA[J, K, {(α1, m1), ..., (αn, mn)}]
/// (Section 3.1, procedural semantics in Figure 9).
///
/// For each matching i of J, ensures a K-labeled node with functional
/// αℓ-edges to i(mℓ) exists, creating it (with its edges) if not. The
/// "if not exists" check makes the operation establish a one-to-one
/// correspondence between *restrictions of matchings to {m1..mn}* and
/// K-nodes — four matchings that agree on all bold-edge targets yield a
/// single new node. Node additions never introduce printable nodes and
/// only introduce functional edges (paper invariants; enforced here).
class NodeAddition : public PatternOperation {
 public:
  /// `edges` are the bold (label, pattern-node) pairs; labels must be
  /// pairwise distinct.
  NodeAddition(Pattern pattern, Symbol new_label,
               std::vector<std::pair<Symbol, NodeId>> edges)
      : PatternOperation(std::move(pattern)),
        new_label_(new_label),
        edges_(std::move(edges)) {}

  /// Applies the operation all-or-nothing: on any failure (including a
  /// deadline interrupt) the scheme and instance are rolled back to
  /// their pre-call state via an ops::Transaction scope.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ApplyStats* stats = nullptr,
               const common::Deadline* deadline = nullptr) const;

  Symbol new_label() const { return new_label_; }
  const std::vector<std::pair<Symbol, NodeId>>& edges() const {
    return edges_;
  }

 private:
  Symbol new_label_;
  std::vector<std::pair<Symbol, NodeId>> edges_;
};

/// \brief One bold edge of an edge addition: add an `label`-edge from
/// the image of `source` to the image of `target`. `functional` selects
/// the label kind when the label is new to the scheme (single- vs
/// double-arrow in the figures); if the label already exists its
/// registered kind must agree.
struct EdgeSpec {
  NodeId source;
  Symbol label;
  NodeId target;
  bool functional = false;
};

/// \brief Edge addition EA[J, {(m1, α1, m1'), ...}] (Section 3.2).
///
/// For each matching i, adds edges (i(mk), αk, i(mk')). The result is
/// undefined — Apply returns FailedPrecondition and leaves the database
/// untouched — when the additions would produce distinct same-labeled
/// edges from one node that are functional or end in unequally-labeled
/// nodes (the run-time consistency check the paper prescribes, static
/// checking being undecidable).
class EdgeAddition : public PatternOperation {
 public:
  EdgeAddition(Pattern pattern, std::vector<EdgeSpec> edges)
      : PatternOperation(std::move(pattern)), edges_(std::move(edges)) {}

  /// Applies the operation all-or-nothing: on any failure (including a
  /// deadline interrupt) the scheme and instance are rolled back to
  /// their pre-call state via an ops::Transaction scope.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ApplyStats* stats = nullptr,
               const common::Deadline* deadline = nullptr) const;

  const std::vector<EdgeSpec>& edges() const { return edges_; }

 private:
  std::vector<EdgeSpec> edges_;
};

/// \brief Node deletion ND[J, m] (Section 3.3).
///
/// Removes every node i(m) over all matchings i, together with all
/// incident edges (maximal-subinstance semantics). The scheme is
/// unchanged.
class NodeDeletion : public PatternOperation {
 public:
  NodeDeletion(Pattern pattern, NodeId target)
      : PatternOperation(std::move(pattern)), target_(target) {}

  /// Applies the operation all-or-nothing: on any failure (including a
  /// deadline interrupt) the scheme and instance are rolled back to
  /// their pre-call state via an ops::Transaction scope.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ApplyStats* stats = nullptr,
               const common::Deadline* deadline = nullptr) const;

  NodeId target() const { return target_; }

 private:
  NodeId target_;
};

/// \brief One double-outlined edge of an edge deletion.
struct EdgeRef {
  NodeId source;
  Symbol label;
  NodeId target;
};

/// \brief Edge deletion ED[J, {(m1, α1, m1'), ...}] (Section 3.4).
///
/// Removes the image edges over all matchings. The referenced edges must
/// be edges of the source pattern (per the formal definition). The
/// scheme is unchanged.
class EdgeDeletion : public PatternOperation {
 public:
  EdgeDeletion(Pattern pattern, std::vector<EdgeRef> edges)
      : PatternOperation(std::move(pattern)), edges_(std::move(edges)) {}

  /// Applies the operation all-or-nothing: on any failure (including a
  /// deadline interrupt) the scheme and instance are rolled back to
  /// their pre-call state via an ops::Transaction scope.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ApplyStats* stats = nullptr,
               const common::Deadline* deadline = nullptr) const;

  const std::vector<EdgeRef>& edges() const { return edges_; }

 private:
  std::vector<EdgeRef> edges_;
};

/// \brief Abstraction AB[J, n, K, α, β] (Section 3.5).
///
/// Groups the matched nodes i(n) into equivalence classes by their
/// β-successor sets (computed in the pre-state) and ensures one
/// K-labeled node per class with multivalued α-edges to exactly the
/// class members — the duplicate eliminator that makes the nested
/// relational algebra expressible (Section 4.3). A class whose exact
/// α-neighbourhood is already served by an existing K-node is skipped,
/// which makes abstraction idempotent. Always well-defined.
class Abstraction : public PatternOperation {
 public:
  Abstraction(Pattern pattern, NodeId node, Symbol set_label,
              Symbol member_edge, Symbol grouping_edge)
      : PatternOperation(std::move(pattern)),
        node_(node),
        set_label_(set_label),
        member_edge_(member_edge),
        grouping_edge_(grouping_edge) {}

  /// Applies the operation all-or-nothing: on any failure (including a
  /// deadline interrupt) the scheme and instance are rolled back to
  /// their pre-call state via an ops::Transaction scope.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ApplyStats* stats = nullptr,
               const common::Deadline* deadline = nullptr) const;

  NodeId node() const { return node_; }
  Symbol set_label() const { return set_label_; }
  Symbol member_edge() const { return member_edge_; }
  Symbol grouping_edge() const { return grouping_edge_; }

 private:
  NodeId node_;       // n: the abstracted pattern node
  Symbol set_label_;  // K: label of the created set objects
  Symbol member_edge_;   // α: multivalued edge from set to members
  Symbol grouping_edge_; // β: multivalued property defining equality
};

}  // namespace good::ops

#endif  // GOOD_OPS_OPERATIONS_H_
