#include "ops/transaction.h"

#include <utility>

namespace good::ops {

Transaction::Transaction(schema::Scheme* scheme, graph::Instance* instance)
    : scheme_(scheme), instance_(instance) {
  if (scheme_ != nullptr) saved_scheme_ = *scheme_;
  if (instance_->journal() != nullptr) {
    // Nested scope: savepoint on the enclosing scope's journal.
    journal_ = instance_->journal();
    mark_ = journal_->Position();
  } else {
    journal_ = &owned_journal_;
    mark_ = 0;
    outermost_ = true;
    instance_->AttachJournal(journal_);
  }
}

Transaction::~Transaction() {
  if (!done_) Rollback();
}

void Transaction::Commit() {
  if (done_) return;
  done_ = true;
  if (outermost_) {
    instance_->DetachJournal();
    journal_->Clear();
  }
  // Nested commits keep their entries: the enclosing scope may still
  // roll the whole region back.
}

void Transaction::Rollback() {
  if (done_) return;
  done_ = true;
  journal_->RollbackTo(instance_, mark_);
  if (scheme_ != nullptr) *scheme_ = std::move(saved_scheme_);
  if (outermost_) instance_->DetachJournal();
}

}  // namespace good::ops
