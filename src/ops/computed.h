/// \file computed.h
/// \brief Edge additions whose target printable is computed by an
/// external function (Section 4.1's "additional predicates on printable
/// objects ... possibly using external functions" extension).
///
/// The paper's method D (Figure 23) computes the number of days elapsed
/// between two dates; pure GOOD operations cannot compute arithmetic on
/// constants, so the model delegates to system-given external functions
/// over printable domains. ComputedEdgeAddition captures exactly that:
/// for each matching, it evaluates fn over the print values of
/// designated input pattern nodes, materializes the printable node for
/// the computed constant, and adds a functional edge from the image of a
/// source pattern node to it.

#ifndef GOOD_OPS_COMPUTED_H_
#define GOOD_OPS_COMPUTED_H_

#include <functional>
#include <vector>

#include "ops/operations.h"

namespace good::ops {

/// \brief The external function: print values of the designated input
/// nodes (in declaration order) -> computed constant.
using ExternalFn =
    std::function<Result<Value>(const std::vector<Value>&)>;

/// \brief For each matching i, adds the functional edge
/// (i(source), label, printable(output_label, fn(values))) — the
/// computed printable node is materialized on demand (printables are
/// system-given). Functional consistency is checked before mutation,
/// like EdgeAddition.
class ComputedEdgeAddition : public PatternOperation {
 public:
  /// `inputs` are pattern nodes whose images must carry print values at
  /// match time. `output_domain` is the constant domain of
  /// `output_label` (used when the label is new to the scheme).
  ComputedEdgeAddition(Pattern pattern, std::vector<NodeId> inputs,
                       ExternalFn fn, NodeId source, Symbol edge_label,
                       Symbol output_label, ValueKind output_domain)
      : PatternOperation(std::move(pattern)),
        inputs_(std::move(inputs)),
        fn_(std::move(fn)),
        source_(source),
        edge_label_(edge_label),
        output_label_(output_label),
        output_domain_(output_domain) {}

  /// All-or-nothing like the basic operations: any failure (including a
  /// deadline interrupt) rolls the scheme and instance back whole.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ApplyStats* stats = nullptr,
               const common::Deadline* deadline = nullptr) const;

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const ExternalFn& fn() const { return fn_; }
  NodeId source() const { return source_; }
  Symbol edge_label() const { return edge_label_; }
  Symbol output_label() const { return output_label_; }
  ValueKind output_domain() const { return output_domain_; }

 private:
  std::vector<NodeId> inputs_;
  ExternalFn fn_;
  NodeId source_;
  Symbol edge_label_;
  Symbol output_label_;
  ValueKind output_domain_;
};

}  // namespace good::ops

#endif  // GOOD_OPS_COMPUTED_H_
