#include "ops/footprint.h"

namespace good::ops {

void Footprint::AddFromJournal(const graph::UndoJournal& journal) {
  // Nodes the journaled region itself created are excluded: they were
  // invisible to every concurrent snapshot, so nothing can conflict on
  // them — and their ids are session-local (every working copy
  // allocates the same next id), so comparing them across transactions
  // would manufacture spurious conflicts between independent inserts.
  // A kNodeAdded entry precedes every edge entry touching that node
  // (see UndoJournal::ForEachTouched), so one pass suffices.
  std::unordered_set<graph::NodeId> created;
  journal.ForEachTouched(
      [this, &created](graph::NodeId node, bool added) {
        if (added) {
          created.insert(node);
        } else if (!created.contains(node)) {
          AddNode(node);
        }
      },
      [this, &created](graph::NodeId source, Symbol label,
                       graph::NodeId target, bool /*added*/) {
        bool source_fresh = created.contains(source);
        bool target_fresh = created.contains(target);
        if (!source_fresh && !target_fresh) {
          AddEdge(source, label, target);
          return;
        }
        // An edge incident to a fresh node touches only its
        // pre-existing endpoint (the fresh one cannot be named in any
        // other transaction's footprint).
        if (!source_fresh) AddNode(source);
        if (!target_fresh) AddNode(target);
      });
}

bool Footprint::Overlaps(const Footprint& other) const {
  // Iterate the smaller set, probe the larger: overlap checks run once
  // per (committing txn, committed version) pair, so the asymmetry
  // matters when one side is a bulk load.
  const Footprint& small = nodes.size() <= other.nodes.size() ? *this : other;
  const Footprint& large = nodes.size() <= other.nodes.size() ? other : *this;
  for (graph::NodeId node : small.nodes) {
    if (large.nodes.contains(node)) return true;
  }
  // Edge overlap is implied by endpoint overlap (AddEdge inserts both
  // endpoints into `nodes`), but check explicitly so a footprint built
  // by hand from edges alone still conflicts correctly.
  const Footprint& esmall = edges.size() <= other.edges.size() ? *this : other;
  const Footprint& elarge = edges.size() <= other.edges.size() ? other : *this;
  for (const graph::Edge& edge : esmall.edges) {
    if (elarge.edges.contains(edge)) return true;
  }
  return false;
}

std::string Footprint::ToString() const {
  std::string out = "nodes=" + std::to_string(nodes.size()) +
                    " edges=" + std::to_string(edges.size());
  if (scheme_changed) out += " scheme+";
  return out;
}

Footprint CollectFootprint(const graph::UndoJournal& journal) {
  Footprint footprint;
  footprint.AddFromJournal(journal);
  return footprint;
}

}  // namespace good::ops
