#include "ops/operations.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "ops/transaction.h"

namespace good::ops {

using graph::Instance;
using pattern::Matching;
using schema::Scheme;

namespace {

/// Partition-and-merge designator extraction: runs
/// `extract(matching, &out)` for every matching. With worker threads
/// configured and a matching list at least `threshold` long, the list
/// is partitioned into chunks processed concurrently, and the
/// per-chunk outputs are concatenated in chunk order — so the returned
/// sequence is exactly what the serial loop produces, and every
/// downstream consumer (dedup maps, consistency checks, mutation loops)
/// behaves identically. Extraction only reads the matchings, so chunks
/// are trivially independent.
template <typename T, typename Extract>
std::vector<T> ExtractPerMatching(const std::vector<Matching>& matchings,
                                  size_t num_threads, size_t threshold,
                                  const Extract& extract) {
  std::vector<T> out;
  if (num_threads == 0 || matchings.size() < std::max<size_t>(threshold, 2)) {
    for (const Matching& matching : matchings) extract(matching, &out);
    return out;
  }
  const size_t workers = std::min(num_threads, matchings.size());
  // ~4 chunks per worker: slack for load balancing without fragmenting
  // the ordered merge.
  const size_t chunk_size = std::max<size_t>(
      1, (matchings.size() + workers * 4 - 1) / (workers * 4));
  const size_t num_chunks = (matchings.size() + chunk_size - 1) / chunk_size;
  std::vector<std::vector<T>> chunk_out(num_chunks);
  {
    common::ThreadPool pool(workers);
    pool.ParallelFor(num_chunks, [&](size_t worker, size_t chunk) {
      (void)worker;
      const size_t begin = chunk * chunk_size;
      const size_t end = std::min(matchings.size(), begin + chunk_size);
      for (size_t i = begin; i < end; ++i) {
        extract(matchings[i], &chunk_out[chunk]);
      }
    });
  }
  size_t total = 0;
  for (const std::vector<T>& chunk : chunk_out) total += chunk.size();
  out.reserve(total);
  for (std::vector<T>& chunk : chunk_out) {
    std::move(chunk.begin(), chunk.end(), std::back_inserter(out));
  }
  return out;
}

/// Checks that every pattern node referenced by an operation designator
/// actually belongs to the pattern.
Status RequirePatternNode(const Pattern& pattern, NodeId node,
                          const char* what) {
  if (!pattern.HasNode(node)) {
    return Status::InvalidArgument(std::string(what) +
                                   " does not refer to a node of the "
                                   "source pattern");
  }
  return Status::OK();
}

/// Printable objects are system-given: "printable nodes are
/// system-defined and need not be explicitly added by GOOD
/// transformation language operations" (Section 3.1). The additive
/// operations therefore materialize every value-carrying printable node
/// of their source pattern before matching, so that e.g. the Figure 16
/// update can attach a modified-edge to a date constant that no node in
/// the instance carries yet. (Materialization is idempotent thanks to
/// printable dedup; deletions do NOT materialize — a deletion pattern
/// naming an absent constant simply has no matchings.)
Status MaterializePrintables(const Pattern& pattern,
                             const schema::Scheme& scheme,
                             Instance* instance) {
  for (NodeId m : pattern.AllNodes()) {
    if (!pattern.HasPrintValue(m)) continue;
    GOOD_RETURN_NOT_OK(
        instance->AddPrintableNode(scheme, pattern.LabelOf(m),
                                   *pattern.PrintValueOf(m))
            .status());
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Matching>> PatternOperation::Matchings(
    const Instance& instance, pattern::MatchStats* stats,
    const common::Deadline* deadline) const {
  pattern::MatchOptions options;
  options.stats = stats;
  options.num_threads = num_threads_;
  options.parallel_threshold = parallel_threshold_;
  options.deadline = deadline;
  options.delta = delta_;
  options.plan_pin = plan_pin_;
  GOOD_ASSIGN_OR_RETURN(
      std::vector<Matching> matchings,
      pattern::Matcher(pattern_, instance, options).FindAllChecked());
  if (filter_) {
    // Explicit loop instead of erase_if: a filter can fail (deadline
    // interrupt inside a negation check), which must abort the whole
    // evaluation rather than silently drop the matching.
    std::vector<Matching> accepted;
    accepted.reserve(matchings.size());
    for (Matching& m : matchings) {
      GOOD_ASSIGN_OR_RETURN(bool keep, filter_(m, instance));
      if (keep) accepted.push_back(std::move(m));
    }
    return accepted;
  }
  return matchings;
}

// ---------------------------------------------------------------------------
// Node addition (Figure 9)
// ---------------------------------------------------------------------------

Status NodeAddition::Apply(Scheme* scheme, Instance* instance,
                           ApplyStats* stats,
                           const common::Deadline* deadline) const {
  if (deadline != nullptr) GOOD_RETURN_NOT_OK(deadline->Check());
  // -- Validation of the designator.
  if (scheme->HasLabel(new_label_) && !scheme->IsObjectLabel(new_label_)) {
    return Status::InvalidArgument(
        "node addition label '" + SymName(new_label_) +
        "' exists with a non-object kind (node additions never introduce "
        "printable nodes)");
  }
  std::unordered_set<Symbol> seen_labels;
  for (const auto& [label, node] : edges_) {
    GOOD_RETURN_NOT_OK(RequirePatternNode(pattern_, node, "bold edge target"));
    if (!seen_labels.insert(label).second) {
      return Status::InvalidArgument(
          "node addition edge labels must be pairwise distinct; '" +
          SymName(label) + "' repeats");
    }
    if (scheme->HasLabel(label) && !scheme->IsFunctionalEdgeLabel(label)) {
      return Status::InvalidArgument(
          "node addition edge label '" + SymName(label) +
          "' exists with a non-functional kind (node additions only "
          "introduce functional edges)");
    }
  }

  // -- Matchings against the pre-state (with system-given printables
  //    materialized). From here on mutations occur, so the transaction
  //    scope makes any failure roll the database back whole.
  Transaction txn(scheme, instance);
  GOOD_RETURN_NOT_OK(MaterializePrintables(pattern_, *scheme, instance));
  ApplyStats local;
  GOOD_ASSIGN_OR_RETURN(std::vector<Matching> matchings,
                        Matchings(*instance, &local.match, deadline));

  // -- Minimal scheme extension.
  GOOD_RETURN_NOT_OK(scheme->EnsureObjectLabel(new_label_));
  for (const auto& [label, node] : edges_) {
    GOOD_RETURN_NOT_OK(scheme->EnsureFunctionalEdgeLabel(label));
    GOOD_RETURN_NOT_OK(
        scheme->EnsureTriple(new_label_, label, pattern_.LabelOf(node)));
  }

  // -- Index the pre-existing K-nodes by their α-target tuples, so the
  //    "if not exists" check of Figure 9 covers them.
  std::map<std::vector<NodeId>, NodeId> by_targets;
  for (NodeId k : instance->NodesWithLabel(new_label_)) {
    std::vector<NodeId> key;
    key.reserve(edges_.size());
    bool complete = true;
    for (const auto& [label, node] : edges_) {
      (void)node;
      auto target = instance->FunctionalTarget(k, label);
      if (!target.has_value()) {
        complete = false;
        break;
      }
      key.push_back(*target);
    }
    if (complete) by_targets.emplace(std::move(key), k);
  }

  local.matchings = matchings.size();
  // Keys are extracted per matching (parallelizable); the dedup-and-
  // create phase below stays serial in matching order, so fresh nodes
  // get the same ids a serial application assigns.
  std::vector<std::vector<NodeId>> keys =
      ExtractPerMatching<std::vector<NodeId>>(
          matchings, num_threads_, parallel_threshold_,
          [&](const Matching& matching, std::vector<std::vector<NodeId>>* out) {
            std::vector<NodeId> key;
            key.reserve(edges_.size());
            for (const auto& [label, node] : edges_) {
              (void)label;
              key.push_back(matching.At(node));
            }
            out->push_back(std::move(key));
          });
  for (std::vector<NodeId>& key : keys) {
    if (by_targets.contains(key)) continue;
    GOOD_ASSIGN_OR_RETURN(NodeId fresh,
                          instance->AddObjectNode(*scheme, new_label_));
    ++local.nodes_added;
    for (size_t e = 0; e < edges_.size(); ++e) {
      GOOD_RETURN_NOT_OK(
          instance->AddEdge(*scheme, fresh, edges_[e].first, key[e]));
      ++local.edges_added;
    }
    by_targets.emplace(std::move(key), fresh);
  }
  if (stats != nullptr) *stats += local;
  txn.Commit();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Edge addition
// ---------------------------------------------------------------------------

Status EdgeAddition::Apply(Scheme* scheme, Instance* instance,
                           ApplyStats* stats,
                           const common::Deadline* deadline) const {
  if (deadline != nullptr) GOOD_RETURN_NOT_OK(deadline->Check());
  for (const EdgeSpec& spec : edges_) {
    GOOD_RETURN_NOT_OK(
        RequirePatternNode(pattern_, spec.source, "bold edge source"));
    GOOD_RETURN_NOT_OK(
        RequirePatternNode(pattern_, spec.target, "bold edge target"));
    if (scheme->HasLabel(spec.label)) {
      const bool registered_functional =
          scheme->IsFunctionalEdgeLabel(spec.label);
      if (!scheme->IsEdgeLabel(spec.label)) {
        return Status::InvalidArgument("edge addition label '" +
                                       SymName(spec.label) +
                                       "' exists with a non-edge kind");
      }
      if (registered_functional != spec.functional) {
        return Status::InvalidArgument(
            "edge addition label '" + SymName(spec.label) +
            "' kind disagrees with its registration in the scheme");
      }
    }
  }

  Transaction txn(scheme, instance);
  GOOD_RETURN_NOT_OK(MaterializePrintables(pattern_, *scheme, instance));
  ApplyStats local;
  GOOD_ASSIGN_OR_RETURN(std::vector<Matching> matchings,
                        Matchings(*instance, &local.match, deadline));

  // -- Minimal scheme extension.
  for (const EdgeSpec& spec : edges_) {
    if (spec.functional) {
      GOOD_RETURN_NOT_OK(scheme->EnsureFunctionalEdgeLabel(spec.label));
    } else {
      GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(spec.label));
    }
    GOOD_RETURN_NOT_OK(scheme->EnsureTriple(pattern_.LabelOf(spec.source),
                                            spec.label,
                                            pattern_.LabelOf(spec.target)));
  }

  // -- Gather the full edge set to add, then run the consistency check
  //    of Section 3.2 before mutating anything (atomicity). The set
  //    insertion canonicalizes order, so parallel extraction cannot
  //    change the outcome.
  std::vector<graph::Edge> extracted = ExtractPerMatching<graph::Edge>(
      matchings, num_threads_, parallel_threshold_,
      [&](const Matching& matching, std::vector<graph::Edge>* out) {
        for (const EdgeSpec& spec : edges_) {
          out->push_back(graph::Edge{matching.At(spec.source), spec.label,
                                     matching.At(spec.target)});
        }
      });
  std::set<graph::Edge> to_add(extracted.begin(), extracted.end());

  // Per (source node, label): collect distinct targets (new and old).
  std::map<std::pair<NodeId, Symbol>, std::set<NodeId>> targets;
  for (const graph::Edge& edge : to_add) {
    targets[{edge.source, edge.label}].insert(edge.target);
  }
  for (auto& [key, target_set] : targets) {
    const auto& [source, label] = key;
    for (NodeId existing : instance->OutTargets(source, label)) {
      target_set.insert(existing);
    }
    if (target_set.size() <= 1) continue;
    if (scheme->IsFunctionalEdgeLabel(label)) {
      return Status::FailedPrecondition(
          "edge addition undefined: functional label '" + SymName(label) +
          "' would leave node #" + std::to_string(source.id) +
          " towards multiple targets");
    }
    Symbol first_label = instance->LabelOf(*target_set.begin());
    for (NodeId t : target_set) {
      if (instance->LabelOf(t) != first_label) {
        return Status::FailedPrecondition(
            "edge addition undefined: '" + SymName(label) +
            "' successors of node #" + std::to_string(source.id) +
            " would have unequal labels");
      }
    }
  }

  local.matchings = matchings.size();
  for (const graph::Edge& edge : to_add) {
    if (instance->HasEdge(edge.source, edge.label, edge.target)) continue;
    GOOD_RETURN_NOT_OK(
        instance->AddEdge(*scheme, edge.source, edge.label, edge.target));
    ++local.edges_added;
  }
  if (stats != nullptr) *stats += local;
  txn.Commit();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Node deletion
// ---------------------------------------------------------------------------

Status NodeDeletion::Apply(Scheme* scheme, Instance* instance,
                           ApplyStats* stats,
                           const common::Deadline* deadline) const {
  (void)scheme;  // The scheme is unchanged by deletions.
  if (deadline != nullptr) GOOD_RETURN_NOT_OK(deadline->Check());
  GOOD_RETURN_NOT_OK(RequirePatternNode(pattern_, target_, "deleted node"));

  // Deletions never touch the scheme, so the scope skips its snapshot.
  Transaction txn(nullptr, instance);
  ApplyStats local;
  GOOD_ASSIGN_OR_RETURN(std::vector<Matching> matchings,
                        Matchings(*instance, &local.match, deadline));
  std::vector<NodeId> images = ExtractPerMatching<NodeId>(
      matchings, num_threads_, parallel_threshold_,
      [&](const Matching& matching, std::vector<NodeId>* out) {
        out->push_back(matching.At(target_));
      });
  std::set<NodeId> doomed(images.begin(), images.end());

  local.matchings = matchings.size();
  for (NodeId node : doomed) {
    // A self-loop appears in both OutEdges and InEdges but is one edge;
    // count it once.
    size_t incident =
        instance->OutEdges(node).size() + instance->InEdges(node).size();
    for (const auto& [label, target] : instance->OutEdges(node)) {
      (void)label;
      if (target == node) --incident;
    }
    GOOD_RETURN_NOT_OK(instance->RemoveNode(node));
    ++local.nodes_deleted;
    local.edges_deleted += incident;
  }
  if (stats != nullptr) *stats += local;
  txn.Commit();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Edge deletion
// ---------------------------------------------------------------------------

Status EdgeDeletion::Apply(Scheme* scheme, Instance* instance,
                           ApplyStats* stats,
                           const common::Deadline* deadline) const {
  (void)scheme;
  if (deadline != nullptr) GOOD_RETURN_NOT_OK(deadline->Check());
  for (const EdgeRef& ref : edges_) {
    GOOD_RETURN_NOT_OK(
        RequirePatternNode(pattern_, ref.source, "deleted edge source"));
    GOOD_RETURN_NOT_OK(
        RequirePatternNode(pattern_, ref.target, "deleted edge target"));
    // The formal definition requires the deleted edges to be edges of
    // the source pattern (double-outlined edges are drawn inside it).
    if (!pattern_.HasEdge(ref.source, ref.label, ref.target)) {
      return Status::InvalidArgument(
          "edge deletion designator (" + SymName(ref.label) +
          ") is not an edge of the source pattern");
    }
  }

  Transaction txn(nullptr, instance);
  ApplyStats local;
  GOOD_ASSIGN_OR_RETURN(std::vector<Matching> matchings,
                        Matchings(*instance, &local.match, deadline));
  std::vector<graph::Edge> extracted = ExtractPerMatching<graph::Edge>(
      matchings, num_threads_, parallel_threshold_,
      [&](const Matching& matching, std::vector<graph::Edge>* out) {
        for (const EdgeRef& ref : edges_) {
          out->push_back(graph::Edge{matching.At(ref.source), ref.label,
                                     matching.At(ref.target)});
        }
      });
  std::set<graph::Edge> doomed(extracted.begin(), extracted.end());

  local.matchings = matchings.size();
  for (const graph::Edge& edge : doomed) {
    GOOD_RETURN_NOT_OK(
        instance->RemoveEdge(edge.source, edge.label, edge.target));
    ++local.edges_deleted;
  }
  if (stats != nullptr) *stats += local;
  txn.Commit();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Abstraction
// ---------------------------------------------------------------------------

Status Abstraction::Apply(Scheme* scheme, Instance* instance,
                          ApplyStats* stats,
                          const common::Deadline* deadline) const {
  if (deadline != nullptr) GOOD_RETURN_NOT_OK(deadline->Check());
  GOOD_RETURN_NOT_OK(RequirePatternNode(pattern_, node_, "abstracted node"));
  if (scheme->HasLabel(set_label_) && !scheme->IsObjectLabel(set_label_)) {
    return Status::InvalidArgument("abstraction set label '" +
                                   SymName(set_label_) +
                                   "' exists with a non-object kind");
  }
  if (scheme->HasLabel(member_edge_) &&
      !scheme->IsMultivaluedEdgeLabel(member_edge_)) {
    return Status::InvalidArgument("abstraction member edge '" +
                                   SymName(member_edge_) +
                                   "' exists with a non-multivalued kind");
  }
  if (!scheme->IsMultivaluedEdgeLabel(grouping_edge_)) {
    return Status::InvalidArgument(
        "abstraction grouping edge '" + SymName(grouping_edge_) +
        "' must be a multivalued edge label of the scheme");
  }

  Transaction txn(scheme, instance);
  GOOD_RETURN_NOT_OK(MaterializePrintables(pattern_, *scheme, instance));
  ApplyStats local;
  GOOD_ASSIGN_OR_RETURN(std::vector<Matching> matchings,
                        Matchings(*instance, &local.match, deadline));

  // -- Minimal scheme extension.
  GOOD_RETURN_NOT_OK(scheme->EnsureObjectLabel(set_label_));
  GOOD_RETURN_NOT_OK(scheme->EnsureMultivaluedEdgeLabel(member_edge_));
  GOOD_RETURN_NOT_OK(
      scheme->EnsureTriple(set_label_, member_edge_, pattern_.LabelOf(node_)));

  // -- Group the distinct matched nodes by β-successor set (pre-state).
  std::vector<NodeId> images = ExtractPerMatching<NodeId>(
      matchings, num_threads_, parallel_threshold_,
      [&](const Matching& matching, std::vector<NodeId>* out) {
        out->push_back(matching.At(node_));
      });
  std::set<NodeId> matched(images.begin(), images.end());
  std::map<std::set<NodeId>, std::set<NodeId>> classes;  // β-set -> members
  for (NodeId m : matched) {
    std::vector<NodeId> targets = instance->OutTargets(m, grouping_edge_);
    classes[std::set<NodeId>(targets.begin(), targets.end())].insert(m);
  }

  // -- Existing K-nodes already serving a class exactly make the
  //    operation idempotent.
  std::set<std::set<NodeId>> served;
  for (NodeId k : instance->NodesWithLabel(set_label_)) {
    std::vector<NodeId> members = instance->OutTargets(k, member_edge_);
    served.insert(std::set<NodeId>(members.begin(), members.end()));
  }

  local.matchings = matchings.size();
  for (const auto& [beta_set, members] : classes) {
    (void)beta_set;
    if (served.contains(members)) continue;
    GOOD_ASSIGN_OR_RETURN(NodeId fresh,
                          instance->AddObjectNode(*scheme, set_label_));
    ++local.nodes_added;
    for (NodeId member : members) {
      GOOD_RETURN_NOT_OK(
          instance->AddEdge(*scheme, fresh, member_edge_, member));
      ++local.edges_added;
    }
  }
  if (stats != nullptr) *stats += local;
  txn.Commit();
  return Status::OK();
}

}  // namespace good::ops
