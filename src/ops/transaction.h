/// \file transaction.h
/// \brief RAII transaction scopes over (scheme, instance) pairs.
///
/// A Transaction makes a region of mutations all-or-nothing: construct
/// it before mutating, Commit() on success, and let early returns fall
/// through — the destructor rolls back everything the scope recorded.
/// Instance mutations are undone exactly through a graph::UndoJournal
/// (see graph/undo_journal.h); scheme mutations are undone by restoring
/// a snapshot copy taken at scope entry (schemes are tiny — a handful
/// of label maps — so a copy costs far less than the matching work any
/// operation performs).
///
/// Scopes nest as savepoints: the outermost Transaction attaches its
/// own journal to the instance, and inner scopes piggyback on the
/// attached journal, remembering its length at entry. An inner rollback
/// undoes only the inner suffix; an inner *commit* deliberately keeps
/// the entries, so an outer rollback can still undo the whole region —
/// exactly the semantics a failed method call needs when some body
/// operations already succeeded.
///
/// Used by every ops::*::Apply (a failed operation leaves the database
/// untouched), by method::Executor (a failed program or method call
/// rolls back whole), and by rules::RuleEngine (a failed round rolls
/// back whole).

#ifndef GOOD_OPS_TRANSACTION_H_
#define GOOD_OPS_TRANSACTION_H_

#include "graph/instance.h"
#include "graph/undo_journal.h"
#include "schema/scheme.h"

namespace good::ops {

/// \brief A rollback scope over one instance and (optionally) its
/// scheme. Not copyable, not movable; stack-allocate it.
class Transaction {
 public:
  /// Starts a scope. `scheme` may be nullptr when the region cannot
  /// mutate the scheme (deletions), skipping the snapshot copy.
  Transaction(schema::Scheme* scheme, graph::Instance* instance);

  /// Rolls back unless Commit() was called.
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Accepts the scope's mutations. The outermost scope detaches and
  /// clears the journal; a nested scope keeps its entries so the
  /// enclosing scope can still roll the whole region back.
  void Commit();

  /// Undoes the scope's mutations (instance exactly, scheme via the
  /// entry snapshot) immediately. Idempotent with ~Transaction.
  void Rollback();

  /// True while neither Commit() nor Rollback() has run.
  bool active() const { return !done_; }

  /// The journal recording this scope's mutations (the enclosing
  /// scope's journal when nested). Valid while the scope is active;
  /// used to collect the region's write footprint (ops/footprint.h)
  /// before Commit() clears an outermost journal.
  const graph::UndoJournal& journal() const { return *journal_; }
  /// The journal length at scope entry — entries from here on are this
  /// scope's own mutations.
  graph::UndoJournal::Mark mark() const { return mark_; }

 private:
  schema::Scheme* scheme_;
  graph::Instance* instance_;
  schema::Scheme saved_scheme_;
  graph::UndoJournal owned_journal_;
  graph::UndoJournal* journal_;
  graph::UndoJournal::Mark mark_ = 0;
  bool outermost_ = false;
  bool done_ = false;
};

}  // namespace good::ops

#endif  // GOOD_OPS_TRANSACTION_H_
