#include "ops/computed.h"

#include <map>
#include <set>

#include "ops/transaction.h"

namespace good::ops {

using graph::Instance;
using graph::NodeId;
using pattern::Matching;
using schema::Scheme;

Status ComputedEdgeAddition::Apply(Scheme* scheme, Instance* instance,
                                   ApplyStats* stats,
                                   const common::Deadline* deadline) const {
  if (deadline != nullptr) GOOD_RETURN_NOT_OK(deadline->Check());
  if (!pattern_.HasNode(source_)) {
    return Status::InvalidArgument(
        "computed edge source is not a node of the source pattern");
  }
  for (NodeId input : inputs_) {
    if (!pattern_.HasNode(input)) {
      return Status::InvalidArgument(
          "computed edge input is not a node of the source pattern");
    }
  }
  if (scheme->HasLabel(edge_label_) &&
      !scheme->IsFunctionalEdgeLabel(edge_label_)) {
    return Status::InvalidArgument(
        "computed edge label '" + SymName(edge_label_) +
        "' exists with a non-functional kind");
  }

  Transaction txn(scheme, instance);
  GOOD_ASSIGN_OR_RETURN(std::vector<Matching> matchings,
                        Matchings(*instance, nullptr, deadline));

  // -- Minimal scheme extension.
  GOOD_RETURN_NOT_OK(
      scheme->EnsurePrintableLabel(output_label_, output_domain_));
  GOOD_RETURN_NOT_OK(scheme->EnsureFunctionalEdgeLabel(edge_label_));
  GOOD_RETURN_NOT_OK(scheme->EnsureTriple(pattern_.LabelOf(source_),
                                          edge_label_, output_label_));

  // -- Evaluate fn for every matching, then consistency-check before
  //    mutating (atomicity, as in EdgeAddition).
  std::map<NodeId, std::set<Value>> computed;  // source node -> values
  for (const Matching& matching : matchings) {
    std::vector<Value> args;
    args.reserve(inputs_.size());
    for (NodeId input : inputs_) {
      NodeId image = matching.At(input);
      const auto& value = instance->PrintValueOf(image);
      if (!value.has_value()) {
        return Status::FailedPrecondition(
            "computed edge input node #" + std::to_string(image.id) +
            " carries no print value");
      }
      args.push_back(*value);
    }
    GOOD_ASSIGN_OR_RETURN(Value out, fn_(args));
    if (out.kind() != output_domain_) {
      return Status::Internal(
          "external function produced a value outside the declared domain");
    }
    computed[matching.At(source_)].insert(std::move(out));
  }
  for (const auto& [source, values] : computed) {
    size_t distinct = values.size();
    auto existing = instance->FunctionalTarget(source, edge_label_);
    if (existing.has_value()) {
      const auto& existing_value = instance->PrintValueOf(*existing);
      if (!existing_value.has_value() || !values.contains(*existing_value)) {
        ++distinct;
      }
    }
    if (distinct > 1) {
      return Status::FailedPrecondition(
          "computed edge addition undefined: functional label '" +
          SymName(edge_label_) + "' would leave node #" +
          std::to_string(source.id) + " towards multiple computed values");
    }
  }

  ApplyStats local;
  local.matchings = matchings.size();
  for (const auto& [source, values] : computed) {
    for (const Value& value : values) {
      GOOD_ASSIGN_OR_RETURN(
          NodeId target,
          instance->AddPrintableNode(*scheme, output_label_, value));
      if (instance->HasEdge(source, edge_label_, target)) continue;
      GOOD_RETURN_NOT_OK(
          instance->AddEdge(*scheme, source, edge_label_, target));
      ++local.edges_added;
    }
  }
  if (stats != nullptr) *stats += local;
  txn.Commit();
  return Status::OK();
}

}  // namespace good::ops
