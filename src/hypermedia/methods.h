/// \file methods.h
/// \brief The paper's example methods (Figures 20-25) as reusable
/// definitions over the hyper-media scheme.

#ifndef GOOD_HYPERMEDIA_METHODS_H_
#define GOOD_HYPERMEDIA_METHODS_H_

#include "method/method.h"
#include "schema/scheme.h"

namespace good::hypermedia {

/// Figure 20: method Update(parameter: Date) on Info — replaces the
/// receiver's modified date with the parameter.
Result<method::Method> MakeUpdateMethod(const schema::Scheme& scheme);

/// Figure 21: a call updating every info named `name` to `new_date`.
Result<method::MethodCallOp> MakeUpdateCall(const schema::Scheme& scheme,
                                            std::string_view name,
                                            Date new_date);

/// Figure 22: the recursive Remove-Old-Versions method on Info.
Result<method::Method> MakeRemoveOldVersionsMethod(
    const schema::Scheme& scheme);

/// Figure 23: method D(old: Date) on Date — leaves an Elapsed node with
/// olddate/newdate/diff (days) edges; the Elapsed sub-scheme is D's
/// interface.
Result<method::Method> MakeDMethod(const schema::Scheme& scheme);

/// Figures 24-25: method E on Info — attaches days-unmod =
/// (modified - created) via a call to D; its interface filters the
/// Elapsed temporaries.
Result<method::Method> MakeEMethod(const schema::Scheme& scheme);

}  // namespace good::hypermedia

#endif  // GOOD_HYPERMEDIA_METHODS_H_
