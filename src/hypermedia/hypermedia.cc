#include "hypermedia/hypermedia.h"

#include "pattern/builder.h"

namespace good::hypermedia {

using graph::NodeId;
using pattern::GraphBuilder;
using schema::Scheme;

const Labels& Labels::Get() {
  static const Labels* labels = [] {
    auto* l = new Labels();
    l->info = Sym("Info");
    l->version = Sym("Version");
    l->reference = Sym("Reference");
    l->data = Sym("Data");
    l->comment = Sym("Comment");
    l->sound = Sym("Sound");
    l->text = Sym("Text");
    l->graphics = Sym("Graphics");
    l->date = Sym("Date");
    l->string = Sym("String");
    l->number = Sym("Number");
    l->bitstream = Sym("Bitstream");
    l->longstring = Sym("Longstring");
    l->bitmap = Sym("Bitmap");
    l->created = Sym("created");
    l->modified = Sym("modified");
    l->name = Sym("name");
    l->comment_edge = Sym("comment");
    l->is = Sym("is");
    l->new_edge = Sym("new");
    l->old_edge = Sym("old");
    l->isa = Sym("isa");
    l->width = Sym("width");
    l->height = Sym("height");
    l->frequency = Sym("frequency");
    l->num_chars = Sym("#chars");
    l->num_words = Sym("#words");
    l->data_edge = Sym("data");
    l->links_to = Sym("links-to");
    l->in = Sym("in");
    return l;
  }();
  return *labels;
}

Result<Scheme> BuildScheme() {
  const Labels& l = Labels::Get();
  Scheme s;
  // Object classes (rectangles in Figure 1).
  for (Symbol label : {l.info, l.version, l.reference, l.data, l.comment,
                       l.sound, l.text, l.graphics}) {
    GOOD_RETURN_NOT_OK(s.AddObjectLabel(label));
  }
  // Printable classes (ovals in Figure 1) with their constant domains.
  GOOD_RETURN_NOT_OK(s.AddPrintableLabel(l.date, ValueKind::kDate));
  GOOD_RETURN_NOT_OK(s.AddPrintableLabel(l.string, ValueKind::kString));
  GOOD_RETURN_NOT_OK(s.AddPrintableLabel(l.number, ValueKind::kInt));
  GOOD_RETURN_NOT_OK(s.AddPrintableLabel(l.bitstream, ValueKind::kBytes));
  GOOD_RETURN_NOT_OK(s.AddPrintableLabel(l.longstring, ValueKind::kString));
  GOOD_RETURN_NOT_OK(s.AddPrintableLabel(l.bitmap, ValueKind::kBytes));
  // Edge labels.
  for (Symbol label :
       {l.created, l.modified, l.name, l.comment_edge, l.is, l.new_edge,
        l.old_edge, l.isa, l.width, l.height, l.frequency, l.num_chars,
        l.num_words, l.data_edge}) {
    GOOD_RETURN_NOT_OK(s.AddFunctionalEdgeLabel(label));
  }
  GOOD_RETURN_NOT_OK(s.AddMultivaluedEdgeLabel(l.links_to));
  GOOD_RETURN_NOT_OK(s.AddMultivaluedEdgeLabel(l.in));
  // The edge relation P, following Figure 1.
  GOOD_RETURN_NOT_OK(s.AddTriple(l.info, l.created, l.date));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.info, l.modified, l.date));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.info, l.name, l.string));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.info, l.comment_edge, l.comment));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.info, l.links_to, l.info));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.version, l.new_edge, l.info));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.version, l.old_edge, l.info));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.comment, l.is, l.string));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.comment, l.is, l.number));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.reference, l.isa, l.info));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.reference, l.in, l.info));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.data, l.isa, l.info));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.sound, l.isa, l.data));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.sound, l.data_edge, l.bitstream));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.sound, l.frequency, l.number));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.text, l.isa, l.data));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.text, l.data_edge, l.longstring));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.text, l.num_chars, l.number));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.text, l.num_words, l.number));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.graphics, l.isa, l.data));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.graphics, l.data_edge, l.bitmap));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.graphics, l.width, l.number));
  GOOD_RETURN_NOT_OK(s.AddTriple(l.graphics, l.height, l.number));
  // Section 4.2: mark the isa triples as subclass edges.
  GOOD_RETURN_NOT_OK(s.MarkIsa(l.reference, l.isa, l.info));
  GOOD_RETURN_NOT_OK(s.MarkIsa(l.data, l.isa, l.info));
  GOOD_RETURN_NOT_OK(s.MarkIsa(l.sound, l.isa, l.data));
  GOOD_RETURN_NOT_OK(s.MarkIsa(l.text, l.isa, l.data));
  GOOD_RETURN_NOT_OK(s.MarkIsa(l.graphics, l.isa, l.data));
  return s;
}

namespace {

Value D(int year, int month, int day) {
  return Value(Date{year, month, day});
}
Value S(std::string_view text) { return Value(std::string(text)); }
Value N(int64_t number) { return Value(number); }
Value B(std::initializer_list<uint8_t> bytes) { return Value(Bytes(bytes)); }

const Value kJan12 = D(1990, 1, 12);
const Value kJan14 = D(1990, 1, 14);

}  // namespace

Result<HyperMediaInstance> BuildInstance(const Scheme& scheme) {
  const Labels& l = Labels::Get();
  graph::Instance g;
  InstanceNodes n;

  auto obj = [&](Symbol label) -> Result<NodeId> {
    return g.AddObjectNode(scheme, label);
  };
  auto pr = [&](Symbol label, Value v) -> Result<NodeId> {
    return g.AddPrintableNode(scheme, label, std::move(v));
  };
  auto edge = [&](NodeId a, Symbol label, NodeId b) -> Status {
    return g.AddEdge(scheme, a, label, b);
  };

  // --- Figure 2: the document-level structure. ---
  GOOD_ASSIGN_OR_RETURN(n.music_history, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.rock_new, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.rock_old, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.classical, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.jazz, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.pinkfloyd, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.doors, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.beatles, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.mozart, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.version, obj(l.version));
  GOOD_ASSIGN_OR_RETURN(n.reference, obj(l.reference));
  GOOD_ASSIGN_OR_RETURN(n.music_comment, obj(l.comment));

  GOOD_ASSIGN_OR_RETURN(NodeId jan12, pr(l.date, kJan12));
  GOOD_ASSIGN_OR_RETURN(NodeId jan14, pr(l.date, kJan14));

  // Music History: created Jan 12, modified Jan 14, comment by Jones,
  // linked to the (new) Rock, Classical Music and Jazz documents.
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.modified, jan14));
  GOOD_ASSIGN_OR_RETURN(NodeId mh_name, pr(l.string, S("Music History")));
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.name, mh_name));
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.comment_edge, n.music_comment));
  GOOD_ASSIGN_OR_RETURN(NodeId jones, pr(l.string, S("Author: Jones")));
  GOOD_RETURN_NOT_OK(edge(n.music_comment, l.is, jones));
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.links_to, n.rock_new));
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.links_to, n.classical));
  GOOD_RETURN_NOT_OK(edge(n.music_history, l.links_to, n.jazz));

  // The two Rock versions and the Version node between them.
  GOOD_ASSIGN_OR_RETURN(NodeId rock_name, pr(l.string, S("Rock")));
  GOOD_RETURN_NOT_OK(edge(n.rock_new, l.created, jan14));
  GOOD_RETURN_NOT_OK(edge(n.rock_new, l.name, rock_name));
  GOOD_RETURN_NOT_OK(edge(n.rock_old, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.rock_old, l.name, rock_name));
  GOOD_RETURN_NOT_OK(edge(n.version, l.new_edge, n.rock_new));
  GOOD_RETURN_NOT_OK(edge(n.version, l.old_edge, n.rock_old));
  // Both versions preserve the link to The Doors; the new version adds
  // Pinkfloyd where the old one had The Beatles.
  GOOD_RETURN_NOT_OK(edge(n.rock_new, l.links_to, n.pinkfloyd));
  GOOD_RETURN_NOT_OK(edge(n.rock_new, l.links_to, n.doors));
  GOOD_RETURN_NOT_OK(edge(n.rock_old, l.links_to, n.doors));
  GOOD_RETURN_NOT_OK(edge(n.rock_old, l.links_to, n.beatles));

  // Classical Music -> Mozart; Jazz -> The Beatles (which the Reference
  // node records as a reference occurring in Jazz).
  GOOD_ASSIGN_OR_RETURN(NodeId cm_name, pr(l.string, S("Classical Music")));
  GOOD_RETURN_NOT_OK(edge(n.classical, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.classical, l.name, cm_name));
  GOOD_RETURN_NOT_OK(edge(n.classical, l.links_to, n.mozart));
  GOOD_ASSIGN_OR_RETURN(NodeId jazz_name, pr(l.string, S("Jazz")));
  GOOD_RETURN_NOT_OK(edge(n.jazz, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.jazz, l.name, jazz_name));
  GOOD_RETURN_NOT_OK(edge(n.jazz, l.links_to, n.beatles));
  GOOD_RETURN_NOT_OK(edge(n.reference, l.isa, n.beatles));
  GOOD_RETURN_NOT_OK(edge(n.reference, l.in, n.jazz));

  // Leaf documents. The Doors deliberately has no comment (incomplete
  // information is allowed); Mozart only links from Classical Music.
  GOOD_ASSIGN_OR_RETURN(NodeId pf_name, pr(l.string, S("Pinkfloyd")));
  GOOD_RETURN_NOT_OK(edge(n.pinkfloyd, l.created, jan14));
  GOOD_RETURN_NOT_OK(edge(n.pinkfloyd, l.name, pf_name));
  GOOD_ASSIGN_OR_RETURN(NodeId doors_name, pr(l.string, S("The Doors")));
  GOOD_RETURN_NOT_OK(edge(n.doors, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.doors, l.name, doors_name));
  GOOD_ASSIGN_OR_RETURN(NodeId beatles_name, pr(l.string, S("The Beatles")));
  GOOD_RETURN_NOT_OK(edge(n.beatles, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.beatles, l.name, beatles_name));
  GOOD_ASSIGN_OR_RETURN(NodeId mozart_name, pr(l.string, S("Mozart")));
  GOOD_RETURN_NOT_OK(edge(n.mozart, l.created, jan12));
  GOOD_RETURN_NOT_OK(edge(n.mozart, l.name, mozart_name));

  // --- Figure 3: the data nodes inside Pinkfloyd (node "1"). ---
  GOOD_ASSIGN_OR_RETURN(n.pf_info_sound, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.pf_info_text, obj(l.info));
  GOOD_RETURN_NOT_OK(edge(n.pinkfloyd, l.links_to, n.pf_info_sound));
  GOOD_RETURN_NOT_OK(edge(n.pinkfloyd, l.links_to, n.pf_info_text));
  GOOD_ASSIGN_OR_RETURN(n.pf_data_sound, obj(l.data));
  GOOD_ASSIGN_OR_RETURN(n.pf_data_text, obj(l.data));
  GOOD_RETURN_NOT_OK(edge(n.pf_data_sound, l.isa, n.pf_info_sound));
  GOOD_RETURN_NOT_OK(edge(n.pf_data_text, l.isa, n.pf_info_text));
  GOOD_ASSIGN_OR_RETURN(n.pf_sound, obj(l.sound));
  GOOD_RETURN_NOT_OK(edge(n.pf_sound, l.isa, n.pf_data_sound));
  GOOD_ASSIGN_OR_RETURN(NodeId freq, pr(l.number, N(1000)));
  GOOD_RETURN_NOT_OK(edge(n.pf_sound, l.frequency, freq));
  GOOD_ASSIGN_OR_RETURN(NodeId pf_stream,
                        pr(l.bitstream, B({0x4D, 0x7})));  // 010011010111
  GOOD_RETURN_NOT_OK(edge(n.pf_sound, l.data_edge, pf_stream));
  GOOD_ASSIGN_OR_RETURN(n.pf_text, obj(l.text));
  GOOD_RETURN_NOT_OK(edge(n.pf_text, l.isa, n.pf_data_text));
  GOOD_ASSIGN_OR_RETURN(NodeId pf_words, pr(l.number, N(15000)));
  GOOD_RETURN_NOT_OK(edge(n.pf_text, l.num_words, pf_words));
  GOOD_ASSIGN_OR_RETURN(NodeId pf_long,
                        pr(l.longstring, S("Pinkfloyd was created...")));
  GOOD_RETURN_NOT_OK(edge(n.pf_text, l.data_edge, pf_long));

  // --- Figure 3: the data nodes inside The Doors (node "2"). ---
  GOOD_ASSIGN_OR_RETURN(n.dr_info_graphics, obj(l.info));
  GOOD_ASSIGN_OR_RETURN(n.dr_info_text, obj(l.info));
  GOOD_RETURN_NOT_OK(edge(n.doors, l.links_to, n.dr_info_graphics));
  GOOD_RETURN_NOT_OK(edge(n.doors, l.links_to, n.dr_info_text));
  GOOD_ASSIGN_OR_RETURN(n.dr_data_graphics, obj(l.data));
  GOOD_ASSIGN_OR_RETURN(n.dr_data_text, obj(l.data));
  GOOD_RETURN_NOT_OK(edge(n.dr_data_graphics, l.isa, n.dr_info_graphics));
  GOOD_RETURN_NOT_OK(edge(n.dr_data_text, l.isa, n.dr_info_text));
  GOOD_ASSIGN_OR_RETURN(n.dr_graphics, obj(l.graphics));
  GOOD_RETURN_NOT_OK(edge(n.dr_graphics, l.isa, n.dr_data_graphics));
  GOOD_ASSIGN_OR_RETURN(NodeId dr_width, pr(l.number, N(64)));
  GOOD_RETURN_NOT_OK(edge(n.dr_graphics, l.width, dr_width));
  GOOD_ASSIGN_OR_RETURN(NodeId dr_height, pr(l.number, N(48)));
  GOOD_RETURN_NOT_OK(edge(n.dr_graphics, l.height, dr_height));
  GOOD_ASSIGN_OR_RETURN(NodeId dr_map, pr(l.bitmap, B({0xB1})));  // 010110001
  GOOD_RETURN_NOT_OK(edge(n.dr_graphics, l.data_edge, dr_map));
  GOOD_ASSIGN_OR_RETURN(n.dr_text, obj(l.text));
  GOOD_RETURN_NOT_OK(edge(n.dr_text, l.isa, n.dr_data_text));
  GOOD_ASSIGN_OR_RETURN(NodeId dr_words, pr(l.number, N(2000)));
  GOOD_RETURN_NOT_OK(edge(n.dr_text, l.num_words, dr_words));
  GOOD_ASSIGN_OR_RETURN(NodeId dr_long,
                        pr(l.longstring, S("The Doors are a...")));
  GOOD_RETURN_NOT_OK(edge(n.dr_text, l.data_edge, dr_long));

  GOOD_RETURN_NOT_OK(g.Validate(scheme));
  return HyperMediaInstance{std::move(g), n};
}

Result<graph::Instance> BuildVersionInstance(const Scheme& scheme) {
  const Labels& l = Labels::Get();
  graph::Instance g;
  NodeId i[6];
  for (int k = 1; k <= 5; ++k) {
    GOOD_ASSIGN_OR_RETURN(i[k], g.AddObjectNode(scheme, l.info));
  }
  GOOD_ASSIGN_OR_RETURN(NodeId x, g.AddObjectNode(scheme, l.info));
  GOOD_ASSIGN_OR_RETURN(NodeId y, g.AddObjectNode(scheme, l.info));
  GOOD_ASSIGN_OR_RETURN(NodeId z, g.AddObjectNode(scheme, l.info));
  for (int k = 1; k <= 4; ++k) {
    GOOD_ASSIGN_OR_RETURN(NodeId v, g.AddObjectNode(scheme, l.version));
    GOOD_RETURN_NOT_OK(g.AddEdge(scheme, v, l.new_edge, i[k]));
    GOOD_RETURN_NOT_OK(g.AddEdge(scheme, v, l.old_edge, i[k + 1]));
  }
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[1], l.links_to, x));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[1], l.links_to, y));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[2], l.links_to, x));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[2], l.links_to, y));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[3], l.links_to, y));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[4], l.links_to, y));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[5], l.links_to, y));
  GOOD_RETURN_NOT_OK(g.AddEdge(scheme, i[5], l.links_to, z));
  GOOD_RETURN_NOT_OK(g.Validate(scheme));
  return g;
}

// ---------------------------------------------------------------------------
// Figure operations
// ---------------------------------------------------------------------------

Result<Fig4> Fig4Pattern(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId upper = b.Object("Info");
  NodeId lower = b.Object("Info");
  NodeId date = b.Printable("Date", kJan14);
  NodeId name = b.Printable("String", S("Rock"));
  b.Edge(upper, "created", date)
      .Edge(upper, "name", name)
      .Edge(upper, "links-to", lower);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return Fig4{std::move(p), upper, lower};
}

Result<ops::NodeAddition> Fig6NodeAddition(const Scheme& scheme) {
  GOOD_ASSIGN_OR_RETURN(Fig4 fig4, Fig4Pattern(scheme));
  return ops::NodeAddition(std::move(fig4.pattern), Sym("Rock"),
                           {{Sym("tagged-to"), fig4.lower_info}});
}

Result<ops::NodeAddition> Fig8NodeAddition(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId upper = b.Object("Info");
  NodeId lower = b.Object("Info");
  NodeId name = b.Printable("String", S("Rock"));
  NodeId parent_date = b.Printable("Date");  // Valueless wildcard.
  NodeId child_date = b.Printable("Date");
  b.Edge(upper, "name", name)
      .Edge(upper, "created", parent_date)
      .Edge(upper, "links-to", lower)
      .Edge(lower, "created", child_date);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return ops::NodeAddition(
      std::move(p), Sym("Pair"),
      {{Sym("parent"), parent_date}, {Sym("child"), child_date}});
}

Result<ops::EdgeAddition> Fig10EdgeAddition(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId data = b.Object("Data");
  NodeId linked = b.Object("Info");
  NodeId pf = b.Object("Info");
  NodeId date = b.Printable("Date", kJan14);
  NodeId name = b.Printable("String", S("Pinkfloyd"));
  b.Edge(data, "isa", linked)
      .Edge(pf, "links-to", linked)
      .Edge(pf, "created", date)
      .Edge(pf, "name", name);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return ops::EdgeAddition(
      std::move(p),
      {ops::EdgeSpec{data, Sym("data-creation"), date, /*functional=*/true}});
}

Result<ops::NodeAddition> Fig12NodeAddition(const Scheme& scheme) {
  (void)scheme;
  return ops::NodeAddition(pattern::Pattern(), Sym("Created Jan 14, 1990"),
                           {});
}

Result<ops::EdgeAddition> Fig13EdgeAddition(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId set = b.Object("Created Jan 14, 1990");
  NodeId info = b.Object("Info");
  NodeId date = b.Printable("Date", kJan14);
  b.Edge(info, "created", date);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return ops::EdgeAddition(
      std::move(p),
      {ops::EdgeSpec{set, Sym("contains"), info, /*functional=*/false}});
}

Result<ops::NodeDeletion> Fig14NodeDeletion(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId info = b.Object("Info");
  NodeId name = b.Printable("String", S("Classical Music"));
  b.Edge(info, "name", name);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return ops::NodeDeletion(std::move(p), info);
}

Result<ops::EdgeDeletion> Fig16EdgeDeletion(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId info = b.Object("Info");
  NodeId name = b.Printable("String", S("Music History"));
  NodeId date = b.Printable("Date");  // The old date, whatever it is.
  b.Edge(info, "name", name).Edge(info, "modified", date);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return ops::EdgeDeletion(std::move(p),
                           {ops::EdgeRef{info, Sym("modified"), date}});
}

Result<ops::EdgeAddition> Fig16EdgeAddition(const Scheme& scheme) {
  GraphBuilder b(scheme);
  NodeId info = b.Object("Info");
  NodeId name = b.Printable("String", S("Music History"));
  NodeId date = b.Printable("Date", D(1990, 1, 16));
  b.Edge(info, "name", name);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
  return ops::EdgeAddition(
      std::move(p),
      {ops::EdgeSpec{info, Sym("modified"), date, /*functional=*/true}});
}

Result<Fig18> Fig18Abstraction(const Scheme& scheme) {
  // Tag the info nodes reachable as new- and old-versions. (The paper
  // draws the tag edge with label "in"; "in" is already a multivalued
  // label in the scheme and node additions introduce functional edges
  // only, so we name the tag edge "interested-in".)
  GraphBuilder b_new(scheme);
  NodeId v1 = b_new.Object("Version");
  NodeId i1 = b_new.Object("Info");
  b_new.Edge(v1, "new", i1);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p_new, b_new.Build());
  ops::NodeAddition tag_new(std::move(p_new), Sym("Interested"),
                            {{Sym("interested-in"), i1}});

  GraphBuilder b_old(scheme);
  NodeId v2 = b_old.Object("Version");
  NodeId i2 = b_old.Object("Info");
  b_old.Edge(v2, "old", i2);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p_old, b_old.Build());
  ops::NodeAddition tag_old(std::move(p_old), Sym("Interested"),
                            {{Sym("interested-in"), i2}});

  // Abstract the tagged infos over their links-to sets. The source
  // pattern needs the scheme extended by the tag NAs, so it is built
  // against labels the NAs will introduce; the abstraction is applied
  // after them, when the labels exist.
  schema::Scheme extended = scheme;
  GOOD_RETURN_NOT_OK(extended.EnsureObjectLabel(Sym("Interested")));
  GOOD_RETURN_NOT_OK(extended.EnsureFunctionalEdgeLabel(Sym("interested-in")));
  GOOD_RETURN_NOT_OK(
      extended.EnsureTriple(Sym("Interested"), Sym("interested-in"),
                            Sym("Info")));
  GraphBuilder b_ab(extended);
  NodeId tag = b_ab.Object("Interested");
  NodeId info = b_ab.Object("Info");
  b_ab.Edge(tag, "interested-in", info);
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern p_ab, b_ab.Build());
  ops::Abstraction abstraction(std::move(p_ab), info, Sym("Same-Info"),
                               Sym("contains"), Sym("links-to"));
  return Fig18{std::move(tag_new), std::move(tag_old),
               std::move(abstraction)};
}

}  // namespace good::hypermedia
