/// \file hypermedia.h
/// \brief The paper's running example: a hyper-media object base.
///
/// Section 2 develops a hyper-media system storing documents with text,
/// graphics and sound, versioning, and cross-references. This module
/// reconstructs:
///  - the Figure 1 scheme (BuildScheme),
///  - the Figure 2 + Figure 3 instance (BuildInstance), exposing every
///    named node so tests can assert on specific figures,
///  - the Figure 17 version-chain instance (BuildVersionInstance),
///  - each figure's pattern/operation as a factory function
///    (Fig4Pattern, Fig6NodeAddition, ...).
///
/// Where the scanned figures are ambiguous about incidental constants
/// (e.g. the exact word counts of the Doors text node) we pick values
/// consistent with the narrative; no operation's semantics depends on
/// them. The figure-critical facts — e.g. that the Figure 4 pattern has
/// exactly two matchings and the Figure 8 pattern exactly four — are
/// asserted in tests/hypermedia_test.cc.

#ifndef GOOD_HYPERMEDIA_HYPERMEDIA_H_
#define GOOD_HYPERMEDIA_HYPERMEDIA_H_

#include <string_view>

#include "common/result.h"
#include "graph/instance.h"
#include "ops/operations.h"
#include "pattern/matcher.h"
#include "schema/scheme.h"

namespace good::hypermedia {

/// \brief Interned label symbols of the hyper-media scheme.
struct Labels {
  // Object labels.
  Symbol info, version, reference, data, comment, sound, text, graphics;
  // Printable labels.
  Symbol date, string, number, bitstream, longstring, bitmap;
  // Functional edge labels.
  Symbol created, modified, name, comment_edge, is, new_edge, old_edge, isa,
      width, height, frequency, num_chars, num_words, data_edge;
  // Multivalued edge labels.
  Symbol links_to, in;

  static const Labels& Get();
};

/// \brief Builds the Figure 1 scheme (isa triples marked as subclass
/// edges per Section 4.2).
Result<schema::Scheme> BuildScheme();

/// \brief Node handles into the Figure 2 / Figure 3 instance.
struct InstanceNodes {
  using NodeId = graph::NodeId;
  // Figure 2 info nodes.
  NodeId music_history, rock_new, rock_old, classical, jazz, pinkfloyd,
      doors, beatles, mozart;
  NodeId version;           // The Version node between the two Rock infos.
  NodeId reference;         // The Reference node (Beatles in Jazz).
  NodeId music_comment;     // Comment node of Music History.
  // Figure 3 structure under Pinkfloyd (node "1").
  NodeId pf_info_sound, pf_info_text;  // links-to targets
  NodeId pf_data_sound, pf_data_text;  // Data nodes
  NodeId pf_sound, pf_text;            // Sound / Text nodes
  // Figure 3 structure under The Doors (node "2").
  NodeId dr_info_graphics, dr_info_text;
  NodeId dr_data_graphics, dr_data_text;
  NodeId dr_graphics, dr_text;
};

/// \brief The Figure 2 + Figure 3 instance and its named nodes.
struct HyperMediaInstance {
  graph::Instance instance;
  InstanceNodes nodes;
};

/// \brief Builds the Figure 2 / Figure 3 instance over `scheme`.
Result<HyperMediaInstance> BuildInstance(const schema::Scheme& scheme);

/// \brief Builds the Figure 17 instance: a chain of four Version nodes
/// over five Info nodes i1..i5 whose links-to sets are
/// i1:{x,y}, i2:{x,y}, i3:{y}, i4:{y}, i5:{y,z} — so the Figure 18
/// abstraction produces three Same-Info groups {i1,i2}, {i3,i4}, {i5}.
Result<graph::Instance> BuildVersionInstance(const schema::Scheme& scheme);

// ---------------------------------------------------------------------------
// Figure operations
// ---------------------------------------------------------------------------

/// Figure 4: info node created on Jan 14, 1990, named Rock, linked to
/// another info node. Returns the pattern and the pattern node the bold
/// parts of later figures attach to (the lower Info node).
struct Fig4 {
  pattern::Pattern pattern;
  graph::NodeId upper_info;
  graph::NodeId lower_info;
};
Result<Fig4> Fig4Pattern(const schema::Scheme& scheme);

/// Figure 6: tag each linked info node with a fresh Rock object via
/// a functional tagged-to edge.
Result<ops::NodeAddition> Fig6NodeAddition(const schema::Scheme& scheme);

/// Figure 8: derive Pair objects aggregating (parent, child) creation
/// dates of Rock-named infos and the infos they link to.
Result<ops::NodeAddition> Fig8NodeAddition(const schema::Scheme& scheme);

/// Figure 10: add a functional data-creation edge from each Data node of
/// the Pinkfloyd document to its creation date.
Result<ops::EdgeAddition> Fig10EdgeAddition(const schema::Scheme& scheme);

/// Figure 12: add one single node labeled "Created Jan 14, 1990" (empty
/// source pattern).
Result<ops::NodeAddition> Fig12NodeAddition(const schema::Scheme& scheme);

/// Figure 13: link that set object to every info created Jan 14, 1990
/// via multivalued contains edges.
Result<ops::EdgeAddition> Fig13EdgeAddition(const schema::Scheme& scheme);

/// Figure 14: delete the info node named Classical Music.
Result<ops::NodeDeletion> Fig14NodeDeletion(const schema::Scheme& scheme);

/// Figure 16 (top): delete the modified edge of the Music History info.
Result<ops::EdgeDeletion> Fig16EdgeDeletion(const schema::Scheme& scheme);

/// Figure 16 (bottom): add modified = Jan 16, 1990 to Music History.
Result<ops::EdgeAddition> Fig16EdgeAddition(const schema::Scheme& scheme);

/// Figure 18: the three steps of the abstraction example — tag the new-
/// and old-version infos with Interested objects, then abstract the
/// tagged infos over their links-to sets into Same-Info groups.
struct Fig18 {
  ops::NodeAddition tag_new;
  ops::NodeAddition tag_old;
  ops::Abstraction abstraction;
};
Result<Fig18> Fig18Abstraction(const schema::Scheme& scheme);

}  // namespace good::hypermedia

#endif  // GOOD_HYPERMEDIA_HYPERMEDIA_H_
