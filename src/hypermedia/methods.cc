#include "hypermedia/methods.h"

#include "hypermedia/hypermedia.h"
#include "ops/computed.h"
#include "pattern/builder.h"

namespace good::hypermedia {

using graph::NodeId;
using method::HeadBinding;
using method::Method;
using method::MethodCallOp;
using method::ParameterizedOp;
using pattern::GraphBuilder;
using schema::Scheme;

Result<Method> MakeUpdateMethod(const Scheme& scheme) {
  Method update;
  update.spec.name = "Update";
  update.spec.params[Sym("parameter")] = Sym("Date");
  update.spec.receiver_label = Sym("Info");

  // Body op 1: delete the receiver's current modified edge.
  {
    GraphBuilder b(scheme);
    NodeId info = b.Object("Info");
    NodeId date = b.Printable("Date");
    b.Edge(info, "modified", date);
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::EdgeDeletion ed(std::move(p),
                         {ops::EdgeRef{info, Sym("modified"), date}});
    HeadBinding head;
    head.receiver = info;
    update.body.push_back(ParameterizedOp{std::move(ed), head});
  }
  // Body op 2: add the parameter as the new modified date.
  {
    GraphBuilder b(scheme);
    NodeId info = b.Object("Info");
    NodeId date = b.Printable("Date");
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::EdgeAddition ea(
        std::move(p),
        {ops::EdgeSpec{info, Sym("modified"), date, /*functional=*/true}});
    HeadBinding head;
    head.receiver = info;
    head.params[Sym("parameter")] = date;
    update.body.push_back(ParameterizedOp{std::move(ea), head});
  }
  return update;  // No new labels: the interface is empty.
}

Result<MethodCallOp> MakeUpdateCall(const Scheme& scheme,
                                    std::string_view name, Date new_date) {
  GraphBuilder b(scheme);
  NodeId info = b.Object("Info");
  NodeId nm = b.Printable("String", Value(std::string(name)));
  NodeId date = b.Printable("Date", Value(new_date));
  b.Edge(info, "name", nm);
  MethodCallOp call;
  GOOD_ASSIGN_OR_RETURN(call.pattern, b.Build());
  call.method_name = "Update";
  call.args[Sym("parameter")] = date;
  call.receiver = info;
  return call;
}

Result<Method> MakeRemoveOldVersionsMethod(const Scheme& scheme) {
  Method rov;
  rov.spec.name = "R-O-V";
  rov.spec.receiver_label = Sym("Info");

  // Body op 1: recurse to the receiver's direct predecessor.
  {
    GraphBuilder b(scheme);
    NodeId receiver = b.Object("Info");
    NodeId version = b.Object("Version");
    NodeId older = b.Object("Info");
    b.Edge(version, "new", receiver).Edge(version, "old", older);
    MethodCallOp rec;
    GOOD_ASSIGN_OR_RETURN(rec.pattern, b.Build());
    rec.method_name = "R-O-V";
    rec.receiver = older;
    HeadBinding head;
    head.receiver = receiver;
    rov.body.push_back(ParameterizedOp{std::move(rec), head});
  }
  // Body op 2: delete the predecessor.
  {
    GraphBuilder b(scheme);
    NodeId receiver = b.Object("Info");
    NodeId version = b.Object("Version");
    NodeId older = b.Object("Info");
    b.Edge(version, "new", receiver).Edge(version, "old", older);
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::NodeDeletion nd(std::move(p), older);
    HeadBinding head;
    head.receiver = receiver;
    rov.body.push_back(ParameterizedOp{std::move(nd), head});
  }
  // Body op 3: delete the dangling version node.
  {
    GraphBuilder b(scheme);
    NodeId receiver = b.Object("Info");
    NodeId version = b.Object("Version");
    b.Edge(version, "new", receiver);
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::NodeDeletion nd(std::move(p), version);
    HeadBinding head;
    head.receiver = receiver;
    rov.body.push_back(ParameterizedOp{std::move(nd), head});
  }
  return rov;
}

namespace {

/// The scheme extended with D's Elapsed sub-scheme, against which the
/// D/E body patterns are constructed.
Result<Scheme> ElapsedExtension(const Scheme& base) {
  Scheme s = base;
  GOOD_RETURN_NOT_OK(s.EnsureObjectLabel(Sym("Elapsed")));
  GOOD_RETURN_NOT_OK(s.EnsureFunctionalEdgeLabel(Sym("olddate")));
  GOOD_RETURN_NOT_OK(s.EnsureFunctionalEdgeLabel(Sym("newdate")));
  GOOD_RETURN_NOT_OK(s.EnsureFunctionalEdgeLabel(Sym("diff")));
  GOOD_RETURN_NOT_OK(s.EnsureTriple(Sym("Elapsed"), Sym("olddate"),
                                    Sym("Date")));
  GOOD_RETURN_NOT_OK(s.EnsureTriple(Sym("Elapsed"), Sym("newdate"),
                                    Sym("Date")));
  GOOD_RETURN_NOT_OK(s.EnsureTriple(Sym("Elapsed"), Sym("diff"),
                                    Sym("Number")));
  return s;
}

}  // namespace

Result<Method> MakeDMethod(const Scheme& base) {
  GOOD_ASSIGN_OR_RETURN(Scheme ext, ElapsedExtension(base));
  Method d;
  d.spec.name = "D";
  d.spec.params[Sym("old")] = Sym("Date");
  d.spec.receiver_label = Sym("Date");

  // Body op 1: create the Elapsed node binding both dates.
  {
    GraphBuilder b(ext);
    NodeId d_new = b.Printable("Date");
    NodeId d_old = b.Printable("Date");
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::NodeAddition na(
        std::move(p), Sym("Elapsed"),
        {{Sym("olddate"), d_old}, {Sym("newdate"), d_new}});
    HeadBinding head;
    head.receiver = d_new;
    head.params[Sym("old")] = d_old;
    d.body.push_back(ParameterizedOp{std::move(na), head});
  }
  // Body op 2: the external day-difference function (Section 4.1).
  {
    GraphBuilder b(ext);
    NodeId e = b.Object("Elapsed");
    NodeId d_old = b.Printable("Date");
    NodeId d_new = b.Printable("Date");
    b.Edge(e, "olddate", d_old).Edge(e, "newdate", d_new);
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::ComputedEdgeAddition diff(
        std::move(p), {d_old, d_new},
        [](const std::vector<Value>& args) -> Result<Value> {
          return Value(args[1].AsDate().ToDayNumber() -
                       args[0].AsDate().ToDayNumber());
        },
        e, Sym("diff"), Sym("Number"), ValueKind::kInt);
    d.body.push_back(ParameterizedOp{std::move(diff), std::nullopt});
  }
  // Interface: the Elapsed sub-scheme (Figure 23, right).
  Scheme interface;
  GOOD_RETURN_NOT_OK(interface.AddObjectLabel(Sym("Elapsed")));
  GOOD_RETURN_NOT_OK(
      interface.AddPrintableLabel(Sym("Date"), ValueKind::kDate));
  GOOD_RETURN_NOT_OK(
      interface.AddPrintableLabel(Sym("Number"), ValueKind::kInt));
  GOOD_RETURN_NOT_OK(interface.AddFunctionalEdgeLabel(Sym("olddate")));
  GOOD_RETURN_NOT_OK(interface.AddFunctionalEdgeLabel(Sym("newdate")));
  GOOD_RETURN_NOT_OK(interface.AddFunctionalEdgeLabel(Sym("diff")));
  GOOD_RETURN_NOT_OK(
      interface.AddTriple(Sym("Elapsed"), Sym("olddate"), Sym("Date")));
  GOOD_RETURN_NOT_OK(
      interface.AddTriple(Sym("Elapsed"), Sym("newdate"), Sym("Date")));
  GOOD_RETURN_NOT_OK(
      interface.AddTriple(Sym("Elapsed"), Sym("diff"), Sym("Number")));
  d.interface = interface;
  return d;
}

Result<Method> MakeEMethod(const Scheme& base) {
  GOOD_ASSIGN_OR_RETURN(Scheme ext, ElapsedExtension(base));
  Method e;
  e.spec.name = "E";
  e.spec.receiver_label = Sym("Info");

  // Body op 1: call D(old = created) on the modified date.
  {
    GraphBuilder b(ext);
    NodeId info = b.Object("Info");
    NodeId d_mod = b.Printable("Date");
    NodeId d_cre = b.Printable("Date");
    b.Edge(info, "modified", d_mod).Edge(info, "created", d_cre);
    MethodCallOp call;
    GOOD_ASSIGN_OR_RETURN(call.pattern, b.Build());
    call.method_name = std::string("D");
    call.args[Sym("old")] = d_cre;
    call.receiver = d_mod;
    HeadBinding head;
    head.receiver = info;
    e.body.push_back(ParameterizedOp{std::move(call), head});
  }
  // Body op 2: copy the diff onto the receiver as days-unmod.
  {
    GraphBuilder b(ext);
    NodeId info = b.Object("Info");
    NodeId d_mod = b.Printable("Date");
    NodeId d_cre = b.Printable("Date");
    NodeId elapsed = b.Object("Elapsed");
    NodeId num = b.Printable("Number");
    b.Edge(info, "modified", d_mod)
        .Edge(info, "created", d_cre)
        .Edge(elapsed, "olddate", d_cre)
        .Edge(elapsed, "newdate", d_mod)
        .Edge(elapsed, "diff", num);
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern p, b.Build());
    ops::EdgeAddition ea(
        std::move(p),
        {ops::EdgeSpec{info, Sym("days-unmod"), num, /*functional=*/true}});
    HeadBinding head;
    head.receiver = info;
    e.body.push_back(ParameterizedOp{std::move(ea), head});
  }
  // Interface: Info -days-unmod-> Number (Figure 24, bottom).
  Scheme interface;
  GOOD_RETURN_NOT_OK(interface.AddObjectLabel(Sym("Info")));
  GOOD_RETURN_NOT_OK(
      interface.AddPrintableLabel(Sym("Number"), ValueKind::kInt));
  GOOD_RETURN_NOT_OK(interface.AddFunctionalEdgeLabel(Sym("days-unmod")));
  GOOD_RETURN_NOT_OK(
      interface.AddTriple(Sym("Info"), Sym("days-unmod"), Sym("Number")));
  e.interface = interface;
  return e;
}

}  // namespace good::hypermedia
