#include "pattern/matcher.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace good::pattern {

using graph::Instance;
using graph::NodeId;

MatchStats& MatchStats::operator+=(const MatchStats& other) {
  candidates_scanned += other.candidates_scanned;
  feasibility_rejections += other.feasibility_rejections;
  backtracks += other.backtracks;
  matchings += other.matchings;
  if (depth_fanout.size() < other.depth_fanout.size()) {
    depth_fanout.resize(other.depth_fanout.size(), 0);
  }
  for (size_t i = 0; i < other.depth_fanout.size(); ++i) {
    depth_fanout[i] += other.depth_fanout[i];
  }
  return *this;
}

std::string MatchStats::ToString() const {
  std::ostringstream os;
  os << "cand=" << candidates_scanned << " rej=" << feasibility_rejections
     << " bt=" << backtracks << " match=" << matchings << " fanout=[";
  for (size_t i = 0; i < depth_fanout.size(); ++i) {
    if (i > 0) os << ",";
    os << depth_fanout[i];
  }
  os << "]";
  return os.str();
}

namespace {

/// One edge constraint between the pattern node being placed and an
/// already-placed pattern node (the "anchor"): the candidate must be
/// adjacent to the anchor's image via `label` in direction `out_of_m`.
struct Anchor {
  Symbol label;
  size_t position;  // Depth of the placed neighbour in the plan order.
  bool out_of_m;    // True: pattern edge (m, label, neighbour).
};

/// Everything about placing order_[depth] that only depends on the
/// pattern and the plan order — computed once so the per-candidate hot
/// path allocates nothing and does no pattern-side hash lookups.
struct DepthPlan {
  NodeId m;
  Symbol label;
  bool has_print = false;
  /// Candidates drawn from anchor adjacency lists carry arbitrary
  /// labels; candidates from the label or printable index are
  /// pre-filtered.
  bool check_label = false;
  /// Labels of pattern self-loops (m, α, m): the candidate t must carry
  /// the instance loop (t, α, t).
  std::vector<Symbol> self_loops;
  /// Edge constraints towards already-placed neighbours. Candidates()
  /// enforces every one of them.
  std::vector<Anchor> anchors;
};

/// Backtracking state for one enumeration run.
class Enumerator {
 public:
  Enumerator(const Pattern& pattern, const Instance& instance,
             const MatchOptions& options,
             const std::function<bool(const Matching&)>& callback)
      : pattern_(pattern),
        instance_(instance),
        limit_(options.limit),
        sink_(options.stats),
        callback_(callback) {
    order_ = PlanOrder();
    assignment_.assign(order_.size(), NodeId{});
    scratch_.resize(order_.size());
    stats_.depth_fanout.assign(order_.size(), 0);
    // Pattern node ids are dense, so a plain vector maps node -> depth.
    uint32_t max_id = 0;
    for (NodeId m : order_) max_id = std::max(max_id, m.id);
    position_.assign(order_.empty() ? 0 : max_id + 1, order_.size());
    for (size_t i = 0; i < order_.size(); ++i) position_[order_[i].id] = i;
    plans_.resize(order_.size());
    for (size_t d = 0; d < order_.size(); ++d) {
      DepthPlan& plan = plans_[d];
      plan.m = order_[d];
      plan.label = pattern_.LabelOf(plan.m);
      plan.has_print = pattern_.HasPrintValue(plan.m);
      for (const auto& [label, target] : pattern_.OutEdges(plan.m)) {
        if (target == plan.m) {
          plan.self_loops.push_back(label);
          continue;
        }
        size_t pos = PositionOf(target);
        if (pos < d) plan.anchors.push_back(Anchor{label, pos, true});
      }
      for (const auto& [source, label] : pattern_.InEdges(plan.m)) {
        if (source == plan.m) continue;  // Mirrored in OutEdges above.
        size_t pos = PositionOf(source);
        if (pos < d) plan.anchors.push_back(Anchor{label, pos, false});
      }
      plan.check_label = !plan.has_print && !plan.anchors.empty();
      // Pre-bind the plan keys so leaf emission only rebinds values.
      matching_scratch_.Bind(plan.m, NodeId{});
    }
  }

  size_t Run() {
    if (limit_ > 0) Recurse(0);
    stats_.matchings = emitted_;
    if (sink_ != nullptr) *sink_ += stats_;
    return emitted_;
  }

 private:
  /// Chooses the node elimination order: seed with the most selective
  /// node, then repeatedly pick a node adjacent to the placed set
  /// (falling back to the most selective remaining node for a new
  /// connected component).
  std::vector<NodeId> PlanOrder() const {
    std::vector<NodeId> nodes = pattern_.AllNodes();
    std::vector<NodeId> order;
    uint32_t max_id = 0;
    for (NodeId m : nodes) max_id = std::max(max_id, m.id);
    // Pattern node ids are dense; index flags/selectivity by id.
    std::vector<bool> placed_flag(nodes.empty() ? 0 : max_id + 1, false);
    std::vector<size_t> selectivity(placed_flag.size(), 0);
    for (NodeId m : nodes) {
      selectivity[m.id] = pattern_.HasPrintValue(m)
                              ? 1
                              : instance_.CountNodesWithLabel(
                                    pattern_.LabelOf(m));
    }

    auto adjacent_to_placed = [&](NodeId m) -> bool {
      for (const auto& [label, target] : pattern_.OutEdges(m)) {
        (void)label;
        if (placed_flag[target.id]) return true;
      }
      for (const auto& [source, label] : pattern_.InEdges(m)) {
        (void)label;
        if (placed_flag[source.id]) return true;
      }
      return false;
    };

    while (order.size() < nodes.size()) {
      NodeId best{};
      size_t best_sel = std::numeric_limits<size_t>::max();
      bool best_adjacent = false;
      for (NodeId m : nodes) {
        if (placed_flag[m.id]) continue;
        bool adj = !order.empty() && adjacent_to_placed(m);
        size_t sel = selectivity[m.id];
        // Adjacency dominates; among equals prefer selectivity.
        if (!best.valid() || (adj && !best_adjacent) ||
            (adj == best_adjacent && sel < best_sel)) {
          best = m;
          best_sel = sel;
          best_adjacent = adj;
        }
      }
      order.push_back(best);
      placed_flag[best.id] = true;
    }
    return order;
  }

  /// True iff mapping plan.m to `t` respects the node label and every
  /// pattern self-loop (m, α, m), which demands the instance edge
  /// (t, α, t). Placed-neighbour edges and print values are already
  /// enforced by Candidates(), which draws from (and intersects
  /// against) the anchor adjacency lists.
  bool Feasible(const DepthPlan& plan, NodeId t) {
    if (plan.check_label && instance_.LabelOf(t) != plan.label) {
      ++stats_.feasibility_rejections;
      return false;
    }
    for (Symbol label : plan.self_loops) {
      if (!instance_.HasEdge(t, label, t)) {
        ++stats_.feasibility_rejections;
        return false;
      }
    }
    return true;
  }

  size_t PositionOf(NodeId pattern_node) const {
    return pattern_node.id < position_.size() ? position_[pattern_node.id]
                                              : order_.size();
  }

  /// The adjacency list an anchor constrains candidates to.
  const std::vector<NodeId>& AnchorList(const Anchor& anchor) const {
    NodeId image = assignment_[anchor.position];
    return anchor.out_of_m ? instance_.InSources(image, anchor.label)
                           : instance_.OutTargets(image, anchor.label);
  }

  /// True iff `t` satisfies the anchor's edge constraint.
  bool SatisfiesAnchor(const Anchor& anchor, NodeId t) const {
    NodeId image = assignment_[anchor.position];
    return anchor.out_of_m ? instance_.HasEdge(t, anchor.label, image)
                           : instance_.HasEdge(image, anchor.label, t);
  }

  /// Candidate instance nodes for pattern node order_[depth].
  ///
  /// Anchored nodes (≥1 already-placed neighbour) draw candidates from
  /// the smallest placed-neighbour adjacency list, intersected against
  /// the remaining anchors via O(1) edge-index probes; unanchored nodes
  /// fall back to the label index (or the printable dedup index, which
  /// pins the candidate set to at most one node).
  const std::vector<NodeId>& Candidates(size_t depth) {
    const DepthPlan& plan = plans_[depth];
    std::vector<NodeId>& scratch = scratch_[depth];
    if (plan.has_print) {
      scratch.clear();
      auto found =
          instance_.FindPrintable(plan.label, *pattern_.PrintValueOf(plan.m));
      if (found.has_value()) {
        ++stats_.candidates_scanned;
        bool in_all = true;
        for (const Anchor& anchor : plan.anchors) {
          if (!SatisfiesAnchor(anchor, *found)) {
            in_all = false;
            ++stats_.feasibility_rejections;
            break;
          }
        }
        if (in_all) scratch.push_back(*found);
      }
      return scratch;
    }

    if (plan.anchors.empty()) {
      scratch = instance_.NodesWithLabel(plan.label);
      stats_.candidates_scanned += scratch.size();
      return scratch;
    }

    // Smallest adjacency list first: every candidate must appear in all
    // of them, so scanning the smallest bounds the work.
    size_t base = 0;
    for (size_t i = 1; i < plan.anchors.size(); ++i) {
      if (AnchorList(plan.anchors[i]).size() <
          AnchorList(plan.anchors[base]).size()) {
        base = i;
      }
    }
    const std::vector<NodeId>& base_list = AnchorList(plan.anchors[base]);
    stats_.candidates_scanned += base_list.size();
    if (plan.anchors.size() == 1) return base_list;  // Borrow, no copy.

    scratch.clear();
    for (NodeId t : base_list) {
      bool in_all = true;
      for (size_t i = 0; i < plan.anchors.size(); ++i) {
        if (i == base) continue;
        if (!SatisfiesAnchor(plan.anchors[i], t)) {
          in_all = false;
          ++stats_.feasibility_rejections;
          break;
        }
      }
      if (in_all) scratch.push_back(t);
    }
    return scratch;
  }

  bool Recurse(size_t depth) {  // Returns false to abort enumeration.
    if (depth == order_.size()) {
      // Rebind the reused matching in place: keys were pre-bound in the
      // constructor, so this never rehashes or allocates.
      for (size_t i = 0; i < order_.size(); ++i) {
        matching_scratch_.Bind(order_[i], assignment_[i]);
      }
      ++emitted_;
      if (!callback_(matching_scratch_)) return false;
      return emitted_ < limit_;
    }
    const DepthPlan& plan = plans_[depth];
    const size_t emitted_before = emitted_;
    for (NodeId t : Candidates(depth)) {
      if (!Feasible(plan, t)) continue;
      ++stats_.depth_fanout[depth];
      assignment_[depth] = t;
      if (!Recurse(depth + 1)) return false;
    }
    if (emitted_ == emitted_before) ++stats_.backtracks;
    return true;
  }

  const Pattern& pattern_;
  const Instance& instance_;
  size_t limit_;
  MatchStats* sink_;
  const std::function<bool(const Matching&)>& callback_;
  std::vector<NodeId> order_;
  std::vector<size_t> position_;  // Pattern node id -> depth in order_.
  std::vector<DepthPlan> plans_;
  std::vector<NodeId> assignment_;
  // Per-depth candidate buffers (reused across sibling subtrees).
  std::vector<std::vector<NodeId>> scratch_;
  // Reused across leaves; callback_ receives it by const reference.
  Matching matching_scratch_;
  MatchStats stats_;
  size_t emitted_ = 0;
};

}  // namespace

size_t Matcher::ForEach(
    const std::function<bool(const Matching&)>& callback) const {
  Enumerator enumerator(pattern_, instance_, options_, callback);
  return enumerator.Run();
}

std::vector<Matching> Matcher::FindAll() const {
  std::vector<Matching> out;
  ForEach([&](const Matching& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

size_t Matcher::Count() const {
  return ForEach([](const Matching&) { return true; });
}

bool Matcher::Exists() const {
  MatchOptions limited = options_;
  limited.limit = std::min<size_t>(options_.limit, 1);
  Matcher bounded(pattern_, instance_, limited);
  return bounded.Count() > 0;
}

std::vector<Matching> FindMatchings(const Pattern& pattern,
                                    const graph::Instance& instance) {
  return Matcher(pattern, instance).FindAll();
}

std::vector<Matching> FindMatchingsBruteForce(
    const Pattern& pattern, const graph::Instance& instance) {
  std::vector<NodeId> pattern_nodes = pattern.AllNodes();
  std::vector<std::vector<NodeId>> candidates;
  for (NodeId m : pattern_nodes) {
    std::vector<NodeId> c;
    for (NodeId t : instance.NodesWithLabel(pattern.LabelOf(m))) {
      if (pattern.HasPrintValue(m)) {
        const auto& print = instance.PrintValueOf(t);
        if (!print.has_value() || *print != *pattern.PrintValueOf(m)) continue;
      }
      c.push_back(t);
    }
    candidates.push_back(std::move(c));
  }

  std::vector<Matching> out;
  std::vector<size_t> cursor(pattern_nodes.size(), 0);
  const size_t n = pattern_nodes.size();
  if (n == 0) {
    out.emplace_back();  // The empty pattern has one (empty) matching.
    return out;
  }
  while (true) {
    // Build and test the current assignment.
    bool viable = true;
    for (size_t i = 0; i < n && viable; ++i) {
      viable = cursor[i] < candidates[i].size();
    }
    if (viable) {
      Matching matching;
      for (size_t i = 0; i < n; ++i) {
        matching.Bind(pattern_nodes[i], candidates[i][cursor[i]]);
      }
      bool ok = true;
      for (NodeId m : pattern_nodes) {
        for (const auto& [label, target] : pattern.OutEdges(m)) {
          if (!instance.HasEdge(matching.At(m), label, matching.At(target))) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) out.push_back(std::move(matching));
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (candidates[i].empty()) return {};  // Some node has no candidate.
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
    }
    if (i == n) break;
  }
  return out;
}

}  // namespace good::pattern
