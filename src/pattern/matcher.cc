#include "pattern/matcher.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"

namespace good::pattern {

using graph::Instance;
using graph::NodeId;

namespace internal {

void AbortUnboundPatternNode(uint32_t pattern_node_id) {
  std::fprintf(stderr,
               "Matching::At: pattern node #%u is not bound in this "
               "matching\n",
               pattern_node_id);
  std::abort();
}

}  // namespace internal

MatchStats& MatchStats::operator+=(const MatchStats& other) {
  candidates_scanned += other.candidates_scanned;
  feasibility_rejections += other.feasibility_rejections;
  backtracks += other.backtracks;
  matchings += other.matchings;
  if (depth_fanout.size() < other.depth_fanout.size()) {
    depth_fanout.resize(other.depth_fanout.size(), 0);
  }
  for (size_t i = 0; i < other.depth_fanout.size(); ++i) {
    depth_fanout[i] += other.depth_fanout[i];
  }
  workers_used = std::max(workers_used, other.workers_used);
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  if (!other.plan_order.empty()) plan_order = other.plan_order;
  if (!other.depth_est_fanout.empty()) depth_est_fanout = other.depth_est_fanout;
  return *this;
}

std::string MatchStats::ToString() const {
  std::ostringstream os;
  os << "cand=" << candidates_scanned << " rej=" << feasibility_rejections
     << " bt=" << backtracks << " match=" << matchings << " fanout=[";
  for (size_t i = 0; i < depth_fanout.size(); ++i) {
    if (i > 0) os << ",";
    os << depth_fanout[i];
  }
  os << "] workers=" << workers_used;
  if (!plan_order.empty()) {
    os << " plan=[";
    for (size_t i = 0; i < plan_order.size(); ++i) {
      if (i > 0) os << ",";
      os << plan_order[i];
    }
    os << "]";
  }
  if (!depth_est_fanout.empty()) {
    os << " est=[";
    for (size_t i = 0; i < depth_est_fanout.size(); ++i) {
      if (i > 0) os << ",";
      os << depth_est_fanout[i];
    }
    os << "]";
  }
  if (plan_cache_hits > 0 || plan_cache_misses > 0) {
    os << " cache=" << plan_cache_hits << "h/" << plan_cache_misses << "m";
  }
  return os.str();
}

namespace {

constexpr size_t kNoLimit = static_cast<size_t>(-1);

/// Candidate visits between deadline polls. A poll is one relaxed
/// atomic load plus (every stride) a steady_clock read; 256 visits of
/// real search work amortize that to noise while still bounding the
/// reaction latency to a few microseconds of enumeration.
constexpr size_t kPollStride = 256;

/// One edge constraint between the pattern node being placed and an
/// already-placed pattern node (the "anchor"): the candidate must be
/// adjacent to the anchor's image via `label` in direction `out_of_m`.
struct Anchor {
  Symbol label;
  size_t position;  // Depth of the placed neighbour in the plan order.
  bool out_of_m;    // True: pattern edge (m, label, neighbour).
};

/// Everything about placing order[depth] that only depends on the
/// pattern and the plan order — computed once so the per-candidate hot
/// path allocates nothing and does no pattern-side hash lookups.
struct DepthPlan {
  NodeId m;
  Symbol label;
  bool has_print = false;
  /// Candidates drawn from anchor adjacency lists carry arbitrary
  /// labels; candidates from the label or printable index are
  /// pre-filtered.
  bool check_label = false;
  /// Labels of pattern self-loops (m, α, m): the candidate t must carry
  /// the instance loop (t, α, t).
  std::vector<Symbol> self_loops;
  /// Edge constraints towards already-placed neighbours. Candidates()
  /// enforces every one of them.
  std::vector<Anchor> anchors;
  /// Index into `anchors` of the anchor that drives candidate
  /// generation (the others are enforced by O(1) edge probes). The
  /// cost-based planner picks the anchor with the smallest expected
  /// fan-out; the naive planner keeps the first.
  size_t base_anchor = 0;
};

/// The per-(pattern, instance) search plan, shared read-only by the
/// serial enumerator and every parallel worker — and, via the global
/// plan cache, by later enumerations against the same stats epoch.
struct SearchPlan {
  std::vector<NodeId> order;
  std::vector<size_t> position;  // Pattern node id -> depth in order.
  std::vector<DepthPlan> plans;
  /// Estimated candidate count per depth (cost-based plans only).
  std::vector<double> est_fanout;

  size_t PositionOf(NodeId pattern_node) const {
    return pattern_node.id < position.size() ? position[pattern_node.id]
                                             : order.size();
  }
};

/// Expected size of the candidate list an anchor would generate, from
/// the instance's degree-sum statistics: a pattern edge (m, α, p) with
/// p placed draws candidates from InSources(image(p), α) — on average
/// the α-in-degree of a label(p) node; the mirrored case (p, α, m)
/// reads OutTargets, the average α-out-degree.
double ExpectedAnchorFanout(const Instance& instance, Symbol edge_label,
                            Symbol neighbour_label, bool out_of_m) {
  return out_of_m ? instance.AvgInFanout(neighbour_label, edge_label)
                  : instance.AvgOutFanout(neighbour_label, edge_label);
}

/// Estimated candidate-set size for placing pattern node `m` once the
/// nodes flagged in `placed` are bound: a print value pins the set to
/// at most one node; otherwise label count × the product of per-anchor
/// selectivities (expected fan-out / label count, capped at 1 — an
/// anchor can only narrow the set).
double EstimateCandidates(const Pattern& pattern, const Instance& instance,
                          NodeId m, const std::vector<bool>& placed) {
  const double label_count =
      static_cast<double>(instance.CountNodesWithLabel(pattern.LabelOf(m)));
  if (label_count == 0.0) return 0.0;
  double est = pattern.HasPrintValue(m) ? 1.0 : label_count;
  auto constrain = [&](double fanout) {
    est *= std::min(1.0, fanout / label_count);
  };
  for (const auto& [label, target] : pattern.OutEdges(m)) {
    if (target != m && placed[target.id]) {
      constrain(ExpectedAnchorFanout(instance, label, pattern.LabelOf(target),
                                     /*out_of_m=*/true));
    }
  }
  for (const auto& [source, label] : pattern.InEdges(m)) {
    if (source != m && placed[source.id]) {
      constrain(ExpectedAnchorFanout(instance, label, pattern.LabelOf(source),
                                     /*out_of_m=*/false));
    }
  }
  return est;
}

/// Cost-based elimination order: greedily place the node with the
/// smallest estimated candidate set, re-estimating after each placement
/// so freshly anchored nodes get credit for their anchors. Ties break
/// to the lowest pattern node id (strict <, nodes scanned in ascending
/// id order), keeping symmetric patterns deterministic and stable
/// against the old syntactic order.
std::vector<NodeId> PlanOrderCost(const Pattern& pattern,
                                  const Instance& instance,
                                  std::vector<double>* est_fanout) {
  std::vector<NodeId> nodes = pattern.AllNodes();
  uint32_t max_id = 0;
  for (NodeId m : nodes) max_id = std::max(max_id, m.id);
  std::vector<bool> placed(nodes.empty() ? 0 : max_id + 1, false);
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  est_fanout->reserve(nodes.size());
  while (order.size() < nodes.size()) {
    NodeId best{};
    double best_est = 0.0;
    for (NodeId m : nodes) {
      if (placed[m.id]) continue;
      const double est = EstimateCandidates(pattern, instance, m, placed);
      if (!best.valid() || est < best_est) {
        best = m;
        best_est = est;
      }
    }
    order.push_back(best);
    est_fanout->push_back(best_est);
    placed[best.id] = true;
  }
  return order;
}

/// The naive (pre-statistics) elimination order: seed with the most
/// selective node by label count, then repeatedly pick a node adjacent
/// to the placed set (falling back to the most selective remaining node
/// for a new connected component). Kept verbatim as PlannerMode::kNaive
/// for differential testing and benchmarking.
std::vector<NodeId> PlanOrder(const Pattern& pattern,
                              const Instance& instance) {
  std::vector<NodeId> nodes = pattern.AllNodes();
  std::vector<NodeId> order;
  uint32_t max_id = 0;
  for (NodeId m : nodes) max_id = std::max(max_id, m.id);
  // Pattern node ids are dense; index flags/selectivity by id.
  std::vector<bool> placed_flag(nodes.empty() ? 0 : max_id + 1, false);
  std::vector<size_t> selectivity(placed_flag.size(), 0);
  for (NodeId m : nodes) {
    selectivity[m.id] =
        pattern.HasPrintValue(m)
            ? 1
            : instance.CountNodesWithLabel(pattern.LabelOf(m));
  }

  auto adjacent_to_placed = [&](NodeId m) -> bool {
    for (const auto& [label, target] : pattern.OutEdges(m)) {
      (void)label;
      if (placed_flag[target.id]) return true;
    }
    for (const auto& [source, label] : pattern.InEdges(m)) {
      (void)label;
      if (placed_flag[source.id]) return true;
    }
    return false;
  };

  while (order.size() < nodes.size()) {
    NodeId best{};
    size_t best_sel = std::numeric_limits<size_t>::max();
    bool best_adjacent = false;
    for (NodeId m : nodes) {
      if (placed_flag[m.id]) continue;
      bool adj = !order.empty() && adjacent_to_placed(m);
      size_t sel = selectivity[m.id];
      // Adjacency dominates; among equals prefer selectivity.
      if (!best.valid() || (adj && !best_adjacent) ||
          (adj == best_adjacent && sel < best_sel)) {
        best = m;
        best_sel = sel;
        best_adjacent = adj;
      }
    }
    order.push_back(best);
    placed_flag[best.id] = true;
  }
  return order;
}

SearchPlan BuildSearchPlan(const Pattern& pattern, const Instance& instance,
                           PlannerMode mode) {
  SearchPlan plan;
  plan.order = mode == PlannerMode::kCostBased
                   ? PlanOrderCost(pattern, instance, &plan.est_fanout)
                   : PlanOrder(pattern, instance);
  uint32_t max_id = 0;
  for (NodeId m : plan.order) max_id = std::max(max_id, m.id);
  plan.position.assign(plan.order.empty() ? 0 : max_id + 1,
                       plan.order.size());
  for (size_t i = 0; i < plan.order.size(); ++i) {
    plan.position[plan.order[i].id] = i;
  }
  plan.plans.resize(plan.order.size());
  for (size_t d = 0; d < plan.order.size(); ++d) {
    DepthPlan& depth_plan = plan.plans[d];
    depth_plan.m = plan.order[d];
    depth_plan.label = pattern.LabelOf(depth_plan.m);
    depth_plan.has_print = pattern.HasPrintValue(depth_plan.m);
    for (const auto& [label, target] : pattern.OutEdges(depth_plan.m)) {
      if (target == depth_plan.m) {
        depth_plan.self_loops.push_back(label);
        continue;
      }
      size_t pos = plan.PositionOf(target);
      if (pos < d) depth_plan.anchors.push_back(Anchor{label, pos, true});
    }
    for (const auto& [source, label] : pattern.InEdges(depth_plan.m)) {
      if (source == depth_plan.m) continue;  // Mirrored in OutEdges above.
      size_t pos = plan.PositionOf(source);
      if (pos < d) depth_plan.anchors.push_back(Anchor{label, pos, false});
    }
    depth_plan.check_label =
        !depth_plan.has_print && !depth_plan.anchors.empty();
    if (mode == PlannerMode::kCostBased && depth_plan.anchors.size() > 1) {
      // Drive candidates from the anchor with the smallest expected
      // fan-out; strict < keeps ties on the first anchor, so the choice
      // is deterministic for identical statistics.
      double best_fanout = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < depth_plan.anchors.size(); ++i) {
        const Anchor& anchor = depth_plan.anchors[i];
        const Symbol neighbour_label =
            pattern.LabelOf(plan.order[anchor.position]);
        const double fanout = ExpectedAnchorFanout(
            instance, anchor.label, neighbour_label, anchor.out_of_m);
        if (fanout < best_fanout) {
          best_fanout = fanout;
          depth_plan.base_anchor = i;
        }
      }
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Structural fingerprint of a pattern, cache-key-ready: node ids with
/// labels and a has-print marker (the print *value* is irrelevant — the
/// plan reads values from the live pattern at enumeration time and the
/// cost model only cares that the set is pinned to ≤1), plus every
/// edge. Prefixed with the instance's stats epoch: any mutation bumps
/// the epoch, so stale plans simply stop being found and age out of the
/// LRU.
std::string PlanKey(const Pattern& pattern, uint64_t epoch) {
  std::string key;
  key += 'e';
  key.append(std::to_string(epoch));
  for (NodeId m : pattern.AllNodes()) {
    key += '|';
    key.append(std::to_string(m.id));
    key += ':';
    key.append(std::to_string(pattern.LabelOf(m).id));
    if (pattern.HasPrintValue(m)) key += '*';
    for (const auto& [label, target] : pattern.OutEdges(m)) {
      key += ';';
      key.append(std::to_string(label.id));
      key += '>';
      key.append(std::to_string(target.id));
    }
  }
  return key;
}

/// Global thread-safe LRU of compiled cost-based plans, keyed by
/// (pattern fingerprint, stats epoch). Shared process-wide: server
/// sessions whose working copies are unmutated copies of one version
/// (same epoch) reuse each other's plans, and rule fixpoints stop
/// re-planning a pattern within a round. Plans are immutable once
/// built, so concurrent lookups can hand out the same shared_ptr; two
/// racing builders of one key insert byte-identical plans (the build is
/// a pure function of pattern + statistics), so either winning is
/// harmless.
class PlanCache {
 public:
  static PlanCache& Get() {
    static PlanCache* cache = new PlanCache();  // Leaked: process-lifetime.
    return *cache;
  }

  std::shared_ptr<const SearchPlan> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }

  void Insert(const std::string& key,
              std::shared_ptr<const SearchPlan> plan) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // A racing builder got here first with an identical plan.
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(plan), lru_.begin()});
    if (entries_.size() > kCapacity) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  PlanCacheInfo Info() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return PlanCacheInfo{hits_, misses_, entries_.size(), kCapacity};
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const SearchPlan> plan;
    std::list<std::string>::iterator pos;
  };

  /// Patterns are compiler-generated per operation/rule; 128 entries
  /// comfortably cover a rule set plus ad-hoc queries while bounding
  /// memory to a few hundred KB.
  static constexpr size_t kCapacity = 128;

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::unordered_map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

/// The single plan-acquisition point for every Matcher entry path:
/// cache lookup (cost-based plans with caching enabled), build on miss,
/// and planner-observability recording into MatchOptions::stats.
std::shared_ptr<const SearchPlan> AcquirePlan(const Pattern& pattern,
                                              const Instance& instance,
                                              const MatchOptions& options) {
  const bool cacheable =
      options.planner == PlannerMode::kCostBased && options.use_plan_cache;
  std::shared_ptr<const SearchPlan> plan;
  std::string key;
  if (cacheable) {
    key = PlanKey(pattern, instance.stats_epoch());
    plan = PlanCache::Get().Lookup(key);
    if (options.stats != nullptr) {
      if (plan != nullptr) {
        ++options.stats->plan_cache_hits;
      } else {
        ++options.stats->plan_cache_misses;
      }
    }
  }
  if (plan == nullptr) {
    plan = std::make_shared<const SearchPlan>(
        BuildSearchPlan(pattern, instance, options.planner));
    if (cacheable) PlanCache::Get().Insert(key, plan);
  }
  if (options.stats != nullptr) {
    options.stats->plan_order.clear();
    options.stats->plan_order.reserve(plan->order.size());
    for (NodeId m : plan->order) options.stats->plan_order.push_back(m.id);
    options.stats->depth_est_fanout = plan->est_fanout;
  }
  return plan;
}

/// Backtracking state for one enumeration run. One instance per thread:
/// the plan is shared read-only, everything mutable lives here.
class Enumerator {
 public:
  /// `deadline` (optional) is polled every kPollStride candidate
  /// visits; `trip` (optional, parallel runs) is a flag shared by all
  /// workers — the first to observe an expiry sets it, peers observe it
  /// and stop promptly.
  Enumerator(const Pattern& pattern, const Instance& instance,
             const SearchPlan& plan, size_t limit, MatchStats* sink,
             const common::Deadline* deadline = nullptr,
             std::atomic<bool>* trip = nullptr)
      : pattern_(pattern),
        instance_(instance),
        plan_(plan),
        limit_(limit),
        sink_(sink),
        deadline_(deadline),
        trip_(trip),
        armed_(deadline != nullptr && deadline->armed()) {
    assignment_.assign(plan_.order.size(), NodeId{});
    scratch_.resize(plan_.order.size());
    stats_.depth_fanout.assign(plan_.order.size(), 0);
    // Pre-bind the plan keys so leaf emission only rebinds values.
    for (NodeId m : plan_.order) matching_scratch_.Bind(m, NodeId{});
  }

  /// Full enumeration from depth 0, the classic serial path: invokes
  /// `callback` per matching, honoring the limit and callback aborts.
  size_t RunSerial(const std::function<bool(const Matching&)>& callback) {
    callback_ = &callback;
    if (limit_ > 0) Recurse(0);
    callback_ = nullptr;
    stats_.matchings = emitted_;
    stats_.workers_used = 1;
    if (sink_ != nullptr) *sink_ += stats_;
    return emitted_;
  }

  /// Parallel-worker entry: enumerates the subtrees rooted at
  /// roots[begin, end), appending matchings to `out` (count-only when
  /// null). Feasibility, fanout, and backtrack accounting match what
  /// the serial matcher does for the same depth-0 candidates. Returns
  /// the number of matchings emitted for this chunk; cumulative stats
  /// stay in stats() for the caller to merge after the job completes.
  size_t RunChunk(const std::vector<NodeId>& roots, size_t begin, size_t end,
                  std::vector<Matching>* out) {
    // A tripped worker drains its remaining queued chunks immediately.
    if (!interrupt_.ok()) return 0;
    if (trip_ != nullptr && trip_->load(std::memory_order_relaxed)) {
      NotePeerTrip();
      return 0;
    }
    collect_ = out;
    const size_t emitted_before = emitted_;
    const DepthPlan& plan0 = plan_.plans[0];
    for (size_t i = begin; i < end; ++i) {
      if (armed_ && !PollDeadline()) break;
      NodeId t = roots[i];
      if (!Feasible(plan0, t)) continue;
      ++stats_.depth_fanout[0];
      assignment_[0] = t;
      if (!Recurse(1)) break;
    }
    collect_ = nullptr;
    const size_t emitted = emitted_ - emitted_before;
    stats_.matchings += emitted;
    return emitted;
  }

  const MatchStats& stats() const { return stats_; }

  /// OK, or the status (kDeadlineExceeded/kCancelled) that cut this
  /// enumeration short.
  const Status& interrupt() const { return interrupt_; }

  /// True when interrupt() only mirrors a peer worker's trip — the
  /// driver prefers the primary status recorded by the worker that
  /// actually observed the deadline.
  bool interrupt_from_peer() const { return interrupt_from_peer_; }

 private:
  void NotePeerTrip() {
    interrupt_ = Status::Cancelled("enumeration aborted by a peer worker");
    interrupt_from_peer_ = true;
  }

  /// Stride-gated deadline poll. Returns false when enumeration must
  /// stop; interrupt_ then holds the reason. Only called when armed_.
  bool PollDeadline() {
    if ((++polls_ & (kPollStride - 1)) != 0) return true;
    if (trip_ != nullptr && trip_->load(std::memory_order_relaxed)) {
      NotePeerTrip();
      return false;
    }
    Status expired = deadline_->Check();
    if (!expired.ok()) {
      interrupt_ = std::move(expired);
      if (trip_ != nullptr) trip_->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// True iff mapping plan.m to `t` respects the node label and every
  /// pattern self-loop (m, α, m), which demands the instance edge
  /// (t, α, t). Placed-neighbour edges and print values are already
  /// enforced by Candidates(), which draws from (and intersects
  /// against) the anchor adjacency lists.
  bool Feasible(const DepthPlan& plan, NodeId t) {
    if (plan.check_label && instance_.LabelOf(t) != plan.label) {
      ++stats_.feasibility_rejections;
      return false;
    }
    for (Symbol label : plan.self_loops) {
      if (!instance_.HasEdge(t, label, t)) {
        ++stats_.feasibility_rejections;
        return false;
      }
    }
    return true;
  }

  /// The adjacency list an anchor constrains candidates to.
  const std::vector<NodeId>& AnchorList(const Anchor& anchor) const {
    NodeId image = assignment_[anchor.position];
    return anchor.out_of_m ? instance_.InSources(image, anchor.label)
                           : instance_.OutTargets(image, anchor.label);
  }

  /// True iff `t` satisfies the anchor's edge constraint.
  bool SatisfiesAnchor(const Anchor& anchor, NodeId t) const {
    NodeId image = assignment_[anchor.position];
    return anchor.out_of_m ? instance_.HasEdge(t, anchor.label, image)
                           : instance_.HasEdge(image, anchor.label, t);
  }

  /// Candidate instance nodes for pattern node order[depth].
  ///
  /// Anchored nodes (≥1 already-placed neighbour) draw candidates from
  /// the plan-chosen base anchor's adjacency list (the cost-based
  /// planner picks the direction/anchor with the smallest expected
  /// fan-out at plan time), intersected against the remaining anchors
  /// via O(1) edge-index probes; unanchored nodes fall back to the
  /// label index (or the printable dedup index, which pins the
  /// candidate set to at most one node).
  const std::vector<NodeId>& Candidates(size_t depth) {
    const DepthPlan& plan = plan_.plans[depth];
    std::vector<NodeId>& scratch = scratch_[depth];
    if (plan.has_print) {
      scratch.clear();
      auto found =
          instance_.FindPrintable(plan.label, *pattern_.PrintValueOf(plan.m));
      if (found.has_value()) {
        ++stats_.candidates_scanned;
        bool in_all = true;
        for (const Anchor& anchor : plan.anchors) {
          if (!SatisfiesAnchor(anchor, *found)) {
            in_all = false;
            ++stats_.feasibility_rejections;
            break;
          }
        }
        if (in_all) scratch.push_back(*found);
      }
      return scratch;
    }

    if (plan.anchors.empty()) {
      scratch = instance_.NodesWithLabel(plan.label);
      stats_.candidates_scanned += scratch.size();
      return scratch;
    }

    const size_t base = plan.base_anchor;
    const std::vector<NodeId>& base_list = AnchorList(plan.anchors[base]);
    stats_.candidates_scanned += base_list.size();
    if (plan.anchors.size() == 1) return base_list;  // Borrow, no copy.

    scratch.clear();
    for (NodeId t : base_list) {
      bool in_all = true;
      for (size_t i = 0; i < plan.anchors.size(); ++i) {
        if (i == base) continue;
        if (!SatisfiesAnchor(plan.anchors[i], t)) {
          in_all = false;
          ++stats_.feasibility_rejections;
          break;
        }
      }
      if (in_all) scratch.push_back(t);
    }
    return scratch;
  }

  bool Recurse(size_t depth) {  // Returns false to abort enumeration.
    if (depth == plan_.order.size()) {
      // Rebind the reused matching in place: keys were pre-bound in the
      // constructor, so this never rehashes or allocates.
      for (size_t i = 0; i < plan_.order.size(); ++i) {
        matching_scratch_.Bind(plan_.order[i], assignment_[i]);
      }
      ++emitted_;
      if (collect_ != nullptr) {
        collect_->push_back(matching_scratch_);
      } else if (callback_ != nullptr && !(*callback_)(matching_scratch_)) {
        return false;
      }
      return emitted_ < limit_;
    }
    const DepthPlan& plan = plan_.plans[depth];
    const size_t emitted_before = emitted_;
    for (NodeId t : Candidates(depth)) {
      if (armed_ && !PollDeadline()) return false;
      if (!Feasible(plan, t)) continue;
      ++stats_.depth_fanout[depth];
      assignment_[depth] = t;
      if (!Recurse(depth + 1)) return false;
    }
    if (emitted_ == emitted_before) ++stats_.backtracks;
    return true;
  }

  const Pattern& pattern_;
  const Instance& instance_;
  const SearchPlan& plan_;
  size_t limit_;
  MatchStats* sink_;
  const common::Deadline* deadline_;
  std::atomic<bool>* trip_;
  const bool armed_;
  size_t polls_ = 0;
  Status interrupt_;
  bool interrupt_from_peer_ = false;
  const std::function<bool(const Matching&)>* callback_ = nullptr;
  std::vector<Matching>* collect_ = nullptr;
  std::vector<NodeId> assignment_;
  // Per-depth candidate buffers (reused across sibling subtrees).
  std::vector<std::vector<NodeId>> scratch_;
  // Reused across leaves; callback_ receives it by const reference.
  Matching matching_scratch_;
  MatchStats stats_;
  size_t emitted_ = 0;
};

/// The parallel driver behind FindAll/Count. Partitions the depth-0
/// candidate list into chunks, runs a per-worker Enumerator over the
/// chunks via the shared thread pool queue, and merges chunk outputs in
/// chunk-index order — so the matching sequence and all stats (except
/// workers_used) are identical to the serial matcher's. Sets *engaged
/// to false (without touching the outputs) when the enumeration is
/// ineligible: serial options, a limit, the empty pattern, or a depth-0
/// candidate list below the threshold — the caller then runs the serial
/// engine. When a deadline interrupt cuts the run short, returns the
/// interrupt status with the outputs and stats untouched.
Status TryParallelEnumerate(const Pattern& pattern, const Instance& instance,
                            const SearchPlan& plan,
                            const MatchOptions& options,
                            std::vector<Matching>* out, size_t* count,
                            bool* engaged) {
  *engaged = false;
  if (options.num_threads == 0) return Status::OK();
  if (options.limit != kNoLimit) return Status::OK();
  // The empty pattern has exactly one matching (the empty map); let the
  // serial engine emit it.
  if (plan.order.empty()) return Status::OK();

  MatchStats merged;
  merged.depth_fanout.assign(plan.order.size(), 0);
  const DepthPlan& plan0 = plan.plans[0];
  std::vector<NodeId> roots;
  if (plan0.has_print) {
    auto found =
        instance.FindPrintable(plan0.label, *pattern.PrintValueOf(plan0.m));
    if (found.has_value()) {
      ++merged.candidates_scanned;
      roots.push_back(*found);
    }
  } else {
    roots = instance.NodesWithLabel(plan0.label);
    merged.candidates_scanned += roots.size();
  }
  if (roots.size() < options.parallel_threshold) return Status::OK();
  *engaged = true;

  const size_t workers =
      std::min(options.num_threads, std::max<size_t>(roots.size(), 1));
  // ~4 chunks per worker: slack for dynamic load balancing without
  // fragmenting the ordered merge.
  const size_t chunk_size =
      std::max<size_t>(1, (roots.size() + workers * 4 - 1) / (workers * 4));
  const size_t num_chunks = (roots.size() + chunk_size - 1) / chunk_size;

  const bool armed =
      options.deadline != nullptr && options.deadline->armed();
  std::atomic<bool> trip{false};
  std::vector<std::vector<Matching>> chunk_out(out != nullptr ? num_chunks
                                                              : 0);
  std::vector<size_t> chunk_count(num_chunks, 0);
  std::vector<std::unique_ptr<Enumerator>> per_worker;
  per_worker.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    per_worker.push_back(std::make_unique<Enumerator>(
        pattern, instance, plan, kNoLimit, nullptr,
        armed ? options.deadline : nullptr, armed ? &trip : nullptr));
  }
  {
    common::ThreadPool pool(workers);
    pool.ParallelFor(num_chunks, [&](size_t worker, size_t chunk) {
      const size_t begin = chunk * chunk_size;
      const size_t end = std::min(roots.size(), begin + chunk_size);
      chunk_count[chunk] = per_worker[worker]->RunChunk(
          roots, begin, end, out != nullptr ? &chunk_out[chunk] : nullptr);
    });
  }

  // Interrupt resolution: prefer the primary status recorded by a
  // worker that observed the deadline itself over a peer-trip mirror.
  Status interrupt;
  for (const auto& enumerator : per_worker) {
    if (enumerator->interrupt().ok()) continue;
    if (interrupt.ok() || !enumerator->interrupt_from_peer()) {
      interrupt = enumerator->interrupt();
      if (!enumerator->interrupt_from_peer()) break;
    }
  }
  if (!interrupt.ok()) return interrupt;

  size_t total = 0;
  for (size_t c = 0; c < num_chunks; ++c) total += chunk_count[c];
  for (const auto& enumerator : per_worker) merged += enumerator->stats();
  // The depth-0 retreat the serial matcher counts when nothing at all
  // was emitted.
  if (total == 0) ++merged.backtracks;
  merged.workers_used = std::max<size_t>(1, std::min(workers, num_chunks));
  if (options.stats != nullptr) *options.stats += merged;

  if (out != nullptr) {
    out->clear();
    out->reserve(total);
    for (std::vector<Matching>& chunk : chunk_out) {
      std::move(chunk.begin(), chunk.end(), std::back_inserter(*out));
    }
  }
  *count = total;
  return Status::OK();
}

/// The serial engine behind every non-parallel entry path: runs the
/// (possibly cached) plan to completion, reporting the interrupt status
/// and the number of matchings visited.
Status RunSerialEnumeration(const Pattern& pattern, const Instance& instance,
                            const SearchPlan& plan,
                            const MatchOptions& options,
                            const std::function<bool(const Matching&)>& callback,
                            size_t* visited) {
  Enumerator enumerator(pattern, instance, plan, options.limit, options.stats,
                        options.deadline, nullptr);
  size_t n = enumerator.RunSerial(callback);
  if (visited != nullptr) *visited = n;
  return enumerator.interrupt();
}

}  // namespace

Status Matcher::ForEachChecked(
    const std::function<bool(const Matching&)>& callback,
    size_t* visited) const {
  if (visited != nullptr) *visited = 0;
  // Upfront check: tiny enumerations may finish under the poll stride,
  // so an already-expired deadline must still be observed.
  if (options_.deadline != nullptr) {
    GOOD_RETURN_NOT_OK(options_.deadline->Check());
  }
  std::shared_ptr<const SearchPlan> plan =
      AcquirePlan(pattern_, instance_, options_);
  return RunSerialEnumeration(pattern_, instance_, *plan, options_, callback,
                              visited);
}

size_t Matcher::ForEach(
    const std::function<bool(const Matching&)>& callback) const {
  size_t visited = 0;
  (void)ForEachChecked(callback, &visited);
  return visited;
}

Result<std::vector<Matching>> Matcher::FindAllChecked() const {
  if (options_.deadline != nullptr) {
    GOOD_RETURN_NOT_OK(options_.deadline->Check());
  }
  // One plan acquisition per call: the parallel driver and the serial
  // fallback share it (and its cache hit/miss accounting).
  std::shared_ptr<const SearchPlan> plan =
      AcquirePlan(pattern_, instance_, options_);
  std::vector<Matching> out;
  size_t count = 0;
  bool engaged = false;
  GOOD_RETURN_NOT_OK(TryParallelEnumerate(pattern_, instance_, *plan, options_,
                                          &out, &count, &engaged));
  if (engaged) return out;
  GOOD_RETURN_NOT_OK(RunSerialEnumeration(
      pattern_, instance_, *plan, options_,
      [&](const Matching& m) {
        out.push_back(m);
        return true;
      },
      nullptr));
  return out;
}

std::vector<Matching> Matcher::FindAll() const {
  Result<std::vector<Matching>> result = FindAllChecked();
  if (!result.ok()) return {};
  return std::move(*result);
}

Result<size_t> Matcher::CountChecked() const {
  if (options_.deadline != nullptr) {
    GOOD_RETURN_NOT_OK(options_.deadline->Check());
  }
  std::shared_ptr<const SearchPlan> plan =
      AcquirePlan(pattern_, instance_, options_);
  size_t count = 0;
  bool engaged = false;
  GOOD_RETURN_NOT_OK(TryParallelEnumerate(pattern_, instance_, *plan, options_,
                                          nullptr, &count, &engaged));
  if (engaged) return count;
  size_t visited = 0;
  GOOD_RETURN_NOT_OK(RunSerialEnumeration(
      pattern_, instance_, *plan, options_,
      [](const Matching&) { return true; }, &visited));
  return visited;
}

size_t Matcher::Count() const {
  Result<size_t> result = CountChecked();
  return result.ok() ? *result : 0;
}

Result<bool> Matcher::ExistsChecked() const {
  MatchOptions limited = options_;
  limited.limit = std::min<size_t>(options_.limit, 1);
  Matcher bounded(pattern_, instance_, limited);
  GOOD_ASSIGN_OR_RETURN(size_t count, bounded.CountChecked());
  return count > 0;
}

bool Matcher::Exists() const {
  Result<bool> result = ExistsChecked();
  return result.ok() && *result;
}

PlanCacheInfo GlobalPlanCacheInfo() { return PlanCache::Get().Info(); }

void ResetGlobalPlanCache() { PlanCache::Get().Reset(); }

std::vector<Matching> FindMatchings(const Pattern& pattern,
                                    const graph::Instance& instance) {
  return Matcher(pattern, instance).FindAll();
}

std::vector<Matching> FindMatchingsBruteForce(
    const Pattern& pattern, const graph::Instance& instance) {
  std::vector<NodeId> pattern_nodes = pattern.AllNodes();
  std::vector<std::vector<NodeId>> candidates;
  for (NodeId m : pattern_nodes) {
    std::vector<NodeId> c;
    for (NodeId t : instance.NodesWithLabel(pattern.LabelOf(m))) {
      if (pattern.HasPrintValue(m)) {
        const auto& print = instance.PrintValueOf(t);
        if (!print.has_value() || *print != *pattern.PrintValueOf(m)) continue;
      }
      c.push_back(t);
    }
    candidates.push_back(std::move(c));
  }

  std::vector<Matching> out;
  std::vector<size_t> cursor(pattern_nodes.size(), 0);
  const size_t n = pattern_nodes.size();
  if (n == 0) {
    out.emplace_back();  // The empty pattern has one (empty) matching.
    return out;
  }
  while (true) {
    // Build and test the current assignment.
    bool viable = true;
    for (size_t i = 0; i < n && viable; ++i) {
      viable = cursor[i] < candidates[i].size();
    }
    if (viable) {
      Matching matching;
      for (size_t i = 0; i < n; ++i) {
        matching.Bind(pattern_nodes[i], candidates[i][cursor[i]]);
      }
      bool ok = true;
      for (NodeId m : pattern_nodes) {
        for (const auto& [label, target] : pattern.OutEdges(m)) {
          if (!instance.HasEdge(matching.At(m), label, matching.At(target))) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) out.push_back(std::move(matching));
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (candidates[i].empty()) return {};  // Some node has no candidate.
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
    }
    if (i == n) break;
  }
  return out;
}

}  // namespace good::pattern
