#include "pattern/matcher.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "graph/undo_journal.h"

namespace good::pattern {

using graph::Instance;
using graph::NodeId;

namespace internal {

void AbortUnboundPatternNode(uint32_t pattern_node_id) {
  std::fprintf(stderr,
               "Matching::At: pattern node #%u is not bound in this "
               "matching\n",
               pattern_node_id);
  std::abort();
}

}  // namespace internal

MatchStats& MatchStats::operator+=(const MatchStats& other) {
  candidates_scanned += other.candidates_scanned;
  feasibility_rejections += other.feasibility_rejections;
  backtracks += other.backtracks;
  matchings += other.matchings;
  if (depth_fanout.size() < other.depth_fanout.size()) {
    depth_fanout.resize(other.depth_fanout.size(), 0);
  }
  for (size_t i = 0; i < other.depth_fanout.size(); ++i) {
    depth_fanout[i] += other.depth_fanout[i];
  }
  workers_used = std::max(workers_used, other.workers_used);
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  delta_rejections += other.delta_rejections;
  if (!other.plan_order.empty()) plan_order = other.plan_order;
  if (!other.depth_est_fanout.empty()) depth_est_fanout = other.depth_est_fanout;
  return *this;
}

std::string MatchStats::ToString() const {
  std::ostringstream os;
  os << "cand=" << candidates_scanned << " rej=" << feasibility_rejections
     << " bt=" << backtracks << " match=" << matchings << " fanout=[";
  for (size_t i = 0; i < depth_fanout.size(); ++i) {
    if (i > 0) os << ",";
    os << depth_fanout[i];
  }
  os << "] workers=" << workers_used;
  if (!plan_order.empty()) {
    os << " plan=[";
    for (size_t i = 0; i < plan_order.size(); ++i) {
      if (i > 0) os << ",";
      os << plan_order[i];
    }
    os << "]";
  }
  if (!depth_est_fanout.empty()) {
    os << " est=[";
    for (size_t i = 0; i < depth_est_fanout.size(); ++i) {
      if (i > 0) os << ",";
      os << depth_est_fanout[i];
    }
    os << "]";
  }
  if (plan_cache_hits > 0 || plan_cache_misses > 0) {
    os << " cache=" << plan_cache_hits << "h/" << plan_cache_misses << "m";
  }
  if (delta_rejections > 0) os << " drej=" << delta_rejections;
  return os.str();
}

void DeltaSet::Finalize() {
  nodes_.assign(node_set_.begin(), node_set_.end());
  std::sort(nodes_.begin(), nodes_.end());
  for (const graph::Edge& e : edge_set_) {
    sources_by_label_[e.label.id].push_back(e.source);
    if (e.source == e.target) loops_by_label_[e.label.id].push_back(e.source);
    adjacency_[AdjacencyKey(e.source, e.label)].push_back(e.target);
  }
  auto sort_unique = [](std::vector<graph::NodeId>* list) {
    std::sort(list->begin(), list->end());
    list->erase(std::unique(list->begin(), list->end()), list->end());
  };
  for (auto& [key, list] : sources_by_label_) sort_unique(&list);
  for (auto& [key, list] : loops_by_label_) sort_unique(&list);
  for (auto& [key, list] : adjacency_) sort_unique(&list);
  finalized_ = true;
}

namespace {
const std::vector<graph::NodeId> kEmptyNodeList;
}  // namespace

const std::vector<graph::NodeId>& DeltaSet::EdgeSources(Symbol label) const {
  auto it = sources_by_label_.find(label.id);
  return it == sources_by_label_.end() ? kEmptyNodeList : it->second;
}

const std::vector<graph::NodeId>& DeltaSet::SelfLoopSources(
    Symbol label) const {
  auto it = loops_by_label_.find(label.id);
  return it == loops_by_label_.end() ? kEmptyNodeList : it->second;
}

const std::vector<graph::NodeId>& DeltaSet::OutTargets(graph::NodeId s,
                                                       Symbol label) const {
  auto it = adjacency_.find(AdjacencyKey(s, label));
  return it == adjacency_.end() ? kEmptyNodeList : it->second;
}

DeltaSet BuildDeltaSince(const graph::UndoJournal& journal, size_t mark) {
  DeltaSet delta;
  journal.ForEachTouchedSince(
      mark,
      [&delta](graph::NodeId n, bool added) {
        if (added) {
          delta.AddNode(n);
        } else {
          delta.RemoveNode(n);
        }
      },
      [&delta](graph::NodeId s, Symbol label, graph::NodeId t, bool added) {
        if (added) {
          delta.AddEdge(s, label, t);
        } else {
          delta.RemoveEdge(s, label, t);
        }
      });
  delta.Finalize();
  return delta;
}

namespace {

constexpr size_t kNoLimit = static_cast<size_t>(-1);

/// Candidate visits between deadline polls. A poll is one relaxed
/// atomic load plus (every stride) a steady_clock read; 256 visits of
/// real search work amortize that to noise while still bounding the
/// reaction latency to a few microseconds of enumeration.
constexpr size_t kPollStride = 256;

/// One edge constraint between the pattern node being placed and an
/// already-placed pattern node (the "anchor"): the candidate must be
/// adjacent to the anchor's image via `label` in direction `out_of_m`.
struct Anchor {
  Symbol label;
  size_t position;  // Depth of the placed neighbour in the plan order.
  bool out_of_m;    // True: pattern edge (m, label, neighbour).
};

/// One delta-membership constraint of a delta-seeded plan: the image of
/// the pattern edge (order[source_position], label,
/// order[target_position]) must (require) or must not (!require) lie in
/// the delta. Evaluated at depth max(source_position, target_position)
/// — the first depth where both endpoints are bound — with the
/// candidate standing in for whichever endpoint is being placed. The
/// !require checks are the disjoint-partition bookkeeping: seed item i
/// only emits matchings where no earlier item is delta-mapped, so each
/// new matching is emitted by exactly one seed item.
struct DeltaEdgeCheck {
  Symbol label;
  size_t source_position;
  size_t target_position;
  bool require;
};

/// Everything about placing order[depth] that only depends on the
/// pattern and the plan order — computed once so the per-candidate hot
/// path allocates nothing and does no pattern-side hash lookups.
struct DepthPlan {
  NodeId m;
  Symbol label;
  bool has_print = false;
  /// Candidates drawn from anchor adjacency lists carry arbitrary
  /// labels; candidates from the label or printable index are
  /// pre-filtered.
  bool check_label = false;
  /// Labels of pattern self-loops (m, α, m): the candidate t must carry
  /// the instance loop (t, α, t).
  std::vector<Symbol> self_loops;
  /// Edge constraints towards already-placed neighbours. Candidates()
  /// enforces every one of them.
  std::vector<Anchor> anchors;
  /// Index into `anchors` of the anchor that drives candidate
  /// generation (the others are enforced by O(1) edge probes). The
  /// cost-based planner picks the anchor with the smallest expected
  /// fan-out; the naive planner keeps the first.
  size_t base_anchor = 0;
  /// Delta-membership constraints that become decidable at this depth
  /// (delta-seeded plans only).
  std::vector<DeltaEdgeCheck> delta_checks;
  /// Delta-seeded edge-item plans, depth 1 only: draw candidates from
  /// the delta adjacency OutTargets(assignment[0], delta_base_label)
  /// instead of an instance adjacency list, then verify label, print,
  /// and every anchor (including the base) against the live instance.
  /// This makes the seed edge's delta membership true by construction.
  bool delta_only_base = false;
  Symbol delta_base_label;
  /// Candidates at this depth must NOT be delta nodes — the exclusion
  /// of an earlier isolated-node seed item.
  bool exclude_delta_node = false;
};

/// The per-(pattern, instance) search plan, shared read-only by the
/// serial enumerator and every parallel worker — and, via the global
/// plan cache, by later enumerations against the same stats epoch.
struct SearchPlan {
  std::vector<NodeId> order;
  std::vector<size_t> position;  // Pattern node id -> depth in order.
  std::vector<DepthPlan> plans;
  /// Estimated candidate count per depth (cost-based plans only).
  std::vector<double> est_fanout;

  size_t PositionOf(NodeId pattern_node) const {
    return pattern_node.id < position.size() ? position[pattern_node.id]
                                             : order.size();
  }
};

/// Expected size of the candidate list an anchor would generate, from
/// the instance's degree-sum statistics: a pattern edge (m, α, p) with
/// p placed draws candidates from InSources(image(p), α) — on average
/// the α-in-degree of a label(p) node; the mirrored case (p, α, m)
/// reads OutTargets, the average α-out-degree.
double ExpectedAnchorFanout(const Instance& instance, Symbol edge_label,
                            Symbol neighbour_label, bool out_of_m) {
  return out_of_m ? instance.AvgInFanout(neighbour_label, edge_label)
                  : instance.AvgOutFanout(neighbour_label, edge_label);
}

/// Estimated candidate-set size for placing pattern node `m` once the
/// nodes flagged in `placed` are bound: a print value pins the set to
/// at most one node; otherwise label count × the product of per-anchor
/// selectivities (expected fan-out / label count, capped at 1 — an
/// anchor can only narrow the set).
double EstimateCandidates(const Pattern& pattern, const Instance& instance,
                          NodeId m, const std::vector<bool>& placed) {
  const double label_count =
      static_cast<double>(instance.CountNodesWithLabel(pattern.LabelOf(m)));
  if (label_count == 0.0) return 0.0;
  double est = pattern.HasPrintValue(m) ? 1.0 : label_count;
  auto constrain = [&](double fanout) {
    est *= std::min(1.0, fanout / label_count);
  };
  for (const auto& [label, target] : pattern.OutEdges(m)) {
    if (target != m && placed[target.id]) {
      constrain(ExpectedAnchorFanout(instance, label, pattern.LabelOf(target),
                                     /*out_of_m=*/true));
    }
  }
  for (const auto& [source, label] : pattern.InEdges(m)) {
    if (source != m && placed[source.id]) {
      constrain(ExpectedAnchorFanout(instance, label, pattern.LabelOf(source),
                                     /*out_of_m=*/false));
    }
  }
  return est;
}

/// Cost-based elimination order: greedily place the node with the
/// smallest estimated candidate set, re-estimating after each placement
/// so freshly anchored nodes get credit for their anchors. Ties break
/// to the lowest pattern node id (strict <, nodes scanned in ascending
/// id order), keeping symmetric patterns deterministic and stable
/// against the old syntactic order. `forced_prefix` (delta-seeded
/// plans) pins the first depths to the seed item's nodes; the greedy
/// order fills in the rest, crediting anchors into the prefix.
std::vector<NodeId> PlanOrderCost(const Pattern& pattern,
                                  const Instance& instance,
                                  std::vector<double>* est_fanout,
                                  const std::vector<NodeId>& forced_prefix) {
  std::vector<NodeId> nodes = pattern.AllNodes();
  uint32_t max_id = 0;
  for (NodeId m : nodes) max_id = std::max(max_id, m.id);
  std::vector<bool> placed(nodes.empty() ? 0 : max_id + 1, false);
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  est_fanout->reserve(nodes.size());
  for (NodeId m : forced_prefix) {
    est_fanout->push_back(EstimateCandidates(pattern, instance, m, placed));
    order.push_back(m);
    placed[m.id] = true;
  }
  while (order.size() < nodes.size()) {
    NodeId best{};
    double best_est = 0.0;
    for (NodeId m : nodes) {
      if (placed[m.id]) continue;
      const double est = EstimateCandidates(pattern, instance, m, placed);
      if (!best.valid() || est < best_est) {
        best = m;
        best_est = est;
      }
    }
    order.push_back(best);
    est_fanout->push_back(best_est);
    placed[best.id] = true;
  }
  return order;
}

/// The naive (pre-statistics) elimination order: seed with the most
/// selective node by label count, then repeatedly pick a node adjacent
/// to the placed set (falling back to the most selective remaining node
/// for a new connected component). Kept verbatim as PlannerMode::kNaive
/// for differential testing and benchmarking.
std::vector<NodeId> PlanOrder(const Pattern& pattern, const Instance& instance,
                              const std::vector<NodeId>& forced_prefix) {
  std::vector<NodeId> nodes = pattern.AllNodes();
  std::vector<NodeId> order;
  uint32_t max_id = 0;
  for (NodeId m : nodes) max_id = std::max(max_id, m.id);
  // Pattern node ids are dense; index flags/selectivity by id.
  std::vector<bool> placed_flag(nodes.empty() ? 0 : max_id + 1, false);
  std::vector<size_t> selectivity(placed_flag.size(), 0);
  for (NodeId m : nodes) {
    selectivity[m.id] =
        pattern.HasPrintValue(m)
            ? 1
            : instance.CountNodesWithLabel(pattern.LabelOf(m));
  }

  for (NodeId m : forced_prefix) {
    order.push_back(m);
    placed_flag[m.id] = true;
  }

  auto adjacent_to_placed = [&](NodeId m) -> bool {
    for (const auto& [label, target] : pattern.OutEdges(m)) {
      (void)label;
      if (placed_flag[target.id]) return true;
    }
    for (const auto& [source, label] : pattern.InEdges(m)) {
      (void)label;
      if (placed_flag[source.id]) return true;
    }
    return false;
  };

  while (order.size() < nodes.size()) {
    NodeId best{};
    size_t best_sel = std::numeric_limits<size_t>::max();
    bool best_adjacent = false;
    for (NodeId m : nodes) {
      if (placed_flag[m.id]) continue;
      bool adj = !order.empty() && adjacent_to_placed(m);
      size_t sel = selectivity[m.id];
      // Adjacency dominates; among equals prefer selectivity.
      if (!best.valid() || (adj && !best_adjacent) ||
          (adj == best_adjacent && sel < best_sel)) {
        best = m;
        best_sel = sel;
        best_adjacent = adj;
      }
    }
    order.push_back(best);
    placed_flag[best.id] = true;
  }
  return order;
}

SearchPlan BuildSearchPlan(const Pattern& pattern, const Instance& instance,
                           PlannerMode mode,
                           const std::vector<NodeId>& forced_prefix = {}) {
  SearchPlan plan;
  plan.order =
      mode == PlannerMode::kCostBased
          ? PlanOrderCost(pattern, instance, &plan.est_fanout, forced_prefix)
          : PlanOrder(pattern, instance, forced_prefix);
  uint32_t max_id = 0;
  for (NodeId m : plan.order) max_id = std::max(max_id, m.id);
  plan.position.assign(plan.order.empty() ? 0 : max_id + 1,
                       plan.order.size());
  for (size_t i = 0; i < plan.order.size(); ++i) {
    plan.position[plan.order[i].id] = i;
  }
  plan.plans.resize(plan.order.size());
  for (size_t d = 0; d < plan.order.size(); ++d) {
    DepthPlan& depth_plan = plan.plans[d];
    depth_plan.m = plan.order[d];
    depth_plan.label = pattern.LabelOf(depth_plan.m);
    depth_plan.has_print = pattern.HasPrintValue(depth_plan.m);
    for (const auto& [label, target] : pattern.OutEdges(depth_plan.m)) {
      if (target == depth_plan.m) {
        depth_plan.self_loops.push_back(label);
        continue;
      }
      size_t pos = plan.PositionOf(target);
      if (pos < d) depth_plan.anchors.push_back(Anchor{label, pos, true});
    }
    for (const auto& [source, label] : pattern.InEdges(depth_plan.m)) {
      if (source == depth_plan.m) continue;  // Mirrored in OutEdges above.
      size_t pos = plan.PositionOf(source);
      if (pos < d) depth_plan.anchors.push_back(Anchor{label, pos, false});
    }
    depth_plan.check_label =
        !depth_plan.has_print && !depth_plan.anchors.empty();
    if (mode == PlannerMode::kCostBased && depth_plan.anchors.size() > 1) {
      // Drive candidates from the anchor with the smallest expected
      // fan-out; strict < keeps ties on the first anchor, so the choice
      // is deterministic for identical statistics.
      double best_fanout = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < depth_plan.anchors.size(); ++i) {
        const Anchor& anchor = depth_plan.anchors[i];
        const Symbol neighbour_label =
            pattern.LabelOf(plan.order[anchor.position]);
        const double fanout = ExpectedAnchorFanout(
            instance, anchor.label, neighbour_label, anchor.out_of_m);
        if (fanout < best_fanout) {
          best_fanout = fanout;
          depth_plan.base_anchor = i;
        }
      }
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Delta seeding (semi-naive enumeration)
// ---------------------------------------------------------------------------

/// One way a matching can intersect the delta: through the image of a
/// pattern edge (a delta edge) or through the image of an *isolated*
/// pattern node (a delta node). Non-isolated pattern nodes need no item
/// of their own: a delta node's incident edges were necessarily added
/// after the node — inside the same window — so any matching that maps
/// a non-isolated pattern node onto a delta node already maps some
/// pattern edge onto a delta edge.
struct SeedItem {
  bool is_edge = false;
  NodeId source;  // Edge items: the pattern source. Node items: the node.
  NodeId target;  // Edge items only; == source for a pattern self-loop.
  Symbol label;   // Edge items only.
};

/// The deterministic item order shared by every delta-seeded
/// enumeration of a pattern: pattern edges first (ascending source id,
/// each node's OutEdges in insertion order), then isolated pattern
/// nodes (ascending id). A matching is new exactly when some item maps
/// into the delta; seed item i enumerates the matchings whose FIRST
/// delta-mapped item is i, so the per-item outputs concatenate into a
/// duplicate-free, deterministic sequence.
std::vector<SeedItem> BuildSeedItems(const Pattern& pattern) {
  std::vector<SeedItem> items;
  for (NodeId m : pattern.AllNodes()) {
    for (const auto& [label, target] : pattern.OutEdges(m)) {
      items.push_back(SeedItem{/*is_edge=*/true, m, target, label});
    }
  }
  for (NodeId m : pattern.AllNodes()) {
    if (pattern.OutEdges(m).empty() && pattern.InEdges(m).empty()) {
      items.push_back(SeedItem{/*is_edge=*/false, m, NodeId{}, Symbol{}});
    }
  }
  return items;
}

/// Builds the search plan for one seed item: the item's pattern nodes
/// are forced to the first depths (their candidates come from the delta
/// seed lists), the planner orders the rest, and every earlier item
/// gets an exclusion constraint so the per-item outputs partition the
/// new matchings.
SearchPlan BuildSeededSearchPlan(const Pattern& pattern,
                                 const Instance& instance, PlannerMode mode,
                                 const std::vector<SeedItem>& items,
                                 size_t index) {
  const SeedItem& seed = items[index];
  std::vector<NodeId> prefix;
  prefix.push_back(seed.source);
  if (seed.is_edge && seed.target != seed.source) {
    prefix.push_back(seed.target);
  }
  SearchPlan plan = BuildSearchPlan(pattern, instance, mode, prefix);
  if (seed.is_edge && seed.target != seed.source) {
    // Depth-0 roots are delta edge sources; depth 1 walks the delta
    // adjacency, making the seed edge delta-mapped by construction.
    // (A self-loop seed needs nothing here: its depth-0 roots are the
    // delta self-loop sources.)
    plan.plans[1].delta_only_base = true;
    plan.plans[1].delta_base_label = seed.label;
  }
  for (size_t j = 0; j < index; ++j) {
    const SeedItem& prev = items[j];
    if (prev.is_edge) {
      const size_t source_pos = plan.PositionOf(prev.source);
      const size_t target_pos = plan.PositionOf(prev.target);
      plan.plans[std::max(source_pos, target_pos)].delta_checks.push_back(
          DeltaEdgeCheck{prev.label, source_pos, target_pos,
                         /*require=*/false});
    } else {
      plan.plans[plan.PositionOf(prev.source)].exclude_delta_node = true;
    }
  }
  return plan;
}

/// Depth-0 candidates for one seed item: the matching delta seed list,
/// pre-filtered against the live instance (alive, label, print value) —
/// delta lists are raw journal footprints and carry no label
/// information. Dropped entries are charged to the caller's stats so
/// candidates_scanned still reflects the real scan work.
std::vector<NodeId> DeltaRoots(const Pattern& pattern,
                               const Instance& instance, const DeltaSet& delta,
                               const SeedItem& seed, MatchStats* stats) {
  const std::vector<NodeId>* raw;
  if (seed.is_edge) {
    raw = seed.source == seed.target ? &delta.SelfLoopSources(seed.label)
                                     : &delta.EdgeSources(seed.label);
  } else {
    raw = &delta.nodes();
  }
  const Symbol label = pattern.LabelOf(seed.source);
  const bool has_print = pattern.HasPrintValue(seed.source);
  std::vector<NodeId> roots;
  roots.reserve(raw->size());
  for (NodeId t : *raw) {
    if (!instance.HasNode(t) || instance.LabelOf(t) != label) continue;
    if (has_print) {
      const auto& print = instance.PrintValueOf(t);
      if (!print.has_value() || *print != *pattern.PrintValueOf(seed.source)) {
        continue;
      }
    }
    roots.push_back(t);
  }
  if (stats != nullptr) {
    const size_t dropped = raw->size() - roots.size();
    stats->candidates_scanned += dropped;
    stats->feasibility_rejections += dropped;
  }
  return roots;
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Structural fingerprint of a pattern, cache-key-ready: node ids with
/// labels and a has-print marker (the print *value* is irrelevant — the
/// plan reads values from the live pattern at enumeration time and the
/// cost model only cares that the set is pinned to ≤1), plus every
/// edge. Prefixed with the instance's stats epoch: any mutation bumps
/// the epoch, so stale plans simply stop being found and age out of the
/// LRU.
std::string PatternFingerprint(const Pattern& pattern) {
  std::string key;
  for (NodeId m : pattern.AllNodes()) {
    key += '|';
    key.append(std::to_string(m.id));
    key += ':';
    key.append(std::to_string(pattern.LabelOf(m).id));
    if (pattern.HasPrintValue(m)) key += '*';
    for (const auto& [label, target] : pattern.OutEdges(m)) {
      key += ';';
      key.append(std::to_string(label.id));
      key += '>';
      key.append(std::to_string(target.id));
    }
  }
  return key;
}

std::string PlanKey(const Pattern& pattern, uint64_t epoch) {
  std::string key;
  key += 'e';
  key.append(std::to_string(epoch));
  key.append(PatternFingerprint(pattern));
  return key;
}

/// Slot key for a PlanPin: pattern structure + planner mode + which
/// plan (the full plan or one seed item's) — deliberately NOT the stats
/// epoch, that is the whole point of pinning.
std::string PinKey(const Pattern& pattern, PlannerMode mode,
                   const std::string& slot) {
  std::string key;
  key += mode == PlannerMode::kCostBased ? 'c' : 'n';
  key += '#';
  key.append(slot);
  key.append(PatternFingerprint(pattern));
  return key;
}

/// Global thread-safe LRU of compiled cost-based plans, keyed by
/// (pattern fingerprint, stats epoch). Shared process-wide: server
/// sessions whose working copies are unmutated copies of one version
/// (same epoch) reuse each other's plans, and rule fixpoints stop
/// re-planning a pattern within a round. Plans are immutable once
/// built, so concurrent lookups can hand out the same shared_ptr; two
/// racing builders of one key insert byte-identical plans (the build is
/// a pure function of pattern + statistics), so either winning is
/// harmless.
class PlanCache {
 public:
  static PlanCache& Get() {
    static PlanCache* cache = new PlanCache();  // Leaked: process-lifetime.
    return *cache;
  }

  std::shared_ptr<const SearchPlan> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }

  void Insert(const std::string& key,
              std::shared_ptr<const SearchPlan> plan) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // A racing builder got here first with an identical plan.
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(plan), lru_.begin()});
    if (entries_.size() > kCapacity) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  PlanCacheInfo Info() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return PlanCacheInfo{hits_, misses_, entries_.size(), kCapacity};
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const SearchPlan> plan;
    std::list<std::string>::iterator pos;
  };

  /// Patterns are compiler-generated per operation/rule; 128 entries
  /// comfortably cover a rule set plus ad-hoc queries while bounding
  /// memory to a few hundred KB.
  static constexpr size_t kCapacity = 128;

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::unordered_map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace

/// The per-run pinned-plan store declared in matcher.h. A plain map —
/// no LRU, no locking: one pin serves one engine run, which executes
/// matchers sequentially and holds a handful of patterns. Reusing a
/// plan across stats epochs is sound because plans only fix the node
/// elimination order and anchor/direction choices; every constraint is
/// re-verified against the live instance during enumeration.
class PlanPin {
 public:
  std::shared_ptr<const SearchPlan> Lookup(const std::string& key) const {
    auto it = slots_.find(key);
    return it == slots_.end() ? nullptr : it->second;
  }

  void Insert(const std::string& key, std::shared_ptr<const SearchPlan> plan) {
    slots_[key] = std::move(plan);
  }

 private:
  std::unordered_map<std::string, std::shared_ptr<const SearchPlan>> slots_;
};

std::shared_ptr<PlanPin> MakePlanPin() { return std::make_shared<PlanPin>(); }

namespace {

/// The single full-plan acquisition point for every Matcher entry path:
/// pin lookup first (epoch-independent), then the global cache
/// (cost-based plans with caching enabled), build on miss, and
/// planner-observability recording into MatchOptions::stats. A pin hit
/// counts as a plan_cache_hit.
std::shared_ptr<const SearchPlan> AcquirePlan(const Pattern& pattern,
                                              const Instance& instance,
                                              const MatchOptions& options) {
  std::shared_ptr<const SearchPlan> plan;
  std::string pin_key;
  if (options.plan_pin != nullptr) {
    pin_key = PinKey(pattern, options.planner, "full");
    plan = options.plan_pin->Lookup(pin_key);
    if (plan != nullptr && options.stats != nullptr) {
      ++options.stats->plan_cache_hits;
    }
  }
  const bool cacheable =
      options.planner == PlannerMode::kCostBased && options.use_plan_cache;
  std::string key;
  if (plan == nullptr && cacheable) {
    key = PlanKey(pattern, instance.stats_epoch());
    plan = PlanCache::Get().Lookup(key);
    if (options.stats != nullptr) {
      if (plan != nullptr) {
        ++options.stats->plan_cache_hits;
      } else {
        ++options.stats->plan_cache_misses;
      }
    }
    if (plan != nullptr && options.plan_pin != nullptr) {
      options.plan_pin->Insert(pin_key, plan);
    }
  }
  if (plan == nullptr) {
    plan = std::make_shared<const SearchPlan>(
        BuildSearchPlan(pattern, instance, options.planner));
    if (cacheable) PlanCache::Get().Insert(key, plan);
    if (options.plan_pin != nullptr) options.plan_pin->Insert(pin_key, plan);
  }
  if (options.stats != nullptr) {
    options.stats->plan_order.clear();
    options.stats->plan_order.reserve(plan->order.size());
    for (NodeId m : plan->order) options.stats->plan_order.push_back(m.id);
    options.stats->depth_est_fanout = plan->est_fanout;
  }
  return plan;
}

/// Seed-item plan acquisition: pin slot per (pattern, planner, item),
/// built on miss. Seeded plans never enter the global cache — its
/// (fingerprint, epoch) key would miss every fixpoint round anyway,
/// which is the churn the pin exists to absorb.
std::shared_ptr<const SearchPlan> AcquireSeededPlan(
    const Pattern& pattern, const Instance& instance,
    const MatchOptions& options, const std::vector<SeedItem>& items,
    size_t index) {
  std::string pin_key;
  if (options.plan_pin != nullptr) {
    pin_key = PinKey(pattern, options.planner, std::to_string(index));
    std::shared_ptr<const SearchPlan> pinned =
        options.plan_pin->Lookup(pin_key);
    if (pinned != nullptr) {
      if (options.stats != nullptr) ++options.stats->plan_cache_hits;
      return pinned;
    }
  }
  auto plan = std::make_shared<const SearchPlan>(BuildSeededSearchPlan(
      pattern, instance, options.planner, items, index));
  if (options.plan_pin != nullptr) options.plan_pin->Insert(pin_key, plan);
  return plan;
}

/// Backtracking state for one enumeration run. One instance per thread:
/// the plan is shared read-only, everything mutable lives here.
class Enumerator {
 public:
  /// `deadline` (optional) is polled every kPollStride candidate
  /// visits; `trip` (optional, parallel runs) is a flag shared by all
  /// workers — the first to observe an expiry sets it, peers observe it
  /// and stop promptly.
  Enumerator(const Pattern& pattern, const Instance& instance,
             const SearchPlan& plan, size_t limit, MatchStats* sink,
             const common::Deadline* deadline = nullptr,
             std::atomic<bool>* trip = nullptr)
      : pattern_(pattern),
        instance_(instance),
        plan_(plan),
        limit_(limit),
        sink_(sink),
        deadline_(deadline),
        trip_(trip),
        armed_(deadline != nullptr && deadline->armed()) {
    assignment_.assign(plan_.order.size(), NodeId{});
    scratch_.resize(plan_.order.size());
    stats_.depth_fanout.assign(plan_.order.size(), 0);
    // Pre-bind the plan keys so leaf emission only rebinds values.
    for (NodeId m : plan_.order) matching_scratch_.Bind(m, NodeId{});
  }

  /// Delta-seeded runs: the delta the plan's DeltaEdgeCheck /
  /// exclude_delta_node / delta_only_base constraints evaluate against.
  void set_delta(const DeltaSet* delta) { delta_ = delta; }

  /// Delta-seeded serial runs: depth-0 candidates come from this
  /// pre-filtered seed list instead of the label/printable index (the
  /// parallel driver passes its roots explicitly, so it never needs
  /// this). Not owned; must outlive the run.
  void set_root_override(const std::vector<NodeId>* roots) {
    root_override_ = roots;
  }

  /// Full enumeration from depth 0, the classic serial path: invokes
  /// `callback` per matching, honoring the limit and callback aborts.
  size_t RunSerial(const std::function<bool(const Matching&)>& callback) {
    callback_ = &callback;
    if (limit_ > 0) Recurse(0);
    callback_ = nullptr;
    stats_.matchings = emitted_;
    stats_.workers_used = 1;
    if (sink_ != nullptr) *sink_ += stats_;
    return emitted_;
  }

  /// Parallel-worker entry: enumerates the subtrees rooted at
  /// roots[begin, end), appending matchings to `out` (count-only when
  /// null). Feasibility, fanout, and backtrack accounting match what
  /// the serial matcher does for the same depth-0 candidates. Returns
  /// the number of matchings emitted for this chunk; cumulative stats
  /// stay in stats() for the caller to merge after the job completes.
  size_t RunChunk(const std::vector<NodeId>& roots, size_t begin, size_t end,
                  std::vector<Matching>* out) {
    // A tripped worker drains its remaining queued chunks immediately.
    if (!interrupt_.ok()) return 0;
    if (trip_ != nullptr && trip_->load(std::memory_order_relaxed)) {
      NotePeerTrip();
      return 0;
    }
    collect_ = out;
    const size_t emitted_before = emitted_;
    const DepthPlan& plan0 = plan_.plans[0];
    for (size_t i = begin; i < end; ++i) {
      if (armed_ && !PollDeadline()) break;
      NodeId t = roots[i];
      if (!Feasible(plan0, t)) continue;
      if (delta_ != nullptr && !DeltaFeasible(plan0, 0, t)) continue;
      ++stats_.depth_fanout[0];
      assignment_[0] = t;
      if (!Recurse(1)) break;
    }
    collect_ = nullptr;
    const size_t emitted = emitted_ - emitted_before;
    stats_.matchings += emitted;
    return emitted;
  }

  const MatchStats& stats() const { return stats_; }

  /// OK, or the status (kDeadlineExceeded/kCancelled) that cut this
  /// enumeration short.
  const Status& interrupt() const { return interrupt_; }

  /// True when interrupt() only mirrors a peer worker's trip — the
  /// driver prefers the primary status recorded by the worker that
  /// actually observed the deadline.
  bool interrupt_from_peer() const { return interrupt_from_peer_; }

 private:
  void NotePeerTrip() {
    interrupt_ = Status::Cancelled("enumeration aborted by a peer worker");
    interrupt_from_peer_ = true;
  }

  /// Stride-gated deadline poll. Returns false when enumeration must
  /// stop; interrupt_ then holds the reason. Only called when armed_.
  bool PollDeadline() {
    if ((++polls_ & (kPollStride - 1)) != 0) return true;
    if (trip_ != nullptr && trip_->load(std::memory_order_relaxed)) {
      NotePeerTrip();
      return false;
    }
    Status expired = deadline_->Check();
    if (!expired.ok()) {
      interrupt_ = std::move(expired);
      if (trip_ != nullptr) trip_->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// True iff mapping plan.m to `t` respects the node label and every
  /// pattern self-loop (m, α, m), which demands the instance edge
  /// (t, α, t). Placed-neighbour edges and print values are already
  /// enforced by Candidates(), which draws from (and intersects
  /// against) the anchor adjacency lists.
  bool Feasible(const DepthPlan& plan, NodeId t) {
    if (plan.check_label && instance_.LabelOf(t) != plan.label) {
      ++stats_.feasibility_rejections;
      return false;
    }
    for (Symbol label : plan.self_loops) {
      if (!instance_.HasEdge(t, label, t)) {
        ++stats_.feasibility_rejections;
        return false;
      }
    }
    return true;
  }

  /// The adjacency list an anchor constrains candidates to.
  const std::vector<NodeId>& AnchorList(const Anchor& anchor) const {
    NodeId image = assignment_[anchor.position];
    return anchor.out_of_m ? instance_.InSources(image, anchor.label)
                           : instance_.OutTargets(image, anchor.label);
  }

  /// True iff `t` satisfies the anchor's edge constraint.
  bool SatisfiesAnchor(const Anchor& anchor, NodeId t) const {
    NodeId image = assignment_[anchor.position];
    return anchor.out_of_m ? instance_.HasEdge(t, anchor.label, image)
                           : instance_.HasEdge(image, anchor.label, t);
  }

  /// Evaluates the depth's delta-membership constraints against
  /// candidate `t` (standing in for the node being placed at `depth`).
  /// Only called on delta-seeded runs.
  bool DeltaFeasible(const DepthPlan& plan, size_t depth, NodeId t) {
    if (plan.exclude_delta_node && delta_->ContainsNode(t)) {
      ++stats_.delta_rejections;
      return false;
    }
    for (const DeltaEdgeCheck& check : plan.delta_checks) {
      const NodeId source = check.source_position == depth
                                ? t
                                : assignment_[check.source_position];
      const NodeId target = check.target_position == depth
                                ? t
                                : assignment_[check.target_position];
      if (delta_->ContainsEdge(source, check.label, target) != check.require) {
        ++stats_.delta_rejections;
        return false;
      }
    }
    return true;
  }

  /// Candidate instance nodes for pattern node order[depth].
  ///
  /// Anchored nodes (≥1 already-placed neighbour) draw candidates from
  /// the plan-chosen base anchor's adjacency list (the cost-based
  /// planner picks the direction/anchor with the smallest expected
  /// fan-out at plan time), intersected against the remaining anchors
  /// via O(1) edge-index probes; unanchored nodes fall back to the
  /// label index (or the printable dedup index, which pins the
  /// candidate set to at most one node).
  const std::vector<NodeId>& Candidates(size_t depth) {
    const DepthPlan& plan = plan_.plans[depth];
    std::vector<NodeId>& scratch = scratch_[depth];
    if (depth == 0 && root_override_ != nullptr) {
      // Delta-seeded run: the driver pre-filtered this seed list
      // against the instance (and charged the dropped entries).
      stats_.candidates_scanned += root_override_->size();
      return *root_override_;
    }
    if (plan.delta_only_base) {
      // Walk the delta adjacency of the seed edge instead of an
      // instance adjacency list; label/print/anchors are then verified
      // against the live instance (delta lists are raw journal
      // footprints).
      scratch.clear();
      const std::vector<NodeId>& base_list =
          delta_->OutTargets(assignment_[0], plan.delta_base_label);
      stats_.candidates_scanned += base_list.size();
      for (NodeId t : base_list) {
        if (!instance_.HasNode(t) || instance_.LabelOf(t) != plan.label) {
          ++stats_.feasibility_rejections;
          continue;
        }
        if (plan.has_print) {
          const auto& print = instance_.PrintValueOf(t);
          if (!print.has_value() ||
              *print != *pattern_.PrintValueOf(plan.m)) {
            ++stats_.feasibility_rejections;
            continue;
          }
        }
        bool in_all = true;
        for (const Anchor& anchor : plan.anchors) {
          if (!SatisfiesAnchor(anchor, t)) {
            in_all = false;
            ++stats_.feasibility_rejections;
            break;
          }
        }
        if (in_all) scratch.push_back(t);
      }
      return scratch;
    }
    if (plan.has_print) {
      scratch.clear();
      auto found =
          instance_.FindPrintable(plan.label, *pattern_.PrintValueOf(plan.m));
      if (found.has_value()) {
        ++stats_.candidates_scanned;
        bool in_all = true;
        for (const Anchor& anchor : plan.anchors) {
          if (!SatisfiesAnchor(anchor, *found)) {
            in_all = false;
            ++stats_.feasibility_rejections;
            break;
          }
        }
        if (in_all) scratch.push_back(*found);
      }
      return scratch;
    }

    if (plan.anchors.empty()) {
      scratch = instance_.NodesWithLabel(plan.label);
      stats_.candidates_scanned += scratch.size();
      return scratch;
    }

    const size_t base = plan.base_anchor;
    const std::vector<NodeId>& base_list = AnchorList(plan.anchors[base]);
    stats_.candidates_scanned += base_list.size();
    if (plan.anchors.size() == 1) return base_list;  // Borrow, no copy.

    scratch.clear();
    for (NodeId t : base_list) {
      bool in_all = true;
      for (size_t i = 0; i < plan.anchors.size(); ++i) {
        if (i == base) continue;
        if (!SatisfiesAnchor(plan.anchors[i], t)) {
          in_all = false;
          ++stats_.feasibility_rejections;
          break;
        }
      }
      if (in_all) scratch.push_back(t);
    }
    return scratch;
  }

  bool Recurse(size_t depth) {  // Returns false to abort enumeration.
    if (depth == plan_.order.size()) {
      // Rebind the reused matching in place: keys were pre-bound in the
      // constructor, so this never rehashes or allocates.
      for (size_t i = 0; i < plan_.order.size(); ++i) {
        matching_scratch_.Bind(plan_.order[i], assignment_[i]);
      }
      ++emitted_;
      if (collect_ != nullptr) {
        collect_->push_back(matching_scratch_);
      } else if (callback_ != nullptr && !(*callback_)(matching_scratch_)) {
        return false;
      }
      return emitted_ < limit_;
    }
    const DepthPlan& plan = plan_.plans[depth];
    const size_t emitted_before = emitted_;
    for (NodeId t : Candidates(depth)) {
      if (armed_ && !PollDeadline()) return false;
      if (!Feasible(plan, t)) continue;
      if (delta_ != nullptr && !DeltaFeasible(plan, depth, t)) continue;
      ++stats_.depth_fanout[depth];
      assignment_[depth] = t;
      if (!Recurse(depth + 1)) return false;
    }
    if (emitted_ == emitted_before) ++stats_.backtracks;
    return true;
  }

  const Pattern& pattern_;
  const Instance& instance_;
  const SearchPlan& plan_;
  size_t limit_;
  MatchStats* sink_;
  const common::Deadline* deadline_;
  std::atomic<bool>* trip_;
  const DeltaSet* delta_ = nullptr;
  const std::vector<NodeId>* root_override_ = nullptr;
  const bool armed_;
  size_t polls_ = 0;
  Status interrupt_;
  bool interrupt_from_peer_ = false;
  const std::function<bool(const Matching&)>* callback_ = nullptr;
  std::vector<Matching>* collect_ = nullptr;
  std::vector<NodeId> assignment_;
  // Per-depth candidate buffers (reused across sibling subtrees).
  std::vector<std::vector<NodeId>> scratch_;
  // Reused across leaves; callback_ receives it by const reference.
  Matching matching_scratch_;
  MatchStats stats_;
  size_t emitted_ = 0;
};

/// The parallel driver behind FindAll/Count. Partitions the depth-0
/// candidate list into chunks, runs a per-worker Enumerator over the
/// chunks via the shared thread pool queue, and merges chunk outputs in
/// chunk-index order — so the matching sequence and all stats (except
/// workers_used) are identical to the serial matcher's. Sets *engaged
/// to false (without touching the outputs) when the enumeration is
/// ineligible: serial options, a limit, the empty pattern, or a depth-0
/// candidate list below the threshold — the caller then runs the serial
/// engine. When a deadline interrupt cuts the run short, returns the
/// interrupt status with the outputs and stats untouched.
Status TryParallelEnumerate(const Pattern& pattern, const Instance& instance,
                            const SearchPlan& plan,
                            const MatchOptions& options,
                            std::vector<Matching>* out, size_t* count,
                            bool* engaged,
                            const std::vector<NodeId>* roots_override = nullptr,
                            const DeltaSet* delta = nullptr) {
  *engaged = false;
  if (options.num_threads == 0) return Status::OK();
  if (options.limit != kNoLimit) return Status::OK();
  // The empty pattern has exactly one matching (the empty map); let the
  // serial engine emit it.
  if (plan.order.empty()) return Status::OK();

  MatchStats merged;
  merged.depth_fanout.assign(plan.order.size(), 0);
  const DepthPlan& plan0 = plan.plans[0];
  std::vector<NodeId> roots_storage;
  if (roots_override == nullptr) {
    if (plan0.has_print) {
      auto found =
          instance.FindPrintable(plan0.label, *pattern.PrintValueOf(plan0.m));
      if (found.has_value()) {
        ++merged.candidates_scanned;
        roots_storage.push_back(*found);
      }
    } else {
      roots_storage = instance.NodesWithLabel(plan0.label);
      merged.candidates_scanned += roots_storage.size();
    }
  } else {
    // Delta-seeded roots, already filtered by the driver. Charged here
    // to mirror the serial engine's root-override accounting.
    merged.candidates_scanned += roots_override->size();
  }
  const std::vector<NodeId>& roots =
      roots_override != nullptr ? *roots_override : roots_storage;
  if (roots.size() < options.parallel_threshold) return Status::OK();
  *engaged = true;

  const size_t workers =
      std::min(options.num_threads, std::max<size_t>(roots.size(), 1));
  // ~4 chunks per worker: slack for dynamic load balancing without
  // fragmenting the ordered merge.
  const size_t chunk_size =
      std::max<size_t>(1, (roots.size() + workers * 4 - 1) / (workers * 4));
  const size_t num_chunks = (roots.size() + chunk_size - 1) / chunk_size;

  const bool armed =
      options.deadline != nullptr && options.deadline->armed();
  std::atomic<bool> trip{false};
  std::vector<std::vector<Matching>> chunk_out(out != nullptr ? num_chunks
                                                              : 0);
  std::vector<size_t> chunk_count(num_chunks, 0);
  std::vector<std::unique_ptr<Enumerator>> per_worker;
  per_worker.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    per_worker.push_back(std::make_unique<Enumerator>(
        pattern, instance, plan, kNoLimit, nullptr,
        armed ? options.deadline : nullptr, armed ? &trip : nullptr));
    per_worker.back()->set_delta(delta);
  }
  {
    common::ThreadPool pool(workers);
    pool.ParallelFor(num_chunks, [&](size_t worker, size_t chunk) {
      const size_t begin = chunk * chunk_size;
      const size_t end = std::min(roots.size(), begin + chunk_size);
      chunk_count[chunk] = per_worker[worker]->RunChunk(
          roots, begin, end, out != nullptr ? &chunk_out[chunk] : nullptr);
    });
  }

  // Interrupt resolution: prefer the primary status recorded by a
  // worker that observed the deadline itself over a peer-trip mirror.
  Status interrupt;
  for (const auto& enumerator : per_worker) {
    if (enumerator->interrupt().ok()) continue;
    if (interrupt.ok() || !enumerator->interrupt_from_peer()) {
      interrupt = enumerator->interrupt();
      if (!enumerator->interrupt_from_peer()) break;
    }
  }
  if (!interrupt.ok()) return interrupt;

  size_t total = 0;
  for (size_t c = 0; c < num_chunks; ++c) total += chunk_count[c];
  for (const auto& enumerator : per_worker) merged += enumerator->stats();
  // The depth-0 retreat the serial matcher counts when nothing at all
  // was emitted.
  if (total == 0) ++merged.backtracks;
  merged.workers_used = std::max<size_t>(1, std::min(workers, num_chunks));
  if (options.stats != nullptr) *options.stats += merged;

  if (out != nullptr) {
    out->clear();
    out->reserve(total);
    for (std::vector<Matching>& chunk : chunk_out) {
      std::move(chunk.begin(), chunk.end(), std::back_inserter(*out));
    }
  }
  *count = total;
  return Status::OK();
}

/// The serial engine behind every non-parallel entry path: runs the
/// (possibly cached) plan to completion, reporting the interrupt status
/// and the number of matchings visited.
Status RunSerialEnumeration(const Pattern& pattern, const Instance& instance,
                            const SearchPlan& plan,
                            const MatchOptions& options,
                            const std::function<bool(const Matching&)>& callback,
                            size_t* visited) {
  Enumerator enumerator(pattern, instance, plan, options.limit, options.stats,
                        options.deadline, nullptr);
  size_t n = enumerator.RunSerial(callback);
  if (visited != nullptr) *visited = n;
  return enumerator.interrupt();
}

/// The semi-naive driver behind every delta-seeded entry path
/// (MatchOptions::delta != nullptr): enumerates the seed items in their
/// fixed order, each over its pre-filtered delta seed list, and
/// concatenates the per-item outputs. Per item the parallel engine
/// engages under the usual conditions (no callback, no limit, enough
/// roots) with the serial engine as fallback — both walk the same
/// roots under the same plan, so the emitted sequence is byte-identical
/// either way. `callback` (ForEach semantics, always serial) and `out`
/// (FindAll) are each optional; `total_out` is kept current so an
/// interrupt still reports the visited count.
Status RunDeltaEnumeration(const Pattern& pattern, const Instance& instance,
                           const MatchOptions& options,
                           const std::function<bool(const Matching&)>* callback,
                           std::vector<Matching>* out, size_t* total_out) {
  const DeltaSet& delta = *options.delta;
  const std::vector<SeedItem> items = BuildSeedItems(pattern);
  size_t total = 0;
  bool user_abort = false;
  for (size_t i = 0; i < items.size() && !user_abort; ++i) {
    if (total >= options.limit) break;
    std::vector<NodeId> roots =
        DeltaRoots(pattern, instance, delta, items[i], options.stats);
    if (roots.empty()) continue;
    std::shared_ptr<const SearchPlan> plan =
        AcquireSeededPlan(pattern, instance, options, items, i);
    MatchOptions item_options = options;
    item_options.limit =
        options.limit == kNoLimit ? kNoLimit : options.limit - total;
    if (callback == nullptr) {
      size_t item_count = 0;
      bool engaged = false;
      std::vector<Matching> item_out;
      GOOD_RETURN_NOT_OK(TryParallelEnumerate(
          pattern, instance, *plan, item_options,
          out != nullptr ? &item_out : nullptr, &item_count, &engaged, &roots,
          &delta));
      if (engaged) {
        total += item_count;
        if (out != nullptr) {
          std::move(item_out.begin(), item_out.end(),
                    std::back_inserter(*out));
        }
        if (total_out != nullptr) *total_out = total;
        continue;
      }
    }
    Enumerator enumerator(pattern, instance, *plan, item_options.limit,
                          options.stats, options.deadline, nullptr);
    enumerator.set_delta(&delta);
    enumerator.set_root_override(&roots);
    total += enumerator.RunSerial([&](const Matching& m) {
      if (out != nullptr) out->push_back(m);
      if (callback != nullptr && !(*callback)(m)) {
        user_abort = true;
        return false;
      }
      return true;
    });
    if (total_out != nullptr) *total_out = total;
    GOOD_RETURN_NOT_OK(enumerator.interrupt());
  }
  if (total_out != nullptr) *total_out = total;
  return Status::OK();
}

}  // namespace

Status Matcher::ForEachChecked(
    const std::function<bool(const Matching&)>& callback,
    size_t* visited) const {
  if (visited != nullptr) *visited = 0;
  // Upfront check: tiny enumerations may finish under the poll stride,
  // so an already-expired deadline must still be observed.
  if (options_.deadline != nullptr) {
    GOOD_RETURN_NOT_OK(options_.deadline->Check());
  }
  if (options_.delta != nullptr) {
    return RunDeltaEnumeration(pattern_, instance_, options_, &callback,
                               nullptr, visited);
  }
  std::shared_ptr<const SearchPlan> plan =
      AcquirePlan(pattern_, instance_, options_);
  return RunSerialEnumeration(pattern_, instance_, *plan, options_, callback,
                              visited);
}

size_t Matcher::ForEach(
    const std::function<bool(const Matching&)>& callback) const {
  size_t visited = 0;
  (void)ForEachChecked(callback, &visited);
  return visited;
}

Result<std::vector<Matching>> Matcher::FindAllChecked() const {
  if (options_.deadline != nullptr) {
    GOOD_RETURN_NOT_OK(options_.deadline->Check());
  }
  if (options_.delta != nullptr) {
    std::vector<Matching> out;
    GOOD_RETURN_NOT_OK(RunDeltaEnumeration(pattern_, instance_, options_,
                                           nullptr, &out, nullptr));
    return out;
  }
  // One plan acquisition per call: the parallel driver and the serial
  // fallback share it (and its cache hit/miss accounting).
  std::shared_ptr<const SearchPlan> plan =
      AcquirePlan(pattern_, instance_, options_);
  std::vector<Matching> out;
  size_t count = 0;
  bool engaged = false;
  GOOD_RETURN_NOT_OK(TryParallelEnumerate(pattern_, instance_, *plan, options_,
                                          &out, &count, &engaged));
  if (engaged) return out;
  GOOD_RETURN_NOT_OK(RunSerialEnumeration(
      pattern_, instance_, *plan, options_,
      [&](const Matching& m) {
        out.push_back(m);
        return true;
      },
      nullptr));
  return out;
}

std::vector<Matching> Matcher::FindAll() const {
  Result<std::vector<Matching>> result = FindAllChecked();
  if (!result.ok()) return {};
  return std::move(*result);
}

Result<size_t> Matcher::CountChecked() const {
  if (options_.deadline != nullptr) {
    GOOD_RETURN_NOT_OK(options_.deadline->Check());
  }
  if (options_.delta != nullptr) {
    size_t total = 0;
    GOOD_RETURN_NOT_OK(RunDeltaEnumeration(pattern_, instance_, options_,
                                           nullptr, nullptr, &total));
    return total;
  }
  std::shared_ptr<const SearchPlan> plan =
      AcquirePlan(pattern_, instance_, options_);
  size_t count = 0;
  bool engaged = false;
  GOOD_RETURN_NOT_OK(TryParallelEnumerate(pattern_, instance_, *plan, options_,
                                          nullptr, &count, &engaged));
  if (engaged) return count;
  size_t visited = 0;
  GOOD_RETURN_NOT_OK(RunSerialEnumeration(
      pattern_, instance_, *plan, options_,
      [](const Matching&) { return true; }, &visited));
  return visited;
}

size_t Matcher::Count() const {
  Result<size_t> result = CountChecked();
  return result.ok() ? *result : 0;
}

Result<bool> Matcher::ExistsChecked() const {
  MatchOptions limited = options_;
  limited.limit = std::min<size_t>(options_.limit, 1);
  Matcher bounded(pattern_, instance_, limited);
  GOOD_ASSIGN_OR_RETURN(size_t count, bounded.CountChecked());
  return count > 0;
}

bool Matcher::Exists() const {
  Result<bool> result = ExistsChecked();
  return result.ok() && *result;
}

PlanCacheInfo GlobalPlanCacheInfo() { return PlanCache::Get().Info(); }

void ResetGlobalPlanCache() { PlanCache::Get().Reset(); }

std::vector<Matching> FindMatchings(const Pattern& pattern,
                                    const graph::Instance& instance) {
  return Matcher(pattern, instance).FindAll();
}

std::vector<Matching> FindMatchingsBruteForce(
    const Pattern& pattern, const graph::Instance& instance) {
  std::vector<NodeId> pattern_nodes = pattern.AllNodes();
  std::vector<std::vector<NodeId>> candidates;
  for (NodeId m : pattern_nodes) {
    std::vector<NodeId> c;
    for (NodeId t : instance.NodesWithLabel(pattern.LabelOf(m))) {
      if (pattern.HasPrintValue(m)) {
        const auto& print = instance.PrintValueOf(t);
        if (!print.has_value() || *print != *pattern.PrintValueOf(m)) continue;
      }
      c.push_back(t);
    }
    candidates.push_back(std::move(c));
  }

  std::vector<Matching> out;
  std::vector<size_t> cursor(pattern_nodes.size(), 0);
  const size_t n = pattern_nodes.size();
  if (n == 0) {
    out.emplace_back();  // The empty pattern has one (empty) matching.
    return out;
  }
  while (true) {
    // Build and test the current assignment.
    bool viable = true;
    for (size_t i = 0; i < n && viable; ++i) {
      viable = cursor[i] < candidates[i].size();
    }
    if (viable) {
      Matching matching;
      for (size_t i = 0; i < n; ++i) {
        matching.Bind(pattern_nodes[i], candidates[i][cursor[i]]);
      }
      bool ok = true;
      for (NodeId m : pattern_nodes) {
        for (const auto& [label, target] : pattern.OutEdges(m)) {
          if (!instance.HasEdge(matching.At(m), label, matching.At(target))) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) out.push_back(std::move(matching));
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (candidates[i].empty()) return {};  // Some node has no candidate.
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
    }
    if (i == n) break;
  }
  return out;
}

}  // namespace good::pattern
