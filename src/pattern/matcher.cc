#include "pattern/matcher.h"

#include <algorithm>
#include <limits>

namespace good::pattern {

using graph::Instance;
using graph::NodeId;

namespace {

/// Backtracking state for one enumeration run.
class Enumerator {
 public:
  Enumerator(const Pattern& pattern, const Instance& instance, size_t limit,
             const std::function<bool(const Matching&)>& callback)
      : pattern_(pattern),
        instance_(instance),
        limit_(limit),
        callback_(callback) {
    order_ = PlanOrder();
    assignment_.assign(order_.size(), NodeId{});
    for (size_t i = 0; i < order_.size(); ++i) position_[order_[i]] = i;
  }

  size_t Run() {
    if (limit_ == 0) return 0;
    Recurse(0);
    return emitted_;
  }

 private:
  /// Chooses the node elimination order: seed with the most selective
  /// node, then repeatedly pick a node adjacent to the placed set
  /// (falling back to the most selective remaining node for a new
  /// connected component).
  std::vector<NodeId> PlanOrder() const {
    std::vector<NodeId> nodes = pattern_.AllNodes();
    std::vector<NodeId> order;
    std::vector<bool> placed_flag;
    std::unordered_map<NodeId, size_t> index;
    for (size_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;
    placed_flag.assign(nodes.size(), false);

    auto selectivity = [&](NodeId m) -> size_t {
      if (pattern_.HasPrintValue(m)) return 1;
      return instance_.CountNodesWithLabel(pattern_.LabelOf(m));
    };
    auto adjacent_to_placed = [&](NodeId m) -> bool {
      for (const auto& [label, target] : pattern_.OutEdges(m)) {
        (void)label;
        if (placed_flag[index.at(target)]) return true;
      }
      for (const auto& [source, label] : pattern_.InEdges(m)) {
        (void)label;
        if (placed_flag[index.at(source)]) return true;
      }
      return false;
    };

    while (order.size() < nodes.size()) {
      NodeId best{};
      size_t best_sel = std::numeric_limits<size_t>::max();
      bool best_adjacent = false;
      for (NodeId m : nodes) {
        if (placed_flag[index.at(m)]) continue;
        bool adj = !order.empty() && adjacent_to_placed(m);
        size_t sel = selectivity(m);
        // Adjacency dominates; among equals prefer selectivity.
        if (!best.valid() || (adj && !best_adjacent) ||
            (adj == best_adjacent && sel < best_sel)) {
          best = m;
          best_sel = sel;
          best_adjacent = adj;
        }
      }
      order.push_back(best);
      placed_flag[index.at(best)] = true;
    }
    return order;
  }

  /// True iff mapping `m` to `t` respects labels, prints, and all edges
  /// between `m` and already-placed pattern nodes.
  bool Feasible(size_t depth, NodeId m, NodeId t) const {
    if (instance_.LabelOf(t) != pattern_.LabelOf(m)) return false;
    if (pattern_.HasPrintValue(m)) {
      const auto& instance_print = instance_.PrintValueOf(t);
      if (!instance_print.has_value() ||
          *instance_print != *pattern_.PrintValueOf(m)) {
        return false;
      }
    }
    for (const auto& [label, target] : pattern_.OutEdges(m)) {
      auto pos = PositionOf(target);
      if (pos < depth && !instance_.HasEdge(t, label, assignment_[pos])) {
        return false;
      }
    }
    for (const auto& [source, label] : pattern_.InEdges(m)) {
      auto pos = PositionOf(source);
      if (pos < depth && !instance_.HasEdge(assignment_[pos], label, t)) {
        return false;
      }
    }
    return true;
  }

  size_t PositionOf(NodeId pattern_node) const {
    auto it = position_.find(pattern_node);
    return it == position_.end() ? order_.size() : it->second;
  }

  /// Candidate instance nodes for pattern node order_[depth]: derived
  /// from an already-placed neighbour's adjacency when possible,
  /// otherwise from the label index (or the printable dedup index).
  std::vector<NodeId> Candidates(size_t depth) const {
    NodeId m = order_[depth];
    if (pattern_.HasPrintValue(m)) {
      auto found =
          instance_.FindPrintable(pattern_.LabelOf(m), *pattern_.PrintValueOf(m));
      if (found.has_value()) return {*found};
      return {};
    }
    // Prefer deriving candidates from a placed neighbour.
    for (const auto& [source, label] : pattern_.InEdges(m)) {
      size_t pos = PositionOf(source);
      if (pos < depth) {
        return instance_.OutTargets(assignment_[pos], label);
      }
    }
    for (const auto& [label, target] : pattern_.OutEdges(m)) {
      size_t pos = PositionOf(target);
      if (pos < depth) {
        return instance_.InSources(assignment_[pos], label);
      }
    }
    return instance_.NodesWithLabel(pattern_.LabelOf(m));
  }

  bool Recurse(size_t depth) {  // Returns false to abort enumeration.
    if (depth == order_.size()) {
      Matching matching;
      for (size_t i = 0; i < order_.size(); ++i) {
        matching.Bind(order_[i], assignment_[i]);
      }
      ++emitted_;
      if (!callback_(matching)) return false;
      return emitted_ < limit_;
    }
    NodeId m = order_[depth];
    for (NodeId t : Candidates(depth)) {
      if (!Feasible(depth, m, t)) continue;
      assignment_[depth] = t;
      if (!Recurse(depth + 1)) return false;
    }
    return true;
  }

  const Pattern& pattern_;
  const Instance& instance_;
  size_t limit_;
  const std::function<bool(const Matching&)>& callback_;
  std::vector<NodeId> order_;
  std::unordered_map<NodeId, size_t> position_;
  std::vector<NodeId> assignment_;
  size_t emitted_ = 0;
};

}  // namespace

size_t Matcher::ForEach(
    const std::function<bool(const Matching&)>& callback) const {
  Enumerator enumerator(pattern_, instance_, options_.limit, callback);
  return enumerator.Run();
}

std::vector<Matching> Matcher::FindAll() const {
  std::vector<Matching> out;
  ForEach([&](const Matching& m) {
    out.push_back(m);
    return true;
  });
  return out;
}

size_t Matcher::Count() const {
  return ForEach([](const Matching&) { return true; });
}

bool Matcher::Exists() const {
  Matcher limited(pattern_, instance_, MatchOptions{1});
  return limited.Count() > 0;
}

std::vector<Matching> FindMatchings(const Pattern& pattern,
                                    const graph::Instance& instance) {
  return Matcher(pattern, instance).FindAll();
}

std::vector<Matching> FindMatchingsBruteForce(
    const Pattern& pattern, const graph::Instance& instance) {
  std::vector<NodeId> pattern_nodes = pattern.AllNodes();
  std::vector<std::vector<NodeId>> candidates;
  for (NodeId m : pattern_nodes) {
    std::vector<NodeId> c;
    for (NodeId t : instance.NodesWithLabel(pattern.LabelOf(m))) {
      if (pattern.HasPrintValue(m)) {
        const auto& print = instance.PrintValueOf(t);
        if (!print.has_value() || *print != *pattern.PrintValueOf(m)) continue;
      }
      c.push_back(t);
    }
    candidates.push_back(std::move(c));
  }

  std::vector<Matching> out;
  std::vector<size_t> cursor(pattern_nodes.size(), 0);
  const size_t n = pattern_nodes.size();
  if (n == 0) {
    out.emplace_back();  // The empty pattern has one (empty) matching.
    return out;
  }
  for (NodeId m : pattern_nodes) {
    (void)m;
  }
  while (true) {
    // Build and test the current assignment.
    bool viable = true;
    for (size_t i = 0; i < n && viable; ++i) {
      viable = cursor[i] < candidates[i].size();
    }
    if (viable) {
      Matching matching;
      for (size_t i = 0; i < n; ++i) {
        matching.Bind(pattern_nodes[i], candidates[i][cursor[i]]);
      }
      bool ok = true;
      for (NodeId m : pattern_nodes) {
        for (const auto& [label, target] : pattern.OutEdges(m)) {
          if (!instance.HasEdge(matching.At(m), label, matching.At(target))) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) out.push_back(std::move(matching));
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (candidates[i].empty()) return {};  // Some node has no candidate.
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
    }
    if (i == n) break;
  }
  return out;
}

}  // namespace good::pattern
