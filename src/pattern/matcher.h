/// \file matcher.h
/// \brief Patterns and matchings (Section 3 of the paper).
///
/// A pattern over a scheme S is syntactically itself an instance over S
/// (we reuse graph::Instance as the representation; pattern printable
/// nodes may be valueless wildcards). A *matching* of pattern J = (M, F)
/// in instance I = (N, E) is a total mapping i : M -> N such that
///   - labels are preserved: λ(i(m)) = λ(m),
///   - defined print values are preserved: print(m) defined implies
///     print(i(m)) = print(m),
///   - edges are preserved: (m, α, n) ∈ F implies (i(m), α, i(n)) ∈ E.
/// Matchings are graph homomorphisms — NOT required to be injective.
/// The empty pattern has exactly one matching (the empty map), which is
/// what makes Figure 12's "add one single node" work.

#ifndef GOOD_PATTERN_MATCHER_H_
#define GOOD_PATTERN_MATCHER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "graph/instance.h"

namespace good::pattern {

/// \brief Patterns are syntactically instances.
using Pattern = graph::Instance;

namespace internal {
/// Aborts with a diagnostic naming the unbound pattern node. Out of
/// line so the header stays light; used by Matching::At.
[[noreturn]] void AbortUnboundPatternNode(uint32_t pattern_node_id);
}  // namespace internal

/// \brief One matching: a total map from pattern nodes to instance
/// nodes.
class Matching {
 public:
  Matching() = default;

  void Bind(graph::NodeId pattern_node, graph::NodeId instance_node) {
    map_[pattern_node] = instance_node;
  }

  /// The instance node a pattern node is mapped to. The pattern node
  /// must be bound; an unbound node aborts with a diagnostic naming the
  /// offending pattern node id (instead of an opaque std::out_of_range),
  /// so misuse on concurrent paths is immediately attributable. Use
  /// Find() for a non-fatal checked lookup.
  graph::NodeId At(graph::NodeId pattern_node) const {
    auto it = map_.find(pattern_node);
    if (it == map_.end()) internal::AbortUnboundPatternNode(pattern_node.id);
    return it->second;
  }

  /// Checked lookup: the mapped instance node, or nullopt when
  /// `pattern_node` is not bound.
  std::optional<graph::NodeId> Find(graph::NodeId pattern_node) const {
    auto it = map_.find(pattern_node);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(graph::NodeId pattern_node) const {
    return map_.contains(pattern_node);
  }

  size_t size() const { return map_.size(); }

  const std::unordered_map<graph::NodeId, graph::NodeId>& map() const {
    return map_;
  }

  friend bool operator==(const Matching&, const Matching&) = default;

 private:
  std::unordered_map<graph::NodeId, graph::NodeId> map_;
};

/// \brief Counters describing one (or several, accumulated) enumeration
/// runs. All counters are cheap relaxed increments on the search hot
/// path; collection is opt-in via MatchOptions::stats.
struct MatchStats {
  /// Candidate instance nodes examined (before any feasibility check).
  size_t candidates_scanned = 0;
  /// Candidates rejected by label, print-value, or edge-consistency
  /// checks — including candidates pruned during adjacency-list
  /// intersection.
  size_t feasibility_rejections = 0;
  /// Times the search retreated from a depth after exhausting its
  /// candidates without emitting below it.
  size_t backtracks = 0;
  /// Matchings emitted.
  size_t matchings = 0;
  /// Per-depth count of candidates that survived feasibility and were
  /// placed (the effective fanout of the search tree at each level).
  std::vector<size_t> depth_fanout;
  /// Widest parallelism observed: the number of workers the enumeration
  /// was partitioned over (1 for a serial run, 0 before any run has
  /// been accumulated). Unlike the other counters this is not additive,
  /// so operator+= takes the maximum across accumulated runs.
  size_t workers_used = 0;
  /// Plan-cache outcomes over the enumerations this object observed
  /// (additive). Both stay 0 when caching is disabled or the naive
  /// planner runs. Pinned-plan reuse (MatchOptions::plan_pin) counts as
  /// a hit.
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  /// Candidates rejected by delta-membership constraints during a
  /// delta-seeded enumeration (MatchOptions::delta): either a seed item
  /// whose image fell outside the delta, or an earlier item's exclusion
  /// (the disjoint-partition bookkeeping). 0 for full enumerations.
  size_t delta_rejections = 0;
  /// Planner decisions of the most recent enumeration: the chosen node
  /// elimination order (pattern node ids, depth 0 first; recorded for
  /// every planner mode) and the planner's estimated candidate count
  /// per depth (cost-based plans only — compare against depth_fanout to
  /// judge the estimates). Non-additive: operator+= keeps the most
  /// recent non-empty value.
  std::vector<uint32_t> plan_order;
  std::vector<double> depth_est_fanout;

  MatchStats& operator+=(const MatchStats& other);

  /// Compact one-line rendering, e.g.
  /// "cand=120 rej=80 bt=14 match=26 fanout=[12,8,6] workers=1
  ///  plan=[2,0,1] est=[3.0,1.5,0.8] cache=1h/1m".
  std::string ToString() const;
};

/// The depth-0 candidate count below which a parallel-enabled matcher
/// still runs serially (partitioning overhead dominates small inputs).
inline constexpr size_t kDefaultParallelThreshold = 64;

/// Default delta-size fraction above which semi-naive evaluation falls
/// back to full re-evaluation: when (delta nodes + delta edges) exceeds
/// this fraction of (instance nodes + instance edges), seeding every
/// item separately costs more than one full enumeration. Consumed by
/// rules::RuleEngine::set_delta_fallback_fraction.
inline constexpr double kDefaultDeltaFallbackFraction = 0.75;

/// \brief The set of nodes and edges a journal window touched — the
/// "delta" of semi-naive evaluation (ISSUE 8 / ROADMAP item 1).
///
/// Built in journal order from graph::UndoJournal::ForEachTouchedSince
/// (an add followed by a remove of the same item nets out, so a window
/// that created and rolled back an edge exposes nothing), then
/// Finalize()d once to materialize the sorted seed lists the matcher
/// enumerates: delta nodes, per-label delta-edge sources, and the delta
/// adjacency (source, label) -> targets. All lists are ascending-id
/// sorted so delta-seeded enumeration is deterministic regardless of
/// journal order.
///
/// A DeltaSet describes *additions*. Removal entries subtract matching
/// additions within the window (exact for the rule engine, whose
/// fixpoint rounds are purely additive); a net-negative window (more
/// removals than additions) is not representable and must be evaluated
/// naively.
class DeltaSet {
 public:
  // ---- Build phase (call in journal order, then Finalize once) -----
  void AddNode(graph::NodeId n) { node_set_.insert(n); }
  void RemoveNode(graph::NodeId n) { node_set_.erase(n); }
  void AddEdge(graph::NodeId s, Symbol label, graph::NodeId t) {
    edge_set_.insert(graph::Edge{s, label, t});
  }
  void RemoveEdge(graph::NodeId s, Symbol label, graph::NodeId t) {
    edge_set_.erase(graph::Edge{s, label, t});
  }

  /// Materializes the sorted seed lists. Call exactly once, after the
  /// last mutation; the query accessors below require it.
  void Finalize();

  bool finalized() const { return finalized_; }
  bool empty() const { return node_set_.empty() && edge_set_.empty(); }
  size_t num_nodes() const { return node_set_.size(); }
  size_t num_edges() const { return edge_set_.size(); }

  bool ContainsNode(graph::NodeId n) const { return node_set_.contains(n); }
  bool ContainsEdge(graph::NodeId s, Symbol label, graph::NodeId t) const {
    return edge_set_.contains(graph::Edge{s, label, t});
  }

  // ---- Seed lists (Finalize() required; ascending-id sorted) -------

  /// Every delta node.
  const std::vector<graph::NodeId>& nodes() const { return nodes_; }
  /// Distinct sources of delta edges labeled `label`.
  const std::vector<graph::NodeId>& EdgeSources(Symbol label) const;
  /// Distinct sources s of delta self-loops (s, label, s).
  const std::vector<graph::NodeId>& SelfLoopSources(Symbol label) const;
  /// Targets t of delta edges (s, label, t) — the delta adjacency.
  const std::vector<graph::NodeId>& OutTargets(graph::NodeId s,
                                               Symbol label) const;

 private:
  static uint64_t AdjacencyKey(graph::NodeId s, Symbol label) {
    return (static_cast<uint64_t>(s.id) << 32) | label.id;
  }

  std::unordered_set<graph::NodeId> node_set_;
  std::unordered_set<graph::Edge, graph::EdgeHash> edge_set_;
  bool finalized_ = false;
  std::vector<graph::NodeId> nodes_;
  std::unordered_map<uint32_t, std::vector<graph::NodeId>> sources_by_label_;
  std::unordered_map<uint32_t, std::vector<graph::NodeId>> loops_by_label_;
  std::unordered_map<uint64_t, std::vector<graph::NodeId>> adjacency_;
};

/// Builds the Finalize()d DeltaSet of the journal window [mark, end):
/// one ForEachTouchedSince pass with removals netting out matching
/// additions, then Finalize. `mark` is a graph::UndoJournal::Mark.
DeltaSet BuildDeltaSince(const graph::UndoJournal& journal, size_t mark);

/// \brief A private per-run plan store that survives stats-epoch churn.
///
/// The global plan cache keys by (pattern fingerprint, stats epoch), so
/// a rule fixpoint — which mutates the instance every round — misses it
/// every round by design. A PlanPin gives one engine run a handful of
/// slots keyed by pattern + seed item only: a pinned plan is reused
/// across epochs. That is sound because a plan only fixes the node
/// elimination order and anchor choices; every constraint is re-checked
/// against the live instance during enumeration, so a statistically
/// stale plan can cost time but never correctness. Opaque; create with
/// MakePlanPin() and pass via MatchOptions::plan_pin. Not thread-safe
/// across concurrent Matcher calls (the rule engine runs matchers
/// sequentially; parallelism lives inside one call).
class PlanPin;

/// A fresh, empty plan pin.
std::shared_ptr<PlanPin> MakePlanPin();

/// \brief Join-order planning mode.
enum class PlannerMode {
  /// Order pattern nodes greedily by estimated candidate-set size from
  /// the instance's live cardinality statistics (graph::Instance stats
  /// accessors), and pick each depth's driving anchor — forward
  /// OutTargets vs. backward InSources — by expected fan-out at plan
  /// time. The default.
  kCostBased,
  /// The syntactic order: selectivity = label count only, adjacency to
  /// placed nodes dominates, the first anchor drives candidates. Kept
  /// for differential testing and benchmarking; never cached.
  kNaive,
};

/// \brief Tuning and statistics for matching enumeration.
struct MatchOptions {
  /// Stop after this many matchings (e.g. 1 for existence checks).
  size_t limit = static_cast<size_t>(-1);
  /// When non-null, enumeration counters are accumulated (+=) here.
  MatchStats* stats = nullptr;
  /// Worker threads for FindAll()/Count() enumeration; 0 preserves the
  /// fully serial engine. Parallel enumeration partitions the depth-0
  /// candidate list into chunks and merges per-chunk results in chunk
  /// order, so the matching sequence (and all stats except
  /// workers_used) is identical to the serial matcher's. Enumerations
  /// with a limit, callbacks (ForEach), and Exists() always run
  /// serially.
  size_t num_threads = 0;
  /// Minimum depth-0 candidate count before parallelism engages; below
  /// it the serial engine runs even when num_threads > 0. Set to 0 to
  /// force the parallel path (differential tests do).
  size_t parallel_threshold = kDefaultParallelThreshold;
  /// Execution cutoff (wall-clock and/or cancellation token; not
  /// owned). Both the serial engine and every parallel worker poll it
  /// every few hundred candidate visits; on expiry or cancellation the
  /// checked entry points (FindAllChecked/CountChecked/ForEachChecked)
  /// return kDeadlineExceeded/kCancelled promptly. The polls never
  /// alter the search when they pass, so enumerations that complete are
  /// bit-identical with and without a deadline — the parallel engine's
  /// determinism guarantee is preserved on success.
  const common::Deadline* deadline = nullptr;
  /// See PlannerMode. Any plan enumerates the same matching *set*; only
  /// the emission order within a run and the search effort differ, and
  /// one plan is shared by the serial engine and every parallel worker
  /// of a run, so serial-vs-parallel byte-identity holds per mode.
  PlannerMode planner = PlannerMode::kCostBased;
  /// Reuse compiled plans from the global LRU cache keyed by
  /// (pattern fingerprint, stats epoch). Sound because every instance
  /// mutation bumps the epoch; disable to force replanning (benchmarks
  /// isolating plan cost do). Only cost-based plans are cached.
  bool use_plan_cache = true;
  /// Semi-naive enumeration (not owned; must outlive the call): when
  /// non-null, only matchings with at least one pattern item (edge or
  /// isolated node) mapped into the delta are enumerated — exactly the
  /// matchings that did not exist before the delta's journal window,
  /// provided the window is purely additive. The enumeration partitions
  /// matchings by their first delta-mapped item, so each new matching
  /// is emitted exactly once, in a deterministic order shared by the
  /// serial and parallel engines (byte-identical, as for full runs —
  /// though the order differs from a full enumeration's). The empty
  /// pattern's sole matching predates any delta, so it yields zero
  /// matchings here. The DeltaSet must be Finalize()d.
  const DeltaSet* delta = nullptr;
  /// Per-run pinned-plan store (not owned); see PlanPin. Consulted
  /// before the global cache for full plans and is the only reuse path
  /// for delta-seeded plans.
  PlanPin* plan_pin = nullptr;
};

/// \brief Enumerates matchings of `pattern` in `instance`.
///
/// The matcher compiles a search plan per (pattern, instance) pair. The
/// default cost-based planner greedily orders pattern nodes by
/// estimated candidate-set size — a print value pins the set to at most
/// one node, otherwise label count times the product of anchor
/// selectivities (expected fan-out from the instance's degree-sum
/// statistics, capped at 1) — and picks the anchor with the smallest
/// expected fan-out to drive each depth's candidates, deciding forward
/// (OutTargets) vs. backward (InSources) traversal at plan time. The
/// remaining anchors are enforced by O(1) edge-index probes;
/// feasibility then re-verifies labels and self-loops. Compiled plans
/// are reused through a global LRU keyed by (pattern fingerprint,
/// stats epoch), invalidated automatically because every instance
/// mutation bumps the epoch.
class Matcher {
 public:
  Matcher(const Pattern& pattern, const graph::Instance& instance,
          MatchOptions options = {})
      : pattern_(pattern), instance_(instance), options_(options) {}

  /// Invokes `callback` once per matching; enumeration stops early when
  /// the callback returns false or the limit is hit. Returns the number
  /// of matchings visited. Always serial (callbacks observe the exact
  /// serial emission order and may abort). With a deadline configured,
  /// an interrupted enumeration simply stops early — use
  /// ForEachChecked() to observe the interrupt status.
  size_t ForEach(const std::function<bool(const Matching&)>& callback) const;

  /// Materializes all matchings. With MatchOptions::num_threads > 0 and
  /// a large enough depth-0 candidate list, enumeration runs on a
  /// worker pool; the returned sequence is identical to the serial
  /// matcher's. With a deadline configured, an interrupted enumeration
  /// returns empty — use FindAllChecked() to tell "no matchings" from
  /// "cut off".
  std::vector<Matching> FindAll() const;

  /// Counts matchings without materializing them. Parallelizes under
  /// the same conditions as FindAll(). Returns 0 on interrupt — use
  /// CountChecked() to observe the status.
  size_t Count() const;

  // ---- Deadline-aware entry points ----------------------------------------
  //
  // Identical to their unchecked namesakes on success; when
  // MatchOptions::deadline expires or its cancel token fires, they stop
  // promptly and surface kDeadlineExceeded / kCancelled instead of a
  // partial result. Without a configured deadline they never fail.

  /// All matchings, or the interrupt status. Parallel runs abort all
  /// workers promptly via a shared trip flag.
  Result<std::vector<Matching>> FindAllChecked() const;

  /// The matching count, or the interrupt status.
  Result<size_t> CountChecked() const;

  /// Serial callback enumeration. On interrupt, returns the status
  /// after `callback` has observed a prefix of the matchings; when
  /// `visited` is non-null it receives the number of matchings visited
  /// (also on the interrupt path).
  Status ForEachChecked(const std::function<bool(const Matching&)>& callback,
                        size_t* visited = nullptr) const;

  /// True iff at least one matching exists, or the interrupt status —
  /// a timed-out existence check must NOT read as "no match" (negation
  /// filters would treat it as a definitive negative). Honors the
  /// caller's MatchOptions (stats still accumulate; a limit of 0 means
  /// no matching can be observed, so the result is false).
  Result<bool> ExistsChecked() const;

  /// Unchecked convenience wrapper around ExistsChecked(): interrupts
  /// (deadline expiry, cancellation) read as false. Only use where no
  /// deadline is configured or a false negative is acceptable.
  bool Exists() const;

 private:
  const Pattern& pattern_;
  const graph::Instance& instance_;
  MatchOptions options_;
};

/// \brief Observability snapshot of the global plan cache.
struct PlanCacheInfo {
  size_t hits = 0;
  size_t misses = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Cumulative hit/miss counters and current occupancy of the global
/// (pattern fingerprint, stats epoch)-keyed plan cache.
PlanCacheInfo GlobalPlanCacheInfo();

/// Drops every cached plan and zeroes the cache counters. Tests and
/// benchmarks isolate their measurements with this; correctness never
/// requires it (stale epochs simply age out of the LRU).
void ResetGlobalPlanCache();

/// Convenience wrapper: all matchings of `pattern` in `instance`.
std::vector<Matching> FindMatchings(const Pattern& pattern,
                                    const graph::Instance& instance);

/// Reference implementation enumerating the full per-label candidate
/// product and filtering; exponential, for differential testing only.
std::vector<Matching> FindMatchingsBruteForce(const Pattern& pattern,
                                              const graph::Instance& instance);

}  // namespace good::pattern

#endif  // GOOD_PATTERN_MATCHER_H_
