/// \file builder.h
/// \brief Fluent construction of patterns and instances.
///
/// The paper's user draws patterns graphically; our substitution is this
/// builder (plus the text format in program/serialize.h and the DOT
/// exporter). The builder accumulates the first error and reports it
/// from Build(), so call sites can chain node/edge additions without
/// checking each step.

#ifndef GOOD_PATTERN_BUILDER_H_
#define GOOD_PATTERN_BUILDER_H_

#include <string_view>
#include <utility>

#include "common/result.h"
#include "graph/instance.h"
#include "schema/scheme.h"

namespace good::pattern {

/// \brief Builds a graph::Instance (used both as pattern and as
/// instance) over a scheme.
class GraphBuilder {
 public:
  explicit GraphBuilder(const schema::Scheme& scheme) : scheme_(scheme) {}

  /// Adds an object node labeled `label`.
  graph::NodeId Object(std::string_view label) {
    return Record(graph_.AddObjectNode(scheme_, Sym(label)));
  }

  /// Adds (or finds) the printable node (label, value).
  graph::NodeId Printable(std::string_view label, Value value) {
    return Record(
        graph_.AddPrintableNode(scheme_, Sym(label), std::move(value)));
  }

  /// Adds a valueless printable node (a wildcard in patterns).
  graph::NodeId Printable(std::string_view label) {
    return Record(graph_.AddValuelessPrintableNode(scheme_, Sym(label)));
  }

  /// Adds the edge (source, label, target).
  GraphBuilder& Edge(graph::NodeId source, std::string_view label,
                     graph::NodeId target) {
    Status s = graph_.AddEdge(scheme_, source, Sym(label), target);
    if (!s.ok() && status_.ok()) status_ = s;
    return *this;
  }

  /// Returns the built graph, or the first accumulated error.
  Result<graph::Instance> Build() {
    if (!status_.ok()) return status_;
    return std::move(graph_);
  }

  /// Returns the built graph, aborting on any accumulated error. For
  /// tests and examples where failure is a programming bug.
  graph::Instance BuildOrDie() {
    status_.OrDie();
    return std::move(graph_);
  }

  const Status& status() const { return status_; }

  /// Access to the graph under construction (e.g. to run queries while
  /// building).
  const graph::Instance& graph() const { return graph_; }

 private:
  graph::NodeId Record(Result<graph::NodeId> result) {
    if (!result.ok()) {
      if (status_.ok()) status_ = result.status();
      return graph::NodeId{};
    }
    return *result;
  }

  const schema::Scheme& scheme_;
  graph::Instance graph_;
  Status status_;
};

}  // namespace good::pattern

#endif  // GOOD_PATTERN_BUILDER_H_
