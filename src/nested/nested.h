/// \file nested.h
/// \brief Nested relational algebra via abstraction (Section 4.3).
///
/// "By adding abstraction, one can moreover simulate the nested
/// relational algebra. ... The abstraction operation is needed in this
/// case to obtain 'faithful' simulations of relation-valued attributes,
/// meaning that duplicate relations can be eliminated."
///
/// NestedSimulator works with one-level nested relations: atomic key
/// attributes plus one set-valued attribute. Flat relations are encoded
/// as in the codd module; NEST is a GOOD program
///   1. node addition grouping tuples by their key attributes,
///   2. edge addition collecting the nested values per group
///      (multivalued has-edges),
///   3. ABSTRACTION over the groups by their value sets, yielding one
///      shared set object per distinct value set (the faithfulness),
///   4. edge addition giving each group a functional value-set edge to
///      its shared set object;
/// UNNEST is a single node addition flattening groups back out. Direct
/// C++ reference implementations allow differential testing.

#ifndef GOOD_NESTED_NESTED_H_
#define GOOD_NESTED_NESTED_H_

#include <set>
#include <string>
#include <vector>

#include "codd/codd.h"
#include "graph/instance.h"
#include "schema/scheme.h"

namespace good::nested {

/// \brief One row of a one-level nested relation.
struct NestedRow {
  std::vector<Value> keys;
  std::set<Value> set_values;

  friend bool operator==(const NestedRow&, const NestedRow&) = default;
  friend bool operator<(const NestedRow& a, const NestedRow& b) {
    if (a.keys != b.keys) return a.keys < b.keys;
    return a.set_values < b.set_values;
  }
};

/// \brief A one-level nested relation as a canonical set of rows.
using NestedRelation = std::set<NestedRow>;

/// \brief Reference NEST: group `rows` (key values followed by one
/// atomic value in the last position) by the key prefix.
NestedRelation DirectNest(
    const std::vector<std::vector<Value>>& flat_rows);

/// \brief Reference UNNEST.
std::set<std::vector<Value>> DirectUnnest(const NestedRelation& nested);

/// \brief Runs the GOOD nest/unnest simulation.
class NestedSimulator {
 public:
  NestedSimulator() = default;

  /// Declares a flat relation whose LAST attribute is the one that will
  /// be nested.
  Status DeclareFlat(const codd::RelSchema& schema);
  Status InsertFlat(const std::string& relation,
                    const std::vector<Value>& values);

  /// NEST: groups `in` by all attributes except the last, collecting
  /// the last attribute's values into shared set objects. `out` names
  /// the group class; set objects are labeled `out` + ":Set".
  Status Nest(const std::string& in, const std::string& out);

  /// UNNEST: flattens the group class `in` (produced by Nest) back into
  /// a flat relation class `out`.
  Status Unnest(const std::string& in, const std::string& out);

  /// Reads a group class back as a canonical nested relation.
  Result<NestedRelation> ExportNested(const std::string& group_class) const;

  /// Reads a flat relation class back (canonical set of rows).
  Result<std::set<std::vector<Value>>> ExportFlat(
      const std::string& relation) const;

  /// Number of set objects backing `group_class` — faithfulness means
  /// this equals the number of DISTINCT value sets.
  size_t CountSetObjects(const std::string& group_class) const;

  const schema::Scheme& scheme() const { return scheme_; }
  const graph::Instance& instance() const { return instance_; }

 private:
  Result<codd::RelSchema> SchemaOf(const std::string& relation) const;

  schema::Scheme scheme_;
  graph::Instance instance_;
  std::vector<codd::RelSchema> flat_schemas_;
  // Nested classes: group class name -> source flat schema.
  std::vector<std::pair<std::string, codd::RelSchema>> nested_;
};

}  // namespace good::nested

#endif  // GOOD_NESTED_NESTED_H_
