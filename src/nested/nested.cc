#include "nested/nested.h"

#include <algorithm>
#include <map>

#include "ops/operations.h"

namespace good::nested {

using graph::Instance;
using graph::NodeId;
using pattern::Pattern;
using schema::Scheme;

namespace {

Symbol DomainLabel(ValueKind kind) {
  return Sym("dom:" + std::string(ValueKindToString(kind)));
}

}  // namespace

NestedRelation DirectNest(
    const std::vector<std::vector<Value>>& flat_rows) {
  std::map<std::vector<Value>, std::set<Value>> groups;
  for (const std::vector<Value>& row : flat_rows) {
    std::vector<Value> keys(row.begin(), row.end() - 1);
    groups[std::move(keys)].insert(row.back());
  }
  NestedRelation out;
  for (auto& [keys, values] : groups) {
    out.insert(NestedRow{keys, values});
  }
  return out;
}

std::set<std::vector<Value>> DirectUnnest(const NestedRelation& nested) {
  std::set<std::vector<Value>> out;
  for (const NestedRow& row : nested) {
    for (const Value& v : row.set_values) {
      std::vector<Value> flat = row.keys;
      flat.push_back(v);
      out.insert(std::move(flat));
    }
  }
  return out;
}

Result<codd::RelSchema> NestedSimulator::SchemaOf(
    const std::string& relation) const {
  for (const codd::RelSchema& s : flat_schemas_) {
    if (s.name == relation) return s;
  }
  return Status::NotFound("flat relation '" + relation +
                          "' is not declared");
}

Status NestedSimulator::DeclareFlat(const codd::RelSchema& schema) {
  if (SchemaOf(schema.name).ok()) {
    return Status::AlreadyExists("relation '" + schema.name +
                                 "' already declared");
  }
  if (schema.attrs.size() < 2) {
    return Status::InvalidArgument(
        "nesting needs at least one key attribute plus the nested one");
  }
  Symbol class_label = Sym(schema.name);
  GOOD_RETURN_NOT_OK(scheme_.EnsureObjectLabel(class_label));
  for (const auto& [attr, kind] : schema.attrs) {
    GOOD_RETURN_NOT_OK(scheme_.EnsurePrintableLabel(DomainLabel(kind), kind));
    GOOD_RETURN_NOT_OK(scheme_.EnsureFunctionalEdgeLabel(Sym(attr)));
    GOOD_RETURN_NOT_OK(
        scheme_.EnsureTriple(class_label, Sym(attr), DomainLabel(kind)));
  }
  flat_schemas_.push_back(schema);
  return Status::OK();
}

Status NestedSimulator::InsertFlat(const std::string& relation,
                                   const std::vector<Value>& values) {
  GOOD_ASSIGN_OR_RETURN(const codd::RelSchema schema, SchemaOf(relation));
  if (values.size() != schema.attrs.size()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  GOOD_ASSIGN_OR_RETURN(NodeId row,
                        instance_.AddObjectNode(scheme_, Sym(relation)));
  for (size_t i = 0; i < values.size(); ++i) {
    const auto& [attr, kind] = schema.attrs[i];
    if (values[i].kind() != kind) {
      return Status::InvalidArgument("value kind mismatch for '" + attr +
                                     "'");
    }
    GOOD_ASSIGN_OR_RETURN(
        NodeId v,
        instance_.AddPrintableNode(scheme_, DomainLabel(kind), values[i]));
    GOOD_RETURN_NOT_OK(instance_.AddEdge(scheme_, row, Sym(attr), v));
  }
  return Status::OK();
}

Status NestedSimulator::Nest(const std::string& in, const std::string& out) {
  GOOD_ASSIGN_OR_RETURN(const codd::RelSchema schema, SchemaOf(in));
  const size_t num_keys = schema.attrs.size() - 1;
  const auto& [nested_attr, nested_kind] = schema.attrs.back();
  const Symbol has_edge = Sym("has:" + nested_attr);
  const Symbol set_label = Sym(out + ":Set");

  // Step 1: one group object per distinct key combination.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId row, p.AddObjectNode(scheme_, Sym(in)));
    std::vector<std::pair<Symbol, NodeId>> bold;
    for (size_t i = 0; i < num_keys; ++i) {
      const auto& [attr, kind] = schema.attrs[i];
      GOOD_ASSIGN_OR_RETURN(
          NodeId d, p.AddValuelessPrintableNode(scheme_, DomainLabel(kind)));
      GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, row, Sym(attr), d));
      bold.emplace_back(Sym(attr), d);
    }
    ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
    GOOD_RETURN_NOT_OK(na.Apply(&scheme_, &instance_));
  }
  // Step 2: collect the nested values per group (multivalued has-edges).
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId group, p.AddObjectNode(scheme_, Sym(out)));
    GOOD_ASSIGN_OR_RETURN(NodeId row, p.AddObjectNode(scheme_, Sym(in)));
    for (size_t i = 0; i < num_keys; ++i) {
      const auto& [attr, kind] = schema.attrs[i];
      GOOD_ASSIGN_OR_RETURN(
          NodeId d, p.AddValuelessPrintableNode(scheme_, DomainLabel(kind)));
      GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, group, Sym(attr), d));
      GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, row, Sym(attr), d));
    }
    GOOD_ASSIGN_OR_RETURN(NodeId b, p.AddValuelessPrintableNode(
                                        scheme_, DomainLabel(nested_kind)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, row, Sym(nested_attr), b));
    ops::EdgeAddition ea(
        std::move(p),
        {ops::EdgeSpec{group, has_edge, b, /*functional=*/false}});
    GOOD_RETURN_NOT_OK(ea.Apply(&scheme_, &instance_));
  }
  // Step 3: ABSTRACTION — one shared set object per distinct value set.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId group, p.AddObjectNode(scheme_, Sym(out)));
    ops::Abstraction ab(std::move(p), group, set_label, Sym("contains"),
                        has_edge);
    GOOD_RETURN_NOT_OK(ab.Apply(&scheme_, &instance_));
  }
  // Step 4: functional value-set edge from each group to its shared set.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId vs, p.AddObjectNode(scheme_, set_label));
    GOOD_ASSIGN_OR_RETURN(NodeId group, p.AddObjectNode(scheme_, Sym(out)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, vs, Sym("contains"), group));
    ops::EdgeAddition ea(
        std::move(p),
        {ops::EdgeSpec{group, Sym("value-set"), vs, /*functional=*/true}});
    GOOD_RETURN_NOT_OK(ea.Apply(&scheme_, &instance_));
  }
  // Step 5: the set objects carry their member values directly.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId vs, p.AddObjectNode(scheme_, set_label));
    GOOD_ASSIGN_OR_RETURN(NodeId group, p.AddObjectNode(scheme_, Sym(out)));
    GOOD_ASSIGN_OR_RETURN(NodeId b, p.AddValuelessPrintableNode(
                                        scheme_, DomainLabel(nested_kind)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, vs, Sym("contains"), group));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, group, has_edge, b));
    ops::EdgeAddition ea(
        std::move(p),
        {ops::EdgeSpec{vs, Sym("members"), b, /*functional=*/false}});
    GOOD_RETURN_NOT_OK(ea.Apply(&scheme_, &instance_));
  }
  nested_.emplace_back(out, schema);
  return Status::OK();
}

Status NestedSimulator::Unnest(const std::string& in,
                               const std::string& out) {
  const codd::RelSchema* source = nullptr;
  for (const auto& [group_class, schema] : nested_) {
    if (group_class == in) source = &schema;
  }
  if (source == nullptr) {
    return Status::NotFound("'" + in + "' is not a nested class");
  }
  const codd::RelSchema schema = *source;  // Copy: we mutate containers.
  const size_t num_keys = schema.attrs.size() - 1;
  const auto& [nested_attr, nested_kind] = schema.attrs.back();
  codd::RelSchema out_schema{out, schema.attrs};
  GOOD_RETURN_NOT_OK(DeclareFlat(out_schema));

  Pattern p;
  GOOD_ASSIGN_OR_RETURN(NodeId group, p.AddObjectNode(scheme_, Sym(in)));
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (size_t i = 0; i < num_keys; ++i) {
    const auto& [attr, kind] = schema.attrs[i];
    GOOD_ASSIGN_OR_RETURN(
        NodeId d, p.AddValuelessPrintableNode(scheme_, DomainLabel(kind)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, group, Sym(attr), d));
    bold.emplace_back(Sym(attr), d);
  }
  GOOD_ASSIGN_OR_RETURN(NodeId vs,
                        p.AddObjectNode(scheme_, Sym(in + ":Set")));
  GOOD_ASSIGN_OR_RETURN(NodeId b, p.AddValuelessPrintableNode(
                                      scheme_, DomainLabel(nested_kind)));
  GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, group, Sym("value-set"), vs));
  GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, vs, Sym("members"), b));
  bold.emplace_back(Sym(nested_attr), b);
  ops::NodeAddition na(std::move(p), Sym(out), std::move(bold));
  return na.Apply(&scheme_, &instance_);
}

Result<NestedRelation> NestedSimulator::ExportNested(
    const std::string& group_class) const {
  const codd::RelSchema* source = nullptr;
  for (const auto& [name, schema] : nested_) {
    if (name == group_class) source = &schema;
  }
  if (source == nullptr) {
    return Status::NotFound("'" + group_class + "' is not a nested class");
  }
  const size_t num_keys = source->attrs.size() - 1;
  NestedRelation out;
  for (NodeId group : instance_.NodesWithLabel(Sym(group_class))) {
    NestedRow row;
    for (size_t i = 0; i < num_keys; ++i) {
      auto target =
          instance_.FunctionalTarget(group, Sym(source->attrs[i].first));
      if (!target.has_value()) {
        return Status::Internal("group misses a key attribute");
      }
      row.keys.push_back(*instance_.PrintValueOf(*target));
    }
    auto vs = instance_.FunctionalTarget(group, Sym("value-set"));
    if (!vs.has_value()) {
      return Status::Internal("group misses its value-set object");
    }
    for (NodeId member : instance_.OutTargets(*vs, Sym("members"))) {
      row.set_values.insert(*instance_.PrintValueOf(member));
    }
    out.insert(std::move(row));
  }
  return out;
}

Result<std::set<std::vector<Value>>> NestedSimulator::ExportFlat(
    const std::string& relation) const {
  GOOD_ASSIGN_OR_RETURN(const codd::RelSchema schema, SchemaOf(relation));
  std::set<std::vector<Value>> out;
  for (NodeId row : instance_.NodesWithLabel(Sym(relation))) {
    std::vector<Value> tuple;
    for (const auto& [attr, kind] : schema.attrs) {
      (void)kind;
      auto target = instance_.FunctionalTarget(row, Sym(attr));
      if (!target.has_value()) {
        return Status::Internal("flat tuple misses attribute '" + attr +
                                "'");
      }
      tuple.push_back(*instance_.PrintValueOf(*target));
    }
    out.insert(std::move(tuple));
  }
  return out;
}

size_t NestedSimulator::CountSetObjects(
    const std::string& group_class) const {
  return instance_.CountNodesWithLabel(Sym(group_class + ":Set"));
}

}  // namespace good::nested
