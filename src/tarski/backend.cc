#include <functional>
#include "tarski/backend.h"

#include <algorithm>

namespace good::tarski {

using graph::Instance;
using graph::NodeId;
using pattern::Matching;
using pattern::Pattern;

Result<TarskiBackend> TarskiBackend::Load(const schema::Scheme& scheme,
                                          const Instance& instance) {
  TarskiBackend backend;
  for (NodeId node : instance.AllNodes()) {
    Symbol label = instance.LabelOf(node);
    backend.node_sets_[label].insert(node.id);
    if (instance.HasPrintValue(node)) {
      backend.printable_values_[label][*instance.PrintValueOf(node)] =
          node.id;
    }
  }
  for (const graph::Edge& e : instance.AllEdges()) {
    backend.relations_[e.label].Add(e.source.id, e.target.id);
  }
  (void)scheme;
  return backend;
}

const BinaryRelation& TarskiBackend::Relation(Symbol label) const {
  static const BinaryRelation* empty = new BinaryRelation();
  auto it = relations_.find(label);
  return it == relations_.end() ? *empty : it->second;
}

const OidSet& TarskiBackend::NodeSet(Symbol label) const {
  static const OidSet* empty = new OidSet();
  auto it = node_sets_.find(label);
  return it == node_sets_.end() ? *empty : it->second;
}

Result<std::map<NodeId, OidSet>> TarskiBackend::ReduceCandidates(
    const Pattern& pattern) const {
  std::map<NodeId, OidSet> candidates;
  // Initial candidates: the label's oid set, narrowed to the unique
  // dedup witness for print-valued nodes.
  for (NodeId m : pattern.AllNodes()) {
    Symbol label = pattern.LabelOf(m);
    if (pattern.HasPrintValue(m)) {
      OidSet set;
      auto lit = printable_values_.find(label);
      if (lit != printable_values_.end()) {
        auto vit = lit->second.find(*pattern.PrintValueOf(m));
        if (vit != lit->second.end()) set.insert(vit->second);
      }
      candidates[m] = std::move(set);
    } else {
      candidates[m] = NodeSet(label);
    }
  }
  // Semijoin reduction to arc consistency: for every pattern edge
  // (m, α, n), C(m) ⊆ dom(α restricted to C(n)) and
  // C(n) ⊆ ran(α restricted to C(m)).
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId m : pattern.AllNodes()) {
      for (const auto& [edge, target] : pattern.OutEdges(m)) {
        const BinaryRelation& r = Relation(edge);
        OidSet new_src =
            r.RangeRestrict(candidates[target]).Domain();
        OidSet pruned_src;
        std::set_intersection(candidates[m].begin(), candidates[m].end(),
                              new_src.begin(), new_src.end(),
                              std::inserter(pruned_src, pruned_src.end()));
        if (pruned_src.size() != candidates[m].size()) {
          candidates[m] = std::move(pruned_src);
          changed = true;
        }
        OidSet new_tgt = r.DomainRestrict(candidates[m]).Range();
        OidSet pruned_tgt;
        std::set_intersection(candidates[target].begin(),
                              candidates[target].end(), new_tgt.begin(),
                              new_tgt.end(),
                              std::inserter(pruned_tgt, pruned_tgt.end()));
        if (pruned_tgt.size() != candidates[target].size()) {
          candidates[target] = std::move(pruned_tgt);
          changed = true;
        }
      }
    }
  }
  return candidates;
}

Result<std::vector<Matching>> TarskiBackend::FindMatchings(
    const Pattern& pattern) const {
  GOOD_ASSIGN_OR_RETURN(auto candidates, ReduceCandidates(pattern));
  std::vector<NodeId> nodes = pattern.AllNodes();
  std::vector<Matching> out;
  if (nodes.empty()) {
    out.emplace_back();
    return out;
  }
  // Arc consistency is not global consistency: enumerate the residual
  // space, checking every pattern edge.
  std::vector<Oid> assignment(nodes.size());
  std::map<NodeId, size_t> position;
  for (size_t k = 0; k < nodes.size(); ++k) position[nodes[k]] = k;

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == nodes.size()) {
      Matching m;
      for (size_t k = 0; k < nodes.size(); ++k) {
        m.Bind(nodes[k], NodeId{static_cast<uint32_t>(assignment[k])});
      }
      out.push_back(std::move(m));
      return;
    }
    NodeId node = nodes[depth];
    for (Oid oid : candidates[node]) {
      bool ok = true;
      // Check edges to already-assigned neighbours.
      for (const auto& [edge, target] : pattern.OutEdges(node)) {
        size_t tk = position[target];
        if (tk < depth && !Relation(edge).Contains(oid, assignment[tk])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const auto& [source, edge] : pattern.InEdges(node)) {
          size_t sk = position[source];
          if (sk < depth && !Relation(edge).Contains(assignment[sk], oid)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      // Self-loops in the pattern.
      for (const auto& [edge, target] : pattern.OutEdges(node)) {
        if (target == node && !Relation(edge).Contains(oid, oid)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      assignment[depth] = oid;
      recurse(depth + 1);
    }
  };
  recurse(0);
  return out;
}

}  // namespace good::tarski
