/// \file backend.h
/// \brief GOOD databases stored and queried as binary relations
/// (Section 5, the Indiana / Tarski Data Model route).
///
/// Storage mapping:
///  - each node label L (object and printable alike) maps to the oid
///    set of its members;
///  - each edge label α maps to one binary relation over oids;
///  - printable values are a map (label, value) -> oid mirroring the
///    printable dedup invariant.
///
/// Pattern evaluation is algebraic: candidate sets per pattern node are
/// pruned to an arc-consistent fixpoint with domain/range restrictions
/// and identity intersections — a semijoin program in the Tarski
/// algebra — after which the (usually tiny) residual search space is
/// enumerated. Differential tests check exact agreement with the
/// native matcher.

#ifndef GOOD_TARSKI_BACKEND_H_
#define GOOD_TARSKI_BACKEND_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "graph/instance.h"
#include "pattern/matcher.h"
#include "schema/scheme.h"
#include "tarski/binary_relation.h"

namespace good::tarski {

class TarskiBackend {
 public:
  /// Builds the binary-relation store for `instance` over `scheme`.
  static Result<TarskiBackend> Load(const schema::Scheme& scheme,
                                    const graph::Instance& instance);

  /// All matchings of `pattern`, evaluated algebraically. Oids equal
  /// the node ids of the loaded instance.
  Result<std::vector<pattern::Matching>> FindMatchings(
      const pattern::Pattern& pattern) const;

  /// The arc-consistent candidate sets per pattern node (exposed for
  /// tests; every true matching image is contained in them).
  Result<std::map<graph::NodeId, OidSet>> ReduceCandidates(
      const pattern::Pattern& pattern) const;

  /// The stored relation of edge label `label` (empty if absent).
  const BinaryRelation& Relation(Symbol label) const;
  /// The oid set of node label `label` (empty if absent).
  const OidSet& NodeSet(Symbol label) const;

  /// Reachability: the transitive closure of `label`'s relation.
  BinaryRelation Closure(Symbol label) const {
    return Relation(label).TransitiveClosure();
  }

 private:
  TarskiBackend() = default;

  std::map<Symbol, OidSet> node_sets_;
  std::map<Symbol, BinaryRelation> relations_;
  std::map<Symbol, std::map<Value, Oid>> printable_values_;
};

}  // namespace good::tarski

#endif  // GOOD_TARSKI_BACKEND_H_
