#include "tarski/binary_relation.h"

#include <map>
#include <sstream>
#include <vector>

namespace good::tarski {

BinaryRelation BinaryRelation::Compose(const BinaryRelation& other) const {
  // Index the right operand by left component.
  std::map<Oid, std::vector<Oid>> by_left;
  for (const Pair& p : other.pairs_) by_left[p.first].push_back(p.second);
  BinaryRelation out;
  for (const Pair& p : pairs_) {
    auto it = by_left.find(p.second);
    if (it == by_left.end()) continue;
    for (Oid c : it->second) out.Add(p.first, c);
  }
  return out;
}

BinaryRelation BinaryRelation::Converse() const {
  BinaryRelation out;
  for (const Pair& p : pairs_) out.Add(p.second, p.first);
  return out;
}

BinaryRelation BinaryRelation::Union(const BinaryRelation& other) const {
  BinaryRelation out = *this;
  for (const Pair& p : other.pairs_) out.pairs_.insert(p);
  return out;
}

BinaryRelation BinaryRelation::Intersect(const BinaryRelation& other) const {
  BinaryRelation out;
  for (const Pair& p : pairs_) {
    if (other.pairs_.contains(p)) out.pairs_.insert(p);
  }
  return out;
}

BinaryRelation BinaryRelation::Difference(const BinaryRelation& other) const {
  BinaryRelation out;
  for (const Pair& p : pairs_) {
    if (!other.pairs_.contains(p)) out.pairs_.insert(p);
  }
  return out;
}

OidSet BinaryRelation::Domain() const {
  OidSet out;
  for (const Pair& p : pairs_) out.insert(p.first);
  return out;
}

OidSet BinaryRelation::Range() const {
  OidSet out;
  for (const Pair& p : pairs_) out.insert(p.second);
  return out;
}

BinaryRelation BinaryRelation::DomainRestrict(const OidSet& domain) const {
  BinaryRelation out;
  for (const Pair& p : pairs_) {
    if (domain.contains(p.first)) out.pairs_.insert(p);
  }
  return out;
}

BinaryRelation BinaryRelation::RangeRestrict(const OidSet& range) const {
  BinaryRelation out;
  for (const Pair& p : pairs_) {
    if (range.contains(p.second)) out.pairs_.insert(p);
  }
  return out;
}

BinaryRelation BinaryRelation::Identity(const OidSet& set) {
  BinaryRelation out;
  for (Oid o : set) out.Add(o, o);
  return out;
}

BinaryRelation BinaryRelation::TransitiveClosure() const {
  BinaryRelation closure = *this;
  while (true) {
    BinaryRelation next = closure.Union(closure.Compose(*this));
    if (next.size() == closure.size()) return closure;
    closure = std::move(next);
  }
}

std::string BinaryRelation::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Pair& p : pairs_) {
    if (!first) os << ", ";
    first = false;
    os << "(" << p.first << "," << p.second << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace good::tarski
