/// \file binary_relation.h
/// \brief Binary relations and their Tarski-style algebra.
///
/// Section 5 of the paper describes the Indiana implementation route:
/// "a binary relational model, called the Tarski Data Model, is used to
/// store and compute with GOOD databases. The model includes its own
/// (binary) relational algebra, which is inspired by Tarski's work."
/// This file provides that algebra: relations over 64-bit object ids
/// with composition, converse, the Boolean operations, identity,
/// domain/range and their restrictions, and transitive closure.

#ifndef GOOD_TARSKI_BINARY_RELATION_H_
#define GOOD_TARSKI_BINARY_RELATION_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>

namespace good::tarski {

using Oid = int64_t;
using OidSet = std::set<Oid>;

/// \brief A finite binary relation over object ids.
class BinaryRelation {
 public:
  using Pair = std::pair<Oid, Oid>;

  BinaryRelation() = default;
  explicit BinaryRelation(std::set<Pair> pairs) : pairs_(std::move(pairs)) {}

  void Add(Oid a, Oid b) { pairs_.emplace(a, b); }
  void Remove(Oid a, Oid b) { pairs_.erase({a, b}); }
  bool Contains(Oid a, Oid b) const { return pairs_.contains({a, b}); }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::set<Pair>& pairs() const { return pairs_; }

  /// { (a, c) : ∃b. (a, b) ∈ this ∧ (b, c) ∈ other } — relational
  /// composition (this ; other).
  BinaryRelation Compose(const BinaryRelation& other) const;

  /// { (b, a) : (a, b) ∈ this }.
  BinaryRelation Converse() const;

  BinaryRelation Union(const BinaryRelation& other) const;
  BinaryRelation Intersect(const BinaryRelation& other) const;
  BinaryRelation Difference(const BinaryRelation& other) const;

  /// { a : ∃b. (a, b) ∈ this }.
  OidSet Domain() const;
  /// { b : ∃a. (a, b) ∈ this }.
  OidSet Range() const;

  /// Pairs whose left component lies in `domain`.
  BinaryRelation DomainRestrict(const OidSet& domain) const;
  /// Pairs whose right component lies in `range`.
  BinaryRelation RangeRestrict(const OidSet& range) const;

  /// The identity relation over `set`.
  static BinaryRelation Identity(const OidSet& set);

  /// The transitive closure (iterated composition to fixpoint).
  BinaryRelation TransitiveClosure() const;

  friend bool operator==(const BinaryRelation&,
                         const BinaryRelation&) = default;

  std::string ToString() const;

 private:
  std::set<Pair> pairs_;
};

}  // namespace good::tarski

#endif  // GOOD_TARSKI_BINARY_RELATION_H_
