/// \file turing.h
/// \brief Turing completeness of GOOD with methods (Section 4.3).
///
/// "The full language with methods is sufficiently strong to simulate
/// arbitrary Turing machines." This module makes that constructive: a
/// deterministic single-tape TM is compiled into a GOOD database scheme
/// and a recursive method, and run with the method executor.
///
/// Encoding:
///  - the tape is a doubly-linked list of Cell objects (functional left
///    / right edges) with a functional symbol edge to a TSym printable;
///  - the Head object has functional at (Cell) and state (TState)
///    edges;
///  - each transition (q, s) -> (q', s', move) compiles to a block of
///    basic operations guarded by an Act:<i> marker object that a node
///    addition creates exactly when the head is in state q reading s;
///    the block rewrites the symbol (ED + EA), grows the tape on demand
///    (NA — the "if not exists" check makes growth conditional), moves
///    the head and updates the state;
///  - the Step method executes all transition blocks (at most one fires,
///    the machine being deterministic), deletes the markers, and calls
///    itself recursively with a Section 4.1 predicate "state is not
///    halting" as the stopping condition.
/// A direct C++ interpreter is provided for differential testing.

#ifndef GOOD_TURING_TURING_H_
#define GOOD_TURING_TURING_H_

#include <map>
#include <set>
#include <string>

#include "common/result.h"
#include "graph/instance.h"
#include "method/method.h"
#include "schema/scheme.h"

namespace good::turing {

/// \brief One deterministic transition.
struct Transition {
  std::string state;
  char read;
  std::string next_state;
  char write;
  int move;  // -1 (left) or +1 (right).
};

/// \brief A deterministic single-tape Turing machine.
struct TuringMachine {
  std::string initial;
  std::set<std::string> halting;
  std::vector<Transition> transitions;
  char blank = '_';

  /// Checks determinism ((state, read) pairs unique), move values, and
  /// that transition states are consistent.
  Status Validate() const;
};

/// \brief Outcome of a run.
struct RunResult {
  std::string final_state;
  std::string tape;  // Blank-trimmed tape contents.
  size_t steps = 0;
  bool halted = false;
};

/// \brief Reference interpreter.
Result<RunResult> RunDirect(const TuringMachine& tm,
                            const std::string& input, size_t max_steps);

/// \brief Compiles and runs the GOOD simulation.
class TuringSimulator {
 public:
  explicit TuringSimulator(TuringMachine tm) : tm_(std::move(tm)) {}

  /// Runs the machine on `input` inside GOOD; `max_ops` bounds the
  /// method executor's operation budget.
  Result<RunResult> Run(const std::string& input, size_t max_ops);

  /// The compiled database after the last Run (for inspection).
  const schema::Scheme& scheme() const { return scheme_; }
  const graph::Instance& instance() const { return instance_; }

 private:
  Status BuildScheme();
  Status BuildTape(const std::string& input);
  Result<method::Method> BuildStepMethod() const;
  /// Per-transition operation block appended to `body`.
  Status AppendTransitionOps(size_t index,
                             std::vector<method::ParameterizedOp>* body) const;
  Result<RunResult> ReadBack() const;

  TuringMachine tm_;
  schema::Scheme scheme_;
  graph::Instance instance_;
  graph::NodeId head_;
};

}  // namespace good::turing

#endif  // GOOD_TURING_TURING_H_
