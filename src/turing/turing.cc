#include "turing/turing.h"

#include <algorithm>
#include <map>

#include "ops/computed.h"
#include "ops/operations.h"

namespace good::turing {

using graph::Instance;
using graph::NodeId;
using method::HeadBinding;
using method::Method;
using method::MethodCallOp;
using method::ParameterizedOp;
using pattern::Pattern;
using schema::Scheme;

namespace {

Value Sv(char c) { return Value(std::string(1, c)); }
Value Sv(const std::string& s) { return Value(s); }

Symbol ActLabel(size_t index) {
  return Sym("Act:" + std::to_string(index));
}

}  // namespace

Status TuringMachine::Validate() const {
  std::set<std::pair<std::string, char>> seen;
  for (const Transition& t : transitions) {
    if (t.move != -1 && t.move != 1) {
      return Status::InvalidArgument("move must be -1 or +1");
    }
    if (!seen.emplace(t.state, t.read).second) {
      return Status::InvalidArgument(
          "machine is nondeterministic on (" + t.state + ", " +
          std::string(1, t.read) + ")");
    }
    if (halting.contains(t.state)) {
      return Status::InvalidArgument("transition out of halting state '" +
                                     t.state + "'");
    }
  }
  if (initial.empty()) {
    return Status::InvalidArgument("missing initial state");
  }
  return Status::OK();
}

Result<RunResult> RunDirect(const TuringMachine& tm,
                            const std::string& input, size_t max_steps) {
  GOOD_RETURN_NOT_OK(tm.Validate());
  std::map<int64_t, char> tape;
  for (size_t i = 0; i < input.size(); ++i) {
    tape[static_cast<int64_t>(i)] = input[i];
  }
  std::map<std::pair<std::string, char>, const Transition*> delta;
  for (const Transition& t : tm.transitions) {
    delta[{t.state, t.read}] = &t;
  }
  std::string state = tm.initial;
  int64_t pos = 0;
  size_t steps = 0;
  while (!tm.halting.contains(state)) {
    if (steps >= max_steps) {
      return Status::ResourceExhausted("direct TM run exceeded " +
                                       std::to_string(max_steps) + " steps");
    }
    char read = tape.contains(pos) ? tape[pos] : tm.blank;
    auto it = delta.find({state, read});
    if (it == delta.end()) break;  // Stuck: no applicable transition.
    tape[pos] = it->second->write;
    pos += it->second->move;
    state = it->second->next_state;
    ++steps;
  }
  RunResult result;
  result.final_state = state;
  result.steps = steps;
  result.halted = tm.halting.contains(state);
  if (!tape.empty()) {
    int64_t lo = tape.begin()->first;
    int64_t hi = tape.rbegin()->first;
    for (int64_t i = lo; i <= hi; ++i) {
      result.tape += tape.contains(i) ? tape[i] : tm.blank;
    }
  }
  // Trim blanks on both ends.
  size_t begin = result.tape.find_first_not_of(tm.blank);
  size_t end = result.tape.find_last_not_of(tm.blank);
  result.tape = begin == std::string::npos
                    ? ""
                    : result.tape.substr(begin, end - begin + 1);
  return result;
}

// ---------------------------------------------------------------------------
// GOOD compilation
// ---------------------------------------------------------------------------

Status TuringSimulator::BuildScheme() {
  scheme_ = Scheme();
  GOOD_RETURN_NOT_OK(scheme_.AddObjectLabel(Sym("Cell")));
  GOOD_RETURN_NOT_OK(scheme_.AddObjectLabel(Sym("Head")));
  GOOD_RETURN_NOT_OK(scheme_.AddPrintableLabel(Sym("TSym"),
                                               ValueKind::kString));
  GOOD_RETURN_NOT_OK(scheme_.AddPrintableLabel(Sym("TState"),
                                               ValueKind::kString));
  for (const char* edge : {"left", "right", "symbol", "at", "state", "cell"}) {
    GOOD_RETURN_NOT_OK(scheme_.AddFunctionalEdgeLabel(Sym(edge)));
  }
  GOOD_RETURN_NOT_OK(scheme_.AddTriple(Sym("Cell"), Sym("left"), Sym("Cell")));
  GOOD_RETURN_NOT_OK(
      scheme_.AddTriple(Sym("Cell"), Sym("right"), Sym("Cell")));
  GOOD_RETURN_NOT_OK(
      scheme_.AddTriple(Sym("Cell"), Sym("symbol"), Sym("TSym")));
  GOOD_RETURN_NOT_OK(scheme_.AddTriple(Sym("Head"), Sym("at"), Sym("Cell")));
  GOOD_RETURN_NOT_OK(
      scheme_.AddTriple(Sym("Head"), Sym("state"), Sym("TState")));
  for (size_t i = 0; i < tm_.transitions.size(); ++i) {
    GOOD_RETURN_NOT_OK(scheme_.AddObjectLabel(ActLabel(i)));
    GOOD_RETURN_NOT_OK(
        scheme_.AddTriple(ActLabel(i), Sym("cell"), Sym("Cell")));
  }
  return Status::OK();
}

Status TuringSimulator::BuildTape(const std::string& input) {
  instance_ = Instance();
  std::string content = input.empty() ? std::string(1, tm_.blank) : input;
  std::vector<NodeId> cells;
  for (char c : content) {
    GOOD_ASSIGN_OR_RETURN(NodeId cell,
                          instance_.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId sym, instance_.AddPrintableNode(scheme_, Sym("TSym"), Sv(c)));
    GOOD_RETURN_NOT_OK(instance_.AddEdge(scheme_, cell, Sym("symbol"), sym));
    cells.push_back(cell);
  }
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    GOOD_RETURN_NOT_OK(
        instance_.AddEdge(scheme_, cells[i], Sym("right"), cells[i + 1]));
    GOOD_RETURN_NOT_OK(
        instance_.AddEdge(scheme_, cells[i + 1], Sym("left"), cells[i]));
  }
  GOOD_ASSIGN_OR_RETURN(head_, instance_.AddObjectNode(scheme_, Sym("Head")));
  GOOD_RETURN_NOT_OK(instance_.AddEdge(scheme_, head_, Sym("at"), cells[0]));
  GOOD_ASSIGN_OR_RETURN(
      NodeId st,
      instance_.AddPrintableNode(scheme_, Sym("TState"), Sv(tm_.initial)));
  GOOD_RETURN_NOT_OK(instance_.AddEdge(scheme_, head_, Sym("state"), st));
  return Status::OK();
}

Status TuringSimulator::AppendTransitionOps(
    size_t index, std::vector<ParameterizedOp>* body) const {
  const Transition& t = tm_.transitions[index];
  const Symbol act = ActLabel(index);

  // B1: erase the cell's current symbol edge.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(NodeId sy,
                          p.AddValuelessPrintableNode(scheme_, Sym("TSym")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, c, Sym("symbol"), sy));
    body->push_back(ParameterizedOp{
        ops::EdgeDeletion(std::move(p),
                          {ops::EdgeRef{c, Sym("symbol"), sy}}),
        std::nullopt});
  }
  // B2: write the new symbol.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId w, p.AddPrintableNode(scheme_, Sym("TSym"), Sv(t.write)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    body->push_back(ParameterizedOp{
        ops::EdgeAddition(
            std::move(p),
            {ops::EdgeSpec{c, Sym("symbol"), w, /*functional=*/true}}),
        std::nullopt});
  }
  // Movement: grow the tape on demand, then move the head.
  const bool right = t.move == 1;
  const Symbol toward = right ? Sym("left") : Sym("right");
  const Symbol back = right ? Sym("right") : Sym("left");
  // B3: create the neighbour cell iff absent — the NA "if not exists"
  // check sees an existing neighbour through its toward-edge.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    body->push_back(ParameterizedOp{
        ops::NodeAddition(std::move(p), Sym("Cell"), {{toward, c}}),
        std::nullopt});
  }
  // B4: back-link the current cell to the neighbour.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(NodeId n, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, n, toward, c));
    body->push_back(ParameterizedOp{
        ops::EdgeAddition(std::move(p),
                          {ops::EdgeSpec{c, back, n, /*functional=*/true}}),
        std::nullopt});
  }
  // B5: blank-initialize the neighbour if it has no symbol yet (a
  // Section 4.1 predicate expressing the crossed "no symbol edge").
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(NodeId n, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId w, p.AddPrintableNode(scheme_, Sym("TSym"), Sv(tm_.blank)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, n, toward, c));
    ops::EdgeAddition ea(
        std::move(p),
        {ops::EdgeSpec{n, Sym("symbol"), w, /*functional=*/true}});
    ea.set_filter([n](const pattern::Matching& m, const Instance& g) {
      return !g.FunctionalTarget(m.At(n), Sym("symbol")).has_value();
    });
    body->push_back(ParameterizedOp{std::move(ea), std::nullopt});
  }
  // B6: detach the head from the current cell.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, h, Sym("at"), c));
    body->push_back(ParameterizedOp{
        ops::EdgeDeletion(std::move(p), {ops::EdgeRef{h, Sym("at"), c}}),
        std::nullopt});
  }
  // B7: attach the head to the neighbour.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(NodeId n, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, a, Sym("cell"), c));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, n, toward, c));
    body->push_back(ParameterizedOp{
        ops::EdgeAddition(
            std::move(p),
            {ops::EdgeSpec{h, Sym("at"), n, /*functional=*/true}}),
        std::nullopt});
  }
  // B8: drop the old state edge.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    (void)a;
    GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId st, p.AddValuelessPrintableNode(scheme_, Sym("TState")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, h, Sym("state"), st));
    body->push_back(ParameterizedOp{
        ops::EdgeDeletion(std::move(p), {ops::EdgeRef{h, Sym("state"), st}}),
        std::nullopt});
  }
  // B9: set the new state.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    (void)a;
    GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId st,
        p.AddPrintableNode(scheme_, Sym("TState"), Sv(t.next_state)));
    body->push_back(ParameterizedOp{
        ops::EdgeAddition(
            std::move(p),
            {ops::EdgeSpec{h, Sym("state"), st, /*functional=*/true}}),
        std::nullopt});
  }
  // D: retire the marker.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId a, p.AddObjectNode(scheme_, act));
    body->push_back(
        ParameterizedOp{ops::NodeDeletion(std::move(p), a), std::nullopt});
  }
  return Status::OK();
}

Result<Method> TuringSimulator::BuildStepMethod() const {
  Method step;
  step.spec.name = "Step";
  step.spec.receiver_label = Sym("Head");

  // Phase A for every transition first: all markers are created against
  // the pre-step configuration (at most one fires — determinism).
  for (size_t i = 0; i < tm_.transitions.size(); ++i) {
    const Transition& t = tm_.transitions[i];
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId st, p.AddPrintableNode(scheme_, Sym("TState"), Sv(t.state)));
    GOOD_ASSIGN_OR_RETURN(NodeId c, p.AddObjectNode(scheme_, Sym("Cell")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId sy, p.AddPrintableNode(scheme_, Sym("TSym"), Sv(t.read)));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, h, Sym("state"), st));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, h, Sym("at"), c));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, c, Sym("symbol"), sy));
    step.body.push_back(ParameterizedOp{
        ops::NodeAddition(std::move(p), ActLabel(i), {{Sym("cell"), c}}),
        std::nullopt});
  }
  // Phase B/D blocks per transition.
  for (size_t i = 0; i < tm_.transitions.size(); ++i) {
    GOOD_RETURN_NOT_OK(AppendTransitionOps(i, &step.body));
  }
  // Recursive call with the halting predicate as stopping condition.
  {
    Pattern p;
    GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
    GOOD_ASSIGN_OR_RETURN(
        NodeId st, p.AddValuelessPrintableNode(scheme_, Sym("TState")));
    GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, h, Sym("state"), st));
    MethodCallOp rec;
    rec.pattern = std::move(p);
    rec.method_name = "Step";
    rec.receiver = h;
    std::set<std::string> halting = tm_.halting;
    rec.filter = [st, halting](const pattern::Matching& m,
                               const Instance& g) {
      return !halting.contains(g.PrintValueOf(m.At(st))->AsString());
    };
    HeadBinding head;
    head.receiver = h;
    step.body.push_back(ParameterizedOp{std::move(rec), head});
  }
  // The interface exposes the full machine scheme (tape and head edges
  // persist across the recursion).
  step.interface = scheme_;
  return step;
}

Result<RunResult> TuringSimulator::ReadBack() const {
  RunResult result;
  auto heads = instance_.NodesWithLabel(Sym("Head"));
  if (heads.size() != 1) {
    return Status::Internal("expected exactly one head");
  }
  auto st = instance_.FunctionalTarget(heads[0], Sym("state"));
  if (!st.has_value()) return Status::Internal("head lost its state");
  result.final_state = instance_.PrintValueOf(*st)->AsString();
  result.halted = tm_.halting.contains(result.final_state);
  // Leftmost cell: the unique cell without a left neighbour.
  NodeId leftmost{};
  for (NodeId cell : instance_.NodesWithLabel(Sym("Cell"))) {
    if (!instance_.FunctionalTarget(cell, Sym("left")).has_value()) {
      if (leftmost.valid()) {
        return Status::Internal("tape has two leftmost cells");
      }
      leftmost = cell;
    }
  }
  if (!leftmost.valid()) return Status::Internal("tape has no leftmost cell");
  for (std::optional<NodeId> cell = leftmost; cell.has_value();
       cell = instance_.FunctionalTarget(*cell, Sym("right"))) {
    auto sym = instance_.FunctionalTarget(*cell, Sym("symbol"));
    if (!sym.has_value()) return Status::Internal("cell without symbol");
    result.tape += instance_.PrintValueOf(*sym)->AsString();
  }
  size_t begin = result.tape.find_first_not_of(tm_.blank);
  size_t end = result.tape.find_last_not_of(tm_.blank);
  result.tape = begin == std::string::npos
                    ? ""
                    : result.tape.substr(begin, end - begin + 1);
  return result;
}

Result<RunResult> TuringSimulator::Run(const std::string& input,
                                       size_t max_ops) {
  GOOD_RETURN_NOT_OK(tm_.Validate());
  GOOD_RETURN_NOT_OK(BuildScheme());
  GOOD_RETURN_NOT_OK(BuildTape(input));
  GOOD_ASSIGN_OR_RETURN(Method step, BuildStepMethod());

  method::MethodRegistry registry;
  GOOD_RETURN_NOT_OK(registry.Register(std::move(step)));
  method::ExecOptions exec_options;
  exec_options.max_steps = max_ops;
  exec_options.max_depth = max_ops;
  method::Executor executor(&registry, exec_options);

  Pattern p;
  GOOD_ASSIGN_OR_RETURN(NodeId h, p.AddObjectNode(scheme_, Sym("Head")));
  GOOD_ASSIGN_OR_RETURN(NodeId st,
                        p.AddValuelessPrintableNode(scheme_, Sym("TState")));
  GOOD_RETURN_NOT_OK(p.AddEdge(scheme_, h, Sym("state"), st));
  MethodCallOp call;
  call.pattern = std::move(p);
  call.method_name = "Step";
  call.receiver = h;
  std::set<std::string> halting = tm_.halting;
  call.filter = [st, halting](const pattern::Matching& m, const Instance& g) {
    return !halting.contains(g.PrintValueOf(m.At(st))->AsString());
  };
  GOOD_RETURN_NOT_OK(executor.Execute(call, &scheme_, &instance_));
  GOOD_ASSIGN_OR_RETURN(RunResult result, ReadBack());
  result.steps = executor.steps_used();
  return result;
}

}  // namespace good::turing
