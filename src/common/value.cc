#include "common/value.h"

#include <array>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/hash.h"

namespace good {

namespace {

constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

int64_t Date::ToDayNumber() const {
  // Howard Hinnant's civil-days algorithm.
  int32_t y = year;
  const int32_t m = month;
  const int32_t d = day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

Date Date::FromDayNumber(int64_t days) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  return Date{static_cast<int32_t>(y + (m <= 2)), static_cast<int32_t>(m),
              static_cast<int32_t>(d)};
}

std::string Date::ToString() const {
  char buf[32];
  const char* mon =
      (month >= 1 && month <= 12) ? kMonthNames[month - 1] : "???";
  std::snprintf(buf, sizeof(buf), "%s %d, %d", mon, day, year);
  return buf;
}

Result<Date> Date::Parse(const std::string& text) {
  char mon[4] = {0};
  int day = 0;
  int year = 0;
  if (std::sscanf(text.c_str(), "%3s %d, %d", mon, &day, &year) != 3) {
    return Status::InvalidArgument("unparsable date: '" + text + "'");
  }
  for (int m = 0; m < 12; ++m) {
    if (std::string(mon) == kMonthNames[m]) {
      if (day < 1 || day > 31) {
        return Status::InvalidArgument("day out of range in '" + text + "'");
      }
      return Date{year, m + 1, day};
    }
  }
  return Status::InvalidArgument("unknown month in date: '" + text + "'");
}

std::string_view ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kDate:
      return "date";
    case ValueKind::kBytes:
      return "bytes";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueKind::kString:
      return AsString();
    case ValueKind::kDate:
      return AsDate().ToString();
    case ValueKind::kBytes: {
      static const char* kHex = "0123456789abcdef";
      std::string out = "0x";
      for (uint8_t b : AsBytes()) {
        out += kHex[b >> 4];
        out += kHex[b & 0xF];
      }
      return out;
    }
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind());
  switch (kind()) {
    case ValueKind::kBool:
      HashCombine(&seed, static_cast<size_t>(AsBool()));
      break;
    case ValueKind::kInt:
      HashCombine(&seed, static_cast<size_t>(AsInt()));
      break;
    case ValueKind::kDouble:
      HashCombine(&seed, std::hash<double>{}(AsDouble()));
      break;
    case ValueKind::kString:
      HashCombine(&seed, std::hash<std::string>{}(AsString()));
      break;
    case ValueKind::kDate:
      HashCombine(&seed, static_cast<size_t>(AsDate().ToDayNumber()));
      break;
    case ValueKind::kBytes:
      for (uint8_t b : AsBytes()) HashCombine(&seed, b);
      break;
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace good
