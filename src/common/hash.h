/// \file hash.h
/// \brief Small hashing helpers shared across modules.

#ifndef GOOD_COMMON_HASH_H_
#define GOOD_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace good {

/// Combines `value` into the running hash `*seed` (boost::hash_combine
/// recipe with a 64-bit golden-ratio constant).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes a pair of integral ids.
inline size_t HashPair(uint64_t a, uint64_t b) {
  size_t seed = std::hash<uint64_t>{}(a);
  HashCombine(&seed, std::hash<uint64_t>{}(b));
  return seed;
}

}  // namespace good

#endif  // GOOD_COMMON_HASH_H_
