/// \file deadline.h
/// \brief Wall-clock deadlines and cooperative cancellation.
///
/// Step budgets (method::ExecOptions::max_steps) bound the *number* of
/// operations a program may execute, but a single operation's pattern
/// enumeration can be super-polynomial in the instance size — a budget
/// of one step does not bound wall-clock time. A Deadline carries an
/// optional steady-clock expiry plus an optional pointer to an external
/// CancelToken; long-running engines (the pattern matcher, the
/// executor, the rule engine) poll Check() at coarse intervals — per
/// candidate chunk, per step, per round — so a runaway enumeration is
/// cut off cleanly with StatusCode::kDeadlineExceeded or kCancelled.
/// The checks never alter the computation when they pass, so results on
/// the success path are bit-identical with and without a deadline
/// (preserving the parallel matcher's determinism guarantee).
///
/// Deadline is a small value type; it can be copied freely and shared
/// by const pointer across worker threads. CancelToken is a single
/// atomic flag: Cancel() may be called from any thread, any number of
/// times, and is observed by every Deadline pointing at the token.

#ifndef GOOD_COMMON_DEADLINE_H_
#define GOOD_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace good::common {

/// \brief A thread-safe cancellation flag, set once from outside and
/// observed cooperatively by running engines.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Safe from any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief An execution cutoff: wall-clock expiry and/or external
/// cancellation. Default-constructed deadlines are unarmed and Check()
/// is a no-op returning OK.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unarmed: never expires, observes no token.
  Deadline() = default;

  /// Expires `budget` from now.
  static Deadline After(Clock::duration budget) {
    Deadline d;
    d.has_expiry_ = true;
    d.expiry_ = Clock::now() + budget;
    return d;
  }

  /// Expires at `when`.
  static Deadline At(Clock::time_point when) {
    Deadline d;
    d.has_expiry_ = true;
    d.expiry_ = when;
    return d;
  }

  /// Observes `token` (not owned; must outlive the deadline). May be
  /// combined with a wall-clock expiry.
  void ObserveCancellation(const CancelToken* token) { token_ = token; }

  /// True iff Check() can ever fail — engines use this to skip the
  /// polling machinery entirely when no cutoff is configured.
  bool armed() const { return has_expiry_ || token_ != nullptr; }

  bool expired() const { return has_expiry_ && Clock::now() >= expiry_; }
  bool cancelled() const { return token_ != nullptr && token_->cancelled(); }

  /// OK, or kCancelled / kDeadlineExceeded. Cancellation is checked
  /// first (an atomic load) so a cancelled long-running enumeration
  /// reports the caller's intent even when the clock has also run out.
  Status Check() const {
    if (cancelled()) {
      return Status::Cancelled("operation cancelled via CancelToken");
    }
    if (expired()) {
      return Status::DeadlineExceeded("operation deadline expired");
    }
    return Status::OK();
  }

 private:
  bool has_expiry_ = false;
  Clock::time_point expiry_{};
  const CancelToken* token_ = nullptr;
};

}  // namespace good::common

#endif  // GOOD_COMMON_DEADLINE_H_
