#include "common/interner.h"

namespace good {

Symbol SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return Symbol{it->second};
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return Symbol{id};
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return Symbol{kInvalidId};
  return Symbol{it->second};
}

const std::string& SymbolTable::NameOf(Symbol symbol) const {
  static const std::string kInvalid = "<invalid>";
  std::lock_guard<std::mutex> lock(mutex_);
  if (symbol.id >= names_.size()) return kInvalid;
  // Deque entries are address-stable and never mutated after interning,
  // so the reference outlives the lock.
  return names_[symbol.id];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

SymbolTable& GlobalSymbols() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

}  // namespace good
