/// \file retry.h
/// \brief Classification of transient failures.
///
/// Two Status codes describe conditions that a fresh attempt can cure
/// without any operator intervention:
///  - kUnavailable: the service or device momentarily cannot perform
///    the operation (a transient I/O fault the WAL retry loop rides
///    out, a server that is still starting, a briefly stalled commit
///    pipeline);
///  - kAborted: an optimistic transaction lost a first-committer-wins
///    race — nothing was applied, and re-running against a fresh
///    snapshot is exactly what the protocol expects.
/// Everything else is either permanent (bad arguments, missing
/// entities, corruption) or an intentional cutoff the caller chose
/// (deadline, cancellation, budget) that retrying would subvert.
///
/// Retry loops — the storage engine's WAL append retry, the server
/// client's transaction auto-retry — gate on IsRetriable so that a
/// permanent error surfaces immediately instead of burning the retry
/// budget against a failure that cannot change.

#ifndef GOOD_COMMON_RETRY_H_
#define GOOD_COMMON_RETRY_H_

#include "common/status.h"

namespace good::common {

/// \brief True iff a fresh attempt of the failed operation can
/// plausibly succeed without external intervention.
inline bool IsRetriable(const Status& status) {
  return status.IsUnavailable() || status.IsAborted();
}

}  // namespace good::common

#endif  // GOOD_COMMON_RETRY_H_
