/// \file retry.h
/// \brief Classification of transient failures.
///
/// Two Status codes describe conditions that a fresh attempt can cure
/// without any operator intervention:
///  - kUnavailable: the service or device momentarily cannot perform
///    the operation (a transient I/O fault the WAL retry loop rides
///    out, a server that is still starting, a briefly stalled commit
///    pipeline);
///  - kAborted: an optimistic transaction lost a first-committer-wins
///    race — nothing was applied, and re-running against a fresh
///    snapshot is exactly what the protocol expects.
/// Everything else is either permanent (bad arguments, missing
/// entities, corruption) or an intentional cutoff the caller chose
/// (deadline, cancellation, budget) that retrying would subvert.
///
/// Retry loops — the storage engine's WAL append retry, the server
/// client's transaction auto-retry — gate on IsRetriable so that a
/// permanent error surfaces immediately instead of burning the retry
/// budget against a failure that cannot change. They share the Backoff
/// schedule below: capped exponential delays with seeded ±jitter, so
/// many clients that fail together do not retry in lockstep (and a
/// test can still replay the exact delay sequence from the seed).

#ifndef GOOD_COMMON_RETRY_H_
#define GOOD_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace good::common {

/// \brief True iff a fresh attempt of the failed operation can
/// plausibly succeed without external intervention.
inline bool IsRetriable(const Status& status) {
  return status.IsUnavailable() || status.IsAborted();
}

/// \brief Shape of a retry schedule: how many attempts, how long to
/// wait between them, and how much seeded jitter to spread them out.
struct BackoffPolicy {
  /// Retries after the first attempt; 0 disables retrying.
  size_t max_retries = 3;
  /// Delay before the first retry; doubles per retry until `max_delay`.
  std::chrono::microseconds initial_delay{500};
  /// Hard ceiling on any single delay (the fix for "doubles forever").
  std::chrono::microseconds max_delay{100'000};
  /// Fractional jitter: each delay is scaled by a seeded factor drawn
  /// uniformly from [1-jitter, 1+jitter]. 0 disables jitter.
  double jitter = 0.25;
  /// Seed of the jitter stream; the delay sequence is a pure function
  /// of (policy, seed), so failures reproduce exactly.
  uint64_t seed = 0;
};

/// \brief One retry loop's schedule state. Not thread-safe; make one
/// per loop.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy)
      : policy_(policy), rng_(policy.seed + 0x9e3779b97f4a7c15ull) {}

  /// Retries consumed so far.
  size_t retries() const { return retries_; }

  /// True while the policy allows another retry.
  bool CanRetry() const { return retries_ < policy_.max_retries; }

  /// Consumes one retry and returns the jittered, capped delay to
  /// sleep before it (zero when delays are disabled). Call only when
  /// CanRetry().
  std::chrono::microseconds NextDelay() {
    ++retries_;
    if (policy_.initial_delay.count() <= 0) {
      return std::chrono::microseconds{0};
    }
    // initial * 2^(retries-1), saturating at max_delay.
    int64_t delay = policy_.initial_delay.count();
    for (size_t i = 1; i < retries_ && delay < policy_.max_delay.count();
         ++i) {
      delay *= 2;
    }
    delay = std::min<int64_t>(delay, policy_.max_delay.count());
    if (policy_.jitter > 0.0) {
      // splitmix64 step -> uniform factor in [1-jitter, 1+jitter].
      uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
      double factor = 1.0 + policy_.jitter * (2.0 * unit - 1.0);
      delay = static_cast<int64_t>(static_cast<double>(delay) * factor);
    }
    return std::chrono::microseconds{std::max<int64_t>(delay, 0)};
  }

 private:
  BackoffPolicy policy_;
  size_t retries_ = 0;
  uint64_t rng_;
};

}  // namespace good::common

#endif  // GOOD_COMMON_RETRY_H_
