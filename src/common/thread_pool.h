/// \file thread_pool.h
/// \brief A small reusable worker pool with a chunked work queue.
///
/// A ThreadPool spawns a fixed set of workers once and reuses them for
/// any number of ParallelFor calls. Each call publishes a job of
/// `num_items` independent work items; workers claim item indices one at
/// a time from a shared cursor (dynamic load balancing: a worker that
/// finishes early simply claims the next unclaimed item). The caller
/// blocks until every item has completed, which doubles as the
/// happens-before edge making all worker writes visible to the caller.
///
/// The pool is the engine behind the parallel pattern matcher and the
/// parallel bulk-application paths in ops — both partition their work
/// into chunks whose outputs are merged in chunk order, so results are
/// deterministic regardless of which worker ran which chunk.

#ifndef GOOD_COMMON_THREAD_POOL_H_
#define GOOD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace good::common {

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (a request for 0 spawns 1).
  explicit ThreadPool(size_t num_workers);

  /// Joins all workers. Must not be called while a ParallelFor is in
  /// flight on another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs fn(worker_index, item_index) for every item in [0, num_items)
  /// and blocks until all items are done. Items are claimed from a
  /// shared cursor, so fn runs concurrently on the pool's workers;
  /// worker_index < num_workers() identifies the executing worker,
  /// letting callers keep per-worker state without synchronization.
  /// Not re-entrant: one ParallelFor at a time per pool, and fn must not
  /// call back into the same pool.
  void ParallelFor(size_t num_items,
                   const std::function<void(size_t worker_index,
                                            size_t item_index)>& fn);

  /// The hardware thread count (at least 1).
  static size_t HardwareConcurrency();

 private:
  void WorkerMain(size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // Wakes workers: new job or stop.
  std::condition_variable done_cv_;  // Wakes ParallelFor: job drained.
  const std::function<void(size_t, size_t)>* job_ = nullptr;
  size_t job_items_ = 0;
  size_t next_item_ = 0;  // Next unclaimed item of the current job.
  size_t in_flight_ = 0;  // Items claimed but not yet finished.
  bool stop_ = false;
};

}  // namespace good::common

#endif  // GOOD_COMMON_THREAD_POOL_H_
