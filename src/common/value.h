/// \file value.h
/// \brief Constants carried by printable objects.
///
/// The paper assumes a function pi associating to each printable object
/// label an appropriate set of constants ("characters, strings, numbers,
/// booleans, but also drawings, graphics, sound, etc"). We realize the
/// constant universe as the tagged union good::Value, covering booleans,
/// 64-bit integers, doubles, strings, calendar dates (the hyper-media
/// example's Date class) and raw byte blobs (Bitmap / Bitstream /
/// Longstring payloads).

#ifndef GOOD_COMMON_VALUE_H_
#define GOOD_COMMON_VALUE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace good {

/// \brief A calendar date, as used by the hyper-media example's Date
/// printable class ("Jan 12, 1990").
struct Date {
  int32_t year = 0;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..31

  friend auto operator<=>(const Date&, const Date&) = default;

  /// Days since the proleptic Gregorian epoch (0000-03-01 based civil
  /// algorithm); used to implement date arithmetic (the paper's method D
  /// computes the number of days elapsed between two dates).
  int64_t ToDayNumber() const;
  static Date FromDayNumber(int64_t days);

  /// Formats as "Jan 12, 1990" to match the paper's figures.
  std::string ToString() const;

  /// Parses "Jan 12, 1990" style strings.
  static Result<Date> Parse(const std::string& text);
};

/// \brief Raw byte payload (Bitmap / Bitstream contents).
using Bytes = std::vector<uint8_t>;

/// \brief Discriminator for Value alternatives; order matches the
/// variant's alternative index.
enum class ValueKind : int {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kDate = 4,
  kBytes = 5,
};

std::string_view ValueKindToString(ValueKind kind);

/// \brief A constant attached to a printable node.
///
/// Values are totally ordered within a kind and ordered by kind across
/// kinds (so they can key ordered containers); the printable-predicate
/// macro of Section 4.1 compares only same-kind values.
class Value {
 public:
  Value() : rep_(false) {}
  explicit Value(bool v) : rep_(v) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(Date v) : rep_(v) {}
  explicit Value(Bytes v) : rep_(std::move(v)) {}

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }

  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_date() const { return kind() == ValueKind::kDate; }
  bool is_bytes() const { return kind() == ValueKind::kBytes; }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Date& AsDate() const { return std::get<Date>(rep_); }
  const Bytes& AsBytes() const { return std::get<Bytes>(rep_); }

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return a.rep_ <= b.rep_;
  }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return b <= a; }

  /// Human-readable rendering (dates as "Jan 12, 1990", bytes as hex).
  std::string ToString() const;

  /// Stable hash usable across processes.
  size_t Hash() const;

 private:
  std::variant<bool, int64_t, double, std::string, Date, Bytes> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace good

namespace std {
template <>
struct hash<good::Value> {
  size_t operator()(const good::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // GOOD_COMMON_VALUE_H_
