#include "common/status.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace good {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

StatusCode StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
      StatusCode::kResourceExhausted,  StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kDataLoss,
      StatusCode::kDeadlineExceeded,   StatusCode::kCancelled,
      StatusCode::kUnavailable,  StatusCode::kAborted,
  };
  for (StatusCode code : kAll) {
    if (StatusCodeToString(code) == name) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const {
  std::fprintf(stderr, "GOOD fatal status: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace good
