/// \file status.h
/// \brief Error model for the GOOD library.
///
/// The library does not use C++ exceptions. All fallible public APIs
/// return a good::Status or a good::Result<T> (see result.h), in the
/// style of Apache Arrow / Google status codes.

#ifndef GOOD_COMMON_STATUS_H_
#define GOOD_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace good {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument is malformed (e.g. a label of the wrong
  /// kind, an edge between labels not in the scheme's P relation).
  kInvalidArgument = 1,
  /// A referenced entity does not exist (node id, label, method name).
  kNotFound = 2,
  /// An entity being created already exists.
  kAlreadyExists = 3,
  /// The operation is valid but the database state forbids it — e.g. an
  /// edge addition whose result would violate functional-edge uniqueness
  /// (the run-time consistency check of Section 3.2 of the paper).
  kFailedPrecondition = 4,
  /// A numeric or positional argument is outside its valid range.
  kOutOfRange = 5,
  /// A step/recursion budget was exhausted (methods are Turing-complete,
  /// so non-termination must be cut off by budget).
  kResourceExhausted = 6,
  /// Feature intentionally not provided.
  kUnimplemented = 7,
  /// Invariant violation inside the library itself; indicates a bug.
  kInternal = 8,
  /// Unrecoverable loss or corruption of persisted data: a checksum
  /// mismatch in a stored record, a write-ahead log whose interior (not
  /// merely its tail) is damaged, or a snapshot that no longer parses.
  /// Unlike kInternal this signals damage to durable state, not a code
  /// bug; callers should surface it loudly rather than retry.
  kDataLoss = 9,
  /// A wall-clock deadline expired before the operation completed.
  /// Methods make GOOD Turing-complete (Section 4.3), and pattern
  /// enumeration alone can be super-polynomial, so production callers
  /// bound execution by time as well as by step budget
  /// (common/deadline.h). The instance is rolled back, not left
  /// half-mutated.
  kDeadlineExceeded = 10,
  /// The operation was cancelled cooperatively via a CancelToken
  /// observed from another thread. Like kDeadlineExceeded this is a
  /// clean cutoff: transactional callers roll back to the pre-call
  /// state.
  kCancelled = 11,
  /// The service can currently not perform the operation but the
  /// condition is not damage to the caller's data: a database opened
  /// read-only in degraded salvage mode rejects writes with
  /// kUnavailable (reads keep working), where kDataLoss would wrongly
  /// suggest the write itself lost data.
  kUnavailable = 12,
  /// An optimistic transaction lost a first-committer-wins race: a
  /// transaction that committed after this one's snapshot touched an
  /// overlapping set of nodes/edges, so the commit was rejected to
  /// preserve snapshot-consistent client decisions. Nothing was applied
  /// or logged; re-running the transaction against a fresh snapshot is
  /// the expected reaction (see common::IsRetriable).
  kAborted = 13,
};

/// \brief Returns the canonical name of a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Inverse of StatusCodeToString; kInternal for unknown names
/// (an unknown wire code is a protocol bug, which kInternal flags).
StatusCode StatusCodeFromString(std::string_view name);

/// \brief An operation outcome: either OK or an error code with message.
///
/// Status is cheap to copy in the OK case (a single null pointer); error
/// details are heap-allocated only when an error actually occurs.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A code of
  /// StatusCode::kOk ignores the message.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Intended for
  /// call sites (tests, examples) where failure is a programming error.
  void Abort() const;
  const Status& OrDie() const {
    if (!ok()) Abort();
    return *this;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace good

/// Propagates a non-OK Status from the evaluated expression.
#define GOOD_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::good::Status _good_status = (expr);        \
    if (!_good_status.ok()) return _good_status; \
  } while (false)

#define GOOD_CONCAT_IMPL(a, b) a##b
#define GOOD_CONCAT(a, b) GOOD_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns its Status,
/// otherwise assigns the unwrapped value to `lhs` (which may be a
/// declaration, e.g. `GOOD_ASSIGN_OR_RETURN(auto x, F())`).
#define GOOD_ASSIGN_OR_RETURN(lhs, expr)                        \
  GOOD_ASSIGN_OR_RETURN_IMPL(GOOD_CONCAT(_good_res_, __LINE__), \
                             lhs, expr)

#define GOOD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto&& tmp = (expr);                               \
  if (!tmp.ok()) return std::move(tmp).status();     \
  lhs = std::move(tmp).ValueUnsafe()

#endif  // GOOD_COMMON_STATUS_H_
