/// \file interner.h
/// \brief String interning for label names.
///
/// All label names (object labels, printable labels, edge labels, method
/// names) are interned into 32-bit Symbols so that the pattern-matching
/// hot paths compare and hash integers rather than strings.

#ifndef GOOD_COMMON_INTERNER_H_
#define GOOD_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace good {

/// \brief An interned string handle. Symbols from the same SymbolTable
/// compare equal iff their source strings are equal.
struct Symbol {
  uint32_t id = 0;

  friend bool operator==(Symbol, Symbol) = default;
  friend auto operator<=>(Symbol, Symbol) = default;
};

/// \brief Bidirectional string <-> Symbol map. Thread-safe: all
/// accessors lock an internal mutex, and NameOf returns a reference to
/// an address-stable, immutable entry (names are stored in a deque), so
/// the reference stays valid across concurrent interning.
class SymbolTable {
 public:
  /// Interns `name`, returning its Symbol (existing or fresh).
  Symbol Intern(std::string_view name);

  /// Returns the Symbol for `name` if already interned, else a Symbol
  /// with id == kInvalidId.
  Symbol Lookup(std::string_view name) const;

  /// Returns the source string of `symbol`; "<invalid>" if unknown.
  const std::string& NameOf(Symbol symbol) const;

  size_t size() const;

  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::deque<std::string> names_;
};

/// \brief Process-wide symbol table used for all GOOD label names.
///
/// A global table lets Symbols flow freely between schemes, instances
/// and programs. The parallel matching engine runs enumeration on
/// worker threads; those workers only compare Symbol values, but the
/// table itself is mutex-guarded so interning from any thread is safe.
SymbolTable& GlobalSymbols();

/// Convenience: intern in the global table.
inline Symbol Sym(std::string_view name) {
  return GlobalSymbols().Intern(name);
}

/// Convenience: resolve in the global table.
inline const std::string& SymName(Symbol symbol) {
  return GlobalSymbols().NameOf(symbol);
}

}  // namespace good

namespace std {
template <>
struct hash<good::Symbol> {
  size_t operator()(good::Symbol s) const {
    return std::hash<uint32_t>{}(s.id);
  }
};
}  // namespace std

#endif  // GOOD_COMMON_INTERNER_H_
