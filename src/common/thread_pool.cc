#include "common/thread_pool.h"

namespace good::common {

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    size_t num_items,
    const std::function<void(size_t, size_t)>& fn) {
  if (num_items == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_items_ = num_items;
    next_item_ = 0;
    in_flight_ = 0;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock,
                [this] { return next_item_ >= job_items_ && in_flight_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerMain(size_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stop_ || (job_ != nullptr && next_item_ < job_items_);
    });
    if (stop_) return;
    const size_t item = next_item_++;
    ++in_flight_;
    const std::function<void(size_t, size_t)>* fn = job_;
    lock.unlock();
    (*fn)(worker_index, item);
    lock.lock();
    --in_flight_;
    if (next_item_ >= job_items_ && in_flight_ == 0) done_cv_.notify_all();
  }
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace good::common
