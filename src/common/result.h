/// \file result.h
/// \brief Result<T>: a value or an error Status, Arrow-style.

#ifndef GOOD_COMMON_RESULT_H_
#define GOOD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace good {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Usage:
/// \code
///   Result<NodeId> r = instance.AddNode(label);
///   if (!r.ok()) return r.status();
///   NodeId id = *r;
/// \endcode
/// or, inside a Status/Result-returning function:
/// \code
///   GOOD_ASSIGN_OR_RETURN(NodeId id, instance.AddNode(label));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs an errored Result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a Result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// Returns the error Status (OK if this holds a value).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Value accessors; must only be called when ok().
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  const T& ValueUnsafe() const& { return *value_; }
  T ValueUnsafe() && { return std::move(*value_); }

  /// Returns the value, aborting the process if this holds an error.
  const T& ValueOrDie() const& {
    if (!ok()) status_.Abort();
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) status_.Abort();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace good

#endif  // GOOD_COMMON_RESULT_H_
