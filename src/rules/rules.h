/// \file rules.h
/// \brief A rule layer on top of the GOOD operations (Section 5,
/// concluding remarks).
///
/// "Although GOOD programs are written in a procedural way, the basic
/// operations ... have a partly declarative nature. Indeed, the pattern
/// of such an operation can be seen as the (declarative) condition part
/// of a rule, while the bold or outlined part corresponds to a rule's
/// action. This simple mechanism for visualization of rules can provide
/// a basis for the development of graph-based, rule-based,
/// object-oriented database languages [G-Log]."
///
/// This module makes that outlook concrete: a Rule is a (possibly
/// negated) condition pattern with an additive action — a new node with
/// functional edges (a node addition) and/or edges between matched
/// nodes (an edge addition). A RuleEngine applies a rule set round-robin
/// to fixpoint, exploiting the idempotence of NA/EA (a round that adds
/// nothing is the fixpoint). Rule sets with negated conditions are not
/// stratified — non-monotone sets may oscillate — so runs carry a round
/// budget and report ResourceExhausted instead of looping.

#ifndef GOOD_RULES_RULES_H_
#define GOOD_RULES_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "macro/negation.h"
#include "ops/operations.h"
#include "schema/scheme.h"

namespace good::rules {

/// Fixpoint evaluation strategy — see ops::EvalMode. kIncremental (the
/// default) is semi-naive: from a rule's second evaluation on, only
/// matchings binding into the delta of growth since its previous
/// evaluation are enumerated.
using EvalMode = ops::EvalMode;

/// \brief The node-creating half of an action: a fresh `label` object
/// with functional `edges` to condition pattern nodes (exactly a node
/// addition's bold part).
struct NodeAction {
  Symbol label;
  std::vector<std::pair<Symbol, graph::NodeId>> edges;
};

/// \brief A graph rule: condition (with optional crossed parts) plus an
/// additive action.
struct Rule {
  std::string name;
  /// The condition; crossed parts express negation-as-absence evaluated
  /// against the current database each round.
  macros::NegatedPattern condition;
  /// Optional node-creating action.
  std::optional<NodeAction> node;
  /// Edge-creating actions between condition pattern nodes.
  std::vector<ops::EdgeSpec> edges;
};

/// \brief Outcome of one engine run.
struct RunReport {
  size_t rounds = 0;
  size_t nodes_added = 0;
  size_t edges_added = 0;
  /// Widest parallelism observed over the run's rule evaluations: 1 for
  /// a serial engine, up to num_threads() when parallel matching
  /// engaged, 0 when no rule was evaluated. Non-additive — accumulated
  /// by maximum, like pattern::MatchStats::workers_used.
  size_t workers_used = 0;
  /// Accumulated matcher search-effort counters over every rule
  /// evaluation of the run (candidates scanned, feasibility rejections,
  /// backtracks, per-depth fanout, delta rejections, plan-cache/pin
  /// hits).
  pattern::MatchStats match;
  /// Rounds in which at least one rule was evaluated delta-seeded or
  /// skipped outright on an empty delta. Under kNaive always zero;
  /// under kIncremental the first round is always full (no rule has a
  /// watermark yet), so incremental_rounds + full_rounds == rounds with
  /// full_rounds >= 1 on any non-empty run.
  size_t incremental_rounds = 0;
  /// Rounds evaluated entirely from scratch (including every kNaive
  /// round and an incremental run's first round).
  size_t full_rounds = 0;
  /// Lower bound on matchings NOT re-enumerated thanks to delta
  /// seeding: each time a rule is delta-evaluated or skipped, the
  /// matching count of its last evaluation is charged here (the
  /// matchings known to pre-date its watermark). Zero under kNaive.
  size_t matchings_skipped = 0;
  /// Per-round delta sizes: the nodes/edges each round added, i.e. the
  /// growth frontier feeding the NEXT round's delta windows. Index 0 is
  /// the first round; a converged run's last entries are 0/0.
  std::vector<size_t> round_delta_nodes;
  std::vector<size_t> round_delta_edges;
};

/// \brief Applies a rule set to fixpoint.
class RuleEngine {
 public:
  /// Validates and stores the rule (its positive part must be a valid
  /// pattern and action references must hit positive pattern nodes).
  Status AddRule(Rule rule);

  size_t size() const { return rules_.size(); }

  /// Worker threads forwarded to every rule's node/edge addition (and
  /// through them to the pattern matcher); 0 keeps the engine fully
  /// serial. Fixpoints and reports are identical either way
  /// (workers_used aside) — parallel application is deterministic.
  void set_num_threads(size_t num_threads) { num_threads_ = num_threads; }
  size_t num_threads() const { return num_threads_; }

  /// See pattern::MatchOptions::parallel_threshold.
  void set_parallel_threshold(size_t threshold) {
    parallel_threshold_ = threshold;
  }
  size_t parallel_threshold() const { return parallel_threshold_; }

  /// Fixpoint strategy for Run (Step is always a full naive round).
  /// Both modes reach the same fixpoint (up to node-id choice — results
  /// are isomorphic) in the same number of rounds; kIncremental skips
  /// re-enumerating matchings that pre-date each rule's last
  /// evaluation. Defaults to kIncremental.
  void set_eval_mode(EvalMode mode) { eval_mode_ = mode; }
  EvalMode eval_mode() const { return eval_mode_; }

  /// Delta-vs-full crossover for kIncremental: a rule falls back to
  /// full re-evaluation when its delta (nodes + edges) exceeds this
  /// fraction of the instance (nodes + edges). 0 forces every round
  /// full (still exercising the watermark bookkeeping); >= 1 always
  /// trusts the delta.
  void set_delta_fallback_fraction(double fraction) {
    delta_fallback_fraction_ = fraction;
  }
  double delta_fallback_fraction() const { return delta_fallback_fraction_; }

  /// Whether Run pins compiled search plans for its duration (on by
  /// default). Every round bumps the instance stats epoch, so the
  /// global (fingerprint, epoch)-keyed plan cache misses on every
  /// round of a fixpoint; the per-run pin reuses each condition's plan
  /// across rounds instead. Off = always consult the global cache
  /// (useful for measuring the churn).
  void set_plan_pinning(bool pin) { plan_pinning_ = pin; }
  bool plan_pinning() const { return plan_pinning_; }

  /// Execution cutoff (not owned; may be null). Checked before every
  /// round and threaded into every rule's pattern matching, so a
  /// runaway fixpoint computation surfaces kDeadlineExceeded /
  /// kCancelled promptly — with the interrupted round rolled back.
  void set_deadline(const common::Deadline* deadline) { deadline_ = deadline; }
  const common::Deadline* deadline() const { return deadline_; }

  /// Applies every rule once, in order. Returns the additions made.
  /// All-or-nothing per round: a failure (including a deadline
  /// interrupt) rolls back every addition the round already made.
  Result<RunReport> Step(schema::Scheme* scheme, graph::Instance* instance);

  /// Rounds until a round adds nothing; ResourceExhausted after
  /// `max_rounds`. Convergence is checked before a round is charged, so
  /// an empty rule set is trivially at fixpoint (zero rounds) whatever
  /// the budget — including max_rounds == 0. Completed rounds persist
  /// when a later round fails (each round is its own transaction), and
  /// under kIncremental the failing round's delta bookkeeping rewinds
  /// with it — a re-run converges to the same fixpoint as an
  /// uninterrupted run.
  Result<RunReport> Run(schema::Scheme* scheme, graph::Instance* instance,
                        size_t max_rounds = 10'000);

 private:
  /// Applies one rule's actions. With `delta` null both actions match
  /// in full; otherwise the node addition matches delta-seeded and the
  /// edge addition's window is re-read from the journal starting at
  /// `window_start` when the node addition grew the instance this
  /// round (the edge addition matches the post-node-addition state, so
  /// its delta must include those same-round additions). Accumulates
  /// additions/match stats into `report`; `enumerated` (may be null)
  /// accrues the matchings both actions enumerated.
  Status ApplyRule(const Rule& rule, schema::Scheme* scheme,
                   graph::Instance* instance, const pattern::DeltaSet* delta,
                   pattern::PlanPin* pin, size_t window_start,
                   RunReport* report, size_t* enumerated) const;

  /// One full (naive) round under its own transaction, with an
  /// optional per-run plan pin. Step() is this with no pin.
  Result<RunReport> StepWithPin(schema::Scheme* scheme,
                                graph::Instance* instance,
                                pattern::PlanPin* pin);

  std::vector<Rule> rules_;
  size_t num_threads_ = 0;
  size_t parallel_threshold_ = pattern::kDefaultParallelThreshold;
  const common::Deadline* deadline_ = nullptr;
  EvalMode eval_mode_ = EvalMode::kIncremental;
  double delta_fallback_fraction_ = pattern::kDefaultDeltaFallbackFraction;
  bool plan_pinning_ = true;
};

}  // namespace good::rules

#endif  // GOOD_RULES_RULES_H_
