/// \file rules.h
/// \brief A rule layer on top of the GOOD operations (Section 5,
/// concluding remarks).
///
/// "Although GOOD programs are written in a procedural way, the basic
/// operations ... have a partly declarative nature. Indeed, the pattern
/// of such an operation can be seen as the (declarative) condition part
/// of a rule, while the bold or outlined part corresponds to a rule's
/// action. This simple mechanism for visualization of rules can provide
/// a basis for the development of graph-based, rule-based,
/// object-oriented database languages [G-Log]."
///
/// This module makes that outlook concrete: a Rule is a (possibly
/// negated) condition pattern with an additive action — a new node with
/// functional edges (a node addition) and/or edges between matched
/// nodes (an edge addition). A RuleEngine applies a rule set round-robin
/// to fixpoint, exploiting the idempotence of NA/EA (a round that adds
/// nothing is the fixpoint). Rule sets with negated conditions are not
/// stratified — non-monotone sets may oscillate — so runs carry a round
/// budget and report ResourceExhausted instead of looping.

#ifndef GOOD_RULES_RULES_H_
#define GOOD_RULES_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "macro/negation.h"
#include "ops/operations.h"
#include "schema/scheme.h"

namespace good::rules {

/// \brief The node-creating half of an action: a fresh `label` object
/// with functional `edges` to condition pattern nodes (exactly a node
/// addition's bold part).
struct NodeAction {
  Symbol label;
  std::vector<std::pair<Symbol, graph::NodeId>> edges;
};

/// \brief A graph rule: condition (with optional crossed parts) plus an
/// additive action.
struct Rule {
  std::string name;
  /// The condition; crossed parts express negation-as-absence evaluated
  /// against the current database each round.
  macros::NegatedPattern condition;
  /// Optional node-creating action.
  std::optional<NodeAction> node;
  /// Edge-creating actions between condition pattern nodes.
  std::vector<ops::EdgeSpec> edges;
};

/// \brief Outcome of one engine run.
struct RunReport {
  size_t rounds = 0;
  size_t nodes_added = 0;
  size_t edges_added = 0;
  /// Widest parallelism observed over the run's rule evaluations: 1 for
  /// a serial engine, up to num_threads() when parallel matching
  /// engaged, 0 when no rule was evaluated. Non-additive — accumulated
  /// by maximum, like pattern::MatchStats::workers_used.
  size_t workers_used = 0;
  /// Accumulated matcher search-effort counters over every rule
  /// evaluation of the run (candidates scanned, feasibility rejections,
  /// backtracks, per-depth fanout).
  pattern::MatchStats match;
};

/// \brief Applies a rule set to fixpoint.
class RuleEngine {
 public:
  /// Validates and stores the rule (its positive part must be a valid
  /// pattern and action references must hit positive pattern nodes).
  Status AddRule(Rule rule);

  size_t size() const { return rules_.size(); }

  /// Worker threads forwarded to every rule's node/edge addition (and
  /// through them to the pattern matcher); 0 keeps the engine fully
  /// serial. Fixpoints and reports are identical either way
  /// (workers_used aside) — parallel application is deterministic.
  void set_num_threads(size_t num_threads) { num_threads_ = num_threads; }
  size_t num_threads() const { return num_threads_; }

  /// See pattern::MatchOptions::parallel_threshold.
  void set_parallel_threshold(size_t threshold) {
    parallel_threshold_ = threshold;
  }
  size_t parallel_threshold() const { return parallel_threshold_; }

  /// Execution cutoff (not owned; may be null). Checked before every
  /// round and threaded into every rule's pattern matching, so a
  /// runaway fixpoint computation surfaces kDeadlineExceeded /
  /// kCancelled promptly — with the interrupted round rolled back.
  void set_deadline(const common::Deadline* deadline) { deadline_ = deadline; }
  const common::Deadline* deadline() const { return deadline_; }

  /// Applies every rule once, in order. Returns the additions made.
  /// All-or-nothing per round: a failure (including a deadline
  /// interrupt) rolls back every addition the round already made.
  Result<RunReport> Step(schema::Scheme* scheme, graph::Instance* instance);

  /// Rounds of Step until a round adds nothing; ResourceExhausted after
  /// `max_rounds`. Convergence is checked before a round is charged, so
  /// an empty rule set is trivially at fixpoint (zero rounds) whatever
  /// the budget — including max_rounds == 0. Completed rounds persist
  /// when a later round fails (each round is its own transaction).
  Result<RunReport> Run(schema::Scheme* scheme, graph::Instance* instance,
                        size_t max_rounds = 10'000);

 private:
  std::vector<Rule> rules_;
  size_t num_threads_ = 0;
  size_t parallel_threshold_ = pattern::kDefaultParallelThreshold;
  const common::Deadline* deadline_ = nullptr;
};

}  // namespace good::rules

#endif  // GOOD_RULES_RULES_H_
