#include "rules/rules.h"

#include <algorithm>
#include <set>

#include "ops/transaction.h"

namespace good::rules {

using graph::Instance;
using graph::NodeId;
using schema::Scheme;

Status RuleEngine::AddRule(Rule rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("rule name must not be empty");
  }
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern positive,
                        rule.condition.PositivePart());
  std::set<NodeId> positive_nodes(rule.condition.positive_nodes.begin(),
                                  rule.condition.positive_nodes.end());
  if (rule.node.has_value()) {
    std::set<Symbol> labels;
    for (const auto& [edge, target] : rule.node->edges) {
      if (!labels.insert(edge).second) {
        return Status::InvalidArgument("rule '" + rule.name +
                                       "' repeats a node-action edge label");
      }
      if (!positive_nodes.contains(target)) {
        return Status::InvalidArgument(
            "rule '" + rule.name +
            "' node action references a non-positive pattern node");
      }
    }
  }
  for (const ops::EdgeSpec& spec : rule.edges) {
    if (!positive_nodes.contains(spec.source) ||
        !positive_nodes.contains(spec.target)) {
      return Status::InvalidArgument(
          "rule '" + rule.name +
          "' edge action references a non-positive pattern node");
    }
  }
  if (!rule.node.has_value() && rule.edges.empty()) {
    return Status::InvalidArgument("rule '" + rule.name +
                                   "' has no action");
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

namespace {

/// True iff the condition actually negates something — only then is the
/// crossed-extension filter meaningful (with no crossed parts, every
/// matching trivially "extends to the full pattern").
bool HasNegation(const macros::NegatedPattern& condition) {
  return !condition.crossed_edges.empty() ||
         condition.full.num_nodes() > condition.positive_nodes.size();
}

}  // namespace

Result<RunReport> RuleEngine::Step(Scheme* scheme, Instance* instance) {
  if (deadline_ != nullptr) GOOD_RETURN_NOT_OK(deadline_->Check());
  RunReport report;
  report.rounds = 1;
  // One transaction per round: a failing rule evaluation rolls back the
  // whole round, keeping reported fixpoint progress consistent with the
  // database state.
  ops::Transaction txn(scheme, instance);
  for (const Rule& rule : rules_) {
    GOOD_ASSIGN_OR_RETURN(pattern::Pattern positive,
                          rule.condition.PositivePart());
    ops::MatchFilter filter;
    if (HasNegation(rule.condition)) {
      GOOD_ASSIGN_OR_RETURN(
          filter, macros::NegationFilter(rule.condition, deadline_));
    }
    if (rule.node.has_value()) {
      ops::NodeAddition na(positive, rule.node->label, rule.node->edges);
      if (filter) na.set_filter(filter);
      na.set_num_threads(num_threads_);
      na.set_parallel_threshold(parallel_threshold_);
      ops::ApplyStats stats;
      GOOD_RETURN_NOT_OK(na.Apply(scheme, instance, &stats, deadline_));
      report.nodes_added += stats.nodes_added;
      report.edges_added += stats.edges_added;
      report.match += stats.match;
    }
    if (!rule.edges.empty()) {
      ops::EdgeAddition ea(positive, rule.edges);
      if (filter) ea.set_filter(filter);
      ea.set_num_threads(num_threads_);
      ea.set_parallel_threshold(parallel_threshold_);
      ops::ApplyStats stats;
      GOOD_RETURN_NOT_OK(ea.Apply(scheme, instance, &stats, deadline_));
      report.edges_added += stats.edges_added;
      report.match += stats.match;
    }
  }
  report.workers_used = report.match.workers_used;
  txn.Commit();
  return report;
}

Result<RunReport> RuleEngine::Run(Scheme* scheme, Instance* instance,
                                  size_t max_rounds) {
  RunReport total;
  // Convergence is checked before any round is charged: an empty rule
  // set is trivially at fixpoint, even with max_rounds == 0 — only rule
  // sets that still need a round can exhaust the budget.
  if (rules_.empty()) return total;
  for (size_t round = 0; round < max_rounds; ++round) {
    GOOD_ASSIGN_OR_RETURN(RunReport step, Step(scheme, instance));
    total.rounds += step.rounds;
    total.nodes_added += step.nodes_added;
    total.edges_added += step.edges_added;
    total.workers_used = std::max(total.workers_used, step.workers_used);
    total.match += step.match;
    if (step.nodes_added == 0 && step.edges_added == 0) return total;
  }
  return Status::ResourceExhausted(
      "rule set did not reach a fixpoint within " +
      std::to_string(max_rounds) + " rounds");
}

}  // namespace good::rules
