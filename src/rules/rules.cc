#include "rules/rules.h"

#include <algorithm>
#include <memory>
#include <set>

#include "graph/undo_journal.h"
#include "ops/transaction.h"

namespace good::rules {

using graph::Instance;
using graph::NodeId;
using schema::Scheme;

Status RuleEngine::AddRule(Rule rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("rule name must not be empty");
  }
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern positive,
                        rule.condition.PositivePart());
  std::set<NodeId> positive_nodes(rule.condition.positive_nodes.begin(),
                                  rule.condition.positive_nodes.end());
  if (rule.node.has_value()) {
    std::set<Symbol> labels;
    for (const auto& [edge, target] : rule.node->edges) {
      if (!labels.insert(edge).second) {
        return Status::InvalidArgument("rule '" + rule.name +
                                       "' repeats a node-action edge label");
      }
      if (!positive_nodes.contains(target)) {
        return Status::InvalidArgument(
            "rule '" + rule.name +
            "' node action references a non-positive pattern node");
      }
    }
  }
  for (const ops::EdgeSpec& spec : rule.edges) {
    if (!positive_nodes.contains(spec.source) ||
        !positive_nodes.contains(spec.target)) {
      return Status::InvalidArgument(
          "rule '" + rule.name +
          "' edge action references a non-positive pattern node");
    }
  }
  if (!rule.node.has_value() && rule.edges.empty()) {
    return Status::InvalidArgument("rule '" + rule.name +
                                   "' has no action");
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

namespace {

/// True iff the condition actually negates something — only then is the
/// crossed-extension filter meaningful (with no crossed parts, every
/// matching trivially "extends to the full pattern").
bool HasNegation(const macros::NegatedPattern& condition) {
  return !condition.crossed_edges.empty() ||
         condition.full.num_nodes() > condition.positive_nodes.size();
}

}  // namespace

Status RuleEngine::ApplyRule(const Rule& rule, Scheme* scheme,
                             Instance* instance,
                             const pattern::DeltaSet* delta,
                             pattern::PlanPin* pin, size_t window_start,
                             RunReport* report, size_t* enumerated) const {
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern positive,
                        rule.condition.PositivePart());
  ops::MatchFilter filter;
  if (HasNegation(rule.condition)) {
    // The crossed-extension check runs its own matcher against the
    // instance passed at filter time — the full current database, never
    // the delta. Negation stays non-monotone-correct under delta
    // seeding because growth can only turn accepted matchings into
    // rejected ones (any newly-rejected matching already fired when it
    // was accepted, and additions are idempotent).
    GOOD_ASSIGN_OR_RETURN(filter,
                          macros::NegationFilter(rule.condition, deadline_));
  }
  const graph::UndoJournal* journal = instance->journal();
  const size_t window_end = journal != nullptr ? journal->Position() : 0;
  if (rule.node.has_value()) {
    ops::NodeAddition na(positive, rule.node->label, rule.node->edges);
    if (filter) na.set_filter(filter);
    na.set_num_threads(num_threads_);
    na.set_parallel_threshold(parallel_threshold_);
    na.set_delta(delta);
    na.set_plan_pin(pin);
    ops::ApplyStats stats;
    GOOD_RETURN_NOT_OK(na.Apply(scheme, instance, &stats, deadline_));
    report->nodes_added += stats.nodes_added;
    report->edges_added += stats.edges_added;
    report->match += stats.match;
    if (enumerated != nullptr) *enumerated += stats.matchings;
  }
  if (!rule.edges.empty()) {
    // The edge addition matches the post-node-addition state, so when
    // the rule has both actions its delta window must extend over the
    // node addition's same-round additions.
    pattern::DeltaSet extended;
    const pattern::DeltaSet* ea_delta = delta;
    if (delta != nullptr && rule.node.has_value() && journal != nullptr &&
        journal->Position() != window_end) {
      extended = pattern::BuildDeltaSince(*journal, window_start);
      ea_delta = &extended;
    }
    ops::EdgeAddition ea(positive, rule.edges);
    if (filter) ea.set_filter(filter);
    ea.set_num_threads(num_threads_);
    ea.set_parallel_threshold(parallel_threshold_);
    ea.set_delta(ea_delta);
    ea.set_plan_pin(pin);
    ops::ApplyStats stats;
    GOOD_RETURN_NOT_OK(ea.Apply(scheme, instance, &stats, deadline_));
    report->edges_added += stats.edges_added;
    report->match += stats.match;
    if (enumerated != nullptr) *enumerated += stats.matchings;
  }
  return Status::OK();
}

Result<RunReport> RuleEngine::StepWithPin(Scheme* scheme, Instance* instance,
                                          pattern::PlanPin* pin) {
  if (deadline_ != nullptr) GOOD_RETURN_NOT_OK(deadline_->Check());
  RunReport report;
  report.rounds = 1;
  // One transaction per round: a failing rule evaluation rolls back the
  // whole round, keeping reported fixpoint progress consistent with the
  // database state.
  ops::Transaction txn(scheme, instance);
  for (const Rule& rule : rules_) {
    GOOD_RETURN_NOT_OK(ApplyRule(rule, scheme, instance, /*delta=*/nullptr,
                                 pin, /*window_start=*/0, &report,
                                 /*enumerated=*/nullptr));
  }
  report.workers_used = report.match.workers_used;
  txn.Commit();
  return report;
}

Result<RunReport> RuleEngine::Step(Scheme* scheme, Instance* instance) {
  return StepWithPin(scheme, instance, /*pin=*/nullptr);
}

Result<RunReport> RuleEngine::Run(Scheme* scheme, Instance* instance,
                                  size_t max_rounds) {
  RunReport total;
  // Convergence is checked before any round is charged: an empty rule
  // set is trivially at fixpoint, even with max_rounds == 0 — only rule
  // sets that still need a round can exhaust the budget.
  if (rules_.empty()) return total;
  std::shared_ptr<pattern::PlanPin> pin_holder =
      plan_pinning_ ? pattern::MakePlanPin() : nullptr;
  pattern::PlanPin* pin = pin_holder.get();

  if (eval_mode_ == EvalMode::kNaive) {
    for (size_t round = 0; round < max_rounds; ++round) {
      GOOD_ASSIGN_OR_RETURN(RunReport step, StepWithPin(scheme, instance, pin));
      total.rounds += step.rounds;
      total.nodes_added += step.nodes_added;
      total.edges_added += step.edges_added;
      total.workers_used = std::max(total.workers_used, step.workers_used);
      total.match += step.match;
      ++total.full_rounds;
      total.round_delta_nodes.push_back(step.nodes_added);
      total.round_delta_edges.push_back(step.edges_added);
      if (step.nodes_added == 0 && step.edges_added == 0) return total;
    }
    return Status::ResourceExhausted(
        "rule set did not reach a fixpoint within " +
        std::to_string(max_rounds) + " rounds");
  }

  // -- Semi-naive. One outer transaction supplies the undo journal
  //    whose windows define each rule's delta; it is committed on EVERY
  //    exit path (completed rounds persist — matching the naive
  //    contract) while each round's own nested transaction rolls back
  //    just the failing round. Watermarks are local to this call, so an
  //    interrupted run leaves no delta state behind: a re-run starts
  //    from full first evaluations against the rolled-back-to state.
  ops::Transaction run_txn(scheme, instance);
  graph::UndoJournal* journal = instance->journal();
  // Per rule: the journal position just before its previous evaluation's
  // first mutation. Its next delta window is [watermark, now) — which
  // includes its own previous additions, as self-recursive rules need.
  std::vector<size_t> watermark(rules_.size(), 0);
  std::vector<bool> evaluated(rules_.size(), false);
  // Matching count of each rule's last evaluation: the lower bound
  // charged to matchings_skipped when the rule is delta-evaluated or
  // skipped (those matchings pre-date the watermark by idempotence).
  std::vector<size_t> last_matchings(rules_.size(), 0);

  for (size_t round = 0; round < max_rounds; ++round) {
    if (deadline_ != nullptr) {
      Status deadline_status = deadline_->Check();
      if (!deadline_status.ok()) {
        run_txn.Commit();
        return deadline_status;
      }
    }
    RunReport step;
    step.rounds = 1;
    bool any_delta_eval = false;
    Status failure = Status::OK();
    {
      ops::Transaction round_txn(scheme, instance);
      for (size_t r = 0; r < rules_.size(); ++r) {
        const Rule& rule = rules_[r];
        const size_t mark_before = journal->Position();
        pattern::DeltaSet delta;
        const pattern::DeltaSet* delta_ptr = nullptr;
        if (evaluated[r]) {
          delta = pattern::BuildDeltaSince(*journal, watermark[r]);
          if (delta.empty()) {
            // Nothing grew since this rule's last evaluation: no new
            // matchings can exist, and the old ones already fired
            // (idempotence) — skip the rule outright.
            step.matchings_skipped += last_matchings[r];
            any_delta_eval = true;
            watermark[r] = mark_before;
            continue;
          }
          const size_t delta_size = delta.num_nodes() + delta.num_edges();
          const size_t db_size = instance->num_nodes() + instance->num_edges();
          if (static_cast<double>(delta_size) <=
              delta_fallback_fraction_ * static_cast<double>(db_size)) {
            delta_ptr = &delta;
          }
        }
        size_t enumerated = 0;
        failure = ApplyRule(rule, scheme, instance, delta_ptr, pin,
                            watermark[r], &step, &enumerated);
        if (!failure.ok()) break;
        if (delta_ptr != nullptr) {
          any_delta_eval = true;
          step.matchings_skipped += last_matchings[r];
          last_matchings[r] += enumerated;
        } else {
          last_matchings[r] = enumerated;
        }
        watermark[r] = mark_before;
        evaluated[r] = true;
      }
      if (failure.ok()) round_txn.Commit();
      // Otherwise round_txn's destructor rolls back this round only —
      // truncating the journal, so no rolled-back entry can leak into a
      // later window (moot here: we return below).
    }
    if (!failure.ok()) {
      run_txn.Commit();
      return failure;
    }
    total.rounds += step.rounds;
    total.nodes_added += step.nodes_added;
    total.edges_added += step.edges_added;
    total.workers_used =
        std::max(total.workers_used, step.match.workers_used);
    total.match += step.match;
    total.matchings_skipped += step.matchings_skipped;
    if (any_delta_eval) {
      ++total.incremental_rounds;
    } else {
      ++total.full_rounds;
    }
    total.round_delta_nodes.push_back(step.nodes_added);
    total.round_delta_edges.push_back(step.edges_added);
    if (step.nodes_added == 0 && step.edges_added == 0) {
      run_txn.Commit();
      return total;
    }
  }
  run_txn.Commit();
  return Status::ResourceExhausted(
      "rule set did not reach a fixpoint within " +
      std::to_string(max_rounds) + " rounds");
}

}  // namespace good::rules
