#include "graph/isomorphism.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace good::graph {

namespace {

/// Iteratively refined color classes: round 0 colors a node by
/// (label, print value); each later round appends the sorted multiset of
/// (edge label, neighbour color) over out- and in-edges.
std::unordered_map<NodeId, std::string> RefineColors(const Instance& g,
                                                     int rounds) {
  // Concatenations below deliberately build each piece with separate
  // append calls: `str += a + b` trips a GCC 12 -Werror=restrict false
  // positive in optimized builds (the temporary's buffer is believed to
  // alias the destination), which would break -DCMAKE_BUILD_TYPE=Release.
  std::unordered_map<NodeId, std::string> color;
  for (NodeId n : g.AllNodes()) {
    std::string c = SymName(g.LabelOf(n));
    if (g.PrintValueOf(n).has_value()) {
      c.push_back('=');
      c.append(g.PrintValueOf(n)->ToString());
    }
    color[n] = c;
  }
  for (int r = 0; r < rounds; ++r) {
    std::unordered_map<NodeId, std::string> next;
    for (NodeId n : g.AllNodes()) {
      std::vector<std::string> sig;
      auto edge_sig = [&](char direction, Symbol label, NodeId neighbour) {
        std::string s(1, direction);
        s.append(SymName(label));
        s.push_back(':');
        s.append(color[neighbour]);
        return s;
      };
      for (const auto& [label, target] : g.OutEdges(n)) {
        sig.push_back(edge_sig('>', label, target));
      }
      for (const auto& [source, label] : g.InEdges(n)) {
        sig.push_back(edge_sig('<', label, source));
      }
      std::sort(sig.begin(), sig.end());
      std::string c = color[n];
      c.push_back('|');
      for (const auto& s : sig) {
        c.append(s);
        c.push_back(';');
      }
      next[n] = std::move(c);
    }
    color = std::move(next);
  }
  return color;
}

struct Search {
  const Instance& a;
  const Instance& b;
  std::unordered_map<NodeId, NodeId> mapping;     // a -> b
  std::unordered_map<NodeId, NodeId> reverse;     // b -> a
  std::vector<std::pair<NodeId, std::vector<NodeId>>> candidates;  // per a-node

  /// Checks that mapping m(n)=t is consistent with all already-mapped
  /// neighbours of n (edges must correspond in both directions).
  bool Consistent(NodeId n, NodeId t) const {
    for (const auto& [label, target] : a.OutEdges(n)) {
      auto it = mapping.find(target);
      if (it != mapping.end() && !b.HasEdge(t, label, it->second)) {
        return false;
      }
    }
    for (const auto& [source, label] : a.InEdges(n)) {
      auto it = mapping.find(source);
      if (it != mapping.end() && !b.HasEdge(it->second, label, t)) {
        return false;
      }
    }
    // And conversely: every edge between t and mapped b-nodes must have a
    // pre-image (degree equality per class makes this mostly redundant,
    // but it keeps the check exact).
    for (const auto& [label, target] : b.OutEdges(t)) {
      auto it = reverse.find(target);
      if (it != reverse.end() && !a.HasEdge(n, label, it->second)) {
        return false;
      }
    }
    for (const auto& [source, label] : b.InEdges(t)) {
      auto it = reverse.find(source);
      if (it != reverse.end() && !a.HasEdge(it->second, label, n)) {
        return false;
      }
    }
    return true;
  }

  bool Solve(size_t index) {
    if (index == candidates.size()) return true;
    const auto& [n, options] = candidates[index];
    for (NodeId t : options) {
      if (reverse.contains(t)) continue;
      if (!Consistent(n, t)) continue;
      mapping[n] = t;
      reverse[t] = n;
      if (Solve(index + 1)) return true;
      mapping.erase(n);
      reverse.erase(t);
    }
    return false;
  }
};

}  // namespace

Result<std::unordered_map<NodeId, NodeId>> FindIsomorphism(const Instance& a,
                                                           const Instance& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return Status::NotFound("node/edge counts differ");
  }
  auto color_a = RefineColors(a, 3);
  auto color_b = RefineColors(b, 3);

  // Group b-nodes by color.
  std::map<std::string, std::vector<NodeId>> classes_b;
  for (NodeId n : b.AllNodes()) classes_b[color_b[n]].push_back(n);
  std::map<std::string, size_t> census_a;
  for (NodeId n : a.AllNodes()) ++census_a[color_a[n]];
  for (const auto& [color, count] : census_a) {
    auto it = classes_b.find(color);
    if (it == classes_b.end() || it->second.size() != count) {
      return Status::NotFound("color census differs");
    }
  }

  Search search{a, b, {}, {}, {}};
  for (NodeId n : a.AllNodes()) {
    search.candidates.emplace_back(n, classes_b[color_a[n]]);
  }
  // Most-constrained-first ordering shrinks the search tree.
  std::stable_sort(search.candidates.begin(), search.candidates.end(),
                   [](const auto& x, const auto& y) {
                     return x.second.size() < y.second.size();
                   });
  if (!search.Solve(0)) {
    return Status::NotFound("no isomorphism exists");
  }
  return std::move(search.mapping);
}

bool IsIsomorphic(const Instance& a, const Instance& b) {
  return FindIsomorphism(a, b).ok();
}

}  // namespace good::graph
