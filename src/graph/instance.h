/// \file instance.h
/// \brief Object base instances (Section 2 of the paper).
///
/// An object base instance over a scheme S is a labeled directed graph
/// I = (N, E) where:
///  - every node carries a node label from OL ∪ POL; printable nodes may
///    additionally carry a print label (a constant from the label's
///    domain);
///  - every edge (m, α, n) is typed by a triple (λ(m), α, λ(n)) ∈ P;
///  - all α-successors of a node have equal node labels; if α is
///    functional there is at most one α-successor;
///  - two printable nodes with the same label and the same print value
///    are the same node (printable dedup).
/// The Instance class enforces all four conditions on mutation and can
/// re-verify them wholesale with Validate().

#ifndef GOOD_GRAPH_INSTANCE_H_
#define GOOD_GRAPH_INSTANCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/interner.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "schema/scheme.h"

namespace good::graph {

class UndoJournal;

/// \brief Opaque object identity. The paper's objects "exist
/// independently of their properties"; a NodeId is that identity.
struct NodeId {
  uint32_t id = kInvalid;

  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
  bool valid() const { return id != kInvalid; }

  friend bool operator==(NodeId, NodeId) = default;
  friend auto operator<=>(NodeId, NodeId) = default;
};

/// \brief A labeled directed edge.
struct Edge {
  NodeId source;
  Symbol label;
  NodeId target;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// \brief Hash for Edge, enabling the O(1) edge-membership index.
struct EdgeHash {
  size_t operator()(const Edge& e) const {
    size_t seed = std::hash<uint32_t>{}(e.source.id);
    HashCombine(&seed, e.label.id);
    HashCombine(&seed, e.target.id);
    return seed;
  }
};

/// \brief An object base instance over some scheme.
///
/// The instance does not own its scheme; mutators take the scheme as a
/// parameter so that operations (which may extend the scheme) can pass
/// the freshest version. Instances are value types — copying snapshots
/// the whole graph, which the operational semantics relies on (all
/// matchings are computed against the pre-state).
class Instance {
 public:
  Instance() = default;

  /// Copies snapshot the graph but never the journal attachment: a
  /// journal records mutations of one specific instance, so a copy
  /// taken mid-transaction starts un-journaled.
  Instance(const Instance& other);
  Instance& operator=(const Instance& other);
  /// Moves transfer the journal attachment (the recorded state now
  /// lives in the destination) and detach the source.
  Instance(Instance&& other) noexcept;
  Instance& operator=(Instance&& other) noexcept;

  // ---- Undo journaling -----------------------------------------------------

  /// Attaches `journal` (not owned): every subsequent mutation records
  /// its inverse there until DetachJournal(). At most one journal can
  /// be attached; nested transaction scopes share it via savepoint
  /// marks (see ops/transaction.h).
  void AttachJournal(UndoJournal* journal) { journal_ = journal; }
  void DetachJournal() { journal_ = nullptr; }
  UndoJournal* journal() const { return journal_; }

  // ---- Node mutation -------------------------------------------------------

  /// Adds a fresh object node labeled `label` (must be in OL).
  Result<NodeId> AddObjectNode(const schema::Scheme& scheme, Symbol label);

  /// Adds (or finds) the printable node with `label` and print value
  /// `value`. Per the instance definition printable nodes are unique per
  /// (label, value), so re-adding returns the existing node.
  Result<NodeId> AddPrintableNode(const schema::Scheme& scheme, Symbol label,
                                  Value value);

  /// Adds a printable node without a print value. The formal definition
  /// makes the print label optional ("each printable node CAN have one
  /// additional label print(n)"); patterns use valueless printable nodes
  /// as wildcards (e.g. the Date nodes of Figure 8). Valueless nodes are
  /// not deduplicated.
  Result<NodeId> AddValuelessPrintableNode(const schema::Scheme& scheme,
                                           Symbol label);

  /// Re-creates a node under its original id (checkpoint load). Ids are
  /// never reused, so a snapshot's id set is sparse ascending; callers
  /// restore in ascending order and `id` must lie at or beyond the
  /// allocation frontier — the gap up to it is filled with tombstones
  /// so every later id keeps its meaning. `print` (when set) must match
  /// the label's domain and be new to its dedup index; restoring is
  /// otherwise validated exactly like the Add* paths.
  Result<NodeId> RestoreNodeAt(const schema::Scheme& scheme, NodeId id,
                               Symbol label, std::optional<Value> print);

  /// The id the next node will be allocated (ids are never reused, so
  /// this only grows). Checkpoints persist it so a degraded load can
  /// reserve past ids it could not read.
  size_t NodeFrontier() const { return nodes_.size(); }

  /// Pads the node table with tombstones until NodeFrontier() >=
  /// `frontier`. Used by the checkpoint loader; no-op when already
  /// there.
  void ReserveNodeFrontier(size_t frontier);

  /// Removes `node` and all incident edges (node-deletion semantics).
  Status RemoveNode(NodeId node);

  // ---- Edge mutation -------------------------------------------------------

  /// Adds edge (source, label, target). Checks: both nodes alive, the
  /// triple (λ(source), label, λ(target)) ∈ P, the equal-successor-label
  /// condition, and functional uniqueness. Adding an existing edge is an
  /// idempotent no-op (edge sets, not multisets).
  Status AddEdge(const schema::Scheme& scheme, NodeId source, Symbol label,
                 NodeId target);

  /// Removes the edge; OK even if absent (maximal-subinstance deletion
  /// semantics make deletion of already-deleted edges a no-op).
  Status RemoveEdge(NodeId source, Symbol label, NodeId target);

  // ---- Node queries ----------------------------------------------------------

  bool HasNode(NodeId node) const {
    return node.id < nodes_.size() && nodes_[node.id].alive;
  }
  /// Node label; NodeId must be alive.
  Symbol LabelOf(NodeId node) const { return nodes_[node.id].label; }
  /// Print value; empty for object nodes.
  const std::optional<Value>& PrintValueOf(NodeId node) const {
    return nodes_[node.id].print;
  }
  /// True iff the node carries a print value. (Printable-ness of the
  /// label itself is a scheme question; a printable node may be
  /// valueless.)
  bool HasPrintValue(NodeId node) const {
    return nodes_[node.id].print.has_value();
  }

  /// All alive nodes with the given label, in ascending id order.
  std::vector<NodeId> NodesWithLabel(Symbol label) const;
  size_t CountNodesWithLabel(Symbol label) const;

  /// The unique printable node (label, value), if present.
  std::optional<NodeId> FindPrintable(Symbol label, const Value& value) const;

  /// All alive nodes in ascending id order.
  std::vector<NodeId> AllNodes() const;

  // ---- Edge queries ----------------------------------------------------------

  /// O(1) expected: backed by a whole-instance edge hash set.
  bool HasEdge(NodeId source, Symbol label, NodeId target) const {
    return edge_set_.contains(Edge{source, label, target});
  }

  /// Outgoing edges of `node` as (edge label, target) pairs.
  const std::vector<std::pair<Symbol, NodeId>>& OutEdges(NodeId node) const {
    return nodes_[node.id].out;
  }
  /// Incoming edges of `node` as (source, edge label) pairs.
  const std::vector<std::pair<NodeId, Symbol>>& InEdges(NodeId node) const {
    return nodes_[node.id].in;
  }

  /// Targets of `label`-edges leaving `node`. Index-backed: no scan over
  /// unrelated labels. The reference is invalidated by mutation.
  const std::vector<NodeId>& OutTargets(NodeId node, Symbol label) const;
  /// The unique functional `label`-successor of `node`, if any. O(1).
  std::optional<NodeId> FunctionalTarget(NodeId node, Symbol label) const;
  /// Sources of `label`-edges entering `node`. Index-backed; the
  /// reference is invalidated by mutation.
  const std::vector<NodeId>& InSources(NodeId node, Symbol label) const;

  /// Number of `label`-edges leaving `node` (no materialization).
  size_t OutDegree(NodeId node, Symbol label) const {
    return OutTargets(node, label).size();
  }
  /// Number of `label`-edges entering `node` (no materialization).
  size_t InDegree(NodeId node, Symbol label) const {
    return InSources(node, label).size();
  }

  /// Every alive edge, ascending by (source, label, target).
  std::vector<Edge> AllEdges() const;

  size_t num_nodes() const { return num_alive_; }
  size_t num_edges() const { return num_edges_; }

  // ---- Cardinality statistics ------------------------------------------------
  //
  // Incrementally maintained census counters feeding the cost-based
  // pattern planner (pattern/matcher.cc): per-label node counts (the
  // label index), per-edge-label edge counts, and per-(edge label,
  // endpoint label) degree sums. Every mutation — including undo-journal
  // rollback replay — stamps the instance with a fresh, process-globally
  // unique stats epoch, so a (pattern, epoch) pair pins down a compiled
  // plan's statistical inputs exactly: two instances share an epoch only
  // when one is an unmutated copy of the other (copies snapshot the
  // stats, so sharing is sound — this is what lets server sessions'
  // working copies reuse cached plans).

  /// The epoch stamped by the most recent mutation; 0 for a never-mutated
  /// instance.
  uint64_t stats_epoch() const { return stats_epoch_; }

  // ---- Dirty-class tracking ----------------------------------------------
  //
  // Partitioned checkpoints (storage/partition.h) persist the instance
  // per class: the partition of class C holds the C-labeled nodes plus
  // every edge whose *source* is C-labeled. Each mutation therefore
  // marks the classes whose partition content it changed — maintained
  // alongside the stats epoch on every mutation path, including
  // undo-journal rollback (an undone mutation still dirties the bytes
  // on disk relative to the last checkpoint).

  /// Classes whose partition content changed since the last
  /// ClearDirtyClasses() (unordered; empty after a clear or for a
  /// fresh instance). Copies inherit the source's dirty set.
  const std::unordered_set<Symbol>& dirty_classes() const {
    return dirty_classes_;
  }
  /// Resets the dirty set — called by the checkpointer once the marked
  /// partitions are durably rewritten.
  void ClearDirtyClasses() { dirty_classes_.clear(); }

  /// Number of alive edges carrying `label`.
  size_t CountEdgesWithLabel(Symbol label) const;

  /// Total `edge_label`-out-degree summed over alive nodes labeled
  /// `source_label` — i.e. the number of `edge_label` edges leaving
  /// `source_label` nodes.
  size_t OutDegreeSum(Symbol source_label, Symbol edge_label) const;
  /// Total `edge_label`-in-degree summed over alive nodes labeled
  /// `target_label`.
  size_t InDegreeSum(Symbol target_label, Symbol edge_label) const;

  /// Expected number of `edge_label` out-edges of one `source_label`
  /// node (degree sum / label count; 0 when no such nodes exist).
  double AvgOutFanout(Symbol source_label, Symbol edge_label) const;
  /// Expected number of `edge_label` in-edges of one `target_label` node.
  double AvgInFanout(Symbol target_label, Symbol edge_label) const;

  // ---- Whole-instance checks -------------------------------------------------

  /// Re-verifies every instance condition against `scheme`. Intended for
  /// tests and for auditing after bulk operations.
  Status Validate(const schema::Scheme& scheme) const;

  /// An isomorphism-invariant multiset summary: node census per
  /// (label, print value) plus edge census per
  /// (source label/print, edge label, target label/print). Equal
  /// instances (up to iso) have equal fingerprints; the converse is
  /// checked exactly by IsIsomorphic (isomorphism.h).
  std::string Fingerprint() const;

  /// Human-readable dump (ids, labels, values, edges) for debugging.
  std::string ToString() const;

 private:
  friend class UndoJournal;

  /// Per-label adjacency stored flat: a node touches few distinct edge
  /// labels, so a linear scan over a contiguous array beats a per-node
  /// hash map on the matcher hot path and costs far less memory.
  struct LabelAdjacency {
    std::vector<std::pair<Symbol, std::vector<NodeId>>> entries;

    std::vector<NodeId>& operator[](Symbol label) {
      for (auto& [l, list] : entries) {
        if (l == label) return list;
      }
      entries.emplace_back(label, std::vector<NodeId>());
      return entries.back().second;
    }
    const std::vector<NodeId>* Find(Symbol label) const {
      for (const auto& [l, list] : entries) {
        if (l == label) return &list;
      }
      return nullptr;
    }
    void clear() { entries.clear(); }
  };

  struct NodeRep {
    Symbol label;
    std::optional<Value> print;
    bool alive = true;
    std::vector<std::pair<Symbol, NodeId>> out;
    std::vector<std::pair<NodeId, Symbol>> in;
    // Per-label adjacency (insertion order preserved): the matcher hot
    // path reads these instead of scanning `out`/`in`.
    LabelAdjacency out_by_label;
    LabelAdjacency in_by_label;
  };

  NodeId NewNode(Symbol label, std::optional<Value> print);

  /// Draws the next process-globally unique stats epoch.
  static uint64_t NextStatsEpoch();
  void BumpStatsEpoch() { stats_epoch_ = NextStatsEpoch(); }
  /// Marks class `label`'s partition as needing a rewrite.
  void MarkClassDirty(Symbol label) { dirty_classes_.insert(label); }
  /// Key for the degree-sum maps: (edge label, endpoint label).
  static uint64_t StatsKey(Symbol edge_label, Symbol endpoint_label) {
    return (static_cast<uint64_t>(edge_label.id) << 32) | endpoint_label.id;
  }
  void NoteEdgeAddedStats(Symbol edge_label, Symbol source_label,
                          Symbol target_label);
  void NoteEdgeRemovedStats(Symbol edge_label, Symbol source_label,
                            Symbol target_label);

  std::vector<NodeRep> nodes_;
  size_t num_alive_ = 0;
  size_t num_edges_ = 0;
  // Cardinality statistics (see the accessor block above). Zero-valued
  // entries are erased so the maps' supports stay exact.
  std::unordered_map<Symbol, size_t> edge_label_count_;
  std::unordered_map<uint64_t, size_t> out_degree_sum_;
  std::unordered_map<uint64_t, size_t> in_degree_sum_;
  uint64_t stats_epoch_ = 0;
  // Classes whose partition content changed since the last checkpoint
  // (see the dirty-class accessor block above).
  std::unordered_set<Symbol> dirty_classes_;
  // label -> alive node ids (ordered for deterministic iteration).
  std::unordered_map<Symbol, std::set<uint32_t>> label_index_;
  // printable label -> value -> node id.
  std::unordered_map<Symbol, std::map<Value, uint32_t>> printable_index_;
  // Every alive edge, for O(1) HasEdge.
  std::unordered_set<Edge, EdgeHash> edge_set_;
  // Inverse-mutation recorder; nullptr outside transactions. Not owned.
  UndoJournal* journal_ = nullptr;
};

}  // namespace good::graph

namespace std {
template <>
struct hash<good::graph::NodeId> {
  size_t operator()(good::graph::NodeId n) const {
    return std::hash<uint32_t>{}(n.id);
  }
};
}  // namespace std

#endif  // GOOD_GRAPH_INSTANCE_H_
