/// \file restrict.h
/// \brief Restriction of an instance to a scheme (footnote 4 of the
/// paper): "the largest subinstance of I that is an instance over S'".
///
/// Used by the method-call semantics: after a method body executes, the
/// result is restricted to (original scheme ∪ method interface), which
/// silently filters out temporary nodes and edges whose labels were
/// introduced inside the body (Figures 24-25).

#ifndef GOOD_GRAPH_RESTRICT_H_
#define GOOD_GRAPH_RESTRICT_H_

#include "common/status.h"
#include "graph/instance.h"
#include "schema/scheme.h"

namespace good::graph {

/// \brief Removes from `instance` every node whose label is not a node
/// label of `scheme` (with its incident edges) and every remaining edge
/// whose triple is not licensed by `scheme`.
Status RestrictToScheme(const schema::Scheme& scheme, Instance* instance);

}  // namespace good::graph

#endif  // GOOD_GRAPH_RESTRICT_H_
