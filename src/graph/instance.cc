#include "graph/instance.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "graph/undo_journal.h"

namespace good::graph {

Instance::Instance(const Instance& other)
    : nodes_(other.nodes_),
      num_alive_(other.num_alive_),
      num_edges_(other.num_edges_),
      edge_label_count_(other.edge_label_count_),
      out_degree_sum_(other.out_degree_sum_),
      in_degree_sum_(other.in_degree_sum_),
      stats_epoch_(other.stats_epoch_),
      dirty_classes_(other.dirty_classes_),
      label_index_(other.label_index_),
      printable_index_(other.printable_index_),
      edge_set_(other.edge_set_) {}

Instance& Instance::operator=(const Instance& other) {
  if (this == &other) return *this;
  nodes_ = other.nodes_;
  num_alive_ = other.num_alive_;
  num_edges_ = other.num_edges_;
  edge_label_count_ = other.edge_label_count_;
  out_degree_sum_ = other.out_degree_sum_;
  in_degree_sum_ = other.in_degree_sum_;
  stats_epoch_ = other.stats_epoch_;
  dirty_classes_ = other.dirty_classes_;
  label_index_ = other.label_index_;
  printable_index_ = other.printable_index_;
  edge_set_ = other.edge_set_;
  journal_ = nullptr;
  return *this;
}

Instance::Instance(Instance&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      num_alive_(other.num_alive_),
      num_edges_(other.num_edges_),
      edge_label_count_(std::move(other.edge_label_count_)),
      out_degree_sum_(std::move(other.out_degree_sum_)),
      in_degree_sum_(std::move(other.in_degree_sum_)),
      stats_epoch_(other.stats_epoch_),
      dirty_classes_(std::move(other.dirty_classes_)),
      label_index_(std::move(other.label_index_)),
      printable_index_(std::move(other.printable_index_)),
      edge_set_(std::move(other.edge_set_)),
      journal_(other.journal_) {
  other.journal_ = nullptr;
}

Instance& Instance::operator=(Instance&& other) noexcept {
  if (this == &other) return *this;
  nodes_ = std::move(other.nodes_);
  num_alive_ = other.num_alive_;
  num_edges_ = other.num_edges_;
  edge_label_count_ = std::move(other.edge_label_count_);
  out_degree_sum_ = std::move(other.out_degree_sum_);
  in_degree_sum_ = std::move(other.in_degree_sum_);
  stats_epoch_ = other.stats_epoch_;
  dirty_classes_ = std::move(other.dirty_classes_);
  label_index_ = std::move(other.label_index_);
  printable_index_ = std::move(other.printable_index_);
  edge_set_ = std::move(other.edge_set_);
  journal_ = other.journal_;
  other.journal_ = nullptr;
  return *this;
}

uint64_t Instance::NextStatsEpoch() {
  // Process-wide: epochs are unique across ALL instances, so a plan
  // cached under (pattern, epoch) can never be confused between two
  // independently mutated instances. Copies share the source's epoch —
  // legitimately, since they share its exact statistics. Epoch 0 is
  // reserved for never-mutated instances.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void Instance::NoteEdgeAddedStats(Symbol edge_label, Symbol source_label,
                                  Symbol target_label) {
  ++edge_label_count_[edge_label];
  ++out_degree_sum_[StatsKey(edge_label, source_label)];
  ++in_degree_sum_[StatsKey(edge_label, target_label)];
}

void Instance::NoteEdgeRemovedStats(Symbol edge_label, Symbol source_label,
                                    Symbol target_label) {
  auto decrement = [](auto* map, const auto& key) {
    auto it = map->find(key);
    if (--it->second == 0) map->erase(it);
  };
  decrement(&edge_label_count_, edge_label);
  decrement(&out_degree_sum_, StatsKey(edge_label, source_label));
  decrement(&in_degree_sum_, StatsKey(edge_label, target_label));
}

NodeId Instance::NewNode(Symbol label, std::optional<Value> print) {
  NodeId id{static_cast<uint32_t>(nodes_.size())};
  nodes_.push_back(NodeRep{label, std::move(print), true, {}, {}, {}, {}});
  ++num_alive_;
  label_index_[label].insert(id.id);
  BumpStatsEpoch();
  MarkClassDirty(label);
  if (journal_ != nullptr) journal_->RecordNodeAdded(id);
  return id;
}

Result<NodeId> Instance::AddObjectNode(const schema::Scheme& scheme,
                                       Symbol label) {
  if (!scheme.IsObjectLabel(label)) {
    return Status::InvalidArgument("'" + SymName(label) +
                                   "' is not an object label of the scheme");
  }
  return NewNode(label, std::nullopt);
}

Result<NodeId> Instance::AddPrintableNode(const schema::Scheme& scheme,
                                          Symbol label, Value value) {
  GOOD_ASSIGN_OR_RETURN(ValueKind domain, scheme.DomainOf(label));
  if (value.kind() != domain) {
    return Status::InvalidArgument(
        "value " + value.ToString() + " has kind " +
        std::string(ValueKindToString(value.kind())) + " but domain of '" +
        SymName(label) + "' is " + std::string(ValueKindToString(domain)));
  }
  auto& by_value = printable_index_[label];
  auto it = by_value.find(value);
  if (it != by_value.end()) return NodeId{it->second};
  NodeId id = NewNode(label, value);
  by_value.emplace(std::move(value), id.id);
  return id;
}

Result<NodeId> Instance::AddValuelessPrintableNode(
    const schema::Scheme& scheme, Symbol label) {
  if (!scheme.IsPrintableLabel(label)) {
    return Status::InvalidArgument(
        "'" + SymName(label) + "' is not a printable label of the scheme");
  }
  return NewNode(label, std::nullopt);
}

Result<NodeId> Instance::RestoreNodeAt(const schema::Scheme& scheme,
                                       NodeId id, Symbol label,
                                       std::optional<Value> print) {
  if (id.id < nodes_.size()) {
    return Status::InvalidArgument(
        "node #" + std::to_string(id.id) +
        " is below the allocation frontier (" +
        std::to_string(nodes_.size()) +
        ") — restore ids must be new and ascending");
  }
  if (print.has_value()) {
    GOOD_ASSIGN_OR_RETURN(ValueKind domain, scheme.DomainOf(label));
    if (print->kind() != domain) {
      return Status::InvalidArgument(
          "value " + print->ToString() + " has kind " +
          std::string(ValueKindToString(print->kind())) + " but domain of '" +
          SymName(label) + "' is " + std::string(ValueKindToString(domain)));
    }
    if (printable_index_[label].contains(*print)) {
      return Status::InvalidArgument("printable (" + SymName(label) + ", " +
                                     print->ToString() +
                                     ") restored twice");
    }
  } else if (!scheme.IsObjectLabel(label) &&
             !scheme.IsPrintableLabel(label)) {
    return Status::InvalidArgument("'" + SymName(label) +
                                   "' is not a label of the scheme");
  }
  // Dead filler: invisible to every query (HasNode checks alive), never
  // revived (the undo journal only records nodes that were once alive).
  while (nodes_.size() < id.id) {
    nodes_.push_back(NodeRep{Symbol{}, std::nullopt, false, {}, {}, {}, {}});
  }
  std::optional<Value> dedup_key = print;
  NodeId got = NewNode(label, std::move(print));
  if (dedup_key.has_value()) {
    printable_index_[label].emplace(std::move(*dedup_key), got.id);
  }
  return got;
}

void Instance::ReserveNodeFrontier(size_t frontier) {
  while (nodes_.size() < frontier) {
    nodes_.push_back(NodeRep{Symbol{}, std::nullopt, false, {}, {}, {}, {}});
  }
}

namespace {

/// Removes the first occurrence of `value` from `vec` (order-preserving).
void EraseFirst(std::vector<NodeId>* vec, NodeId value) {
  auto it = std::find(vec->begin(), vec->end(), value);
  if (it != vec->end()) vec->erase(it);
}

}  // namespace

Status Instance::RemoveNode(NodeId node) {
  if (!HasNode(node)) {
    return Status::NotFound("node #" + std::to_string(node.id) +
                            " does not exist");
  }
  if (journal_ != nullptr) {
    // Journaled path: detach each incident edge through RemoveEdge so
    // its exact list positions are recorded, then kill the node. The
    // edge lists are copied because RemoveEdge mutates them; a
    // self-loop appears in both copies, and its second removal is an
    // idempotent no-op. The rep keeps its label and print value (the
    // kill-undo revives them in place) and its emptied per-label
    // entries — both invisible to every query.
    const std::vector<std::pair<Symbol, NodeId>> out = nodes_[node.id].out;
    const std::vector<std::pair<NodeId, Symbol>> in = nodes_[node.id].in;
    for (const auto& [label, target] : out) {
      GOOD_RETURN_NOT_OK(RemoveEdge(node, label, target));
    }
    for (const auto& [source, label] : in) {
      GOOD_RETURN_NOT_OK(RemoveEdge(source, label, node));
    }
    NodeRep& rep = nodes_[node.id];
    rep.alive = false;
    --num_alive_;
    label_index_[rep.label].erase(node.id);
    if (rep.print.has_value()) {
      printable_index_[rep.label].erase(*rep.print);
    }
    BumpStatsEpoch();
    MarkClassDirty(rep.label);
    journal_->RecordNodeKilled(node);
    return Status::OK();
  }
  NodeRep& rep = nodes_[node.id];
  // Detach incident edges from the neighbours' mirror lists. A self-loop
  // is removed here (it appears in rep.out); the second loop only sees
  // the in-edges that survive this one.
  for (const auto& [label, target] : rep.out) {
    auto& in = nodes_[target.id].in;
    in.erase(std::remove(in.begin(), in.end(), std::make_pair(node, label)),
             in.end());
    EraseFirst(&nodes_[target.id].in_by_label[label], node);
    edge_set_.erase(Edge{node, label, target});
    --num_edges_;
    NoteEdgeRemovedStats(label, rep.label, nodes_[target.id].label);
  }
  for (const auto& [source, label] : rep.in) {
    auto& out = nodes_[source.id].out;
    out.erase(
        std::remove(out.begin(), out.end(), std::make_pair(label, node)),
        out.end());
    EraseFirst(&nodes_[source.id].out_by_label[label], node);
    edge_set_.erase(Edge{source, label, node});
    --num_edges_;
    NoteEdgeRemovedStats(label, nodes_[source.id].label, rep.label);
    // The detached in-edge lived in the *source's* partition.
    MarkClassDirty(nodes_[source.id].label);
  }
  rep.out.clear();
  rep.in.clear();
  rep.out_by_label.clear();
  rep.in_by_label.clear();
  rep.alive = false;
  --num_alive_;
  label_index_[rep.label].erase(node.id);
  if (rep.print.has_value()) {
    printable_index_[rep.label].erase(*rep.print);
  }
  BumpStatsEpoch();
  MarkClassDirty(rep.label);
  return Status::OK();
}

Status Instance::AddEdge(const schema::Scheme& scheme, NodeId source,
                         Symbol label, NodeId target) {
  if (!HasNode(source) || !HasNode(target)) {
    return Status::NotFound("edge endpoint does not exist");
  }
  const Symbol source_label = LabelOf(source);
  const Symbol target_label = LabelOf(target);
  if (!scheme.HasTriple(source_label, label, target_label)) {
    return Status::InvalidArgument(
        "scheme has no triple (" + SymName(source_label) + ", " +
        SymName(label) + ", " + SymName(target_label) + ")");
  }
  if (HasEdge(source, label, target)) return Status::OK();  // Idempotent.
  const auto& out_same_label = OutTargets(source, label);
  if (!out_same_label.empty()) {
    if (scheme.IsFunctionalEdgeLabel(label)) {
      return Status::FailedPrecondition(
          "functional edge conflict: node #" + std::to_string(source.id) +
          " already has a '" + SymName(label) + "' edge to a different node");
    }
    if (LabelOf(out_same_label.front()) != target_label) {
      return Status::FailedPrecondition(
          "successor-label conflict: '" + SymName(label) +
          "' successors of node #" + std::to_string(source.id) +
          " would have unequal labels");
    }
  }
  const bool fresh_out_entry =
      journal_ != nullptr &&
      nodes_[source.id].out_by_label.Find(label) == nullptr;
  const bool fresh_in_entry =
      journal_ != nullptr &&
      nodes_[target.id].in_by_label.Find(label) == nullptr;
  nodes_[source.id].out.emplace_back(label, target);
  nodes_[target.id].in.emplace_back(source, label);
  nodes_[source.id].out_by_label[label].push_back(target);
  nodes_[target.id].in_by_label[label].push_back(source);
  edge_set_.insert(Edge{source, label, target});
  ++num_edges_;
  NoteEdgeAddedStats(label, source_label, target_label);
  BumpStatsEpoch();
  MarkClassDirty(source_label);
  if (journal_ != nullptr) {
    journal_->RecordEdgeAdded(source, label, target, fresh_out_entry,
                              fresh_in_entry);
  }
  return Status::OK();
}

Status Instance::RemoveEdge(NodeId source, Symbol label, NodeId target) {
  if (!HasNode(source) || !HasNode(target)) return Status::OK();
  if (edge_set_.erase(Edge{source, label, target}) == 0) return Status::OK();
  // Each erase records the position it vacates; the journal's undo
  // re-inserts there, so list orderings survive a rollback exactly.
  // (Edges are sets, so every find hits the unique occurrence.)
  auto& out = nodes_[source.id].out;
  auto oit = std::find(out.begin(), out.end(), std::make_pair(label, target));
  const auto out_pos = static_cast<uint32_t>(oit - out.begin());
  out.erase(oit);
  auto& in = nodes_[target.id].in;
  auto iit = std::find(in.begin(), in.end(), std::make_pair(source, label));
  const auto in_pos = static_cast<uint32_t>(iit - in.begin());
  in.erase(iit);
  auto& out_list = nodes_[source.id].out_by_label[label];
  auto olit = std::find(out_list.begin(), out_list.end(), target);
  const auto out_label_pos = static_cast<uint32_t>(olit - out_list.begin());
  out_list.erase(olit);
  auto& in_list = nodes_[target.id].in_by_label[label];
  auto ilit = std::find(in_list.begin(), in_list.end(), source);
  const auto in_label_pos = static_cast<uint32_t>(ilit - in_list.begin());
  in_list.erase(ilit);
  --num_edges_;
  NoteEdgeRemovedStats(label, LabelOf(source), LabelOf(target));
  BumpStatsEpoch();
  MarkClassDirty(LabelOf(source));
  if (journal_ != nullptr) {
    journal_->RecordEdgeRemoved(source, label, target, out_pos, in_pos,
                                out_label_pos, in_label_pos);
  }
  return Status::OK();
}

std::vector<NodeId> Instance::NodesWithLabel(Symbol label) const {
  std::vector<NodeId> out;
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t id : it->second) out.push_back(NodeId{id});
  return out;
}

size_t Instance::CountNodesWithLabel(Symbol label) const {
  auto it = label_index_.find(label);
  return it == label_index_.end() ? 0 : it->second.size();
}

size_t Instance::CountEdgesWithLabel(Symbol label) const {
  auto it = edge_label_count_.find(label);
  return it == edge_label_count_.end() ? 0 : it->second;
}

size_t Instance::OutDegreeSum(Symbol source_label, Symbol edge_label) const {
  auto it = out_degree_sum_.find(StatsKey(edge_label, source_label));
  return it == out_degree_sum_.end() ? 0 : it->second;
}

size_t Instance::InDegreeSum(Symbol target_label, Symbol edge_label) const {
  auto it = in_degree_sum_.find(StatsKey(edge_label, target_label));
  return it == in_degree_sum_.end() ? 0 : it->second;
}

double Instance::AvgOutFanout(Symbol source_label, Symbol edge_label) const {
  const size_t count = CountNodesWithLabel(source_label);
  if (count == 0) return 0.0;
  return static_cast<double>(OutDegreeSum(source_label, edge_label)) /
         static_cast<double>(count);
}

double Instance::AvgInFanout(Symbol target_label, Symbol edge_label) const {
  const size_t count = CountNodesWithLabel(target_label);
  if (count == 0) return 0.0;
  return static_cast<double>(InDegreeSum(target_label, edge_label)) /
         static_cast<double>(count);
}

std::optional<NodeId> Instance::FindPrintable(Symbol label,
                                              const Value& value) const {
  auto it = printable_index_.find(label);
  if (it == printable_index_.end()) return std::nullopt;
  auto vit = it->second.find(value);
  if (vit == it->second.end()) return std::nullopt;
  return NodeId{vit->second};
}

std::vector<NodeId> Instance::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(num_alive_);
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) out.push_back(NodeId{i});
  }
  return out;
}

namespace {

const std::vector<NodeId>& EmptyAdjacency() {
  static const std::vector<NodeId>* empty = new std::vector<NodeId>();
  return *empty;
}

}  // namespace

const std::vector<NodeId>& Instance::OutTargets(NodeId node,
                                                Symbol label) const {
  const auto* found = nodes_[node.id].out_by_label.Find(label);
  return found != nullptr ? *found : EmptyAdjacency();
}

std::optional<NodeId> Instance::FunctionalTarget(NodeId node,
                                                 Symbol label) const {
  const auto& targets = OutTargets(node, label);
  if (targets.empty()) return std::nullopt;
  return targets.front();
}

const std::vector<NodeId>& Instance::InSources(NodeId node,
                                               Symbol label) const {
  const auto* found = nodes_[node.id].in_by_label.Find(label);
  return found != nullptr ? *found : EmptyAdjacency();
}

std::vector<Edge> Instance::AllEdges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    for (const auto& [label, target] : nodes_[i].out) {
      out.push_back(Edge{NodeId{i}, label, target});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status Instance::Validate(const schema::Scheme& scheme) const {
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const NodeRep& rep = nodes_[i];
    if (!rep.alive) continue;
    const std::string node_name = "node #" + std::to_string(i);
    if (!scheme.IsNodeLabel(rep.label)) {
      return Status::Internal(node_name + " label '" + SymName(rep.label) +
                              "' not a node label of the scheme");
    }
    if (scheme.IsPrintableLabel(rep.label)) {
      if (rep.print.has_value()) {
        auto domain = scheme.DomainOf(rep.label);
        GOOD_RETURN_NOT_OK(domain.status());
        if (rep.print->kind() != *domain) {
          return Status::Internal(node_name + " print value outside domain");
        }
      }
    } else if (rep.print.has_value()) {
      return Status::Internal(node_name + " is an object but has a print value");
    }
    // Edge typing, functional uniqueness, equal successor labels.
    std::unordered_map<Symbol, Symbol> successor_label;
    std::unordered_map<Symbol, int> functional_count;
    for (const auto& [label, target] : rep.out) {
      if (!HasNode(target)) {
        return Status::Internal(node_name + " has an edge to a dead node");
      }
      if (!scheme.HasTriple(rep.label, label, LabelOf(target))) {
        return Status::Internal(node_name + " edge '" + SymName(label) +
                                "' not licensed by scheme");
      }
      auto [it, inserted] = successor_label.emplace(label, LabelOf(target));
      if (!inserted && it->second != LabelOf(target)) {
        return Status::Internal(node_name + " has '" + SymName(label) +
                                "' successors with unequal labels");
      }
      if (scheme.IsFunctionalEdgeLabel(label) &&
          ++functional_count[label] > 1) {
        return Status::Internal(node_name + " has multiple functional '" +
                                SymName(label) + "' edges");
      }
    }
  }
  // Printable dedup.
  for (const auto& [label, by_value] : printable_index_) {
    for (const auto& [value, id] : by_value) {
      (void)value;
      if (!nodes_[id].alive) {
        return Status::Internal("printable index points at dead node");
      }
    }
  }
  std::unordered_map<Symbol, size_t> printable_census;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && nodes_[i].print.has_value()) {
      ++printable_census[nodes_[i].label];
    }
  }
  for (const auto& [label, count] : printable_census) {
    auto it = printable_index_.find(label);
    size_t indexed = it == printable_index_.end() ? 0 : it->second.size();
    if (indexed != count) {
      return Status::Internal("duplicate printable nodes for label '" +
                              SymName(label) + "'");
    }
  }
  // Adjacency indexes must mirror the edge lists exactly.
  size_t counted_edges = 0;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const NodeRep& rep = nodes_[i];
    if (!rep.alive) continue;
    const std::string node_name = "node #" + std::to_string(i);
    std::unordered_map<Symbol, size_t> out_census, in_census;
    for (const auto& [label, target] : rep.out) {
      ++out_census[label];
      ++counted_edges;
      if (!edge_set_.contains(Edge{NodeId{i}, label, target})) {
        return Status::Internal(node_name + " edge missing from edge set");
      }
      const auto& targets = OutTargets(NodeId{i}, label);
      if (std::find(targets.begin(), targets.end(), target) ==
          targets.end()) {
        return Status::Internal(node_name + " edge missing from out index");
      }
    }
    for (const auto& [source, label] : rep.in) {
      ++in_census[label];
      const auto& sources = InSources(NodeId{i}, label);
      if (std::find(sources.begin(), sources.end(), source) ==
          sources.end()) {
        return Status::Internal(node_name + " edge missing from in index");
      }
    }
    for (const auto& [label, targets] : rep.out_by_label.entries) {
      if (targets.size() != out_census[label]) {
        return Status::Internal(node_name + " out index size mismatch for '" +
                                SymName(label) + "'");
      }
    }
    for (const auto& [label, sources] : rep.in_by_label.entries) {
      if (sources.size() != in_census[label]) {
        return Status::Internal(node_name + " in index size mismatch for '" +
                                SymName(label) + "'");
      }
    }
  }
  if (counted_edges != num_edges_ || edge_set_.size() != num_edges_) {
    return Status::Internal("edge count disagrees with edge set");
  }
  // The label index must mirror the node census exactly.
  size_t indexed_nodes = 0;
  for (const auto& [label, ids] : label_index_) {
    indexed_nodes += ids.size();
    for (uint32_t id : ids) {
      if (id >= nodes_.size() || !nodes_[id].alive ||
          nodes_[id].label != label) {
        return Status::Internal("label index entry for '" + SymName(label) +
                                "' names a dead or relabeled node");
      }
    }
  }
  if (indexed_nodes != num_alive_) {
    return Status::Internal("label index size disagrees with alive count");
  }
  // Cardinality statistics (the cost planner's inputs) must mirror a
  // from-scratch edge census exactly — a missed maintenance hook on any
  // mutation path fails loudly here instead of silently skewing plans.
  std::unordered_map<Symbol, size_t> edge_label_census;
  std::unordered_map<uint64_t, size_t> out_sum_census, in_sum_census;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const NodeRep& rep = nodes_[i];
    if (!rep.alive) continue;
    for (const auto& [label, target] : rep.out) {
      ++edge_label_census[label];
      ++out_sum_census[StatsKey(label, rep.label)];
      ++in_sum_census[StatsKey(label, nodes_[target.id].label)];
    }
  }
  auto same_counts = [](const auto& stored, const auto& census) {
    // Zero-valued stats entries are erased, so equal supports + equal
    // values means exact agreement.
    if (stored.size() != census.size()) return false;
    for (const auto& [key, count] : census) {
      auto it = stored.find(key);
      if (it == stored.end() || it->second != count) return false;
    }
    return true;
  };
  if (!same_counts(edge_label_count_, edge_label_census)) {
    return Status::Internal("edge-label count stats drifted from edge census");
  }
  if (!same_counts(out_degree_sum_, out_sum_census)) {
    return Status::Internal("out-degree sum stats drifted from edge census");
  }
  if (!same_counts(in_degree_sum_, in_sum_census)) {
    return Status::Internal("in-degree sum stats drifted from edge census");
  }
  return Status::OK();
}

namespace {

std::string NodeSig(const Instance& instance, NodeId node) {
  std::string sig = SymName(instance.LabelOf(node));
  const auto& print = instance.PrintValueOf(node);
  if (print.has_value()) {
    sig += "=";
    sig += print->ToString();
  }
  return sig;
}

}  // namespace

std::string Instance::Fingerprint() const {
  std::vector<std::string> node_sigs;
  std::vector<std::string> edge_sigs;
  for (NodeId node : AllNodes()) {
    node_sigs.push_back(NodeSig(*this, node));
    for (const auto& [label, target] : OutEdges(node)) {
      edge_sigs.push_back(NodeSig(*this, node) + " -" + SymName(label) +
                          "-> " + NodeSig(*this, target));
    }
  }
  std::sort(node_sigs.begin(), node_sigs.end());
  std::sort(edge_sigs.begin(), edge_sigs.end());
  std::ostringstream os;
  os << "nodes{";
  for (const auto& s : node_sigs) os << s << "; ";
  os << "} edges{";
  for (const auto& s : edge_sigs) os << s << "; ";
  os << "}";
  return os.str();
}

std::string Instance::ToString() const {
  std::ostringstream os;
  os << "Instance(" << num_alive_ << " nodes, " << num_edges_ << " edges)\n";
  for (NodeId node : AllNodes()) {
    os << "  #" << node.id << " " << NodeSig(*this, node) << "\n";
    for (const auto& [label, target] : OutEdges(node)) {
      os << "    -" << SymName(label) << "-> #" << target.id << " "
         << NodeSig(*this, target) << "\n";
    }
  }
  return os.str();
}

}  // namespace good::graph
