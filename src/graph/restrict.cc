#include "graph/restrict.h"

#include <vector>

namespace good::graph {

Status RestrictToScheme(const schema::Scheme& scheme, Instance* instance) {
  // Drop nodes with foreign labels (and, for printable nodes, values
  // outside the label's registered domain).
  for (NodeId node : instance->AllNodes()) {
    const Symbol label = instance->LabelOf(node);
    bool keep = scheme.IsNodeLabel(label);
    if (keep && instance->HasPrintValue(node)) {
      auto domain = scheme.DomainOf(label);
      keep = domain.ok() && instance->PrintValueOf(node)->kind() == *domain;
    }
    if (!keep) {
      GOOD_RETURN_NOT_OK(instance->RemoveNode(node));
    }
  }
  // Drop edges not licensed by the scheme's P relation.
  for (const Edge& edge : instance->AllEdges()) {
    if (!scheme.HasTriple(instance->LabelOf(edge.source), edge.label,
                          instance->LabelOf(edge.target))) {
      GOOD_RETURN_NOT_OK(
          instance->RemoveEdge(edge.source, edge.label, edge.target));
    }
  }
  return Status::OK();
}

}  // namespace good::graph
