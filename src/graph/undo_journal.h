/// \file undo_journal.h
/// \brief Inverse-mutation journaling for exact instance rollback.
///
/// GOOD makes failure atomicity unusually tractable: every instance
/// mutation decomposes into four micro-mutations — node added, node
/// killed, edge added, edge removed — and each has an exact inverse.
/// An UndoJournal attached to an Instance (Instance::AttachJournal)
/// records one entry per micro-mutation *at the moment it happens*, so
/// every positional detail (where an edge sat in its adjacency lists,
/// whether a per-label index entry was freshly created) is captured
/// while it is still valid. RollbackTo replays the entries in strict
/// reverse order; by induction each undo runs against exactly the state
/// its mutation produced, so the instance is restored byte-for-byte:
/// the same node ids, the same edge-list orderings, the same index
/// shapes. That exactness is what lets a failed operation inside a
/// larger program roll back without perturbing the deterministic ids
/// and orderings later operations depend on.
///
/// Entry marks (Position()) give savepoints for free: a nested scope
/// remembers the journal length at entry and rolls back only its own
/// suffix, leaving the enclosing scope's entries intact (see
/// ops/transaction.h).
///
/// The journal is deliberately not thread-safe: mutation of an Instance
/// is single-threaded by design (only matching parallelizes), so the
/// journal inherits that discipline.

#ifndef GOOD_GRAPH_UNDO_JOURNAL_H_
#define GOOD_GRAPH_UNDO_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/instance.h"

namespace good::graph {

/// \brief A log of inverse micro-mutations for one Instance.
class UndoJournal {
 public:
  /// A savepoint: the journal length at some moment. RollbackTo(mark)
  /// undoes everything recorded after it.
  using Mark = size_t;

  UndoJournal() = default;
  UndoJournal(const UndoJournal&) = delete;
  UndoJournal& operator=(const UndoJournal&) = delete;

  Mark Position() const { return entries_.size(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Undoes all entries recorded after `mark`, newest first, restoring
  /// `instance` to its exact state at the time of the mark. The
  /// instance must be the one the entries were recorded against and
  /// must not have been mutated outside the journal since.
  void RollbackTo(Instance* instance, Mark mark);

  /// Undoes everything.
  void Rollback(Instance* instance) { RollbackTo(instance, 0); }

  /// Forgets all entries (after a successful commit).
  void Clear() { entries_.clear(); }

  /// Visits what the journaled region touched, entry by entry in
  /// recording order: `node_fn` once per node added (`added`=true) or
  /// killed (`added`=false), `edge_fn` once per edge added or removed.
  /// This is the write footprint a transaction exposes for
  /// optimistic-concurrency conflict checks (ops/footprint.h);
  /// positional undo details stay private. Because an edge can only be
  /// recorded after both endpoints exist, a kNodeAdded entry always
  /// precedes every edge entry touching that node — consumers may
  /// build a created-node set in the same single pass.
  void ForEachTouched(
      const std::function<void(NodeId, bool added)>& node_fn,
      const std::function<void(NodeId, Symbol, NodeId, bool added)>& edge_fn)
      const {
    ForEachTouchedSince(0, node_fn, edge_fn);
  }

  /// ForEachTouched restricted to the entries recorded after `mark` —
  /// the write footprint of a journal *window*. This is how the
  /// semi-naive rule engine reads the delta of a fixpoint round: the
  /// mark taken before a rule's evaluation bounds exactly what later
  /// mutations (its own and other rules') it has not yet seen. A
  /// rollback truncates the suffix, so entries from rolled-back rounds
  /// never leak into a window.
  void ForEachTouchedSince(
      Mark mark, const std::function<void(NodeId, bool added)>& node_fn,
      const std::function<void(NodeId, Symbol, NodeId, bool added)>& edge_fn)
      const {
    for (size_t i = mark; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      switch (entry.kind) {
        case Kind::kNodeAdded:
          node_fn(entry.node, true);
          break;
        case Kind::kNodeKilled:
          node_fn(entry.node, false);
          break;
        case Kind::kEdgeAdded:
          edge_fn(entry.node, entry.label, entry.target, true);
          break;
        case Kind::kEdgeRemoved:
          edge_fn(entry.node, entry.label, entry.target, false);
          break;
      }
    }
  }

 private:
  friend class Instance;

  enum class Kind : uint8_t {
    kNodeAdded,    // Undo: pop the node (it is the allocation tail).
    kNodeKilled,   // Undo: revive the node and its index entries.
    kEdgeAdded,    // Undo: pop the edge off every list tail.
    kEdgeRemoved,  // Undo: positional re-insert into every list.
  };

  struct Entry {
    Kind kind;
    NodeId node;    // The node, or the edge source.
    Symbol label;   // Edge label (edge entries only).
    NodeId target;  // Edge target (edge entries only).
    // kEdgeRemoved: positions the edge occupied at removal time.
    uint32_t out_pos = 0;
    uint32_t in_pos = 0;
    uint32_t out_label_pos = 0;
    uint32_t in_label_pos = 0;
    // kEdgeAdded: whether the add created the per-label index entry.
    bool fresh_out_entry = false;
    bool fresh_in_entry = false;
  };

  void RecordNodeAdded(NodeId node) {
    entries_.push_back(Entry{Kind::kNodeAdded, node, Symbol{}, NodeId{},
                             0, 0, 0, 0, false, false});
  }
  void RecordNodeKilled(NodeId node) {
    entries_.push_back(Entry{Kind::kNodeKilled, node, Symbol{}, NodeId{},
                             0, 0, 0, 0, false, false});
  }
  void RecordEdgeAdded(NodeId source, Symbol label, NodeId target,
                       bool fresh_out_entry, bool fresh_in_entry) {
    entries_.push_back(Entry{Kind::kEdgeAdded, source, label, target,
                             0, 0, 0, 0, fresh_out_entry, fresh_in_entry});
  }
  void RecordEdgeRemoved(NodeId source, Symbol label, NodeId target,
                         uint32_t out_pos, uint32_t in_pos,
                         uint32_t out_label_pos, uint32_t in_label_pos) {
    entries_.push_back(Entry{Kind::kEdgeRemoved, source, label, target,
                             out_pos, in_pos, out_label_pos, in_label_pos,
                             false, false});
  }

  std::vector<Entry> entries_;
};

}  // namespace good::graph

#endif  // GOOD_GRAPH_UNDO_JOURNAL_H_
