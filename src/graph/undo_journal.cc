#include "graph/undo_journal.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace good::graph {

namespace {

[[noreturn]] void AbortCorruptJournal(const char* what) {
  std::fprintf(stderr,
               "UndoJournal::RollbackTo: %s — the instance was mutated "
               "outside the journal\n",
               what);
  std::abort();
}

}  // namespace

void UndoJournal::RollbackTo(Instance* instance, Mark mark) {
  // Strict reverse replay: each undo runs against exactly the state its
  // mutation produced (induction over the suffix), so positional
  // records and tail-pops restore the instance byte-for-byte. Undos are
  // mutations like any other: each maintains the cardinality statistics
  // and stamps a fresh stats epoch, so cached search plans built against
  // the rolled-back state are invalidated (the restored *counters* equal
  // the pre-transaction ones, but the epoch is new — plans are simply
  // recompiled, never wrong). Undos also dirty the touched classes for
  // the partitioned checkpointer: relative to the last checkpoint the
  // on-disk partition may still differ even after a rollback, and a
  // spurious dirty mark only costs one extra partition rewrite.
  while (entries_.size() > mark) {
    const Entry e = entries_.back();
    entries_.pop_back();
    switch (e.kind) {
      case Kind::kNodeAdded: {
        // Node ids are allocated densely (NewNode uses nodes_.size()),
        // and reverse replay reaches adds last-first, so the node being
        // undone is always the allocation tail — popping it restores
        // the id allocator too.
        if (instance->nodes_.empty() ||
            e.node.id != instance->nodes_.size() - 1) {
          AbortCorruptJournal("node-add undo target is not the tail node");
        }
        Instance::NodeRep& rep = instance->nodes_.back();
        instance->label_index_[rep.label].erase(e.node.id);
        if (rep.print.has_value()) {
          instance->printable_index_[rep.label].erase(*rep.print);
        }
        const Symbol undone_label = rep.label;
        instance->nodes_.pop_back();
        --instance->num_alive_;
        instance->BumpStatsEpoch();
        instance->MarkClassDirty(undone_label);
        break;
      }
      case Kind::kNodeKilled: {
        // The kill left the rep in place (label, print value, emptied
        // adjacency) — revive it and restore its index entries. Edges
        // were removed (and journaled) individually before the kill, so
        // their undos re-attach adjacency afterwards.
        Instance::NodeRep& rep = instance->nodes_[e.node.id];
        rep.alive = true;
        ++instance->num_alive_;
        instance->label_index_[rep.label].insert(e.node.id);
        if (rep.print.has_value()) {
          instance->printable_index_[rep.label].emplace(*rep.print,
                                                        e.node.id);
        }
        instance->BumpStatsEpoch();
        instance->MarkClassDirty(rep.label);
        break;
      }
      case Kind::kEdgeAdded: {
        // The add appended to every list, so the edge is at every tail.
        instance->nodes_[e.node.id].out.pop_back();
        instance->nodes_[e.target.id].in.pop_back();
        auto& out_by_label = instance->nodes_[e.node.id].out_by_label;
        if (e.fresh_out_entry) {
          // The add created the per-label entry (at the entries tail).
          out_by_label.entries.pop_back();
        } else {
          out_by_label[e.label].pop_back();
        }
        auto& in_by_label = instance->nodes_[e.target.id].in_by_label;
        if (e.fresh_in_entry) {
          in_by_label.entries.pop_back();
        } else {
          in_by_label[e.label].pop_back();
        }
        instance->edge_set_.erase(Edge{e.node, e.label, e.target});
        --instance->num_edges_;
        instance->NoteEdgeRemovedStats(e.label,
                                       instance->nodes_[e.node.id].label,
                                       instance->nodes_[e.target.id].label);
        instance->BumpStatsEpoch();
        instance->MarkClassDirty(instance->nodes_[e.node.id].label);
        break;
      }
      case Kind::kEdgeRemoved: {
        // Positional re-insert: the recorded positions are valid
        // because the state now equals the post-removal state.
        auto& out = instance->nodes_[e.node.id].out;
        out.insert(out.begin() + e.out_pos,
                   std::make_pair(e.label, e.target));
        auto& in = instance->nodes_[e.target.id].in;
        in.insert(in.begin() + e.in_pos, std::make_pair(e.node, e.label));
        auto& out_list = instance->nodes_[e.node.id].out_by_label[e.label];
        out_list.insert(out_list.begin() + e.out_label_pos, e.target);
        auto& in_list = instance->nodes_[e.target.id].in_by_label[e.label];
        in_list.insert(in_list.begin() + e.in_label_pos, e.node);
        instance->edge_set_.insert(Edge{e.node, e.label, e.target});
        ++instance->num_edges_;
        instance->NoteEdgeAddedStats(e.label,
                                     instance->nodes_[e.node.id].label,
                                     instance->nodes_[e.target.id].label);
        instance->BumpStatsEpoch();
        instance->MarkClassDirty(instance->nodes_[e.node.id].label);
        break;
      }
    }
  }
}

}  // namespace good::graph
