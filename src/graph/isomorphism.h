/// \file isomorphism.h
/// \brief Labeled-graph isomorphism between object base instances.
///
/// GOOD operations are "deterministic up to the particular choice of new
/// objects" (Section 3). Consequently, figure-reproduction tests compare
/// results up to isomorphism: a bijection between the node sets that
/// preserves node labels, print values, and edges in both directions.
///
/// Printable nodes are deduplicated per (label, value), so an
/// isomorphism maps each printable node to the unique same-valued node
/// on the other side; only object nodes require search. The checker
/// first refines node classes Weisfeiler-Leman-style and then
/// backtracks within classes.

#ifndef GOOD_GRAPH_ISOMORPHISM_H_
#define GOOD_GRAPH_ISOMORPHISM_H_

#include <unordered_map>

#include "common/result.h"
#include "graph/instance.h"

namespace good::graph {

/// \brief Finds an isomorphism from `a` onto `b`.
/// Returns NotFound if the instances are not isomorphic.
Result<std::unordered_map<NodeId, NodeId>> FindIsomorphism(const Instance& a,
                                                           const Instance& b);

/// \brief True iff the instances are isomorphic.
bool IsIsomorphic(const Instance& a, const Instance& b);

}  // namespace good::graph

#endif  // GOOD_GRAPH_ISOMORPHISM_H_
