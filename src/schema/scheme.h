/// \file scheme.h
/// \brief Object base schemes (Section 2 of the paper).
///
/// An object base scheme is a five-tuple S = (OL, POL, FEL, MEL, P) with
///   OL   a finite set of object labels,
///   POL  a finite set of printable object labels,
///   FEL  a finite set of functional edge labels,
///   MEL  a finite set of multivalued edge labels, and
///   P  ⊆ OL × (MEL ∪ FEL) × (OL ∪ POL).
/// The four label sets are pairwise disjoint. The scheme is represented
/// as a directed graph: rectangular nodes for OL, oval nodes for POL,
/// single arrows for functional edges and double arrows for multivalued
/// edges (we reproduce that rendering in the DOT exporter).
///
/// The paper additionally assumes a function associating to each
/// printable label its constant domain; we model domains as ValueKind.
///
/// Section 4.2 lets some functional edges between object labels be
/// marked as subclass ("isa") edges; the subclass edges must not form a
/// cycle. The Scheme tracks such markings and checks acyclicity.

#ifndef GOOD_SCHEMA_SCHEME_H_
#define GOOD_SCHEMA_SCHEME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace good::schema {

/// \brief What role a label plays in a scheme.
enum class LabelKind : uint8_t {
  kObject,
  kPrintable,
  kFunctionalEdge,
  kMultivaluedEdge,
};

std::string_view LabelKindToString(LabelKind kind);

/// \brief One element of the scheme's edge relation P: a triple
/// (source object label, edge label, target node label).
struct Triple {
  Symbol source;
  Symbol edge;
  Symbol target;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// \brief An object base scheme.
///
/// Mutating methods validate the paper's well-formedness conditions:
/// label-set disjointness, P's typing (sources are object labels,
/// targets are node labels, edges are edge labels) and isa-acyclicity.
/// The Ensure* family is idempotent and powers the "minimal scheme
/// extension" step in the semantics of NA / EA / AB.
class Scheme {
 public:
  Scheme() = default;

  // ---- Label registration -------------------------------------------------

  /// Adds `label` to OL. Error if already registered with another kind.
  Status AddObjectLabel(Symbol label);
  /// Adds `label` to POL with constant domain `domain`.
  Status AddPrintableLabel(Symbol label, ValueKind domain);
  /// Adds `label` to FEL.
  Status AddFunctionalEdgeLabel(Symbol label);
  /// Adds `label` to MEL.
  Status AddMultivaluedEdgeLabel(Symbol label);

  /// Idempotent variants used for minimal scheme extension: succeed
  /// silently when the label already has the requested kind.
  Status EnsureObjectLabel(Symbol label);
  Status EnsurePrintableLabel(Symbol label, ValueKind domain);
  Status EnsureFunctionalEdgeLabel(Symbol label);
  Status EnsureMultivaluedEdgeLabel(Symbol label);

  // ---- Edge relation P ----------------------------------------------------

  /// Adds (source, edge, target) to P. All three labels must already be
  /// registered; `source` must be an object label, `target` a node
  /// label, `edge` an edge label.
  Status AddTriple(Symbol source, Symbol edge, Symbol target);

  /// Idempotent AddTriple (minimal extension).
  Status EnsureTriple(Symbol source, Symbol edge, Symbol target);

  // ---- Queries ------------------------------------------------------------

  bool HasLabel(Symbol label) const { return kinds_.contains(label); }
  std::optional<LabelKind> KindOf(Symbol label) const;
  bool IsObjectLabel(Symbol label) const {
    return KindIs(label, LabelKind::kObject);
  }
  bool IsPrintableLabel(Symbol label) const {
    return KindIs(label, LabelKind::kPrintable);
  }
  bool IsNodeLabel(Symbol label) const {
    return IsObjectLabel(label) || IsPrintableLabel(label);
  }
  bool IsFunctionalEdgeLabel(Symbol label) const {
    return KindIs(label, LabelKind::kFunctionalEdge);
  }
  bool IsMultivaluedEdgeLabel(Symbol label) const {
    return KindIs(label, LabelKind::kMultivaluedEdge);
  }
  bool IsEdgeLabel(Symbol label) const {
    return IsFunctionalEdgeLabel(label) || IsMultivaluedEdgeLabel(label);
  }

  /// Constant domain of a printable label; error if not printable.
  Result<ValueKind> DomainOf(Symbol label) const;

  bool HasTriple(Symbol source, Symbol edge, Symbol target) const;

  /// All target labels L such that (source, edge, L) ∈ P.
  std::vector<Symbol> TargetsOf(Symbol source, Symbol edge) const;

  /// All triples, in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  std::vector<Symbol> object_labels() const {
    return LabelsOfKind(LabelKind::kObject);
  }
  std::vector<Symbol> printable_labels() const {
    return LabelsOfKind(LabelKind::kPrintable);
  }
  std::vector<Symbol> functional_edge_labels() const {
    return LabelsOfKind(LabelKind::kFunctionalEdge);
  }
  std::vector<Symbol> multivalued_edge_labels() const {
    return LabelsOfKind(LabelKind::kMultivaluedEdge);
  }

  size_t num_labels() const { return kinds_.size(); }
  size_t num_triples() const { return triples_.size(); }

  // ---- Subschemes and unions (footnotes 2 and 3 of the paper) -------------

  /// True iff every label (with matching kind/domain) and triple of this
  /// scheme also belongs to `other` (set inclusion).
  bool IsSubschemeOf(const Scheme& other) const;

  /// The smallest scheme containing both `a` and `b`; error when the two
  /// assign conflicting kinds or domains to a label.
  static Result<Scheme> Union(const Scheme& a, const Scheme& b);

  // ---- Inheritance (Section 4.2) -------------------------------------------

  /// Marks the functional triple (sub, edge, super) as a subclass edge.
  /// The triple must exist, connect two object labels, be functional,
  /// and must not create a cycle in the subclass graph.
  Status MarkIsa(Symbol sub, Symbol edge, Symbol super);

  bool IsIsaTriple(Symbol sub, Symbol edge, Symbol super) const;

  /// Direct superclasses of `label` via marked isa triples, as
  /// (edge label, superclass) pairs.
  std::vector<std::pair<Symbol, Symbol>> DirectSuperclasses(
      Symbol label) const;

  /// All (strict and reflexive) superclasses of `label`, label first.
  std::vector<Symbol> SuperclassClosure(Symbol label) const;

  // ---- Misc ----------------------------------------------------------------

  friend bool operator==(const Scheme& a, const Scheme& b);

  /// Multi-line census: labels per kind and all triples.
  std::string ToString() const;

 private:
  bool KindIs(Symbol label, LabelKind kind) const {
    auto it = kinds_.find(label);
    return it != kinds_.end() && it->second == kind;
  }
  std::vector<Symbol> LabelsOfKind(LabelKind kind) const;
  Status AddLabel(Symbol label, LabelKind kind);
  /// True if adding sub -> super would close a cycle in the isa graph.
  bool IsaReaches(Symbol from, Symbol to) const;

  std::unordered_map<Symbol, LabelKind> kinds_;
  std::unordered_map<Symbol, ValueKind> domains_;
  std::vector<Triple> triples_;
  // (source, edge) -> target labels, for O(1)-ish conformance checks.
  std::unordered_map<uint64_t, std::vector<Symbol>> triple_index_;
  // isa-marked triples, keyed by subclass label.
  std::unordered_map<Symbol, std::vector<std::pair<Symbol, Symbol>>> isa_;

  static uint64_t PairKey(Symbol a, Symbol b) {
    return (static_cast<uint64_t>(a.id) << 32) | b.id;
  }
};

}  // namespace good::schema

#endif  // GOOD_SCHEMA_SCHEME_H_
