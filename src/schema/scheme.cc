#include "schema/scheme.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace good::schema {

std::string_view LabelKindToString(LabelKind kind) {
  switch (kind) {
    case LabelKind::kObject:
      return "object";
    case LabelKind::kPrintable:
      return "printable";
    case LabelKind::kFunctionalEdge:
      return "functional-edge";
    case LabelKind::kMultivaluedEdge:
      return "multivalued-edge";
  }
  return "unknown";
}

Status Scheme::AddLabel(Symbol label, LabelKind kind) {
  auto [it, inserted] = kinds_.emplace(label, kind);
  if (!inserted) {
    return Status::AlreadyExists(
        "label '" + SymName(label) + "' already registered as " +
        std::string(LabelKindToString(it->second)));
  }
  return Status::OK();
}

Status Scheme::AddObjectLabel(Symbol label) {
  return AddLabel(label, LabelKind::kObject);
}

Status Scheme::AddPrintableLabel(Symbol label, ValueKind domain) {
  GOOD_RETURN_NOT_OK(AddLabel(label, LabelKind::kPrintable));
  domains_[label] = domain;
  return Status::OK();
}

Status Scheme::AddFunctionalEdgeLabel(Symbol label) {
  return AddLabel(label, LabelKind::kFunctionalEdge);
}

Status Scheme::AddMultivaluedEdgeLabel(Symbol label) {
  return AddLabel(label, LabelKind::kMultivaluedEdge);
}

Status Scheme::EnsureObjectLabel(Symbol label) {
  if (IsObjectLabel(label)) return Status::OK();
  return AddObjectLabel(label);
}

Status Scheme::EnsurePrintableLabel(Symbol label, ValueKind domain) {
  if (IsPrintableLabel(label)) {
    if (domains_.at(label) != domain) {
      return Status::InvalidArgument(
          "printable label '" + SymName(label) +
          "' already registered with a different domain");
    }
    return Status::OK();
  }
  return AddPrintableLabel(label, domain);
}

Status Scheme::EnsureFunctionalEdgeLabel(Symbol label) {
  if (IsFunctionalEdgeLabel(label)) return Status::OK();
  return AddFunctionalEdgeLabel(label);
}

Status Scheme::EnsureMultivaluedEdgeLabel(Symbol label) {
  if (IsMultivaluedEdgeLabel(label)) return Status::OK();
  return AddMultivaluedEdgeLabel(label);
}

Status Scheme::AddTriple(Symbol source, Symbol edge, Symbol target) {
  if (!IsObjectLabel(source)) {
    return Status::InvalidArgument("triple source '" + SymName(source) +
                                   "' is not an object label");
  }
  if (!IsEdgeLabel(edge)) {
    return Status::InvalidArgument("triple edge '" + SymName(edge) +
                                   "' is not an edge label");
  }
  if (!IsNodeLabel(target)) {
    return Status::InvalidArgument("triple target '" + SymName(target) +
                                   "' is not a node label");
  }
  if (HasTriple(source, edge, target)) {
    return Status::AlreadyExists("triple (" + SymName(source) + ", " +
                                 SymName(edge) + ", " + SymName(target) +
                                 ") already in scheme");
  }
  triples_.push_back(Triple{source, edge, target});
  triple_index_[PairKey(source, edge)].push_back(target);
  return Status::OK();
}

Status Scheme::EnsureTriple(Symbol source, Symbol edge, Symbol target) {
  if (HasTriple(source, edge, target)) return Status::OK();
  return AddTriple(source, edge, target);
}

std::optional<LabelKind> Scheme::KindOf(Symbol label) const {
  auto it = kinds_.find(label);
  if (it == kinds_.end()) return std::nullopt;
  return it->second;
}

Result<ValueKind> Scheme::DomainOf(Symbol label) const {
  auto it = domains_.find(label);
  if (it == domains_.end()) {
    return Status::NotFound("'" + SymName(label) +
                            "' is not a printable label of this scheme");
  }
  return it->second;
}

bool Scheme::HasTriple(Symbol source, Symbol edge, Symbol target) const {
  auto it = triple_index_.find(PairKey(source, edge));
  if (it == triple_index_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), target) !=
         it->second.end();
}

std::vector<Symbol> Scheme::TargetsOf(Symbol source, Symbol edge) const {
  auto it = triple_index_.find(PairKey(source, edge));
  if (it == triple_index_.end()) return {};
  return it->second;
}

std::vector<Symbol> Scheme::LabelsOfKind(LabelKind kind) const {
  std::vector<Symbol> out;
  for (const auto& [label, k] : kinds_) {
    if (k == kind) out.push_back(label);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Scheme::IsSubschemeOf(const Scheme& other) const {
  for (const auto& [label, kind] : kinds_) {
    auto other_kind = other.KindOf(label);
    if (!other_kind || *other_kind != kind) return false;
    if (kind == LabelKind::kPrintable &&
        other.domains_.at(label) != domains_.at(label)) {
      return false;
    }
  }
  for (const Triple& t : triples_) {
    if (!other.HasTriple(t.source, t.edge, t.target)) return false;
  }
  for (const auto& [sub, supers] : isa_) {
    for (const auto& [edge, super] : supers) {
      if (!other.IsIsaTriple(sub, edge, super)) return false;
    }
  }
  return true;
}

Result<Scheme> Scheme::Union(const Scheme& a, const Scheme& b) {
  Scheme out = a;
  for (const auto& [label, kind] : b.kinds_) {
    switch (kind) {
      case LabelKind::kObject:
        GOOD_RETURN_NOT_OK(out.EnsureObjectLabel(label));
        break;
      case LabelKind::kPrintable:
        GOOD_RETURN_NOT_OK(
            out.EnsurePrintableLabel(label, b.domains_.at(label)));
        break;
      case LabelKind::kFunctionalEdge:
        GOOD_RETURN_NOT_OK(out.EnsureFunctionalEdgeLabel(label));
        break;
      case LabelKind::kMultivaluedEdge:
        GOOD_RETURN_NOT_OK(out.EnsureMultivaluedEdgeLabel(label));
        break;
    }
  }
  for (const Triple& t : b.triples_) {
    GOOD_RETURN_NOT_OK(out.EnsureTriple(t.source, t.edge, t.target));
  }
  for (const auto& [sub, supers] : b.isa_) {
    for (const auto& [edge, super] : supers) {
      if (!out.IsIsaTriple(sub, edge, super)) {
        GOOD_RETURN_NOT_OK(out.MarkIsa(sub, edge, super));
      }
    }
  }
  return out;
}

Status Scheme::MarkIsa(Symbol sub, Symbol edge, Symbol super) {
  if (!HasTriple(sub, edge, super)) {
    return Status::NotFound("isa triple (" + SymName(sub) + ", " +
                            SymName(edge) + ", " + SymName(super) +
                            ") not in scheme");
  }
  if (!IsFunctionalEdgeLabel(edge)) {
    return Status::InvalidArgument("isa edge '" + SymName(edge) +
                                   "' must be functional");
  }
  if (!IsObjectLabel(sub) || !IsObjectLabel(super)) {
    return Status::InvalidArgument(
        "isa edges must connect two object labels");
  }
  if (IsIsaTriple(sub, edge, super)) {
    return Status::AlreadyExists("isa triple already marked");
  }
  if (sub == super || IsaReaches(super, sub)) {
    return Status::InvalidArgument(
        "marking (" + SymName(sub) + " isa " + SymName(super) +
        ") would create a subclass cycle");
  }
  isa_[sub].emplace_back(edge, super);
  return Status::OK();
}

bool Scheme::IsIsaTriple(Symbol sub, Symbol edge, Symbol super) const {
  auto it = isa_.find(sub);
  if (it == isa_.end()) return false;
  for (const auto& [e, s] : it->second) {
    if (e == edge && s == super) return true;
  }
  return false;
}

std::vector<std::pair<Symbol, Symbol>> Scheme::DirectSuperclasses(
    Symbol label) const {
  auto it = isa_.find(label);
  if (it == isa_.end()) return {};
  return it->second;
}

std::vector<Symbol> Scheme::SuperclassClosure(Symbol label) const {
  std::vector<Symbol> out;
  std::unordered_set<Symbol> seen;
  std::deque<Symbol> queue{label};
  while (!queue.empty()) {
    Symbol cur = queue.front();
    queue.pop_front();
    if (!seen.insert(cur).second) continue;
    out.push_back(cur);
    for (const auto& [edge, super] : DirectSuperclasses(cur)) {
      (void)edge;
      queue.push_back(super);
    }
  }
  return out;
}

bool Scheme::IsaReaches(Symbol from, Symbol to) const {
  auto closure = SuperclassClosure(from);
  return std::find(closure.begin(), closure.end(), to) != closure.end();
}

bool operator==(const Scheme& a, const Scheme& b) {
  return a.IsSubschemeOf(b) && b.IsSubschemeOf(a);
}

std::string Scheme::ToString() const {
  std::ostringstream os;
  auto dump = [&](const char* title, const std::vector<Symbol>& labels) {
    os << title << " = {";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) os << ", ";
      os << SymName(labels[i]);
    }
    os << "}\n";
  };
  dump("OL ", object_labels());
  dump("POL", printable_labels());
  dump("FEL", functional_edge_labels());
  dump("MEL", multivalued_edge_labels());
  os << "P   = {";
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (i > 0) os << ", ";
    const Triple& t = triples_[i];
    os << "(" << SymName(t.source) << " -" << SymName(t.edge) << "-> "
       << SymName(t.target) << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace good::schema
