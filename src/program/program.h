/// \file program.h
/// \brief GOOD programs and their interpreter.
///
/// A GOOD program is a sequence of operations (Section 3: the five
/// basic operations plus method calls; Section 4.1 extensions included)
/// together with a method registry. Whether the resulting database
/// graph "is only a temporary entity or actually replaces the original
/// database graph depends on whether the transformation represents,
/// e.g., a query or an update" (Section 3) — the Interpreter exposes
/// both modes:
///  - Query: runs against copies and returns the transformed database,
///    leaving the original untouched;
///  - Update: transforms the database in place.

#ifndef GOOD_PROGRAM_PROGRAM_H_
#define GOOD_PROGRAM_PROGRAM_H_

#include <string>
#include <vector>

#include "method/method.h"

namespace good::program {

/// \brief A database: scheme plus instance.
struct Database {
  schema::Scheme scheme;
  graph::Instance instance;
};

/// \brief A sequence of operations with its method environment.
/// Move-only (the registry owns its methods).
struct Program {
  std::vector<method::Operation> operations;
  method::MethodRegistry methods;

  Program() = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
};

/// \brief Execution report for one program run.
struct RunStats {
  ops::ApplyStats totals;
  size_t steps = 0;
};

/// \brief Runs GOOD programs in query or update mode.
class Interpreter {
 public:
  explicit Interpreter(method::ExecOptions options = {})
      : options_(options) {}

  /// Query mode: evaluates `program` against a copy of `database` and
  /// returns the transformed database. The input is unchanged.
  Result<Database> Query(const Program& program,
                         const Database& database,
                         RunStats* stats = nullptr) const;

  /// Update mode: transforms `database` in place. On error the database
  /// is left as the failing prefix produced it (GOOD operations are
  /// individually atomic but programs are not transactional; callers
  /// wanting rollback should Query and swap).
  Status Update(const Program& program, Database* database,
                RunStats* stats = nullptr) const;

 private:
  method::ExecOptions options_;
};

}  // namespace good::program

#endif  // GOOD_PROGRAM_PROGRAM_H_
