/// \file text.h
/// \brief Shared tokenizer/cursor for the text formats (schemes,
/// instances, operations, programs).
///
/// Tokens: `{ } ; =` stand alone, quoted strings keep arbitrary
/// characters (labels may contain spaces or '#'), `#` starts a line
/// comment outside quotes.

#ifndef GOOD_PROGRAM_TEXT_H_
#define GOOD_PROGRAM_TEXT_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace good::program::text {

struct Token {
  std::string text;
  bool quoted = false;
};

/// Splits `input` into tokens; InvalidArgument on unterminated strings.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// Statement-shaped access over a token stream.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool AtEnd() const { return pos_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }

  /// Consumes the unquoted token `text` or errors.
  Status Expect(const std::string& text);

  /// True (and consumes) iff the next token is the unquoted `text`.
  bool TryConsume(const std::string& text);

  /// Reads a name: a bare word or a quoted string.
  Result<std::string> Word();

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Quotes `raw` with backslash escaping.
std::string Quote(const std::string& raw);

/// Writes a label bare when safe, quoted otherwise.
std::string WriteName(const std::string& name);

}  // namespace good::program::text

#endif  // GOOD_PROGRAM_TEXT_H_
