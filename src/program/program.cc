#include "program/program.h"

namespace good::program {

Result<Database> Interpreter::Query(const Program& program,
                                    const Database& database,
                                    RunStats* stats) const {
  Database scratch = database;  // Deep copies: query mode is side-effect
                                // free on the caller's database.
  GOOD_RETURN_NOT_OK(Update(program, &scratch, stats));
  return scratch;
}

Status Interpreter::Update(const Program& program, Database* database,
                           RunStats* stats) const {
  method::Executor executor(&program.methods, options_);
  ops::ApplyStats totals;
  GOOD_RETURN_NOT_OK(executor.ExecuteAll(program.operations,
                                         &database->scheme,
                                         &database->instance, &totals));
  if (stats != nullptr) {
    stats->totals += totals;
    stats->steps += executor.steps_used();
  }
  return Status::OK();
}

}  // namespace good::program
