#include "program/text.h"

#include <algorithm>
#include <cctype>

namespace good::program::text {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (c == '#') {
      while (i < n && input[i] != '\n') ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '{' || c == '}' || c == ';' || c == '=') {
      out.push_back(Token{std::string(1, c), false});
      ++i;
    } else if (c == '"') {
      std::string s;
      ++i;
      while (i < n && input[i] != '"') {
        if (input[i] == '\\' && i + 1 < n) ++i;
        s += input[i++];
      }
      if (i >= n) return Status::InvalidArgument("unterminated string");
      ++i;  // Closing quote.
      out.push_back(Token{std::move(s), true});
    } else {
      std::string s;
      while (i < n && !std::isspace(static_cast<unsigned char>(input[i])) &&
             input[i] != '{' && input[i] != '}' && input[i] != ';' &&
             input[i] != '=' && input[i] != '#' && input[i] != '"') {
        s += input[i++];
      }
      out.push_back(Token{std::move(s), false});
    }
  }
  return out;
}

Status Cursor::Expect(const std::string& text) {
  if (AtEnd() || tokens_[pos_].quoted || tokens_[pos_].text != text) {
    return Status::InvalidArgument(
        "expected '" + text + "'" +
        (AtEnd() ? " at end of input"
                 : ", got '" + tokens_[pos_].text + "'"));
  }
  ++pos_;
  return Status::OK();
}

bool Cursor::TryConsume(const std::string& text) {
  if (AtEnd() || tokens_[pos_].quoted || tokens_[pos_].text != text) {
    return false;
  }
  ++pos_;
  return true;
}

Result<std::string> Cursor::Word() {
  if (AtEnd()) return Status::InvalidArgument("unexpected end of input");
  return tokens_[pos_++].text;
}

std::string Quote(const std::string& raw) {
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string WriteName(const std::string& name) {
  auto safe = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':' || c == '$';
  };
  if (!name.empty() && std::all_of(name.begin(), name.end(), safe) &&
      name != "scheme" && name != "instance") {
    return name;
  }
  return Quote(name);
}

}  // namespace good::program::text
