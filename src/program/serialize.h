/// \file serialize.h
/// \brief Text serialization of schemes and instances.
///
/// The paper's front-end is a graphical editor; our substitution is a
/// small, line-oriented text format (plus the DOT exporter in dot.h for
/// the visual direction). The format round-trips exactly:
///
/// \code
/// scheme {
///   object Info;
///   printable Date : date;
///   functional created;
///   multivalued links-to;
///   triple Info created Date;
///   isa Data isa Info;
/// }
/// instance {
///   node n0 Info;
///   node n1 Date = "Jan 12, 1990";
///   edge n0 created n1;
/// }
/// \endcode
///
/// Printable values are written as quoted strings and parsed back
/// according to the label's registered domain; node names in the
/// instance section are local to the file.

#ifndef GOOD_PROGRAM_SERIALIZE_H_
#define GOOD_PROGRAM_SERIALIZE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "graph/instance.h"
#include "program/program.h"
#include "schema/scheme.h"

namespace good::program {

/// Serializes a scheme to the text format.
std::string WriteScheme(const schema::Scheme& scheme);

/// Parses a scheme section (must start with "scheme {").
Result<schema::Scheme> ParseScheme(const std::string& text);

/// Serializes an instance (over `scheme`) to the text format.
std::string WriteInstance(const schema::Scheme& scheme,
                          const graph::Instance& instance);

/// Parses an instance section over `scheme`.
Result<graph::Instance> ParseInstance(const schema::Scheme& scheme,
                                      const std::string& text);

/// \brief An instance together with the file-local node names, for
/// formats that need to reference nodes after parsing (operation
/// designators in op_serialize.h).
struct NamedInstance {
  graph::Instance instance;
  std::map<std::string, graph::NodeId> names;
};

/// Parses an instance section, also returning the node-name map.
Result<NamedInstance> ParseInstanceNamed(const schema::Scheme& scheme,
                                         const std::string& text);

/// Writes one printable value as its quoted literal form (the text
/// after `=` in a node statement). Round-trips via ParseValueLiteral.
std::string WriteValueLiteral(const Value& value);

/// Parses the unquoted text of a value literal according to `domain` —
/// the inverse of WriteValueLiteral (which adds the quotes).
Result<Value> ParseValueLiteral(const std::string& raw, ValueKind domain);

/// Serializes a full database (scheme followed by instance).
std::string WriteDatabase(const Database& database);

/// Parses a full database.
Result<Database> ParseDatabase(const std::string& text);

}  // namespace good::program

#endif  // GOOD_PROGRAM_SERIALIZE_H_
