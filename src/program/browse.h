/// \file browse.h
/// \brief Pattern-directed browsing (Section 5).
///
/// The paper's interface provides "tools for pattern-directed
/// browsing": the instance graph is "typically large and complex" and
/// is never shown whole — the user matches a pattern and explores the
/// neighbourhood of the matched objects. This module extracts such
/// neighbourhoods as stand-alone sub-instances (ready for the DOT
/// exporter).

#ifndef GOOD_PROGRAM_BROWSE_H_
#define GOOD_PROGRAM_BROWSE_H_

#include <vector>

#include "common/result.h"
#include "graph/instance.h"
#include "pattern/matcher.h"
#include "schema/scheme.h"

namespace good::program {

struct BrowseOptions {
  /// Undirected hop distance to include around the focus nodes.
  size_t radius = 1;
  /// Hard cap on extracted nodes (breadth-first, nearest first).
  size_t max_nodes = 200;
};

/// \brief The sub-instance induced by every node within `radius`
/// undirected hops of `focus`, capped at `max_nodes`.
Result<graph::Instance> Neighborhood(const schema::Scheme& scheme,
                                     const graph::Instance& instance,
                                     const std::vector<graph::NodeId>& focus,
                                     const BrowseOptions& options = {});

/// \brief Pattern-directed browsing: the neighbourhood of the images of
/// `node` across all matchings of `pattern`.
Result<graph::Instance> BrowsePattern(const schema::Scheme& scheme,
                                      const graph::Instance& instance,
                                      const pattern::Pattern& pattern,
                                      graph::NodeId node,
                                      const BrowseOptions& options = {});

}  // namespace good::program

#endif  // GOOD_PROGRAM_BROWSE_H_
