#include "program/method_serialize.h"

#include <sstream>

#include "program/op_serialize.h"
#include "program/serialize.h"
#include "program/text.h"

namespace good::program {

using graph::NodeId;
using method::HeadBinding;
using method::Method;
using method::ParameterizedOp;
using schema::Scheme;
using text::Cursor;

namespace {

std::string Node(NodeId node) {
  // Append form avoids the GCC 12 -Werror=restrict false positive that
  // `"n" + std::to_string(...)` triggers in optimized builds.
  std::string s("n");
  s.append(std::to_string(node.id));
  return s;
}

/// Indents every line of `block` by two spaces.
std::string Indent(const std::string& block) {
  std::ostringstream os;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) os << "  " << line << "\n";
  return os.str();
}

Result<std::string> WriteStep(const Scheme& scheme,
                              const ParameterizedOp& step) {
  GOOD_ASSIGN_OR_RETURN(std::string op_text,
                        WriteOperation(scheme, step.op));
  std::ostringstream os;
  os << "  step {\n" << Indent(Indent(op_text));
  if (step.head.has_value()) {
    os << "    head {\n";
    if (step.head->receiver.has_value()) {
      os << "      receiver " << Node(*step.head->receiver) << ";\n";
    }
    for (const auto& [param, node] : step.head->params) {
      os << "      param " << text::WriteName(SymName(param)) << " "
         << Node(node) << ";\n";
    }
    os << "    }\n";
  }
  os << "  }\n";
  return os.str();
}

/// Collects the raw tokens of a brace-balanced "scheme { ... }" block
/// and re-parses it with the scheme parser.
Result<Scheme> ParseInterfaceBlock(Cursor* cursor) {
  GOOD_RETURN_NOT_OK(cursor->Expect("scheme"));
  GOOD_RETURN_NOT_OK(cursor->Expect("{"));
  std::string body = "scheme {\n";
  int depth = 1;
  while (!cursor->AtEnd() && depth > 0) {
    const text::Token& token = cursor->Peek();
    if (!token.quoted && token.text == "{") ++depth;
    if (!token.quoted && token.text == "}") {
      --depth;
      if (depth == 0) {
        cursor->Next();
        break;
      }
    }
    body += token.quoted ? text::Quote(token.text) : token.text;
    body += " ";
    cursor->Next();
  }
  body += "}";
  return ParseScheme(body);
}

Result<Method> ParseOneMethod(const Scheme& scheme, Cursor* cursor) {
  GOOD_RETURN_NOT_OK(cursor->Expect("method"));
  Method m;
  GOOD_ASSIGN_OR_RETURN(m.spec.name, cursor->Word());
  GOOD_RETURN_NOT_OK(cursor->Expect("{"));
  bool have_receiver = false;
  while (!cursor->TryConsume("}")) {
    if (cursor->TryConsume("receiver")) {
      GOOD_ASSIGN_OR_RETURN(std::string label, cursor->Word());
      m.spec.receiver_label = Sym(label);
      have_receiver = true;
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    } else if (cursor->TryConsume("param")) {
      GOOD_ASSIGN_OR_RETURN(std::string param, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string label, cursor->Word());
      m.spec.params[Sym(param)] = Sym(label);
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    } else if (cursor->TryConsume("interface")) {
      GOOD_ASSIGN_OR_RETURN(m.interface, ParseInterfaceBlock(cursor));
    } else if (cursor->TryConsume("step")) {
      GOOD_RETURN_NOT_OK(cursor->Expect("{"));
      GOOD_ASSIGN_OR_RETURN(ParsedOperation parsed,
                            ParseOperationNamed(scheme, cursor));
      ParameterizedOp step{std::move(parsed.op), std::nullopt};
      if (cursor->TryConsume("head")) {
        GOOD_RETURN_NOT_OK(cursor->Expect("{"));
        HeadBinding head;
        while (!cursor->TryConsume("}")) {
          if (cursor->TryConsume("receiver")) {
            GOOD_ASSIGN_OR_RETURN(std::string node, cursor->Word());
            auto it = parsed.pattern_names.find(node);
            if (it == parsed.pattern_names.end()) {
              return Status::InvalidArgument("unknown head node '" + node +
                                             "'");
            }
            head.receiver = it->second;
          } else if (cursor->TryConsume("param")) {
            GOOD_ASSIGN_OR_RETURN(std::string param, cursor->Word());
            GOOD_ASSIGN_OR_RETURN(std::string node, cursor->Word());
            auto it = parsed.pattern_names.find(node);
            if (it == parsed.pattern_names.end()) {
              return Status::InvalidArgument("unknown head node '" + node +
                                             "'");
            }
            head.params[Sym(param)] = it->second;
          } else {
            return Status::InvalidArgument("bad head statement");
          }
          GOOD_RETURN_NOT_OK(cursor->Expect(";"));
        }
        step.head = std::move(head);
      }
      GOOD_RETURN_NOT_OK(cursor->Expect("}"));
      m.body.push_back(std::move(step));
    } else {
      GOOD_ASSIGN_OR_RETURN(std::string stmt, cursor->Word());
      return Status::InvalidArgument("unknown method statement '" + stmt +
                                     "'");
    }
  }
  if (!have_receiver) {
    return Status::InvalidArgument("method '" + m.spec.name +
                                   "' misses a receiver statement");
  }
  return m;
}

}  // namespace

Result<std::string> WriteMethod(const Scheme& scheme, const Method& m) {
  std::ostringstream os;
  os << "method " << text::WriteName(m.spec.name) << " {\n";
  os << "  receiver " << text::WriteName(SymName(m.spec.receiver_label))
     << ";\n";
  for (const auto& [param, label] : m.spec.params) {
    os << "  param " << text::WriteName(SymName(param)) << " "
       << text::WriteName(SymName(label)) << ";\n";
  }
  os << "  interface " << Indent(WriteScheme(m.interface)).substr(2);
  for (const ParameterizedOp& step : m.body) {
    GOOD_ASSIGN_OR_RETURN(std::string step_text, WriteStep(scheme, step));
    os << step_text;
  }
  os << "}\n";
  return os.str();
}

Result<Method> ParseMethod(const Scheme& scheme, const std::string& input) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, text::Tokenize(input));
  Cursor cursor(std::move(tokens));
  return ParseOneMethod(scheme, &cursor);
}

Result<std::string> WriteMethods(const Scheme& scheme,
                                 const method::MethodRegistry& registry) {
  std::string out;
  for (const Method* m : registry.All()) {
    GOOD_ASSIGN_OR_RETURN(std::string one, WriteMethod(scheme, *m));
    out += one;
  }
  return out;
}

Result<method::MethodRegistry> ParseMethods(const Scheme& scheme,
                                            const std::string& input) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, text::Tokenize(input));
  Cursor cursor(std::move(tokens));
  method::MethodRegistry registry;
  while (!cursor.AtEnd()) {
    GOOD_ASSIGN_OR_RETURN(Method m, ParseOneMethod(scheme, &cursor));
    GOOD_RETURN_NOT_OK(registry.Register(std::move(m)));
  }
  return registry;
}

}  // namespace good::program
