/// \file op_serialize.h
/// \brief Text serialization of GOOD operations and programs.
///
/// The paper's operations are drawn graphically; this format is their
/// storable textual counterpart (complementing the builder API and the
/// DOT exporter). Example:
///
/// \code
/// na {
///   pattern {
///     node n0 Info;
///     node n1 Date = "Jan 14, 1990";
///     edge n0 created n1;
///   }
///   label Rock;
///   edge tagged-to n0;
/// }
/// ea { pattern { ... } add n0 data-creation n1 functional; }
/// nd { pattern { ... } delete n0; }
/// ed { pattern { ... } remove n0 modified n1; }
/// ab { pattern { ... } node n0; label Same-Info;
///      member contains; group links-to; }
/// call { pattern { ... } method Update; arg parameter n1;
///        receiver n0; }
/// \endcode
///
/// Section 4.1 match filters and external functions are C++ closures
/// and cannot be serialized; writing an operation that carries one
/// returns Unimplemented.

#ifndef GOOD_PROGRAM_OP_SERIALIZE_H_
#define GOOD_PROGRAM_OP_SERIALIZE_H_

#include <map>
#include <string>
#include <vector>

#include "graph/instance.h"
#include "method/method.h"
#include "program/program.h"
#include "program/text.h"
#include "schema/scheme.h"

namespace good::program {

/// Serializes one operation.
Result<std::string> WriteOperation(const schema::Scheme& scheme,
                                   const method::Operation& op);

/// Parses one operation. Pattern node labels must exist in `scheme`
/// (pre-extend a scratch copy for operations whose patterns reference
/// labels earlier operations introduce).
Result<method::Operation> ParseOperation(const schema::Scheme& scheme,
                                         const std::string& text);

/// Serializes an operation sequence.
Result<std::string> WriteOperations(const schema::Scheme& scheme,
                                    const std::vector<method::Operation>& ops);

/// Parses an operation sequence.
Result<std::vector<method::Operation>> ParseOperations(
    const schema::Scheme& scheme, const std::string& text);

/// \brief An operation plus the file-local names of its pattern nodes —
/// needed by formats that reference pattern nodes after the operation
/// block (method head bindings in method_serialize.h).
struct ParsedOperation {
  method::Operation op;
  std::map<std::string, graph::NodeId> pattern_names;
};

/// Parses one operation from a token cursor, exposing the name map.
Result<ParsedOperation> ParseOperationNamed(const schema::Scheme& scheme,
                                            text::Cursor* cursor);

}  // namespace good::program

#endif  // GOOD_PROGRAM_OP_SERIALIZE_H_
