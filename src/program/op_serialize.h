/// \file op_serialize.h
/// \brief Text serialization of GOOD operations and programs.
///
/// The paper's operations are drawn graphically; this format is their
/// storable textual counterpart (complementing the builder API and the
/// DOT exporter). Example:
///
/// \code
/// na {
///   pattern {
///     node n0 Info;
///     node n1 Date = "Jan 14, 1990";
///     edge n0 created n1;
///   }
///   label Rock;
///   edge tagged-to n0;
/// }
/// ea { pattern { ... } add n0 data-creation n1 functional; }
/// nd { pattern { ... } delete n0; }
/// ed { pattern { ... } remove n0 modified n1; }
/// ab { pattern { ... } node n0; label Same-Info;
///      member contains; group links-to; }
/// call { pattern { ... } method Update; arg parameter n1;
///        receiver n0; }
/// \endcode
///
/// Section 4.1 match filters and external functions are C++ closures
/// and cannot be serialized; writing an operation that carries one
/// returns Unimplemented.

#ifndef GOOD_PROGRAM_OP_SERIALIZE_H_
#define GOOD_PROGRAM_OP_SERIALIZE_H_

#include <map>
#include <string>
#include <vector>

#include "graph/instance.h"
#include "method/method.h"
#include "program/program.h"
#include "program/text.h"
#include "schema/scheme.h"

namespace good::program {

/// Serializes one operation.
Result<std::string> WriteOperation(const schema::Scheme& scheme,
                                   const method::Operation& op);

/// Parses one operation. Pattern node labels must exist in `scheme`
/// (pre-extend a scratch copy for operations whose patterns reference
/// labels earlier operations introduce).
Result<method::Operation> ParseOperation(const schema::Scheme& scheme,
                                         const std::string& text);

/// Serializes an operation sequence.
Result<std::string> WriteOperations(const schema::Scheme& scheme,
                                    const std::vector<method::Operation>& ops);

/// Parses an operation sequence.
Result<std::vector<method::Operation>> ParseOperations(
    const schema::Scheme& scheme, const std::string& text);

/// Serializes a pattern as a standalone "pattern { ... }" block — the
/// exact block the operation formats embed — for messages that ship a
/// bare pattern (the server protocol's match/count commands).
std::string WritePattern(const schema::Scheme& scheme,
                         const pattern::Pattern& pattern);

/// Parses a standalone "pattern { ... }" block over `scheme`.
Result<pattern::Pattern> ParsePattern(const schema::Scheme& scheme,
                                      const std::string& text);

/// \brief An operation plus the file-local names of its pattern nodes —
/// needed by formats that reference pattern nodes after the operation
/// block (method head bindings in method_serialize.h).
struct ParsedOperation {
  method::Operation op;
  std::map<std::string, graph::NodeId> pattern_names;
};

/// Parses one operation from a token cursor, exposing the name map.
Result<ParsedOperation> ParseOperationNamed(const schema::Scheme& scheme,
                                            text::Cursor* cursor);

/// \brief Streams operations out of a program text one at a time.
///
/// ParseOperations resolves every operation against one fixed scheme,
/// so a program whose later patterns mention labels introduced by its
/// earlier operations needs the scheme pre-extended by hand. The
/// streaming reader removes that restriction: each Next() call takes
/// the *current* scheme, so a caller that executes (or otherwise
/// extends the scheme with) each operation before parsing the next one
/// can consume such programs directly — the pattern used by the storage
/// engine's log replay and by incremental program loading.
///
/// \code
/// GOOD_ASSIGN_OR_RETURN(auto reader, OperationReader::Open(text));
/// while (!reader.AtEnd()) {
///   GOOD_ASSIGN_OR_RETURN(auto op, reader.Next(scheme));
///   GOOD_RETURN_NOT_OK(executor.Execute(op, &scheme, &instance));
/// }
/// \endcode
class OperationReader {
 public:
  /// Tokenizes `text`; InvalidArgument on lexical errors.
  static Result<OperationReader> Open(const std::string& text);

  bool AtEnd() const { return cursor_.AtEnd(); }

  /// Parses the next operation against `scheme`.
  Result<method::Operation> Next(const schema::Scheme& scheme);

 private:
  explicit OperationReader(text::Cursor cursor)
      : cursor_(std::move(cursor)) {}

  text::Cursor cursor_;
};

/// \brief Accumulates operations into a growing program text — the
/// writing counterpart of OperationReader. Each Append serializes
/// against the scheme as it stands, so interleaving Append with
/// execution records a scheme-evolving program faithfully.
class OperationWriter {
 public:
  /// Serializes `op` against `scheme` and appends it to the text.
  Status Append(const schema::Scheme& scheme, const method::Operation& op);

  size_t ops_written() const { return ops_written_; }
  const std::string& text() const { return text_; }
  std::string Take() { return std::move(text_); }

 private:
  std::string text_;
  size_t ops_written_ = 0;
};

}  // namespace good::program

#endif  // GOOD_PROGRAM_OP_SERIALIZE_H_
