/// \file method_serialize.h
/// \brief Text serialization of GOOD method definitions.
///
/// Completes program persistence: a method's specification, body
/// (including head bindings and nested/recursive calls) and interface
/// all round-trip through text. Example:
///
/// \code
/// method Update {
///   receiver Info;
///   param parameter Date;
///   interface scheme { }
///   step {
///     ed { pattern { node n0 Info; node n1 Date; edge n0 modified n1; }
///          remove n0 modified n1; }
///     head { receiver n0; }
///   }
///   step {
///     ea { pattern { node n0 Info; node n1 Date; }
///          add n0 modified n1 functional; }
///     head { receiver n0; param parameter n1; }
///   }
/// }
/// \endcode
///
/// Bodies containing external functions (ComputedEdgeAddition) or C++
/// match filters cannot be serialized and yield Unimplemented.

#ifndef GOOD_PROGRAM_METHOD_SERIALIZE_H_
#define GOOD_PROGRAM_METHOD_SERIALIZE_H_

#include <string>

#include "method/method.h"
#include "schema/scheme.h"

namespace good::program {

/// Serializes one method definition.
Result<std::string> WriteMethod(const schema::Scheme& scheme,
                                const method::Method& m);

/// Parses one method definition. Body patterns must be expressible over
/// `scheme` (pre-extend a scratch copy with labels the method's own
/// interface or called methods introduce).
Result<method::Method> ParseMethod(const schema::Scheme& scheme,
                                   const std::string& text);

/// Serializes every method of a registry (name order).
Result<std::string> WriteMethods(const schema::Scheme& scheme,
                                 const method::MethodRegistry& registry);

/// Parses a sequence of method definitions into a registry.
Result<method::MethodRegistry> ParseMethods(const schema::Scheme& scheme,
                                            const std::string& text);

}  // namespace good::program

#endif  // GOOD_PROGRAM_METHOD_SERIALIZE_H_
