#include "program/op_serialize.h"

#include <map>
#include <sstream>

#include "program/serialize.h"
#include "program/text.h"

namespace good::program {

using graph::NodeId;
using method::MethodCallOp;
using method::Operation;
using pattern::Pattern;
using schema::Scheme;
using text::Cursor;

namespace {

std::string Name(Symbol symbol) { return text::WriteName(SymName(symbol)); }
std::string Node(NodeId node) {
  // Built with append rather than `"n" + std::to_string(...)`: the
  // operator+ form trips a GCC 12 -Werror=restrict false positive in
  // optimized builds.
  std::string s("n");
  s.append(std::to_string(node.id));
  return s;
}

Status RequireNoFilter(const ops::PatternOperation& op) {
  if (op.filter()) {
    return Status::Unimplemented(
        "operations carrying C++ match filters cannot be serialized");
  }
  return Status::OK();
}

std::string WritePatternBlock(const Scheme& scheme, const Pattern& p) {
  std::ostringstream os;
  os << "  pattern {\n";
  std::istringstream body(WriteInstance(scheme, p));
  std::string line;
  std::getline(body, line);  // Drop "instance {".
  while (std::getline(body, line)) {
    if (line == "}") break;
    os << "  " << line << "\n";
  }
  os << "  }\n";
  return os.str();
}

struct OpWriter {
  const Scheme& scheme;

  Result<std::string> operator()(const ops::NodeAddition& op) const {
    GOOD_RETURN_NOT_OK(RequireNoFilter(op));
    std::ostringstream os;
    os << "na {\n" << WritePatternBlock(scheme, op.source_pattern());
    os << "  label " << Name(op.new_label()) << ";\n";
    for (const auto& [edge, node] : op.edges()) {
      os << "  edge " << Name(edge) << " " << Node(node) << ";\n";
    }
    os << "}\n";
    return os.str();
  }

  Result<std::string> operator()(const ops::EdgeAddition& op) const {
    GOOD_RETURN_NOT_OK(RequireNoFilter(op));
    std::ostringstream os;
    os << "ea {\n" << WritePatternBlock(scheme, op.source_pattern());
    for (const ops::EdgeSpec& spec : op.edges()) {
      os << "  add " << Node(spec.source) << " " << Name(spec.label) << " "
         << Node(spec.target)
         << (spec.functional ? " functional" : " multivalued") << ";\n";
    }
    os << "}\n";
    return os.str();
  }

  Result<std::string> operator()(const ops::NodeDeletion& op) const {
    GOOD_RETURN_NOT_OK(RequireNoFilter(op));
    std::ostringstream os;
    os << "nd {\n" << WritePatternBlock(scheme, op.source_pattern());
    os << "  delete " << Node(op.target()) << ";\n}\n";
    return os.str();
  }

  Result<std::string> operator()(const ops::EdgeDeletion& op) const {
    GOOD_RETURN_NOT_OK(RequireNoFilter(op));
    std::ostringstream os;
    os << "ed {\n" << WritePatternBlock(scheme, op.source_pattern());
    for (const ops::EdgeRef& ref : op.edges()) {
      os << "  remove " << Node(ref.source) << " " << Name(ref.label) << " "
         << Node(ref.target) << ";\n";
    }
    os << "}\n";
    return os.str();
  }

  Result<std::string> operator()(const ops::Abstraction& op) const {
    GOOD_RETURN_NOT_OK(RequireNoFilter(op));
    std::ostringstream os;
    os << "ab {\n" << WritePatternBlock(scheme, op.source_pattern());
    os << "  node " << Node(op.node()) << ";\n";
    os << "  label " << Name(op.set_label()) << ";\n";
    os << "  member " << Name(op.member_edge()) << ";\n";
    os << "  group " << Name(op.grouping_edge()) << ";\n}\n";
    return os.str();
  }

  Result<std::string> operator()(const ops::ComputedEdgeAddition& op) const {
    (void)op;
    return Status::Unimplemented(
        "computed edge additions carry C++ external functions and cannot "
        "be serialized");
  }

  Result<std::string> operator()(const MethodCallOp& op) const {
    if (op.filter) {
      return Status::Unimplemented(
          "method calls carrying C++ match filters cannot be serialized");
    }
    std::ostringstream os;
    os << "call {\n" << WritePatternBlock(scheme, op.pattern);
    os << "  method " << text::WriteName(op.method_name) << ";\n";
    for (const auto& [param, node] : op.args) {
      os << "  arg " << Name(param) << " " << Node(node) << ";\n";
    }
    os << "  receiver " << Node(op.receiver) << ";\n}\n";
    return os.str();
  }
};

/// Re-serializes the pattern block for parsing: collects the raw token
/// text between "pattern {" and its matching "}".
Result<NamedInstance> ParsePatternBlock(const Scheme& scheme,
                                        Cursor* cursor) {
  GOOD_RETURN_NOT_OK(cursor->Expect("pattern"));
  GOOD_RETURN_NOT_OK(cursor->Expect("{"));
  // Reconstruct an "instance { ... }" text for the instance parser.
  std::string body = "instance {\n";
  int depth = 1;
  while (!cursor->AtEnd() && depth > 0) {
    const text::Token& token = cursor->Peek();
    if (!token.quoted && token.text == "{") ++depth;
    if (!token.quoted && token.text == "}") {
      --depth;
      if (depth == 0) {
        cursor->Next();
        break;
      }
    }
    body += token.quoted ? text::Quote(token.text) : token.text;
    body += " ";
    cursor->Next();
  }
  body += "}";
  return ParseInstanceNamed(scheme, body);
}

Result<NodeId> ResolveNode(const NamedInstance& parsed,
                           const std::string& name) {
  auto it = parsed.names.find(name);
  if (it == parsed.names.end()) {
    return Status::InvalidArgument("unknown pattern node '" + name + "'");
  }
  return it->second;
}

Result<ParsedOperation> ParseOneOperationNamed(const Scheme& scheme,
                                               Cursor* cursor) {
  GOOD_ASSIGN_OR_RETURN(std::string kind, cursor->Word());
  GOOD_RETURN_NOT_OK(cursor->Expect("{"));
  GOOD_ASSIGN_OR_RETURN(NamedInstance parsed,
                        ParsePatternBlock(scheme, cursor));

  if (kind == "na") {
    Symbol label{};
    bool have_label = false;
    std::vector<std::pair<Symbol, NodeId>> edges;
    while (!cursor->TryConsume("}")) {
      GOOD_ASSIGN_OR_RETURN(std::string stmt, cursor->Word());
      if (stmt == "label") {
        GOOD_ASSIGN_OR_RETURN(std::string name, cursor->Word());
        label = Sym(name);
        have_label = true;
      } else if (stmt == "edge") {
        GOOD_ASSIGN_OR_RETURN(std::string edge, cursor->Word());
        GOOD_ASSIGN_OR_RETURN(std::string node, cursor->Word());
        GOOD_ASSIGN_OR_RETURN(NodeId target, ResolveNode(parsed, node));
        edges.emplace_back(Sym(edge), target);
      } else {
        return Status::InvalidArgument("unknown na statement '" + stmt +
                                       "'");
      }
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    }
    if (!have_label) {
      return Status::InvalidArgument("na needs a label statement");
    }
    return ParsedOperation{Operation(ops::NodeAddition(
                               std::move(parsed.instance), label,
                               std::move(edges))),
                           std::move(parsed.names)};
  }
  if (kind == "ea") {
    std::vector<ops::EdgeSpec> edges;
    while (!cursor->TryConsume("}")) {
      GOOD_RETURN_NOT_OK(cursor->Expect("add"));
      GOOD_ASSIGN_OR_RETURN(std::string src, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string edge, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string tgt, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string mode, cursor->Word());
      if (mode != "functional" && mode != "multivalued") {
        return Status::InvalidArgument("bad edge mode '" + mode + "'");
      }
      GOOD_ASSIGN_OR_RETURN(NodeId source, ResolveNode(parsed, src));
      GOOD_ASSIGN_OR_RETURN(NodeId target, ResolveNode(parsed, tgt));
      edges.push_back(ops::EdgeSpec{source, Sym(edge), target,
                                    mode == "functional"});
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    }
    return ParsedOperation{
        Operation(
            ops::EdgeAddition(std::move(parsed.instance), std::move(edges))),
        std::move(parsed.names)};
  }
  if (kind == "nd") {
    GOOD_RETURN_NOT_OK(cursor->Expect("delete"));
    GOOD_ASSIGN_OR_RETURN(std::string node, cursor->Word());
    GOOD_ASSIGN_OR_RETURN(NodeId target, ResolveNode(parsed, node));
    GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    GOOD_RETURN_NOT_OK(cursor->Expect("}"));
    return ParsedOperation{
        Operation(ops::NodeDeletion(std::move(parsed.instance), target)),
        std::move(parsed.names)};
  }
  if (kind == "ed") {
    std::vector<ops::EdgeRef> edges;
    while (!cursor->TryConsume("}")) {
      GOOD_RETURN_NOT_OK(cursor->Expect("remove"));
      GOOD_ASSIGN_OR_RETURN(std::string src, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string edge, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string tgt, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(NodeId source, ResolveNode(parsed, src));
      GOOD_ASSIGN_OR_RETURN(NodeId target, ResolveNode(parsed, tgt));
      edges.push_back(ops::EdgeRef{source, Sym(edge), target});
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    }
    return ParsedOperation{
        Operation(
            ops::EdgeDeletion(std::move(parsed.instance), std::move(edges))),
        std::move(parsed.names)};
  }
  if (kind == "ab") {
    NodeId node{};
    Symbol label{}, member{}, group{};
    bool have_node = false, have_label = false, have_member = false,
         have_group = false;
    while (!cursor->TryConsume("}")) {
      GOOD_ASSIGN_OR_RETURN(std::string stmt, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string value, cursor->Word());
      if (stmt == "node") {
        GOOD_ASSIGN_OR_RETURN(node, ResolveNode(parsed, value));
        have_node = true;
      } else if (stmt == "label") {
        label = Sym(value);
        have_label = true;
      } else if (stmt == "member") {
        member = Sym(value);
        have_member = true;
      } else if (stmt == "group") {
        group = Sym(value);
        have_group = true;
      } else {
        return Status::InvalidArgument("unknown ab statement '" + stmt +
                                       "'");
      }
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    }
    if (!have_node || !have_label || !have_member || !have_group) {
      return Status::InvalidArgument(
          "ab needs node, label, member and group statements");
    }
    return ParsedOperation{
        Operation(ops::Abstraction(std::move(parsed.instance), node, label,
                                   member, group)),
        std::move(parsed.names)};
  }
  if (kind == "call") {
    MethodCallOp call;
    bool have_method = false, have_receiver = false;
    while (!cursor->TryConsume("}")) {
      GOOD_ASSIGN_OR_RETURN(std::string stmt, cursor->Word());
      if (stmt == "method") {
        GOOD_ASSIGN_OR_RETURN(call.method_name, cursor->Word());
        have_method = true;
      } else if (stmt == "arg") {
        GOOD_ASSIGN_OR_RETURN(std::string param, cursor->Word());
        GOOD_ASSIGN_OR_RETURN(std::string node, cursor->Word());
        GOOD_ASSIGN_OR_RETURN(NodeId target, ResolveNode(parsed, node));
        call.args[Sym(param)] = target;
      } else if (stmt == "receiver") {
        GOOD_ASSIGN_OR_RETURN(std::string node, cursor->Word());
        GOOD_ASSIGN_OR_RETURN(call.receiver, ResolveNode(parsed, node));
        have_receiver = true;
      } else {
        return Status::InvalidArgument("unknown call statement '" + stmt +
                                       "'");
      }
      GOOD_RETURN_NOT_OK(cursor->Expect(";"));
    }
    if (!have_method || !have_receiver) {
      return Status::InvalidArgument(
          "call needs method and receiver statements");
    }
    call.pattern = std::move(parsed.instance);
    return ParsedOperation{Operation(std::move(call)),
                           std::move(parsed.names)};
  }
  return Status::InvalidArgument("unknown operation kind '" + kind + "'");
}

}  // namespace

Result<std::string> WriteOperation(const Scheme& scheme,
                                   const Operation& op) {
  return std::visit(OpWriter{scheme}, op);
}

Result<ParsedOperation> ParseOperationNamed(const Scheme& scheme,
                                            Cursor* cursor) {
  return ParseOneOperationNamed(scheme, cursor);
}

Result<Operation> ParseOperation(const Scheme& scheme,
                                 const std::string& input) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, text::Tokenize(input));
  Cursor cursor(std::move(tokens));
  GOOD_ASSIGN_OR_RETURN(ParsedOperation parsed,
                        ParseOneOperationNamed(scheme, &cursor));
  return std::move(parsed.op);
}

Result<std::string> WriteOperations(const Scheme& scheme,
                                    const std::vector<Operation>& ops) {
  OperationWriter writer;
  for (const Operation& op : ops) {
    GOOD_RETURN_NOT_OK(writer.Append(scheme, op));
  }
  return writer.Take();
}

Result<std::vector<Operation>> ParseOperations(const Scheme& scheme,
                                               const std::string& input) {
  GOOD_ASSIGN_OR_RETURN(OperationReader reader, OperationReader::Open(input));
  std::vector<Operation> out;
  while (!reader.AtEnd()) {
    GOOD_ASSIGN_OR_RETURN(Operation op, reader.Next(scheme));
    out.push_back(std::move(op));
  }
  return out;
}

Result<OperationReader> OperationReader::Open(const std::string& input) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, text::Tokenize(input));
  return OperationReader(Cursor(std::move(tokens)));
}

Result<Operation> OperationReader::Next(const Scheme& scheme) {
  if (cursor_.AtEnd()) {
    return Status::OutOfRange("no operations left in the program text");
  }
  GOOD_ASSIGN_OR_RETURN(ParsedOperation parsed,
                        ParseOneOperationNamed(scheme, &cursor_));
  return std::move(parsed.op);
}

Status OperationWriter::Append(const Scheme& scheme, const Operation& op) {
  GOOD_ASSIGN_OR_RETURN(std::string one, WriteOperation(scheme, op));
  text_ += one;
  ++ops_written_;
  return Status::OK();
}

std::string WritePattern(const Scheme& scheme, const Pattern& pattern) {
  return WritePatternBlock(scheme, pattern);
}

Result<Pattern> ParsePattern(const Scheme& scheme, const std::string& input) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, text::Tokenize(input));
  Cursor cursor(std::move(tokens));
  GOOD_ASSIGN_OR_RETURN(NamedInstance parsed,
                        ParsePatternBlock(scheme, &cursor));
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after pattern block");
  }
  return std::move(parsed.instance);
}

}  // namespace good::program
