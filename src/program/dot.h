/// \file dot.h
/// \brief GraphViz DOT export of schemes and instances.
///
/// Reproduces the paper's graphical conventions (Section 2): object
/// classes/nodes are rectangles, printable classes/nodes are ovals,
/// functional edges are single arrows, multivalued edges are double
/// (drawn bold with a double-arrow head), and isa-marked edges are
/// dashed.

#ifndef GOOD_PROGRAM_DOT_H_
#define GOOD_PROGRAM_DOT_H_

#include <string>

#include "graph/instance.h"
#include "schema/scheme.h"

namespace good::program {

/// Renders the scheme graph in DOT.
std::string SchemeToDot(const schema::Scheme& scheme);

/// Renders the instance graph in DOT; printable nodes show their value.
std::string InstanceToDot(const schema::Scheme& scheme,
                          const graph::Instance& instance);

}  // namespace good::program

#endif  // GOOD_PROGRAM_DOT_H_
