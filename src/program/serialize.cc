#include "program/serialize.h"

#include "program/text.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace good::program {

using graph::Instance;
using graph::NodeId;
using schema::Scheme;

namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

std::string WriteValue(const Value& value) {
  // Everything is written in its ToString form and re-parsed by domain.
  return text::Quote(value.ToString());
}

std::string WriteName(Symbol symbol) {
  return text::WriteName(SymName(symbol));
}

using text::Cursor;
using text::Tokenize;

Result<ValueKind> ParseDomain(const std::string& word) {
  if (word == "bool") return ValueKind::kBool;
  if (word == "int") return ValueKind::kInt;
  if (word == "double") return ValueKind::kDouble;
  if (word == "string") return ValueKind::kString;
  if (word == "date") return ValueKind::kDate;
  if (word == "bytes") return ValueKind::kBytes;
  return Status::InvalidArgument("unknown domain '" + word + "'");
}

Result<Value> ParseValue(const std::string& raw, ValueKind domain) {
  switch (domain) {
    case ValueKind::kBool:
      if (raw == "true") return Value(true);
      if (raw == "false") return Value(false);
      return Status::InvalidArgument("bad bool literal '" + raw + "'");
    case ValueKind::kInt: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
      if (ec != std::errc() || ptr != raw.data() + raw.size()) {
        return Status::InvalidArgument("bad int literal '" + raw + "'");
      }
      return Value(v);
    }
    case ValueKind::kDouble: {
      try {
        size_t used = 0;
        double v = std::stod(raw, &used);
        if (used != raw.size()) {
          return Status::InvalidArgument("bad double literal '" + raw + "'");
        }
        return Value(v);
      } catch (...) {
        return Status::InvalidArgument("bad double literal '" + raw + "'");
      }
    }
    case ValueKind::kString:
      return Value(raw);
    case ValueKind::kDate: {
      GOOD_ASSIGN_OR_RETURN(Date d, Date::Parse(raw));
      return Value(d);
    }
    case ValueKind::kBytes: {
      if (raw.size() < 2 || raw[0] != '0' || raw[1] != 'x' ||
          raw.size() % 2 != 0) {
        return Status::InvalidArgument("bad bytes literal '" + raw + "'");
      }
      Bytes bytes;
      for (size_t i = 2; i < raw.size(); i += 2) {
        auto nibble = [&](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          if (c >= 'A' && c <= 'F') return c - 'A' + 10;
          return -1;
        };
        int hi = nibble(raw[i]);
        int lo = nibble(raw[i + 1]);
        if (hi < 0 || lo < 0) {
          return Status::InvalidArgument("bad bytes literal '" + raw + "'");
        }
        bytes.push_back(static_cast<uint8_t>((hi << 4) | lo));
      }
      return Value(std::move(bytes));
    }
  }
  return Status::Internal("unreachable");
}

Result<Scheme> ParseSchemeBody(Cursor* cursor) {
  Scheme scheme;
  GOOD_RETURN_NOT_OK(cursor->Expect("scheme"));
  GOOD_RETURN_NOT_OK(cursor->Expect("{"));
  while (!cursor->AtEnd() && cursor->Peek().text != "}") {
    GOOD_ASSIGN_OR_RETURN(std::string kind, cursor->Word());
    if (kind == "object") {
      GOOD_ASSIGN_OR_RETURN(std::string name, cursor->Word());
      GOOD_RETURN_NOT_OK(scheme.AddObjectLabel(Sym(name)));
    } else if (kind == "printable") {
      GOOD_ASSIGN_OR_RETURN(std::string name, cursor->Word());
      GOOD_RETURN_NOT_OK(cursor->Expect(":"));
      GOOD_ASSIGN_OR_RETURN(std::string domain_word, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(ValueKind domain, ParseDomain(domain_word));
      GOOD_RETURN_NOT_OK(scheme.AddPrintableLabel(Sym(name), domain));
    } else if (kind == "functional") {
      GOOD_ASSIGN_OR_RETURN(std::string name, cursor->Word());
      GOOD_RETURN_NOT_OK(scheme.AddFunctionalEdgeLabel(Sym(name)));
    } else if (kind == "multivalued") {
      GOOD_ASSIGN_OR_RETURN(std::string name, cursor->Word());
      GOOD_RETURN_NOT_OK(scheme.AddMultivaluedEdgeLabel(Sym(name)));
    } else if (kind == "triple") {
      GOOD_ASSIGN_OR_RETURN(std::string src, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string edge, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string tgt, cursor->Word());
      GOOD_RETURN_NOT_OK(scheme.AddTriple(Sym(src), Sym(edge), Sym(tgt)));
    } else if (kind == "isa") {
      GOOD_ASSIGN_OR_RETURN(std::string sub, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string edge, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string super, cursor->Word());
      GOOD_RETURN_NOT_OK(scheme.MarkIsa(Sym(sub), Sym(edge), Sym(super)));
    } else {
      return Status::InvalidArgument("unknown scheme statement '" + kind +
                                     "'");
    }
    GOOD_RETURN_NOT_OK(cursor->Expect(";"));
  }
  GOOD_RETURN_NOT_OK(cursor->Expect("}"));
  return scheme;
}

Result<Instance> ParseInstanceBody(const Scheme& scheme, Cursor* cursor,
                                   std::map<std::string, NodeId>* names_out) {
  Instance instance;
  std::map<std::string, NodeId> names;
  GOOD_RETURN_NOT_OK(cursor->Expect("instance"));
  GOOD_RETURN_NOT_OK(cursor->Expect("{"));
  while (!cursor->AtEnd() && cursor->Peek().text != "}") {
    GOOD_ASSIGN_OR_RETURN(std::string kind, cursor->Word());
    if (kind == "node") {
      GOOD_ASSIGN_OR_RETURN(std::string name, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string label_word, cursor->Word());
      Symbol label = Sym(label_word);
      if (names.contains(name)) {
        return Status::InvalidArgument("duplicate node name '" + name + "'");
      }
      NodeId node;
      if (!cursor->AtEnd() && cursor->Peek().text == "=" &&
          !cursor->Peek().quoted) {
        GOOD_RETURN_NOT_OK(cursor->Expect("="));
        if (cursor->AtEnd() || !cursor->Peek().quoted) {
          return Status::InvalidArgument("expected quoted value after '='");
        }
        std::string raw = cursor->Next().text;
        GOOD_ASSIGN_OR_RETURN(ValueKind domain, scheme.DomainOf(label));
        GOOD_ASSIGN_OR_RETURN(Value value, ParseValue(raw, domain));
        GOOD_ASSIGN_OR_RETURN(
            node, instance.AddPrintableNode(scheme, label, std::move(value)));
      } else if (scheme.IsPrintableLabel(label)) {
        GOOD_ASSIGN_OR_RETURN(
            node, instance.AddValuelessPrintableNode(scheme, label));
      } else {
        GOOD_ASSIGN_OR_RETURN(node, instance.AddObjectNode(scheme, label));
      }
      names.emplace(std::move(name), node);
    } else if (kind == "edge") {
      GOOD_ASSIGN_OR_RETURN(std::string src, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string edge, cursor->Word());
      GOOD_ASSIGN_OR_RETURN(std::string tgt, cursor->Word());
      auto sit = names.find(src);
      auto tit = names.find(tgt);
      if (sit == names.end() || tit == names.end()) {
        return Status::InvalidArgument("edge references undefined node");
      }
      GOOD_RETURN_NOT_OK(
          instance.AddEdge(scheme, sit->second, Sym(edge), tit->second));
    } else {
      return Status::InvalidArgument("unknown instance statement '" + kind +
                                     "'");
    }
    GOOD_RETURN_NOT_OK(cursor->Expect(";"));
  }
  GOOD_RETURN_NOT_OK(cursor->Expect("}"));
  if (names_out != nullptr) *names_out = std::move(names);
  return instance;
}

}  // namespace

std::string WriteValueLiteral(const Value& value) { return WriteValue(value); }

Result<Value> ParseValueLiteral(const std::string& raw, ValueKind domain) {
  return ParseValue(raw, domain);
}

std::string WriteScheme(const Scheme& scheme) {
  std::ostringstream os;
  os << "scheme {\n";
  for (Symbol label : scheme.object_labels()) {
    os << "  object " << WriteName(label) << ";\n";
  }
  for (Symbol label : scheme.printable_labels()) {
    os << "  printable " << WriteName(label) << " : "
       << ValueKindToString(*scheme.DomainOf(label)) << ";\n";
  }
  for (Symbol label : scheme.functional_edge_labels()) {
    os << "  functional " << WriteName(label) << ";\n";
  }
  for (Symbol label : scheme.multivalued_edge_labels()) {
    os << "  multivalued " << WriteName(label) << ";\n";
  }
  for (const schema::Triple& t : scheme.triples()) {
    os << "  triple " << WriteName(t.source) << " " << WriteName(t.edge)
       << " " << WriteName(t.target) << ";\n";
  }
  for (Symbol sub : scheme.object_labels()) {
    for (const auto& [edge, super] : scheme.DirectSuperclasses(sub)) {
      os << "  isa " << WriteName(sub) << " " << WriteName(edge) << " "
         << WriteName(super) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

Result<Scheme> ParseScheme(const std::string& text) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Cursor cursor(std::move(tokens));
  return ParseSchemeBody(&cursor);
}

std::string WriteInstance(const Scheme& scheme, const Instance& instance) {
  (void)scheme;
  std::ostringstream os;
  os << "instance {\n";
  for (NodeId node : instance.AllNodes()) {
    os << "  node n" << node.id << " " << WriteName(instance.LabelOf(node));
    if (instance.HasPrintValue(node)) {
      os << " = " << WriteValue(*instance.PrintValueOf(node));
    }
    os << ";\n";
  }
  for (const graph::Edge& e : instance.AllEdges()) {
    os << "  edge n" << e.source.id << " " << WriteName(e.label) << " n"
       << e.target.id << ";\n";
  }
  os << "}\n";
  return os.str();
}

Result<Instance> ParseInstance(const Scheme& scheme,
                               const std::string& text) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Cursor cursor(std::move(tokens));
  return ParseInstanceBody(scheme, &cursor, nullptr);
}

Result<NamedInstance> ParseInstanceNamed(const Scheme& scheme,
                                         const std::string& text) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Cursor cursor(std::move(tokens));
  NamedInstance out;
  GOOD_ASSIGN_OR_RETURN(out.instance,
                        ParseInstanceBody(scheme, &cursor, &out.names));
  return out;
}

std::string WriteDatabase(const Database& database) {
  return WriteScheme(database.scheme) +
         WriteInstance(database.scheme, database.instance);
}

Result<Database> ParseDatabase(const std::string& text) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Cursor cursor(std::move(tokens));
  GOOD_ASSIGN_OR_RETURN(Scheme scheme, ParseSchemeBody(&cursor));
  GOOD_ASSIGN_OR_RETURN(Instance instance,
                        ParseInstanceBody(scheme, &cursor, nullptr));
  return Database{std::move(scheme), std::move(instance)};
}

}  // namespace good::program
