#include "program/dot.h"

#include <sstream>

namespace good::program {

using graph::Instance;
using graph::NodeId;
using schema::Scheme;

namespace {

std::string Escape(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void EdgeAttributes(std::ostringstream& os, const Scheme& scheme,
                    Symbol edge, bool isa_marked) {
  os << " [label=\"" << Escape(SymName(edge)) << "\"";
  if (scheme.IsMultivaluedEdgeLabel(edge)) {
    // The paper draws multivalued edges with a double arrow.
    os << ", color=\"black:invis:black\"";
  }
  if (isa_marked) os << ", style=dashed";
  os << "];\n";
}

}  // namespace

std::string SchemeToDot(const Scheme& scheme) {
  std::ostringstream os;
  os << "digraph scheme {\n  rankdir=LR;\n";
  for (Symbol label : scheme.object_labels()) {
    os << "  \"" << Escape(SymName(label)) << "\" [shape=box];\n";
  }
  for (Symbol label : scheme.printable_labels()) {
    os << "  \"" << Escape(SymName(label)) << "\" [shape=oval];\n";
  }
  for (const schema::Triple& t : scheme.triples()) {
    os << "  \"" << Escape(SymName(t.source)) << "\" -> \""
       << Escape(SymName(t.target)) << "\"";
    EdgeAttributes(os, scheme, t.edge,
                   scheme.IsIsaTriple(t.source, t.edge, t.target));
  }
  os << "}\n";
  return os.str();
}

std::string InstanceToDot(const Scheme& scheme, const Instance& instance) {
  std::ostringstream os;
  os << "digraph instance {\n  rankdir=LR;\n";
  for (NodeId node : instance.AllNodes()) {
    const Symbol label = instance.LabelOf(node);
    os << "  n" << node.id << " [label=\"" << Escape(SymName(label));
    if (instance.HasPrintValue(node)) {
      os << "\\n" << Escape(instance.PrintValueOf(node)->ToString());
    }
    os << "\", shape=" << (scheme.IsPrintableLabel(label) ? "oval" : "box")
       << "];\n";
  }
  for (const graph::Edge& e : instance.AllEdges()) {
    os << "  n" << e.source.id << " -> n" << e.target.id;
    EdgeAttributes(os, scheme, e.label, false);
  }
  os << "}\n";
  return os.str();
}

}  // namespace good::program
