#include "program/browse.h"

#include <deque>
#include <map>
#include <set>

namespace good::program {

using graph::Instance;
using graph::NodeId;

Result<Instance> Neighborhood(const schema::Scheme& scheme,
                              const Instance& instance,
                              const std::vector<NodeId>& focus,
                              const BrowseOptions& options) {
  // Breadth-first collection, nearest nodes first.
  std::set<NodeId> selected;
  std::deque<std::pair<NodeId, size_t>> queue;
  for (NodeId n : focus) {
    if (!instance.HasNode(n)) {
      return Status::NotFound("focus node #" + std::to_string(n.id) +
                              " does not exist");
    }
    if (selected.insert(n).second) queue.emplace_back(n, 0);
  }
  while (!queue.empty() && selected.size() < options.max_nodes) {
    auto [cur, depth] = queue.front();
    queue.pop_front();
    if (depth >= options.radius) continue;
    auto visit = [&](NodeId next) {
      if (selected.size() >= options.max_nodes) return;
      if (selected.insert(next).second) queue.emplace_back(next, depth + 1);
    };
    for (const auto& [label, target] : instance.OutEdges(cur)) {
      (void)label;
      visit(target);
    }
    for (const auto& [source, label] : instance.InEdges(cur)) {
      (void)label;
      visit(source);
    }
  }

  // Build the induced sub-instance.
  Instance out;
  std::map<NodeId, NodeId> mapping;
  for (NodeId n : selected) {
    if (instance.HasPrintValue(n)) {
      GOOD_ASSIGN_OR_RETURN(
          mapping[n],
          out.AddPrintableNode(scheme, instance.LabelOf(n),
                               *instance.PrintValueOf(n)));
    } else if (scheme.IsPrintableLabel(instance.LabelOf(n))) {
      GOOD_ASSIGN_OR_RETURN(
          mapping[n],
          out.AddValuelessPrintableNode(scheme, instance.LabelOf(n)));
    } else {
      GOOD_ASSIGN_OR_RETURN(
          mapping[n], out.AddObjectNode(scheme, instance.LabelOf(n)));
    }
  }
  for (NodeId n : selected) {
    for (const auto& [label, target] : instance.OutEdges(n)) {
      if (!selected.contains(target)) continue;
      GOOD_RETURN_NOT_OK(
          out.AddEdge(scheme, mapping[n], label, mapping[target]));
    }
  }
  return out;
}

Result<Instance> BrowsePattern(const schema::Scheme& scheme,
                               const Instance& instance,
                               const pattern::Pattern& pattern,
                               NodeId node,
                               const BrowseOptions& options) {
  if (!pattern.HasNode(node)) {
    return Status::InvalidArgument(
        "browse node is not a node of the pattern");
  }
  std::set<NodeId> focus_set;
  for (const pattern::Matching& m :
       pattern::FindMatchings(pattern, instance)) {
    focus_set.insert(m.At(node));
  }
  return Neighborhood(scheme, instance,
                      std::vector<NodeId>(focus_set.begin(),
                                          focus_set.end()),
                      options);
}

}  // namespace good::program
