#include "storage/file_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace good::storage {
namespace {

Status ErrnoStatus(const std::string& context, int err) {
  std::string msg = context + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  // Transient conditions a retry can cure get the retriable class
  // (common::IsRetriable) so the WAL append retry loop rides them out;
  // everything else — including ENOSPC, which backoff cannot cure and
  // should surface immediately rather than burn retry budgets — is a
  // permanent fault.
  if (err == EINTR || err == EAGAIN || err == EBUSY) {
    return Status::Unavailable(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::Internal("Append on closed file " + path_);
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_, errno);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("Sync on closed file " + path_);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::Internal("Truncate on closed file " + path_);
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate " + path_, errno);
    }
    // Appends use O_APPEND, so the write position follows the new end.
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileEnv final : public FileEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC | O_APPEND;
    if (truncate) flags |= O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read " + path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink " + path, errno);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir " + path, errno);
    std::vector<std::string> names;
    errno = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      struct stat st;
      if (::fstatat(::dirfd(dir), name.c_str(), &st, 0) == 0 &&
          S_ISREG(st.st_mode)) {
        names.push_back(std::move(name));
      }
      errno = 0;
    }
    int err = errno;
    ::closedir(dir);
    if (err != 0) return ErrnoStatus("readdir " + path, err);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDirs(const std::string& path) override {
    std::string prefix;
    size_t pos = 0;
    while (pos <= path.size()) {
      size_t slash = path.find('/', pos);
      if (slash == std::string::npos) slash = path.size();
      prefix = path.substr(0, slash);
      pos = slash + 1;
      if (prefix.empty()) continue;  // leading '/'
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir " + prefix, errno);
      }
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir " + path, errno);
    // Some file systems reject fsync on directories; treat as
    // best-effort there (EINVAL / ENOTSUP).
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus("fsync dir " + path, err);
    }
    ::close(fd);
    return Status::OK();
  }
};

}  // namespace

FileEnv* FileEnv::Default() {
  static PosixFileEnv* env = new PosixFileEnv();
  return env;
}

}  // namespace good::storage
