/// \file crashsim.h
/// \brief Exhaustive crash-point exploration for the storage engine.
///
/// The harness answers one question: does recovery restore a
/// committed-prefix-equivalent database **no matter where** the process
/// dies? For a scripted workload it first runs crash-free under a
/// CrashPointEnv to count the mutating-I/O boundaries B, then replays
/// the workload B times per damage mode, crashing at boundary
/// k = 1..B, reopening the directory with a clean environment (the
/// "rebooted" process), and checking the recovered (scheme, instance)
/// against an oracle built by pure in-memory replay of the workload
/// prefix — compared up to graph isomorphism, because GOOD operations
/// are deterministic only up to the choice of new object ids
/// (Section 3 of the paper).
///
/// The invariant verified at every crash point: with synced appends,
/// the recovered state equals oracle[m] for some m with
/// acked <= m <= acked + 1, where `acked` counts the operations whose
/// Apply returned OK before the crash. The +1 slack is inherent to any
/// write-ahead protocol: an operation whose log record reached the
/// disk in full but whose acknowledgment did not make it back to the
/// caller legitimately replays. With Options::sync_every_append off,
/// the kLoseUnsynced damage mode may additionally roll back acked but
/// unsynced operations, so the bound weakens to 0 <= m <= acked + 1 —
/// still a prefix, never a gap and never fabricated state. The
/// recovered instance must also pass the integrity scrubber
/// (storage/scrub.h) cleanly.

#ifndef GOOD_STORAGE_CRASHSIM_H_
#define GOOD_STORAGE_CRASHSIM_H_

#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "method/method.h"
#include "program/program.h"
#include "storage/crash_point_env.h"

namespace good::storage {

/// \brief One scripted workload to explore exhaustively.
struct CrashSimOptions {
  /// State the database is bootstrapped from on first open.
  program::Database initial;
  /// The operations applied, in order, each as one Database::Apply.
  std::vector<method::Operation> workload;
  /// Methods available to `call` operations (not owned; may be null).
  const method::MethodRegistry* methods = nullptr;
  method::ExecOptions exec;
  /// Forwarded to storage::Options — exercising auto-checkpoints under
  /// crashes is the whole point of setting this.
  size_t checkpoint_every = 0;
  bool sync_every_append = true;
  /// Damage modes to explore; every mode multiplies the schedule count
  /// by the boundary count.
  std::vector<CrashMode> modes = {CrashMode::kCutBeforeOp,
                                  CrashMode::kTornWrite,
                                  CrashMode::kLoseUnsynced};
  /// Scratch directory root; each schedule runs in a fresh
  /// subdirectory which is removed afterwards.
  std::string dir_prefix;
  /// Bounds the exploration; expiry marks the report incomplete rather
  /// than failing.
  common::Deadline deadline;
};

/// \brief One crash point where recovery did not match the oracle.
struct CrashSimDivergence {
  CrashSchedule schedule;
  /// Operations acknowledged before the crash fired.
  size_t acked = 0;
  std::string detail;
};

/// \brief Outcome of exploring every crash schedule.
struct CrashSimReport {
  /// Mutating-I/O boundaries in one crash-free run of the workload.
  size_t boundaries = 0;
  size_t schedules_explored = 0;
  /// Schedules whose crash actually fired (== explored when crash_at
  /// never exceeds the boundary count).
  size_t crashes_simulated = 0;
  size_t recovered_ok = 0;
  std::vector<CrashSimDivergence> divergences;
  /// False when the deadline cut exploration short.
  bool complete = false;

  bool ok() const { return complete && divergences.empty(); }
  std::string ToString() const;
};

/// \brief Runs the exhaustive exploration described in the file
/// comment. Fails only on harness errors (the workload must run clean
/// without crashes, scratch directories must be creatable); recovery
/// mismatches are reported as divergences, not errors.
Result<CrashSimReport> ExploreCrashPoints(const CrashSimOptions& options);

}  // namespace good::storage

#endif  // GOOD_STORAGE_CRASHSIM_H_
