/// \file database.h
/// \brief A durable GOOD database: write-ahead logging + snapshots.
///
/// The GOOD model makes durability unusually clean: every manipulation
/// is one of the five graph transformations or a method call, each with
/// a storable textual form (program/op_serialize.h). A database's
/// history therefore *is* a log of serialized operations, and its state
/// at any moment is (snapshot ∘ log tail). This class owns a scheme +
/// instance and keeps them durable under that protocol:
///
///  - **Apply** serializes the operation, appends it to the write-ahead
///    log (fsync'd by default) *before* mutating the in-memory
///    instance, then executes it. If execution fails, the just-written
///    record is rolled back by truncation, so the log always holds
///    exactly the operations that succeeded.
///  - **Checkpoint** writes the full scheme+instance (program/
///    serialize.h) to a temporary file, fsyncs, atomically renames it
///    over the previous snapshot, and truncates the log. Each log
///    record carries a sequence number and the snapshot stores the next
///    expected one, so a crash between rename and truncation is
///    harmless: recovery skips records the snapshot already contains.
///  - **Open** recovers by loading the snapshot and replaying the log
///    tail. A truncated or checksum-failing *final* record is dropped
///    (a torn append — the operation never reported success); any
///    earlier damage fails loudly with StatusCode::kDataLoss.
///
/// Operations are deterministic up to the choice of new object ids
/// (Section 3 of the paper), so a recovered instance is isomorphic —
/// not pointer-identical — to the pre-crash one; tests compare with
/// graph/isomorphism.h. Methods are code, not data: a database whose
/// log contains `call` records must be reopened with a MethodRegistry
/// providing the same definitions (Options::methods).

#ifndef GOOD_STORAGE_DATABASE_H_
#define GOOD_STORAGE_DATABASE_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "method/method.h"
#include "program/program.h"
#include "storage/file_env.h"
#include "storage/wal.h"

namespace good::storage {

/// \brief Tuning and environment knobs for a durable database.
struct Options {
  /// File system to use; nullptr means FileEnv::Default().
  FileEnv* env = nullptr;
  /// Methods available to `call` operations, both at Apply time and
  /// during recovery replay. Not owned; may be nullptr when no method
  /// calls are applied.
  const method::MethodRegistry* methods = nullptr;
  /// Execution budgets for operations and replay.
  method::ExecOptions exec;
  /// Fsync the log after every appended operation. Turning this off
  /// trades the durability of the last few operations for throughput
  /// (recovery still sees a consistent prefix).
  bool sync_every_append = true;
  /// Automatically Checkpoint() after this many logged operations;
  /// 0 disables auto-checkpointing.
  size_t checkpoint_every = 0;
  /// How many times a failed WAL append is retried before the operation
  /// is rejected. Each failed attempt's partial bytes are truncated
  /// away first, so retries always start from a clean record boundary.
  /// 0 disables retrying (historical fail-fast behavior).
  size_t wal_retry_limit = 3;
  /// Sleep before the first retry; doubles per subsequent retry
  /// (exponential backoff). Zero disables sleeping — tests use that to
  /// keep fault-injection sweeps fast.
  std::chrono::microseconds wal_retry_backoff{100};
};

/// \brief What Open() found and did.
struct RecoveryInfo {
  /// True when the directory held no database and a fresh one was
  /// bootstrapped from the caller's initial state.
  bool created = false;
  /// Operations replayed from the log tail.
  size_t ops_replayed = 0;
  /// Log records skipped because the snapshot already contained them
  /// (crash between checkpoint rename and log truncation).
  size_t ops_skipped = 0;
  /// True iff a torn final log record was dropped.
  bool dropped_torn_tail = false;
};

/// \brief A durable scheme + instance rooted in a directory.
///
/// Dropping the handle without Close() models a crash: everything
/// synced to the log survives, nothing else is written.
class Database {
 public:
  /// Opens the database in `dir`, creating it from `initial` when no
  /// snapshot exists yet (on later opens `initial` is ignored — the
  /// recovered state wins). Fails with kDataLoss when the persisted
  /// state is damaged beyond a torn log tail.
  static Result<Database> Open(const std::string& dir,
                               program::Database initial,
                               Options options = {});

  /// Opens with an empty initial scheme + instance.
  static Result<Database> Open(const std::string& dir,
                               Options options = {});

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Logs `op` then executes it against the in-memory database.
  /// On error nothing is durably added and the in-memory state is
  /// unchanged: transient WAL append faults are retried up to
  /// Options::wal_retry_limit times (ApplyStats::wal_retries counts
  /// them), and a failed execution rolls back both the log record (by
  /// truncation) and the in-memory scheme + instance (via the
  /// executor's transaction scope), so log and memory never diverge.
  /// Operations carrying C++ closures (match filters, computed edges)
  /// cannot be serialized and are rejected.
  Status Apply(const method::Operation& op,
               ops::ApplyStats* stats = nullptr);

  /// Applies a sequence of operations in order, stopping at the first
  /// failure (earlier operations remain applied and logged).
  Status ApplyAll(const std::vector<method::Operation>& ops,
                  ops::ApplyStats* stats = nullptr);

  /// Writes a snapshot of the current state and truncates the log.
  Status Checkpoint();

  /// Syncs and closes the log. Further Apply calls fail.
  Status Close();

  const schema::Scheme& scheme() const { return db_.scheme; }
  const graph::Instance& instance() const { return db_.instance; }
  /// The owned scheme + instance as a program::Database view.
  const program::Database& database() const { return db_; }

  const RecoveryInfo& recovery() const { return recovery_; }
  /// Operations currently in the log (since the last checkpoint).
  size_t log_ops() const { return log_ops_; }
  /// Log file size in bytes.
  uint64_t log_bytes() const { return writer_ ? writer_->size() : 0; }
  /// Sequence number the next applied operation will carry.
  uint64_t next_sequence() const { return next_seq_; }

  /// Path helpers (for tests and tools).
  static std::string SnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  Database(std::string dir, Options options);

  Status LoadSnapshot();
  /// Replays the log tail over the snapshot state; reports the byte
  /// offset appends must resume from (torn tails are cut off there).
  Status ReplayWal(uint64_t* valid_bytes);
  Status OpenWalForAppend(uint64_t valid_bytes);
  /// Rolls back the last log record; poisons the handle if the
  /// truncation itself fails (log and memory can no longer be
  /// reconciled).
  Status Undo(Status cause);

  const method::MethodRegistry* Registry() const;

  std::string dir_;
  Options options_;
  program::Database db_;
  std::unique_ptr<LogWriter> writer_;
  uint64_t next_seq_ = 0;
  size_t log_ops_ = 0;
  size_t ops_since_checkpoint_ = 0;
  RecoveryInfo recovery_;
  bool poisoned_ = false;
  bool closed_ = false;
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_DATABASE_H_
