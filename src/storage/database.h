/// \file database.h
/// \brief A durable GOOD database: write-ahead logging + snapshots.
///
/// The GOOD model makes durability unusually clean: every manipulation
/// is one of the five graph transformations or a method call, each with
/// a storable textual form (program/op_serialize.h). A database's
/// history therefore *is* a log of serialized operations, and its state
/// at any moment is (snapshot ∘ log tail). This class owns a scheme +
/// instance and keeps them durable under that protocol:
///
///  - **Apply** serializes the operation, appends it to the write-ahead
///    log (fsync'd by default) *before* mutating the in-memory
///    instance, then executes it. If execution fails, the just-written
///    record is rolled back by truncation, so the log always holds
///    exactly the operations that succeeded.
///  - **Checkpoint** persists the instance per class (storage/
///    partition.h): each dirty class's partition is written to a fresh
///    immutable file, clean entries are carried forward, and the new
///    CRC-framed manifest is committed by atomic rename — keeping the
///    displaced manifest as `manifest.prev`, the salvage fallback —
///    before the log is truncated. Each log record carries a sequence
///    number and the manifest stores the next expected one, so a crash
///    anywhere in that dance is harmless: recovery skips records the
///    checkpoint already contains, and falls back to `manifest.prev`
///    when the crash hit between the two renames. Damage confined to
///    one partition quarantines just that class (kPartialDegraded)
///    instead of degrading the whole database.
///  - **Open** recovers by loading the snapshot and replaying the log
///    tail, under one of three damage policies (Options::salvage_mode):
///    kStrict drops a torn *final* record (the residue of an
///    interrupted append) and fails loudly with kDataLoss on anything
///    worse; kSalvage scans past interior damage (storage/salvage.h),
///    replays the longest sound prefix, quarantines everything it had
///    to drop into a sidecar file, and repairs the log in place;
///    kReadOnlyDegraded recovers the same salvaged prefix without
///    touching a single byte on disk and serves reads only — writes
///    are rejected with kUnavailable instead of the database refusing
///    to open.
///
/// Operations are deterministic up to the choice of new object ids
/// (Section 3 of the paper), so a recovered instance is isomorphic —
/// not pointer-identical — to the pre-crash one; tests compare with
/// graph/isomorphism.h, and tests/crash_consistency_test.cc proves the
/// committed-prefix invariant at every mutating-I/O boundary via
/// storage/crashsim.h. Methods are code, not data: a database whose
/// log contains `call` records must be reopened with a MethodRegistry
/// providing the same definitions (Options::methods).

#ifndef GOOD_STORAGE_DATABASE_H_
#define GOOD_STORAGE_DATABASE_H_

#include <chrono>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/deadline.h"
#include "method/method.h"
#include "ops/footprint.h"
#include "program/program.h"
#include "storage/file_env.h"
#include "storage/partition.h"
#include "storage/salvage.h"
#include "storage/scrub.h"
#include "storage/wal.h"

namespace good::storage {

/// \brief How much damage Open() tolerates, and at what cost.
enum class SalvageMode {
  /// Torn tails only; interior damage is kDataLoss. The default.
  kStrict,
  /// Recover the longest sound prefix, quarantine the damage to a
  /// sidecar, rewrite the log, open writable.
  kSalvage,
  /// Recover like kSalvage but write nothing — not even the torn-tail
  /// truncation. Reads work; Apply/Checkpoint return kUnavailable.
  kReadOnlyDegraded,
};

std::string_view SalvageModeToString(SalvageMode mode);

/// \brief Tuning and environment knobs for a durable database.
struct Options {
  /// File system to use; nullptr means FileEnv::Default().
  FileEnv* env = nullptr;
  /// Methods available to `call` operations, both at Apply time and
  /// during recovery replay. Not owned; may be nullptr when no method
  /// calls are applied.
  const method::MethodRegistry* methods = nullptr;
  /// Execution budgets for operations and replay.
  method::ExecOptions exec;
  /// Damage tolerance policy for Open (see SalvageMode).
  SalvageMode salvage_mode = SalvageMode::kStrict;
  /// Polled between replayed records during recovery, so opening a
  /// database with a huge log is cancellable / time-boxed. Expiry
  /// surfaces as kDeadlineExceeded (or kCancelled) from Open.
  common::Deadline recovery_deadline;
  /// Fsync the log after every appended operation. Turning this off
  /// trades the durability of the last few operations for throughput
  /// (recovery still sees a consistent prefix).
  bool sync_every_append = true;
  /// Automatically Checkpoint() after this many logged operations;
  /// 0 disables auto-checkpointing.
  size_t checkpoint_every = 0;
  /// How many times a failed WAL append is retried before the operation
  /// is rejected. Each failed attempt's partial bytes are truncated
  /// away first, so retries always start from a clean record boundary.
  /// 0 disables retrying (historical fail-fast behavior).
  size_t wal_retry_limit = 3;
  /// Sleep before the first retry; doubles per subsequent retry
  /// (exponential backoff, capped at wal_retry_max_backoff with seeded
  /// ±25% jitter — see common::Backoff). Zero disables sleeping —
  /// tests use that to keep fault-injection sweeps fast.
  std::chrono::microseconds wal_retry_backoff{100};
  /// Ceiling on any single retry sleep.
  std::chrono::microseconds wal_retry_max_backoff{1'000'000};
};

/// \brief Structured account of what Open() found, dropped, and did.
struct RecoveryReport {
  /// True when the directory held no database and a fresh one was
  /// bootstrapped from the caller's initial state.
  bool created = false;
  /// Operations replayed from the log tail.
  size_t ops_replayed = 0;
  /// Log records skipped because the snapshot already contained them
  /// (crash between checkpoint rename and log truncation).
  size_t ops_skipped = 0;
  /// Checksum-intact log records NOT replayed because they follow a
  /// hole (salvage modes only; quarantined, never executed).
  size_t ops_quarantined = 0;
  /// True iff a torn final log record was dropped.
  bool dropped_torn_tail = false;
  /// Bytes of log tail cut off (torn tail, or everything past the
  /// salvageable prefix in kSalvage mode).
  uint64_t bytes_truncated = 0;
  /// True iff recovery based itself on snapshot.prev because the
  /// current snapshot was missing or (salvage modes) damaged.
  bool used_previous_snapshot = false;
  /// True iff the salvage scanner had to engage (non-strict mode and
  /// real damage found).
  bool salvaged = false;
  /// True iff the handle is read-only (kReadOnlyDegraded).
  bool degraded = false;
  /// Details of the salvage scan when `salvaged` is true.
  SalvageReport salvage;
  /// Per-partition load outcomes (empty for fresh/legacy databases).
  std::vector<PartitionLoadResult> partitions;
  /// Partitions quarantined by this open.
  size_t partitions_quarantined = 0;
  /// Edges from healthy partitions dropped because their target lived
  /// in a quarantined one.
  uint64_t dangling_edges_dropped = 0;
  /// The kPartialDegraded outcome: at least one partition is
  /// quarantined while the rest serve. Under kSalvage the handle stays
  /// writable for healthy classes; reads/writes touching a quarantined
  /// class draw typed kUnavailable (see Database::CheckClassAvailable).
  bool partial_degraded = false;
  /// True iff this open found a legacy monolithic snapshot and
  /// migrated it to the partitioned layout.
  bool migrated_legacy_snapshot = false;

  /// One-line human summary for logs.
  std::string ToString() const;
};

/// \brief What one incremental checkpoint actually wrote.
struct CheckpointStats {
  /// Partition files rewritten (their class was dirty or new).
  size_t partitions_written = 0;
  /// Clean entries carried forward from the previous manifest without
  /// touching their bytes.
  size_t partitions_carried = 0;
  /// Quarantined entries carried forward untouched (repairability).
  size_t partitions_quarantined = 0;
  /// True iff the scheme changed and its file was rewritten.
  bool scheme_written = false;
  /// Bytes written to partition/scheme/manifest files.
  uint64_t bytes_written = 0;
  /// Transient I/O retries the checkpoint rode out (common::Backoff).
  size_t io_retries = 0;
};

/// \brief A durable scheme + instance rooted in a directory.
///
/// Dropping the handle without Close() models a crash: everything
/// synced to the log survives, nothing else is written.
class Database {
 public:
  /// Opens the database in `dir`, creating it from `initial` when no
  /// snapshot exists yet (on later opens `initial` is ignored — the
  /// recovered state wins). Fails with kDataLoss when the persisted
  /// state is damaged beyond what Options::salvage_mode tolerates.
  static Result<Database> Open(const std::string& dir,
                               program::Database initial,
                               Options options = {});

  /// Opens with an empty initial scheme + instance.
  static Result<Database> Open(const std::string& dir,
                               Options options = {});

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Logs `op` then executes it against the in-memory database.
  /// On error nothing is durably added and the in-memory state is
  /// unchanged: transient WAL append faults are retried up to
  /// Options::wal_retry_limit times (ApplyStats::wal_retries counts
  /// them), and a failed execution rolls back both the log record (by
  /// truncation) and the in-memory scheme + instance (via the
  /// executor's transaction scope), so log and memory never diverge.
  /// Operations carrying C++ closures (match filters, computed edges)
  /// cannot be serialized and are rejected. A degraded (read-only)
  /// handle rejects every Apply with kUnavailable.
  Status Apply(const method::Operation& op,
               ops::ApplyStats* stats = nullptr);

  /// Applies a sequence of operations in order, stopping at the first
  /// failure (earlier operations remain applied and logged).
  Status ApplyAll(const std::vector<method::Operation>& ops,
                  ops::ApplyStats* stats = nullptr);

  /// Applies `ops` as ONE all-or-nothing transaction held in ONE log
  /// record: every operation succeeds and the whole sequence becomes
  /// durable together, or nothing is applied and nothing is logged.
  /// Unlike Apply, execution runs first (under a rollback scope) and
  /// the record is appended only when the whole sequence succeeded —
  /// recovery therefore replays transactions atomically (a record
  /// either replays whole or ends the valid prefix), which is what the
  /// group-commit pipeline needs: a crash between append and fsync can
  /// only lose *whole* unacknowledged transactions, never expose half
  /// of one. With Options::sync_every_append false the record is
  /// appended unsynced; the caller batches several transactions and
  /// makes them durable together with one SyncWal() (group commit).
  /// When `footprint` is non-null it receives the transaction's write
  /// footprint (ops/footprint.h), collected from the undo journal
  /// before the commit clears it.
  Status ApplyTransaction(const std::vector<method::Operation>& ops,
                          ops::ApplyStats* stats = nullptr,
                          ops::Footprint* footprint = nullptr);

  /// Forces every appended log record to stable storage — the group
  /// commit barrier. A no-op when Options::sync_every_append already
  /// syncs per record. kUnavailable on a degraded handle. A failed
  /// fsync poisons the handle and surfaces as non-retriable kDataLoss:
  /// the affected records are applied in memory and of unknowable
  /// durability, so retrying (re-applying) them could commit them
  /// twice — reopen to recover a consistent state instead.
  Status SyncWal();

  /// Writes a checkpoint of the current state and truncates the log.
  /// Incremental: only partitions whose class was mutated since the
  /// last checkpoint (graph::Instance dirty tracking) are rewritten;
  /// clean and quarantined entries are carried forward by reference in
  /// the new manifest. Transient I/O faults on partition writes are
  /// retried on the common::Backoff schedule (Options::wal_retry_*);
  /// permanent faults propagate. kUnavailable on a degraded handle.
  Status Checkpoint(CheckpointStats* stats = nullptr);

  /// Audits the in-memory pair against the scheme and its own indexes
  /// (storage/scrub.h) — one full pass, sliced under
  /// `options.deadline` if armed. Corruption findings are returned in
  /// the report, not as an error status.
  ScrubReport Scrub(const ScrubOptions& options = {}) const;

  /// Syncs and closes the log. Further Apply calls fail.
  Status Close();

  const schema::Scheme& scheme() const { return db_.scheme; }
  const graph::Instance& instance() const { return db_.instance; }
  /// The owned scheme + instance as a program::Database view.
  const program::Database& database() const { return db_; }

  const RecoveryReport& recovery() const { return recovery_; }
  /// True iff this handle serves reads only (kReadOnlyDegraded open).
  bool degraded() const { return recovery_.degraded; }
  /// True iff some partitions are quarantined while the rest serve
  /// (the kPartialDegraded outcome).
  bool partial_degraded() const { return recovery_.partial_degraded; }
  /// Names of the quarantined classes, sorted (empty when healthy).
  std::vector<std::string> quarantined_classes() const;
  /// OK iff class `cls` is served; typed kUnavailable when its
  /// partition is quarantined. Callers gate reads with this; Apply and
  /// ApplyTransaction enforce it on every write.
  Status CheckClassAvailable(Symbol cls) const;
  /// Operations currently in the log (since the last checkpoint).
  size_t log_ops() const { return log_ops_; }
  /// Log file size in bytes.
  uint64_t log_bytes() const { return writer_ ? writer_->size() : 0; }
  /// Sequence number the next applied operation will carry.
  uint64_t next_sequence() const { return next_seq_; }

  /// Path helpers (for tests and tools).
  /// The committed checkpoint manifest.
  static std::string ManifestPath(const std::string& dir);
  /// The displaced previous manifest, kept as the salvage fallback.
  static std::string PreviousManifestPath(const std::string& dir);
  /// Legacy monolithic snapshot (pre-partitioning layout); read once
  /// for transparent migration, never written again.
  static std::string SnapshotPath(const std::string& dir);
  /// The legacy pre-checkpoint snapshot fallback.
  static std::string PreviousSnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);
  /// Sidecar holding the byte ranges a salvaging Open dropped.
  static std::string QuarantinePath(const std::string& dir);
  /// Sidecar describing quarantined partitions (operator-readable).
  static std::string PartitionQuarantinePath(const std::string& dir);

 private:
  Database(std::string dir, Options options);

  /// Loads the committed checkpoint: manifest.good, falling back to
  /// manifest.prev when the current one is missing (all modes — that
  /// is our own checkpoint crash window) or damaged (salvage modes
  /// only). Directories without a manifest fall back to the legacy
  /// monolithic snapshot chain and are flagged for migration.
  Status LoadSnapshot();
  /// Decodes and loads one manifest file into db_/next_seq_/manifest_.
  /// Partition damage quarantines (salvage modes) or fails (strict).
  Status LoadManifestFile(const std::string& path);
  /// Parses one legacy monolithic snapshot file into db_/next_seq_.
  Status LoadSnapshotFile(const std::string& path);
  /// Replays the log tail over the snapshot state; reports the byte
  /// offset appends must resume from (torn tails are cut off there).
  /// Dispatches to the strict or salvaging variant per salvage_mode.
  Status ReplayWal(uint64_t* valid_bytes);
  Status ReplayWalStrict(std::string_view bytes, uint64_t* valid_bytes);
  Status ReplayWalSalvage(const std::string& wal, std::string_view bytes,
                          uint64_t* valid_bytes);
  /// Parses and executes one logged operation (the payload with its
  /// sequence number already consumed). Shared by both replay variants.
  Status ReplayRecord(std::string_view op_text, size_t index);
  Status OpenWalForAppend(uint64_t valid_bytes);
  /// Rolls back the last log record; poisons the handle if the
  /// truncation itself fails (log and memory can no longer be
  /// reconciled).
  Status Undo(Status cause);
  /// Appends one framed record, retrying transient (common::IsRetriable)
  /// failures up to Options::wal_retry_limit with exponential backoff.
  /// Every failed attempt's partial bytes are truncated first; poisons
  /// the handle when that truncation itself fails.
  Status AppendWithRetry(std::string_view payload, ops::ApplyStats* stats);
  /// Guards shared by every mutating entry point.
  Status CheckWritable() const;
  /// Rejects operations that touch a quarantined class (and, when any
  /// quarantine exists, operations whose class footprint cannot be
  /// determined statically — method calls) with typed kUnavailable.
  Status CheckOpsAvailable(const std::vector<method::Operation>& ops) const;
  Status CheckOpAvailable(const method::Operation& op) const;
  /// Writes `bytes` to dir_/name (truncate + sync + close), retrying
  /// transient faults on the shared Backoff schedule.
  Status WriteFileWithRetry(const std::string& name, std::string_view bytes,
                            size_t* retries);
  /// Deletes part-*/scheme-* files referenced by neither manifest.good
  /// nor manifest.prev, plus stale legacy snapshots. Best-effort.
  void RemoveUnreferencedFiles();
  /// Writes or clears the partition-quarantine sidecar to match the
  /// current quarantine set.
  Status SyncPartitionQuarantineSidecar();

  const method::MethodRegistry* Registry() const;

  std::string dir_;
  Options options_;
  program::Database db_;
  std::unique_ptr<LogWriter> writer_;
  uint64_t next_seq_ = 0;
  size_t log_ops_ = 0;
  size_t ops_since_checkpoint_ = 0;
  RecoveryReport recovery_;
  /// The committed manifest this handle's checkpoints build on.
  Manifest manifest_;
  /// Classes whose partitions this open quarantined.
  std::unordered_set<Symbol> quarantined_;
  /// Serialized scheme as last persisted, to skip rewriting the scheme
  /// file when it has not changed.
  std::string last_scheme_text_;
  /// True until the first partitioned checkpoint commits (fresh
  /// databases and legacy-migration opens).
  bool have_manifest_ = false;
  bool poisoned_ = false;
  bool closed_ = false;
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_DATABASE_H_
