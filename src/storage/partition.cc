#include "storage/partition.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/interner.h"
#include "program/serialize.h"
#include "program/text.h"
#include "storage/crc32.h"
#include "storage/wal.h"

namespace good::storage {

namespace {

using program::text::Cursor;
using program::text::Quote;
using program::text::Tokenize;
using program::text::WriteName;

Result<uint64_t> ParseU64(const std::string& word) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), v);
  if (ec != std::errc() || ptr != word.data() + word.size()) {
    return Status::InvalidArgument("bad number '" + word + "' in manifest");
  }
  return v;
}

/// Reads `keyword <u64>` from the cursor.
Result<uint64_t> ExpectNumber(Cursor* cursor, const std::string& keyword) {
  GOOD_RETURN_NOT_OK(cursor->Expect(keyword));
  GOOD_ASSIGN_OR_RETURN(std::string word, cursor->Word());
  return ParseU64(word);
}

/// Parses a partition node name ("n<id>") back to the id it encodes.
Result<uint32_t> ParseNodeName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'n') {
    return Status::DataLoss("malformed partition node name '" + name + "'");
  }
  uint64_t v = 0;
  auto [ptr, ec] =
      std::from_chars(name.data() + 1, name.data() + name.size(), v);
  if (ec != std::errc() || ptr != name.data() + name.size() ||
      v > 0xFFFFFFFFull) {
    return Status::DataLoss("malformed partition node name '" + name + "'");
  }
  return static_cast<uint32_t>(v);
}

/// Writes the checksum/size/census tail of a manifest entry.
void WriteEntryTail(std::ostringstream* os, const PartitionEntry& entry,
                    bool census) {
  *os << " crc " << entry.crc << " bytes " << entry.bytes;
  if (census) {
    *os << " nodes " << entry.nodes << " edges " << entry.edges;
  }
}

Result<PartitionEntry> ParseEntryTail(Cursor* cursor, std::string file,
                                      bool census) {
  PartitionEntry entry;
  entry.file = std::move(file);
  GOOD_ASSIGN_OR_RETURN(uint64_t crc, ExpectNumber(cursor, "crc"));
  if (crc > 0xFFFFFFFFull) {
    return Status::InvalidArgument("manifest crc out of range");
  }
  entry.crc = static_cast<uint32_t>(crc);
  GOOD_ASSIGN_OR_RETURN(entry.bytes, ExpectNumber(cursor, "bytes"));
  if (census) {
    GOOD_ASSIGN_OR_RETURN(entry.nodes, ExpectNumber(cursor, "nodes"));
    GOOD_ASSIGN_OR_RETURN(entry.edges, ExpectNumber(cursor, "edges"));
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Partition text parsing (no instance mutation: the loader needs all
// partitions' nodes before any edge can resolve its target)
// ---------------------------------------------------------------------------

struct ParsedNode {
  std::string name;
  Symbol label;
  bool has_value = false;
  std::string raw_value;
};

struct ParsedEdge {
  std::string source;
  Symbol label;
  std::string target;
};

struct ParsedPartition {
  Symbol cls;
  std::vector<ParsedNode> nodes;
  std::vector<ParsedEdge> edges;
};

Result<ParsedPartition> ParsePartitionText(const std::string& text) {
  GOOD_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Cursor cursor(std::move(tokens));
  ParsedPartition out;
  GOOD_RETURN_NOT_OK(cursor.Expect("partition"));
  GOOD_ASSIGN_OR_RETURN(std::string cls_name, cursor.Word());
  out.cls = Sym(cls_name);
  GOOD_RETURN_NOT_OK(cursor.Expect("{"));
  std::unordered_set<std::string> own_names;
  while (!cursor.AtEnd() && cursor.Peek().text != "}") {
    GOOD_ASSIGN_OR_RETURN(std::string kind, cursor.Word());
    if (kind == "node") {
      ParsedNode node;
      GOOD_ASSIGN_OR_RETURN(node.name, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(std::string label_word, cursor.Word());
      node.label = Sym(label_word);
      if (node.label != out.cls) {
        return Status::InvalidArgument("node '" + node.name +
                                       "' labeled '" + label_word +
                                       "' in partition of '" + cls_name +
                                       "'");
      }
      if (!own_names.insert(node.name).second) {
        return Status::InvalidArgument("duplicate node name '" + node.name +
                                       "' in partition of '" + cls_name +
                                       "'");
      }
      if (!cursor.AtEnd() && cursor.Peek().text == "=" &&
          !cursor.Peek().quoted) {
        GOOD_RETURN_NOT_OK(cursor.Expect("="));
        if (cursor.AtEnd() || !cursor.Peek().quoted) {
          return Status::InvalidArgument("expected quoted value after '='");
        }
        node.has_value = true;
        node.raw_value = cursor.Next().text;
      }
      out.nodes.push_back(std::move(node));
    } else if (kind == "edge") {
      ParsedEdge edge;
      GOOD_ASSIGN_OR_RETURN(edge.source, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(std::string label_word, cursor.Word());
      edge.label = Sym(label_word);
      GOOD_ASSIGN_OR_RETURN(edge.target, cursor.Word());
      // The edge's source is by definition a node of this class, so its
      // definition must precede it in this very file.
      if (!own_names.contains(edge.source)) {
        return Status::InvalidArgument("edge source '" + edge.source +
                                       "' undefined in partition of '" +
                                       cls_name + "'");
      }
      out.edges.push_back(std::move(edge));
    } else {
      return Status::InvalidArgument("unknown partition statement '" + kind +
                                     "'");
    }
    GOOD_RETURN_NOT_OK(cursor.Expect(";"));
  }
  GOOD_RETURN_NOT_OK(cursor.Expect("}"));
  return out;
}

/// Reads a manifest-referenced file and verifies it outside-in: exact
/// size, whole-file CRC, then the single intact framed record. Every
/// failure is kDataLoss — the caller translates it into quarantine or
/// a fallback to the previous manifest.
Result<std::string> ReadVerifiedRecord(FileEnv* env, const std::string& dir,
                                       const PartitionEntry& entry,
                                       const char* what) {
  const std::string path = dir + "/" + entry.file;
  auto bytes = env->ReadFileToString(path);
  if (!bytes.ok()) {
    return Status::DataLoss(std::string(what) + " file " + entry.file +
                            " unreadable: " + bytes.status().message());
  }
  if (bytes->size() != entry.bytes) {
    return Status::DataLoss(std::string(what) + " file " + entry.file +
                            " is " + std::to_string(bytes->size()) +
                            " bytes, manifest expects " +
                            std::to_string(entry.bytes));
  }
  if (Crc32(*bytes) != entry.crc) {
    return Status::DataLoss(std::string(what) + " file " + entry.file +
                            " fails its manifest checksum");
  }
  auto contents = ReadLogRecords(*bytes);
  if (!contents.ok()) {
    return Status::DataLoss(std::string(what) + " file " + entry.file +
                            " corrupt: " + contents.status().message());
  }
  if (contents->dropped_torn_tail || contents->records.size() != 1) {
    return Status::DataLoss(std::string(what) + " file " + entry.file +
                            " does not hold exactly one intact record");
  }
  return std::move(contents->records[0]);
}

}  // namespace

std::string PartitionFileName(uint64_t n) {
  return "part-" + std::to_string(n) + ".good";
}

std::string SchemeFileName(uint64_t n) {
  return "scheme-" + std::to_string(n) + ".good";
}

std::string_view PartitionStateToString(PartitionState state) {
  switch (state) {
    case PartitionState::kLoaded:
      return "loaded";
    case PartitionState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string PartitionLoadResult::ToString() const {
  std::ostringstream os;
  os << "partition " << WriteName(class_name) << " (" << file << "): "
     << PartitionStateToString(state) << ", " << nodes << " nodes, " << edges
     << " edges";
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string EncodeManifest(const Manifest& manifest) {
  std::ostringstream os;
  os << "manifest {\n";
  os << "  filenum " << manifest.file_number << ";\n";
  os << "  frontier " << manifest.node_frontier << ";\n";
  os << "  scheme " << Quote(manifest.scheme.file);
  WriteEntryTail(&os, manifest.scheme, /*census=*/false);
  os << ";\n";
  for (const auto& [cls, entry] : manifest.partitions) {
    os << "  partition " << WriteName(cls) << " " << Quote(entry.file);
    WriteEntryTail(&os, entry, /*census=*/true);
    os << ";\n";
  }
  os << "}\n";
  std::string payload;
  AppendFixed64(&payload, manifest.next_seq);
  payload += os.str();
  std::string framed;
  AppendRecordTo(&framed, payload);
  return framed;
}

Result<Manifest> DecodeManifest(std::string_view file_bytes) {
  GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(file_bytes));
  if (contents.dropped_torn_tail || contents.records.size() != 1) {
    return Status::DataLoss(
        "manifest does not hold exactly one intact record");
  }
  std::string_view payload = contents.records[0];
  Manifest manifest;
  GOOD_ASSIGN_OR_RETURN(manifest.next_seq, ConsumeFixed64(&payload));
  GOOD_ASSIGN_OR_RETURN(auto tokens, Tokenize(std::string(payload)));
  Cursor cursor(std::move(tokens));
  GOOD_RETURN_NOT_OK(cursor.Expect("manifest"));
  GOOD_RETURN_NOT_OK(cursor.Expect("{"));
  bool saw_scheme = false;
  while (!cursor.AtEnd() && cursor.Peek().text != "}") {
    GOOD_ASSIGN_OR_RETURN(std::string kind, cursor.Word());
    if (kind == "filenum") {
      GOOD_ASSIGN_OR_RETURN(std::string word, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(manifest.file_number, ParseU64(word));
    } else if (kind == "frontier") {
      GOOD_ASSIGN_OR_RETURN(std::string word, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(manifest.node_frontier, ParseU64(word));
    } else if (kind == "scheme") {
      GOOD_ASSIGN_OR_RETURN(std::string file, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(
          manifest.scheme,
          ParseEntryTail(&cursor, std::move(file), /*census=*/false));
      saw_scheme = true;
    } else if (kind == "partition") {
      GOOD_ASSIGN_OR_RETURN(std::string cls, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(std::string file, cursor.Word());
      GOOD_ASSIGN_OR_RETURN(
          PartitionEntry entry,
          ParseEntryTail(&cursor, std::move(file), /*census=*/true));
      if (!manifest.partitions.emplace(std::move(cls), std::move(entry))
               .second) {
        return Status::InvalidArgument("duplicate partition in manifest");
      }
    } else {
      return Status::InvalidArgument("unknown manifest statement '" + kind +
                                     "'");
    }
    GOOD_RETURN_NOT_OK(cursor.Expect(";"));
  }
  GOOD_RETURN_NOT_OK(cursor.Expect("}"));
  if (!saw_scheme) {
    return Status::InvalidArgument("manifest names no scheme file");
  }
  return manifest;
}

std::string EncodePartition(const schema::Scheme& scheme,
                            const graph::Instance& instance, Symbol cls,
                            uint64_t* node_count, uint64_t* edge_count) {
  (void)scheme;
  std::ostringstream os;
  os << "partition " << WriteName(SymName(cls)) << " {\n";
  std::vector<graph::Edge> edges;
  uint64_t nodes = 0;
  for (graph::NodeId node : instance.NodesWithLabel(cls)) {
    ++nodes;
    os << "  node n" << node.id << " " << WriteName(SymName(cls));
    if (instance.HasPrintValue(node)) {
      os << " = " << program::WriteValueLiteral(*instance.PrintValueOf(node));
    }
    os << ";\n";
    for (const auto& [label, target] : instance.OutEdges(node)) {
      edges.push_back(graph::Edge{node, label, target});
    }
  }
  std::sort(edges.begin(), edges.end());
  for (const graph::Edge& e : edges) {
    os << "  edge n" << e.source.id << " " << WriteName(SymName(e.label))
       << " n" << e.target.id << ";\n";
  }
  os << "}\n";
  if (node_count != nullptr) *node_count = nodes;
  if (edge_count != nullptr) *edge_count = edges.size();
  std::string framed;
  AppendRecordTo(&framed, os.str());
  return framed;
}

Result<LoadedCheckpoint> LoadCheckpoint(FileEnv* env, const std::string& dir,
                                        const Manifest& manifest,
                                        bool allow_quarantine) {
  LoadedCheckpoint out;
  out.next_seq = manifest.next_seq;

  // The scheme interprets everything else; its damage is total.
  GOOD_ASSIGN_OR_RETURN(
      out.scheme_text,
      ReadVerifiedRecord(env, dir, manifest.scheme, "scheme"));
  GOOD_ASSIGN_OR_RETURN(out.db.scheme, program::ParseScheme(out.scheme_text));

  // Read and parse every partition; damage quarantines (or, in strict
  // recovery, fails the load).
  std::vector<ParsedPartition> healthy;
  for (const auto& [cls_name, entry] : manifest.partitions) {
    PartitionLoadResult result;
    result.class_name = cls_name;
    result.file = entry.file;
    Result<ParsedPartition> parsed = [&]() -> Result<ParsedPartition> {
      GOOD_ASSIGN_OR_RETURN(std::string payload,
                            ReadVerifiedRecord(env, dir, entry, "partition"));
      GOOD_ASSIGN_OR_RETURN(ParsedPartition part,
                            ParsePartitionText(payload));
      if (SymName(part.cls) != cls_name) {
        return Status::DataLoss("partition file " + entry.file +
                                " holds class '" + SymName(part.cls) +
                                "', manifest expects '" + cls_name + "'");
      }
      return part;
    }();
    if (!parsed.ok()) {
      if (!allow_quarantine) {
        return Status::DataLoss("partition '" + cls_name +
                                "' unrecoverable: " +
                                parsed.status().message());
      }
      result.state = PartitionState::kQuarantined;
      result.detail = parsed.status().message();
      result.nodes = entry.nodes;
      result.edges = entry.edges;
      out.quarantined.push_back(Sym(cls_name));
      out.partitions.push_back(std::move(result));
      continue;
    }
    result.nodes = parsed->nodes.size();
    result.edges = parsed->edges.size();
    out.partitions.push_back(std::move(result));
    healthy.push_back(std::move(*parsed));
  }

  // Pass 1 — nodes, restored under their *original* ids in ascending
  // order (ids are never reused, so a checkpoint's id set is sparse
  // ascending and Instance::RestoreNodeAt can always honor it).
  // Identity matters beyond aesthetics: carried partition files name
  // nodes by the ids they had when written, so a load that renumbered
  // would silently divorce carried files from the ones the next
  // incremental checkpoint rewrites against the live numbering.
  struct PendingNode {
    uint32_t id = 0;
    const ParsedNode* node = nullptr;
  };
  std::vector<PendingNode> pending;
  for (const ParsedPartition& part : healthy) {
    for (const ParsedNode& node : part.nodes) {
      auto id = ParseNodeName(node.name);
      if (!id.ok()) return id.status();
      pending.push_back(PendingNode{*id, &node});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingNode& a, const PendingNode& b) {
              return a.id < b.id;
            });
  std::unordered_map<std::string, graph::NodeId> names;
  names.reserve(pending.size());
  graph::Instance& instance = out.db.instance;
  for (size_t i = 0; i < pending.size(); ++i) {
    // Names are unique across all files of one checkpoint; a clash
    // means the manifest stitched together files from different
    // checkpoints.
    if (i > 0 && pending[i].id == pending[i - 1].id) {
      return Status::DataLoss("node name '" + pending[i].node->name +
                              "' defined by two partitions — manifest is "
                              "inconsistent");
    }
    const ParsedNode& node = *pending[i].node;
    Result<graph::NodeId> added = [&]() -> Result<graph::NodeId> {
      std::optional<Value> print;
      if (node.has_value) {
        GOOD_ASSIGN_OR_RETURN(ValueKind domain,
                              out.db.scheme.DomainOf(node.label));
        GOOD_ASSIGN_OR_RETURN(
            Value value, program::ParseValueLiteral(node.raw_value, domain));
        print = std::move(value);
      }
      return instance.RestoreNodeAt(out.db.scheme,
                                    graph::NodeId{pending[i].id},
                                    node.label, std::move(print));
    }();
    if (!added.ok()) {
      return Status::DataLoss("partition node '" + node.name +
                              "' rejected: " + added.status().message());
    }
    names.emplace(node.name, *added);
  }

  // Pass 2 — edges. A target missing because its class was quarantined
  // is expected damage fallout (dropped, counted); missing with nothing
  // quarantined means the checkpoint itself is inconsistent.
  for (const ParsedPartition& part : healthy) {
    for (const ParsedEdge& edge : part.edges) {
      auto sit = names.find(edge.source);
      if (sit == names.end()) {
        return Status::DataLoss("edge source '" + edge.source +
                                "' missing from a healthy partition");
      }
      auto tit = names.find(edge.target);
      if (tit == names.end()) {
        if (out.quarantined.empty()) {
          return Status::DataLoss("edge target '" + edge.target +
                                  "' defined by no partition — manifest is "
                                  "inconsistent");
        }
        ++out.dangling_edges_dropped;
        continue;
      }
      Status added = instance.AddEdge(out.db.scheme, sit->second, edge.label,
                                      tit->second);
      if (!added.ok()) {
        return Status::DataLoss("partition edge rejected: " +
                                added.message());
      }
    }
  }

  // Reserve the manifest's recorded allocation frontier: a quarantined
  // partition's ids are unreadable, but they all lie below it, so
  // padding up to it keeps ids minted by a degraded run from colliding
  // with the damaged file's contents when it is later healed.
  instance.ReserveNodeFrontier(manifest.node_frontier);

  // A freshly loaded checkpoint is clean by definition; WAL replay will
  // re-dirty exactly the classes mutated since it was taken.
  instance.ClearDirtyClasses();
  return out;
}

}  // namespace good::storage
