#include "storage/crc32.h"

#include <array>

namespace good::storage {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // reflected IEEE 802.3

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

}  // namespace good::storage
