/// \file fault_env.h
/// \brief Deterministic fault injection for storage tests.
///
/// Wraps a base FileEnv and fails operations at configured points: the
/// K-th append can error outright, persist only a prefix (a torn
/// write — exactly what a power cut mid-write leaves behind), or the
/// K-th sync / rename / file-open can fail. Counters are global across
/// all files opened through the env, so a test script reads as "the
/// 7th write to disk dies". Injected faults surface as kUnavailable —
/// the transient-device class common::IsRetriable admits, so the WAL
/// append retry loop treats them exactly like real flaky hardware. In
/// the spirit of backend_fuzz_test.cc, storage_test.cc sweeps K over a
/// range and asserts recovery works after every possible failure point.

#ifndef GOOD_STORAGE_FAULT_ENV_H_
#define GOOD_STORAGE_FAULT_ENV_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <string>

#include "storage/file_env.h"

namespace good::storage {

/// \brief Which operations fail, 1-based; SIZE_MAX means never.
struct FaultPlan {
  static constexpr size_t kNever = std::numeric_limits<size_t>::max();

  /// The N-th Append returns an error without writing anything.
  size_t fail_append_at = kNever;
  /// How many consecutive appends fail starting at fail_append_at
  /// (appends N .. N+count-1). Models a transient burst the WAL retry
  /// loop can ride out; the default keeps the historical one-shot
  /// behavior.
  size_t fail_append_count = 1;
  /// Every append from the N-th on fails — a permanent device fault
  /// that retrying cannot fix.
  size_t fail_appends_from = kNever;
  /// The N-th Append persists only the first half of its bytes, then
  /// reports failure (torn write).
  size_t short_write_at = kNever;
  /// The N-th Sync fails (data may or may not be durable).
  size_t fail_sync_at = kNever;
  /// The N-th RenameFile fails without renaming.
  size_t fail_rename_at = kNever;
  /// The N-th NewWritableFile fails to open.
  size_t fail_open_at = kNever;
  /// Every NewWritableFile whose path contains this substring fails.
  /// Unlike the ordinal knobs this selects by *target*, for boundaries
  /// whose position in the call sequence depends on database layout
  /// (e.g. "the log reset inside a checkpoint", which follows a
  /// layout-dependent number of partition-file opens). Empty = never.
  std::string fail_open_path_contains;
};

/// \brief A FileEnv that injects the faults described by a FaultPlan.
class FaultInjectionEnv final : public FileEnv {
 public:
  /// Wraps `base` (not owned; defaults to FileEnv::Default()).
  explicit FaultInjectionEnv(FileEnv* base = nullptr);

  /// Installs a new plan and resets all counters.
  void SetPlan(const FaultPlan& plan);

  /// Clears faults and counters (subsequent I/O passes through).
  void Reset() { SetPlan(FaultPlan{}); }

  size_t appends_seen() const { return appends_; }
  size_t syncs_seen() const { return syncs_; }
  size_t renames_seen() const { return renames_; }
  size_t opens_seen() const { return opens_; }
  /// Number of faults actually fired since the last SetPlan/Reset.
  size_t faults_fired() const { return fired_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultInjectedFile;

  FileEnv* base_;
  FaultPlan plan_;
  size_t appends_ = 0;
  size_t syncs_ = 0;
  size_t renames_ = 0;
  size_t opens_ = 0;
  size_t fired_ = 0;
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_FAULT_ENV_H_
