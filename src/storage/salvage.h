/// \file salvage.h
/// \brief Best-effort scanning and repair of damaged record files.
///
/// ReadLogRecords (wal.h) is deliberately strict: the first interior
/// checksum failure is kDataLoss and nothing after it is trusted. That
/// is the right default for recovery, but it turns one flipped byte in
/// the middle of a long log into a refusal to open the database at
/// all. The salvager implements the complementary policy: scan the
/// whole file, keep every frame whose checksum verifies, quarantine
/// the byte ranges that do not, and report exactly what was kept and
/// dropped so the caller (or an operator reading the sidecar) can
/// decide what to do.
///
/// Resynchronization after a bad frame is heuristic by necessity — the
/// framing has no magic number, so the scanner slides forward one byte
/// at a time until it finds an offset whose header describes a payload
/// that checksums correctly. A false resync would require a 32-bit CRC
/// collision against random bytes; frames after a genuine resync point
/// verify like any other. Note that *salvageable* is a weaker property
/// than *replayable*: a frame past a damaged region may checksum
/// perfectly yet depend on lost operations, so Database::Open in
/// salvage mode replays only the contiguous-sequence prefix and
/// reports (but does not execute) later frames.

#ifndef GOOD_STORAGE_SALVAGE_H_
#define GOOD_STORAGE_SALVAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file_env.h"

namespace good::storage {

/// \brief Why a byte range of the scanned file was not kept.
enum class SalvageDropReason {
  /// A whole frame whose stored CRC does not match its payload.
  kBadChecksum,
  /// A header whose declared payload length runs past the end of the
  /// file (torn final append, or a corrupted length field).
  kTruncatedPayload,
  /// Fewer than kRecordHeaderSize bytes at end of file.
  kPartialHeader,
  /// Bytes skipped while hunting for the next verifiable frame after
  /// damage (no parseable header at these offsets).
  kResyncSkip,
  /// A checksum-intact frame that cannot be replayed: it follows a
  /// hole in the operation sequence (or fails to parse/execute), so
  /// executing it against the recovered prefix would be unsound.
  kUnreplayable,
};

std::string_view SalvageDropReasonToString(SalvageDropReason reason);

/// \brief A frame that survived the salvage scan.
struct SalvagedFrame {
  /// Byte offset of the frame header in the scanned file.
  uint64_t offset = 0;
  /// The verified payload.
  std::string payload;
};

/// \brief A byte range the salvage scan dropped.
struct DroppedRange {
  uint64_t offset = 0;
  uint64_t length = 0;
  SalvageDropReason reason = SalvageDropReason::kBadChecksum;
};

/// \brief Structured outcome of a salvage scan.
struct SalvageReport {
  size_t frames_kept = 0;
  size_t frames_dropped = 0;  // bad-checksum + truncated-payload drops
  uint64_t bytes_kept = 0;
  uint64_t bytes_dropped = 0;
  /// Length of the leading undamaged prefix (identical to what strict
  /// ReadLogRecords would accept). frames past this offset verified
  /// only after a resync.
  uint64_t clean_prefix_bytes = 0;
  /// True iff the file had no damage at all.
  bool clean = false;
  std::vector<DroppedRange> dropped;

  /// One-line human summary ("kept 17 frames / 2041 B, dropped 2
  /// ranges / 63 B").
  std::string ToString() const;
};

/// \brief Result of scanning a damaged record file.
struct SalvageResult {
  std::vector<SalvagedFrame> frames;
  SalvageReport report;
};

/// \brief Scans past damage that strict reading refuses to cross.
class WalSalvager {
 public:
  /// Scans `file_bytes`, keeping every checksum-verified frame and
  /// recording every dropped byte range. Never fails: a fully corrupt
  /// file yields zero frames and one big dropped range.
  static SalvageResult Scan(std::string_view file_bytes);

  /// Writes the dropped byte ranges of `result` (resolved against the
  /// original `file_bytes`) to `path` as a quarantine sidecar: one
  /// framed record per range whose payload is
  /// [fixed64 original offset][fixed32 reason][raw bytes]. The sidecar
  /// uses the standard framing so it can itself be read back with
  /// ReadLogRecords.
  static Status WriteQuarantine(FileEnv* env, const std::string& path,
                                std::string_view file_bytes,
                                const SalvageResult& result);

  /// Rewrites `wal_path` to contain exactly the frames of `keep`
  /// (already-framed payloads are re-framed verbatim), via a temp file
  /// and atomic rename so a crash mid-repair leaves either the damaged
  /// original or the repaired file, never a half-written one.
  static Status RewriteLog(FileEnv* env, const std::string& wal_path,
                           const std::vector<SalvagedFrame>& keep,
                           size_t keep_count);
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_SALVAGE_H_
