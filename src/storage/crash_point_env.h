/// \file crash_point_env.h
/// \brief Deterministic whole-process crash simulation for storage.
///
/// FaultInjectionEnv (fault_env.h) models a *surviving* process whose
/// I/O call failed: the caller sees the error and runs its cleanup
/// (truncating torn bytes, retrying). A crash is the complementary —
/// and strictly harsher — failure: the process dies mid-I/O, no
/// cleanup code ever runs, and the next incarnation sees whatever the
/// file system happened to keep. CrashPointEnv simulates that death
/// deterministically: every state-mutating I/O call (append, sync,
/// truncate, rename, remove, create-with-truncate, directory sync) is
/// a numbered *boundary*, and a CrashSchedule names the boundary at
/// which the crash fires plus the damage model:
///
///  - kCutBeforeOp: the K-th mutating call never reaches the disk;
///  - kTornWrite: the K-th call, if an append, persists only a prefix
///    of its bytes (a power cut mid-sector-train);
///  - kLoseUnsynced: at the K-th call, every open file is rolled back
///    to its last synced size (the page cache died with the machine).
///
/// After the crash fires, *every* call through the env — including
/// reads — fails with kUnavailable: the process is dead. The test
/// driver (crashsim.h) then reopens the directory with a clean env,
/// exactly like a new process would after a reboot.
///
/// Simplifications, on purpose: renames are treated as atomic and
/// immediately durable (ext4/xfs behavior with the journal; the
/// SyncDir boundary still exists so cut-mode covers the crash before
/// it), and bytes of files closed before the crash are treated as
/// durable (the engine syncs before every close on its write paths).

#ifndef GOOD_STORAGE_CRASH_POINT_ENV_H_
#define GOOD_STORAGE_CRASH_POINT_ENV_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "storage/file_env.h"

namespace good::storage {

/// \brief How the simulated crash mangles in-flight data.
enum class CrashMode {
  /// The crashing call performs no I/O at all.
  kCutBeforeOp,
  /// The crashing append persists torn_keep_num/torn_keep_den of its
  /// bytes first. Non-append boundaries degrade to kCutBeforeOp.
  kTornWrite,
  /// Open files are truncated back to their last synced size.
  kLoseUnsynced,
};

std::string_view CrashModeToString(CrashMode mode);

/// \brief When and how to crash. crash_at is 1-based over mutating
/// I/O boundaries; 0 never crashes (used to count boundaries).
struct CrashSchedule {
  size_t crash_at = 0;
  CrashMode mode = CrashMode::kCutBeforeOp;
  /// Fraction of the crashing append persisted in kTornWrite mode.
  size_t torn_keep_num = 1;
  size_t torn_keep_den = 2;
};

class CrashPointFile;

/// \brief A FileEnv that executes one CrashSchedule.
class CrashPointEnv final : public FileEnv {
 public:
  /// Wraps `base` (not owned; defaults to FileEnv::Default()).
  explicit CrashPointEnv(FileEnv* base = nullptr);
  ~CrashPointEnv() override;

  /// Installs a schedule and resets the boundary counter and the
  /// crashed flag (open files stay open).
  void SetSchedule(const CrashSchedule& schedule);

  /// Mutating I/O boundaries observed since the last SetSchedule. Run
  /// a workload with crash_at = 0 to learn the exploration range.
  size_t ops_seen() const { return ops_; }
  bool crashed() const { return crashed_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class CrashPointFile;

  /// Counts one mutating boundary; fires the crash when it is due.
  /// Returns non-OK when the op must not proceed (crashed now or
  /// earlier).
  Status Boundary();
  Status DeadIfCrashed() const;
  /// Marks the env dead and, in kLoseUnsynced mode, rolls every open
  /// file back to its synced size.
  void FireCrash();

  FileEnv* base_;
  CrashSchedule schedule_;
  size_t ops_ = 0;
  bool crashed_ = false;
  std::vector<CrashPointFile*> open_files_;
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_CRASH_POINT_ENV_H_
