/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3 polynomial) for storage record checksums.
///
/// Every durable record — write-ahead log entries and snapshots alike —
/// carries a CRC of its payload so recovery can distinguish a torn tail
/// from interior corruption (see wal.h). The implementation is the
/// standard reflected table-driven CRC-32; the test vector
/// Crc32("123456789") == 0xCBF43926 pins the exact polynomial so the
/// on-disk format cannot drift silently.

#ifndef GOOD_STORAGE_CRC32_H_
#define GOOD_STORAGE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace good::storage {

/// CRC-32 of `data`, optionally continuing a running checksum: pass the
/// previous result as `seed` to checksum data arriving in chunks.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace good::storage

#endif  // GOOD_STORAGE_CRC32_H_
