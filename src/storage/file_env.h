/// \file file_env.h
/// \brief File-system abstraction for the storage engine.
///
/// All durable I/O goes through a FileEnv so tests can substitute a
/// fault-injecting implementation (fault_env.h) and exercise crash /
/// torn-write recovery deterministically — real crashes are not a
/// repeatable test fixture. The default environment is POSIX: writes
/// are fsync'd on Sync(), renames are atomic within a directory, and
/// directory entries are fsync'd via SyncDir after a rename so a
/// checkpoint survives power loss.

#ifndef GOOD_STORAGE_FILE_ENV_H_
#define GOOD_STORAGE_FILE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace good::storage {

/// \brief A sequentially writable file (append-only plus truncate).
///
/// Close() must be called explicitly when the caller cares about the
/// outcome; the destructor closes silently (crash semantics: whatever
/// was synced survives, the rest may or may not).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces appended data to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Truncates the file to `size` bytes (used to undo a partially
  /// persisted append after a failed operation).
  virtual Status Truncate(uint64_t size) = 0;

  virtual Status Close() = 0;
};

/// \brief The storage engine's view of a file system.
class FileEnv {
 public:
  virtual ~FileEnv() = default;

  /// The process-wide POSIX environment.
  static FileEnv* Default();

  /// Opens `path` for writing, creating it if needed. `truncate`
  /// discards existing contents; otherwise writes append at the end.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file. NotFound if it does not exist.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Size in bytes; NotFound if absent.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Names of the regular files directly inside `path` (no "."/"..",
  /// no subdirectories), sorted ascending. NotFound if the directory
  /// does not exist. Read-only: not a crash-relevant mutation.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// Creates `path` and missing parents; OK if it already exists.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Fsyncs the directory entry itself (makes a rename durable).
  /// Best-effort on file systems that do not support it.
  virtual Status SyncDir(const std::string& path) = 0;
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_FILE_ENV_H_
