#include "storage/salvage.h"

#include "storage/crc32.h"
#include "storage/wal.h"

namespace good::storage {
namespace {

/// True iff `bytes` at `pos` starts a frame whose checksum verifies.
bool FrameVerifiesAt(std::string_view bytes, uint64_t pos,
                     uint32_t* length_out) {
  const uint64_t remaining = bytes.size() - pos;
  if (remaining < kRecordHeaderSize) return false;
  const uint32_t length = DecodeFixed32(bytes.substr(pos, 4));
  if (length > remaining - kRecordHeaderSize) return false;
  const uint32_t stored_crc = DecodeFixed32(bytes.substr(pos + 4, 4));
  if (Crc32(bytes.substr(pos + kRecordHeaderSize, length)) != stored_crc) {
    return false;
  }
  *length_out = length;
  return true;
}

}  // namespace

std::string_view SalvageDropReasonToString(SalvageDropReason reason) {
  switch (reason) {
    case SalvageDropReason::kBadChecksum:
      return "bad-checksum";
    case SalvageDropReason::kTruncatedPayload:
      return "truncated-payload";
    case SalvageDropReason::kPartialHeader:
      return "partial-header";
    case SalvageDropReason::kResyncSkip:
      return "resync-skip";
    case SalvageDropReason::kUnreplayable:
      return "unreplayable";
  }
  return "unknown";
}

std::string SalvageReport::ToString() const {
  std::string out = "kept " + std::to_string(frames_kept) + " frames / " +
                    std::to_string(bytes_kept) + " B, dropped " +
                    std::to_string(dropped.size()) + " ranges / " +
                    std::to_string(bytes_dropped) + " B";
  if (clean) out += " (clean)";
  return out;
}

SalvageResult WalSalvager::Scan(std::string_view file_bytes) {
  SalvageResult out;
  const uint64_t total = file_bytes.size();
  uint64_t pos = 0;
  bool in_clean_prefix = true;
  // Coalesces consecutive dropped bytes into one range per damage run.
  uint64_t drop_start = 0;
  uint64_t drop_length = 0;
  SalvageDropReason drop_reason = SalvageDropReason::kBadChecksum;
  auto flush_drop = [&] {
    if (drop_length == 0) return;
    out.report.dropped.push_back(
        DroppedRange{drop_start, drop_length, drop_reason});
    out.report.bytes_dropped += drop_length;
    drop_length = 0;
  };
  auto drop = [&](uint64_t at, uint64_t len, SalvageDropReason reason) {
    if (drop_length > 0 &&
        (drop_start + drop_length != at || drop_reason != reason)) {
      flush_drop();
    }
    if (drop_length == 0) {
      drop_start = at;
      drop_reason = reason;
    }
    drop_length += len;
    in_clean_prefix = false;
  };

  while (pos < total) {
    const uint64_t remaining = total - pos;
    if (remaining < kRecordHeaderSize) {
      drop(pos, remaining, SalvageDropReason::kPartialHeader);
      break;
    }
    uint32_t length = 0;
    if (FrameVerifiesAt(file_bytes, pos, &length)) {
      flush_drop();
      out.frames.push_back(SalvagedFrame{
          pos, std::string(file_bytes.substr(pos + kRecordHeaderSize,
                                             length))});
      out.report.bytes_kept += kRecordHeaderSize + length;
      pos += kRecordHeaderSize + length;
      if (in_clean_prefix) out.report.clean_prefix_bytes = pos;
      continue;
    }
    // The header at `pos` does not describe a verifiable frame. Classify
    // the damage for the report, then resync: slide forward until some
    // offset verifies again (or EOF).
    const uint32_t declared = DecodeFixed32(file_bytes.substr(pos, 4));
    const bool truncated = declared > remaining - kRecordHeaderSize;
    const uint64_t frame_extent =
        truncated ? remaining : kRecordHeaderSize + declared;
    uint64_t next = pos + 1;
    uint32_t next_length = 0;
    while (next < total && !FrameVerifiesAt(file_bytes, next, &next_length)) {
      ++next;
    }
    if (next >= pos + frame_extent || next >= total) {
      // The whole declared frame (or the rest of the file) is damage.
      drop(pos, frame_extent,
           truncated ? SalvageDropReason::kTruncatedPayload
                     : SalvageDropReason::kBadChecksum);
      ++out.report.frames_dropped;
      pos += frame_extent;
      if (next > pos && next < total) {
        drop(pos, next - pos, SalvageDropReason::kResyncSkip);
        pos = next;
      }
    } else {
      // A verifiable frame begins inside the bad frame's declared
      // extent — trust the checksum over the (possibly corrupt) length
      // field and resync there.
      drop(pos, next - pos, SalvageDropReason::kBadChecksum);
      ++out.report.frames_dropped;
      pos = next;
    }
  }
  flush_drop();
  out.report.frames_kept = out.frames.size();
  out.report.clean = out.report.dropped.empty();
  if (out.report.clean) out.report.clean_prefix_bytes = total;
  return out;
}

Status WalSalvager::WriteQuarantine(FileEnv* env, const std::string& path,
                                    std::string_view file_bytes,
                                    const SalvageResult& result) {
  if (result.report.dropped.empty()) return Status::OK();
  std::string contents;
  for (const DroppedRange& range : result.report.dropped) {
    std::string payload;
    AppendFixed64(&payload, range.offset);
    AppendFixed32(&payload, static_cast<uint32_t>(range.reason));
    payload.append(file_bytes.substr(range.offset, range.length));
    AppendRecordTo(&contents, payload);
  }
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path, /*truncate=*/true));
  GOOD_RETURN_NOT_OK(file->Append(contents));
  GOOD_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

Status WalSalvager::RewriteLog(FileEnv* env, const std::string& wal_path,
                               const std::vector<SalvagedFrame>& keep,
                               size_t keep_count) {
  std::string contents;
  for (size_t i = 0; i < keep_count && i < keep.size(); ++i) {
    AppendRecordTo(&contents, keep[i].payload);
  }
  const std::string tmp = wal_path + ".repair";
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(tmp, /*truncate=*/true));
  GOOD_RETURN_NOT_OK(file->Append(contents));
  GOOD_RETURN_NOT_OK(file->Sync());
  GOOD_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp, wal_path);
}

}  // namespace good::storage
