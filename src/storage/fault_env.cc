#include "storage/fault_env.h"

#include <utility>

namespace good::storage {

/// Forwards to the wrapped file, consulting the env's plan first.
class FaultInjectedFile final : public WritableFile {
 public:
  FaultInjectedFile(std::unique_ptr<WritableFile> base,
                    FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

Status FaultInjectedFile::Append(std::string_view data) {
  size_t n = ++env_->appends_;
  if (n >= env_->plan_.fail_appends_from) {
    ++env_->fired_;
    return Status::Unavailable("injected permanent append failure");
  }
  if (env_->plan_.fail_append_at != FaultPlan::kNever &&
      n >= env_->plan_.fail_append_at &&
      n - env_->plan_.fail_append_at < env_->plan_.fail_append_count) {
    ++env_->fired_;
    return Status::Unavailable("injected append failure");
  }
  if (n == env_->plan_.short_write_at) {
    ++env_->fired_;
    // Persist a prefix, then report failure — a torn write.
    Status s = base_->Append(data.substr(0, data.size() / 2));
    if (!s.ok()) return s;
    return Status::Unavailable("injected short write");
  }
  return base_->Append(data);
}

Status FaultInjectedFile::Sync() {
  if (++env_->syncs_ == env_->plan_.fail_sync_at) {
    ++env_->fired_;
    return Status::Unavailable("injected sync failure");
  }
  return base_->Sync();
}

FaultInjectionEnv::FaultInjectionEnv(FileEnv* base)
    : base_(base != nullptr ? base : FileEnv::Default()) {}

void FaultInjectionEnv::SetPlan(const FaultPlan& plan) {
  plan_ = plan;
  appends_ = syncs_ = renames_ = opens_ = fired_ = 0;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (++opens_ == plan_.fail_open_at) {
    ++fired_;
    return Status::Unavailable("injected open failure for " + path);
  }
  if (!plan_.fail_open_path_contains.empty() &&
      path.find(plan_.fail_open_path_contains) != std::string::npos) {
    ++fired_;
    return Status::Unavailable("injected open failure for " + path);
  }
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectedFile>(std::move(file), this));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (++renames_ == plan_.fail_rename_at) {
    ++fired_;
    return Status::Unavailable("injected rename failure");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  return base_->CreateDirs(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  return base_->SyncDir(path);
}

}  // namespace good::storage
