/// \file wal.h
/// \brief Length-prefixed, checksummed record framing for durable files.
///
/// On-disk layout of one record:
///
///   [u32 payload length, little-endian]
///   [u32 CRC-32 of the payload, little-endian]
///   [payload bytes]
///
/// The same framing serves both the write-ahead log (one record per
/// applied operation) and snapshots (a single record holding the
/// serialized database). Reading distinguishes two damage classes:
///
///  - **Torn tail**: the *final* record is incomplete (partial header,
///    payload shorter than its declared length) or fails its checksum.
///    This is what an interrupted append or power cut leaves behind;
///    recovery silently drops it and reports `dropped_torn_tail`.
///  - **Interior corruption**: a record *followed by more bytes* fails
///    its checksum. A prefix of the log is gone — recovery cannot
///    trust anything after it, so reading fails with
///    StatusCode::kDataLoss.
///
/// A corrupted length field cannot always be told apart from a torn
/// tail (the declared payload may swallow the rest of the file); the
/// checksum makes this misclassification detectable only when the
/// record is followed by further bytes, which is the case the paper
/// trail actually needs to be loud about.

#ifndef GOOD_STORAGE_WAL_H_
#define GOOD_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file_env.h"

namespace good::storage {

/// Bytes of framing overhead per record (length + checksum).
inline constexpr size_t kRecordHeaderSize = 8;

/// Appends `value` to `dst` as 4 little-endian bytes.
void AppendFixed32(std::string* dst, uint32_t value);

/// Decodes 4 little-endian bytes (`bytes.size()` must be >= 4).
uint32_t DecodeFixed32(std::string_view bytes);

/// Appends `value` to `dst` as 8 little-endian bytes.
void AppendFixed64(std::string* dst, uint64_t value);

/// Consumes 8 little-endian bytes from the front of `input`;
/// InvalidArgument if fewer remain.
Result<uint64_t> ConsumeFixed64(std::string_view* input);

/// Appends the framed record for `payload` to `dst`.
void AppendRecordTo(std::string* dst, std::string_view payload);

/// \brief Result of scanning a record file.
struct LogContents {
  /// Payloads of all intact records, in file order.
  std::vector<std::string> records;
  /// Bytes covered by intact records; anything past this offset is a
  /// dropped torn tail and must be truncated before further appends.
  uint64_t valid_bytes = 0;
  /// True iff a truncated or checksum-failing final record was dropped.
  bool dropped_torn_tail = false;
};

/// Scans `file_bytes` as a sequence of records. kDataLoss on interior
/// corruption (see file comment for the damage-class rules).
Result<LogContents> ReadLogRecords(std::string_view file_bytes);

/// \brief Appends framed records to a file, tracking offsets so a
/// failed logical operation can be rolled back by truncation.
class LogWriter {
 public:
  /// `size` is the current file size (appends start there);
  /// `sync_each` fsyncs after every record.
  LogWriter(std::unique_ptr<WritableFile> file, uint64_t size,
            bool sync_each)
      : file_(std::move(file)), size_(size), sync_each_(sync_each) {}

  /// Appends one record (and syncs it, when configured).
  Status AppendRecord(std::string_view payload);

  /// Truncates the file back to the offset before the most recent
  /// AppendRecord — used to undo a record whose operation then failed
  /// to apply, and to clear a torn append. Idempotent per append.
  Status UndoLastAppend();

  /// Truncates the file back to `offset` (which must be a record
  /// boundary the caller remembered) — the multi-record generalization
  /// of UndoLastAppend, used to roll an aborted transaction's records
  /// out of the log.
  Status TruncateTo(uint64_t offset);

  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

  /// Current logical file size in bytes.
  uint64_t size() const { return size_; }

 private:
  std::unique_ptr<WritableFile> file_;
  uint64_t size_;
  uint64_t last_record_offset_ = 0;
  bool sync_each_;
};

}  // namespace good::storage

#endif  // GOOD_STORAGE_WAL_H_
