/// \file partition.h
/// \brief Per-class snapshot partitions and the checkpoint manifest.
///
/// The monolithic snapshot (one framed record holding the whole
/// database) made both checkpoint cost and the blast radius of a single
/// corrupt byte O(database). This module splits the snapshot along the
/// paper's own relational mapping — class = relation — into one
/// immutable *partition file per class*, tied together by a small
/// CRC-framed *manifest*:
///
///   manifest.good          the committed checkpoint (one framed record)
///   manifest.prev          the displaced previous manifest (fallback)
///   part-<N>.good          partition files, named by manifest-allocated
///   scheme-<N>.good        file numbers; immutable once referenced
///
/// Ownership rule: the partition of class C holds every C-labeled node
/// and every edge whose *source* is C-labeled (each edge lives in
/// exactly one partition; its target may be foreign). Node names are
/// the live instance's global ids, so they are unique across all
/// partition files of one checkpoint and a loader can run two passes —
/// all nodes first, then all edges — without inter-file ordering
/// constraints.
///
/// Partition files are never rewritten in place: a checkpoint writes
/// *new* files for dirty classes under fresh file numbers, carries
/// clean entries forward, and commits by atomically replacing the
/// manifest (tmp → rename). The files of the displaced manifest remain
/// on disk until neither manifest.good nor manifest.prev references
/// them, so either manifest always names a complete, consistent
/// checkpoint.
///
/// The manifest records each file's byte count and whole-file CRC-32 in
/// addition to the file's own internal record framing. The inner CRC
/// catches torn or flipped bytes; the outer (manifest-held) checksum
/// also catches a *wrong but internally intact* file — e.g. one
/// resurrected from a different checkpoint — which framing alone cannot.

#ifndef GOOD_STORAGE_PARTITION_H_
#define GOOD_STORAGE_PARTITION_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "program/program.h"
#include "storage/file_env.h"

namespace good::storage {

/// \brief One class partition as the manifest describes it.
struct PartitionEntry {
  /// File name inside the database directory (e.g. "part-7.good").
  std::string file;
  /// CRC-32 of the file's entire bytes (framing included).
  uint32_t crc = 0;
  /// Exact file size in bytes.
  uint64_t bytes = 0;
  /// Census at write time, for tools and degraded-mode reporting.
  uint64_t nodes = 0;
  uint64_t edges = 0;
};

/// \brief A decoded checkpoint manifest.
struct Manifest {
  /// Sequence number the WAL restarts at after this checkpoint.
  uint64_t next_seq = 1;
  /// Next unallocated file number; every file either manifest may
  /// reference has a number strictly below this.
  uint64_t file_number = 1;
  /// Node-id allocation frontier at checkpoint time (ids are never
  /// reused). The loader reserves up to here even when a damaged
  /// partition's contents are unreadable, so ids minted by a degraded
  /// run can never collide with ids inside a quarantined file.
  uint64_t node_frontier = 0;
  /// The serialized scheme, stored as its own immutable file.
  PartitionEntry scheme;
  /// Class name -> partition entry, ordered for deterministic output.
  std::map<std::string, PartitionEntry> partitions;
};

/// File name for partition file number `n` ("part-<n>.good").
std::string PartitionFileName(uint64_t n);
/// File name for scheme file number `n` ("scheme-<n>.good").
std::string SchemeFileName(uint64_t n);

/// Encodes `manifest` as one framed record ready to be written.
std::string EncodeManifest(const Manifest& manifest);

/// Decodes a manifest file (the full file bytes, framing included).
/// kDataLoss on framing/CRC damage, kInvalidArgument on parse errors.
Result<Manifest> DecodeManifest(std::string_view file_bytes);

/// Serializes class `cls`'s partition of `instance` as one framed
/// record: its nodes (ascending id) plus the edges leaving them
/// (ascending by source/label/target). When non-null, `node_count` and
/// `edge_count` receive the partition's census for its manifest entry.
std::string EncodePartition(const schema::Scheme& scheme,
                            const graph::Instance& instance, Symbol cls,
                            uint64_t* node_count = nullptr,
                            uint64_t* edge_count = nullptr);

/// \brief Load outcome of one partition.
enum class PartitionState {
  kLoaded,
  /// Damaged (missing, truncated, CRC-bad, or unparseable): its nodes
  /// are absent from the loaded instance and the class is unavailable.
  kQuarantined,
};

std::string_view PartitionStateToString(PartitionState state);

/// \brief Per-partition recovery record, surfaced via RecoveryReport.
struct PartitionLoadResult {
  std::string class_name;
  std::string file;
  PartitionState state = PartitionState::kLoaded;
  /// Why the partition was quarantined (empty when loaded).
  std::string detail;
  uint64_t nodes = 0;
  uint64_t edges = 0;

  std::string ToString() const;
};

/// \brief A fully or partially loaded checkpoint.
struct LoadedCheckpoint {
  program::Database db;
  uint64_t next_seq = 1;
  /// The scheme exactly as its file serialized it, so an incremental
  /// checkpoint can skip rewriting an unchanged scheme.
  std::string scheme_text;
  std::vector<PartitionLoadResult> partitions;
  /// Classes whose partitions were quarantined (empty on a clean load).
  std::vector<Symbol> quarantined;
  /// Edges from healthy partitions dropped because their target node
  /// lived in a quarantined partition.
  uint64_t dangling_edges_dropped = 0;

  bool clean() const { return quarantined.empty(); }
};

/// Loads the checkpoint `manifest` describes from `dir` via `env`.
///
/// `allow_quarantine` selects the failure policy: when false (strict
/// recovery) any damaged partition fails the whole load with kDataLoss;
/// when true, damaged partitions are quarantined — their classes are
/// listed in `quarantined`, edges into them from healthy partitions are
/// dropped (counted) — and the load succeeds partially. Damage to the
/// *scheme* always fails the load: nothing can be interpreted without
/// it. Cross-partition inconsistencies that checksums cannot explain
/// (duplicate node names, edges into no known class while nothing is
/// quarantined) fail the load in either mode — they mean the manifest
/// itself lies, and the caller should fall back to the previous one.
Result<LoadedCheckpoint> LoadCheckpoint(FileEnv* env, const std::string& dir,
                                        const Manifest& manifest,
                                        bool allow_quarantine);

}  // namespace good::storage

#endif  // GOOD_STORAGE_PARTITION_H_
