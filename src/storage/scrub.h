/// \file scrub.h
/// \brief Online integrity scrubbing of a live (scheme, instance) pair.
///
/// Instance::Validate re-verifies the paper's four instance conditions
/// in one uninterruptible pass with private-member access. A
/// production system wants the same audit as a background chore that
/// (a) runs against the public query surface — so it also catches the
/// redundant indexes (per-label adjacency, edge hash set, printable
/// dedup map, label index) drifting out of line with the edge lists
/// they cache — and (b) can be sliced under a common::Deadline so it
/// steals bounded time from serving. The Scrubber walks nodes in id
/// order, cross-checking per node:
///
///  - scheme conformance: node label in OL ∪ POL, print values only on
///    printable labels and inside their domain, every edge licensed by
///    a P-triple, functional-edge uniqueness, equal successor labels;
///  - index agreement: every out-edge present in the edge hash set
///    (HasEdge), in the source's out index (OutTargets) and the
///    target's in index (InSources), with index cardinalities matching
///    the adjacency lists in both directions;
///  - printable dedup: a valued printable node is exactly the node the
///    (label, value) dedup map resolves to.
///
/// Whole-instance totals (alive-node count, edge count, per-label node
/// census vs. the label index) are checked when a pass completes. A
/// pass sliced across deadline expiries accumulates totals across its
/// slices, so those totals are exact only if the instance was not
/// mutated between slices; the per-node checks are sound regardless
/// (each slice sees a consistent point-in-time node).
///
/// Problems are *reported*, not returned as errors: the scrub status
/// only says whether the pass ran to completion (OK) or was cut off
/// (kDeadlineExceeded / kCancelled). Corruption findings land in
/// ScrubReport::problems so one call can report all of them.

#ifndef GOOD_STORAGE_SCRUB_H_
#define GOOD_STORAGE_SCRUB_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/interner.h"
#include "common/result.h"
#include "graph/instance.h"
#include "schema/scheme.h"

namespace good::storage {

/// \brief Budget knobs for one Scrubber::Step call.
struct ScrubOptions {
  /// Polled every few nodes; expiry pauses the pass resumably.
  common::Deadline deadline;
  /// Cap on nodes examined by this call; 0 means unlimited.
  size_t max_nodes = 0;
};

/// \brief Scrub totals for the nodes of one class (one snapshot
/// partition's worth of the instance — the unit recovery quarantines).
struct ClassScrubOutcome {
  size_t nodes_scrubbed = 0;
  size_t edges_scrubbed = 0;
  /// Problems found while scrubbing this class's nodes. A nonzero count
  /// here names which partition a red scrub implicates, matching the
  /// per-partition granularity of RecoveryReport.
  size_t problems = 0;
};

/// \brief Cumulative findings of a scrub pass.
struct ScrubReport {
  size_t nodes_scrubbed = 0;
  size_t edges_scrubbed = 0;
  /// True once the pass (including the totals checks) finished.
  bool complete = false;
  /// Human-readable descriptions of every inconsistency found.
  std::vector<std::string> problems;
  /// Per-class (= per-partition) outcomes, keyed by class name and
  /// ordered for deterministic reporting.
  std::map<std::string, ClassScrubOutcome> per_class;

  bool clean() const { return problems.empty(); }
};

/// \brief A resumable integrity pass over one (scheme, instance) pair.
/// Neither is owned; both must outlive the scrubber.
class Scrubber {
 public:
  Scrubber(const schema::Scheme* scheme, const graph::Instance* instance)
      : scheme_(scheme), instance_(instance) {}

  /// Scrubs from the saved cursor until the pass completes, the
  /// deadline expires, or max_nodes is reached. Returns OK when the
  /// pass is complete, kDeadlineExceeded / kCancelled when paused by
  /// the deadline, and OK with report().complete == false when paused
  /// by max_nodes. Findings go to report().problems either way.
  Status Step(const ScrubOptions& options = {});

  const ScrubReport& report() const { return report_; }

  /// The next node id a resumed Step will examine. Lets a chore
  /// scheduler persist its position across slices (or report how far a
  /// cut-off pass got); UINT32_MAX once the walk itself is done.
  uint32_t cursor() const { return cursor_; }

  /// Starts a fresh pass (clears cursor, totals, and findings).
  void Reset();

 private:
  void ScrubNode(graph::NodeId node);

  const schema::Scheme* scheme_;
  const graph::Instance* instance_;
  ScrubReport report_;
  /// Next node id to examine (dense ids make this a resume point).
  uint32_t cursor_ = 0;
  /// Totals accumulated across slices of the current pass.
  size_t alive_seen_ = 0;
  size_t out_edges_seen_ = 0;
  std::unordered_map<Symbol, size_t> label_census_;
};

/// \brief One-shot scrub: a full pass (or as much as the deadline
/// allows — check report.complete).
ScrubReport Scrub(const schema::Scheme& scheme,
                  const graph::Instance& instance,
                  const ScrubOptions& options = {});

}  // namespace good::storage

#endif  // GOOD_STORAGE_SCRUB_H_
