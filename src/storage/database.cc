#include "storage/database.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/retry.h"
#include "ops/transaction.h"
#include "program/op_serialize.h"
#include "program/serialize.h"

namespace good::storage {
namespace {

const method::MethodRegistry& EmptyRegistry() {
  static const method::MethodRegistry* empty = new method::MethodRegistry();
  return *empty;
}

}  // namespace

std::string_view SalvageModeToString(SalvageMode mode) {
  switch (mode) {
    case SalvageMode::kStrict:
      return "strict";
    case SalvageMode::kSalvage:
      return "salvage";
    case SalvageMode::kReadOnlyDegraded:
      return "read-only-degraded";
  }
  return "unknown";
}

std::string RecoveryReport::ToString() const {
  if (created) return "created fresh database";
  std::string out = "replayed " + std::to_string(ops_replayed) +
                    " ops, skipped " + std::to_string(ops_skipped);
  if (ops_quarantined > 0) {
    out += ", quarantined " + std::to_string(ops_quarantined);
  }
  if (dropped_torn_tail) out += ", dropped torn tail";
  if (bytes_truncated > 0) {
    out += ", truncated " + std::to_string(bytes_truncated) + " B";
  }
  if (used_previous_snapshot) out += ", from previous snapshot";
  if (salvaged) out += " [salvaged: " + salvage.ToString() + "]";
  if (degraded) out += " (read-only degraded)";
  return out;
}

std::string Database::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.good";
}

std::string Database::PreviousSnapshotPath(const std::string& dir) {
  return dir + "/snapshot.prev";
}

std::string Database::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

std::string Database::QuarantinePath(const std::string& dir) {
  return dir + "/wal.quarantine";
}

Database::Database(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.env == nullptr) options_.env = FileEnv::Default();
}

const method::MethodRegistry* Database::Registry() const {
  return options_.methods != nullptr ? options_.methods : &EmptyRegistry();
}

Result<Database> Database::Open(const std::string& dir, Options options) {
  return Open(dir, program::Database{}, std::move(options));
}

Result<Database> Database::Open(const std::string& dir,
                                program::Database initial, Options options) {
  Database db(dir, options);
  FileEnv* env = db.options_.env;
  const bool degraded =
      db.options_.salvage_mode == SalvageMode::kReadOnlyDegraded;
  if (!degraded) {
    // A degraded open must not mutate anything — not even mkdir.
    GOOD_RETURN_NOT_OK(env->CreateDirs(dir));
  }
  if (env->FileExists(SnapshotPath(dir)) ||
      env->FileExists(PreviousSnapshotPath(dir))) {
    db.recovery_.degraded = degraded;
    GOOD_RETURN_NOT_OK(db.LoadSnapshot());
    uint64_t valid_bytes = 0;
    GOOD_RETURN_NOT_OK(db.ReplayWal(&valid_bytes));
    if (!degraded) {
      GOOD_RETURN_NOT_OK(db.OpenWalForAppend(valid_bytes));
    }
  } else {
    if (degraded) {
      return Status::FailedPrecondition(
          "no database in " + dir + " to serve in read-only degraded mode");
    }
    // No snapshot. An intact log record would mean operations were
    // durably acknowledged but their base state is gone.
    const std::string wal = WalPath(dir);
    if (env->FileExists(wal)) {
      GOOD_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(wal));
      GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(bytes));
      if (!contents.records.empty()) {
        return Status::DataLoss("log " + wal +
                                " holds operations but the snapshot " +
                                "they apply to is missing");
      }
    }
    db.db_ = std::move(initial);
    db.recovery_.created = true;
    // The bootstrap checkpoint persists the initial state and creates
    // the (empty) log.
    GOOD_RETURN_NOT_OK(db.Checkpoint());
  }
  return db;
}

Status Database::LoadSnapshotFile(const std::string& path) {
  GOOD_ASSIGN_OR_RETURN(std::string bytes,
                        options_.env->ReadFileToString(path));
  auto contents = ReadLogRecords(bytes);
  if (!contents.ok()) {
    return Status::DataLoss("snapshot " + path +
                            " is corrupt: " + contents.status().message());
  }
  if (contents->records.size() != 1 || contents->dropped_torn_tail ||
      contents->valid_bytes != bytes.size()) {
    return Status::DataLoss("snapshot " + path +
                            " is damaged (expected exactly one intact "
                            "record)");
  }
  std::string_view payload = contents->records[0];
  auto seq = ConsumeFixed64(&payload);
  if (!seq.ok()) {
    return Status::DataLoss("snapshot " + path + " has no sequence number");
  }
  auto parsed = program::ParseDatabase(std::string(payload));
  if (!parsed.ok()) {
    return Status::DataLoss("snapshot " + path + " does not parse: " +
                            parsed.status().ToString());
  }
  db_ = std::move(*parsed);
  next_seq_ = *seq;
  return Status::OK();
}

Status Database::LoadSnapshot() {
  FileEnv* env = options_.env;
  const std::string snap = SnapshotPath(dir_);
  const std::string prev = PreviousSnapshotPath(dir_);
  if (env->FileExists(snap)) {
    Status loaded = LoadSnapshotFile(snap);
    if (loaded.ok()) return loaded;
    if (options_.salvage_mode == SalvageMode::kStrict) return loaded;
    // Salvage modes: the current snapshot is damaged — fall back to the
    // one the last checkpoint displaced. Operations checkpointed into
    // the damaged snapshot and truncated out of the log are gone; the
    // sequence-number check in replay keeps us from papering over that
    // hole with misordered operations.
    if (env->FileExists(prev)) {
      Status fallback = LoadSnapshotFile(prev);
      if (fallback.ok()) {
        recovery_.used_previous_snapshot = true;
        recovery_.salvaged = true;
        return fallback;
      }
    }
    return loaded;  // both damaged: surface the primary failure
  }
  // No current snapshot but a previous one: our own checkpoint crash
  // window (between the two renames). The untruncated log still holds
  // everything since the previous checkpoint, so this recovers fully —
  // in every mode, strict included.
  GOOD_RETURN_NOT_OK(LoadSnapshotFile(prev));
  recovery_.used_previous_snapshot = true;
  return Status::OK();
}

Status Database::ReplayRecord(std::string_view op_text, size_t index) {
  // A record holds one operation (Apply) or a whole transaction's
  // sequence (ApplyTransaction). Either way replay is atomic per
  // record: the rollback scope guarantees a record that fails midway
  // leaves the state exactly at the previous record boundary — which
  // is what lets salvage mode keep serving the replayed prefix.
  auto reader = program::OperationReader::Open(std::string(op_text));
  if (!reader.ok()) {
    return Status::DataLoss("log record " + std::to_string(index) +
                            " does not tokenize: " +
                            reader.status().ToString());
  }
  ops::Transaction txn(&db_.scheme, &db_.instance);
  method::Executor exec(Registry(), options_.exec);
  size_t ops_in_record = 0;
  while (!reader->AtEnd()) {
    auto op = reader->Next(db_.scheme);
    if (!op.ok()) {
      return Status::DataLoss("log record " + std::to_string(index) +
                              " does not parse: " + op.status().ToString());
    }
    Status applied = exec.Execute(*op, &db_.scheme, &db_.instance);
    if (!applied.ok()) {
      return Status::DataLoss("log record " + std::to_string(index) +
                              " does not replay: " + applied.ToString());
    }
    ++ops_in_record;
  }
  if (ops_in_record == 0) {
    return Status::DataLoss("log record " + std::to_string(index) +
                            " holds no operations");
  }
  txn.Commit();
  ++next_seq_;
  ++recovery_.ops_replayed;
  return Status::OK();
}

Status Database::ReplayWal(uint64_t* valid_bytes) {
  *valid_bytes = 0;
  const std::string wal = WalPath(dir_);
  if (!options_.env->FileExists(wal)) return Status::OK();
  GOOD_ASSIGN_OR_RETURN(std::string bytes,
                        options_.env->ReadFileToString(wal));
  if (options_.salvage_mode == SalvageMode::kStrict) {
    return ReplayWalStrict(bytes, valid_bytes);
  }
  return ReplayWalSalvage(wal, bytes, valid_bytes);
}

Status Database::ReplayWalStrict(std::string_view bytes,
                                 uint64_t* valid_bytes) {
  GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(bytes));
  *valid_bytes = contents.valid_bytes;
  recovery_.dropped_torn_tail = contents.dropped_torn_tail;
  recovery_.bytes_truncated = bytes.size() - contents.valid_bytes;
  const uint64_t snapshot_seq = next_seq_;
  for (size_t i = 0; i < contents.records.size(); ++i) {
    // Replay executes real operations — a huge log tail can take a
    // while, so recovery is cancellable like any other long engine run.
    GOOD_RETURN_NOT_OK(options_.recovery_deadline.Check());
    std::string_view payload = contents.records[i];
    auto seq = ConsumeFixed64(&payload);
    if (!seq.ok()) {
      return Status::DataLoss("log record " + std::to_string(i) +
                              " has no sequence number");
    }
    if (*seq < snapshot_seq) {
      // Residue from a checkpoint that renamed its snapshot but crashed
      // before truncating the log; the snapshot already contains it.
      if (recovery_.ops_replayed > 0) {
        return Status::DataLoss("log record " + std::to_string(i) +
                                " is out of sequence order");
      }
      ++recovery_.ops_skipped;
      continue;
    }
    if (*seq != next_seq_) {
      return Status::DataLoss(
          "log sequence gap at record " + std::to_string(i) + ": expected " +
          std::to_string(next_seq_) + ", found " + std::to_string(*seq));
    }
    GOOD_RETURN_NOT_OK(ReplayRecord(payload, i));
  }
  log_ops_ = contents.records.size();
  ops_since_checkpoint_ = recovery_.ops_replayed;
  return Status::OK();
}

Status Database::ReplayWalSalvage(const std::string& wal,
                                  std::string_view bytes,
                                  uint64_t* valid_bytes) {
  SalvageResult scan = WalSalvager::Scan(bytes);
  const uint64_t snapshot_seq = next_seq_;
  recovery_.dropped_torn_tail =
      !scan.report.dropped.empty() &&
      scan.report.dropped.back().offset + scan.report.dropped.back().length ==
          bytes.size();
  // A lone dropped range at the exact end of the clean prefix is the
  // ordinary torn tail strict mode tolerates too; everything else is
  // real salvage work.
  const bool torn_tail_only =
      scan.report.clean ||
      (scan.report.dropped.size() == 1 &&
       scan.report.dropped[0].offset == scan.report.clean_prefix_bytes &&
       recovery_.dropped_torn_tail);

  // Replay the longest prefix of frames that is sound to execute:
  // contiguous sequence numbers, parseable, and executable. The first
  // frame that is none of these ends the prefix — an intact frame past
  // a hole may depend on lost operations, so executing it would
  // fabricate state.
  std::vector<SalvagedFrame> kept;
  size_t stop_index = scan.frames.size();
  for (size_t i = 0; i < scan.frames.size(); ++i) {
    GOOD_RETURN_NOT_OK(options_.recovery_deadline.Check());
    std::string_view payload = scan.frames[i].payload;
    auto seq = ConsumeFixed64(&payload);
    if (!seq.ok()) {
      stop_index = i;
      break;
    }
    if (*seq < snapshot_seq) {
      if (recovery_.ops_replayed > 0) {
        stop_index = i;  // misordered — do not trust anything after
        break;
      }
      // Checkpoint residue; the snapshot already contains it. Dropped
      // from the rewritten log (it is durable in the snapshot).
      ++recovery_.ops_skipped;
      continue;
    }
    if (*seq != next_seq_) {
      stop_index = i;  // a hole in the history
      break;
    }
    if (!ReplayRecord(payload, i).ok()) {
      stop_index = i;
      break;
    }
    kept.push_back(scan.frames[i]);
  }
  // Frames past the stop point are salvageable but not replayable:
  // quarantine them alongside the corrupt byte ranges.
  for (size_t i = stop_index; i < scan.frames.size(); ++i) {
    const uint64_t extent = kRecordHeaderSize + scan.frames[i].payload.size();
    scan.report.dropped.push_back(DroppedRange{
        scan.frames[i].offset, extent, SalvageDropReason::kUnreplayable});
    scan.report.bytes_dropped += extent;
    scan.report.bytes_kept -= extent;
    ++recovery_.ops_quarantined;
  }
  std::sort(scan.report.dropped.begin(), scan.report.dropped.end(),
            [](const DroppedRange& a, const DroppedRange& b) {
              return a.offset < b.offset;
            });
  scan.report.frames_kept = kept.size();
  scan.report.clean = scan.report.dropped.empty();

  const bool stopped = stop_index < scan.frames.size();
  recovery_.salvaged |= stopped || !torn_tail_only;
  recovery_.salvage = scan.report;
  log_ops_ = recovery_.ops_skipped + recovery_.ops_replayed;
  ops_since_checkpoint_ = recovery_.ops_replayed;

  if (options_.salvage_mode == SalvageMode::kReadOnlyDegraded) {
    // Report only; the damaged file stays byte-for-byte as found.
    *valid_bytes = 0;
    return Status::OK();
  }
  if (stopped || !torn_tail_only || recovery_.used_previous_snapshot) {
    // Real damage: preserve every dropped byte in the sidecar, then
    // rewrite the log to exactly the replayed prefix (atomically — a
    // crash mid-repair leaves the damaged original, and salvage is
    // idempotent).
    GOOD_RETURN_NOT_OK(WalSalvager::WriteQuarantine(
        options_.env, QuarantinePath(dir_), bytes, scan));
    GOOD_RETURN_NOT_OK(
        WalSalvager::RewriteLog(options_.env, wal, kept, kept.size()));
    uint64_t kept_bytes = 0;
    for (const SalvagedFrame& frame : kept) {
      kept_bytes += kRecordHeaderSize + frame.payload.size();
    }
    *valid_bytes = kept_bytes;
    recovery_.bytes_truncated = bytes.size() - kept_bytes;
    log_ops_ = kept.size();
  } else {
    // Clean log or plain torn tail: behave exactly like strict mode
    // (the tail is truncated by OpenWalForAppend).
    *valid_bytes = scan.report.clean_prefix_bytes;
    recovery_.bytes_truncated = bytes.size() - *valid_bytes;
  }
  return Status::OK();
}

Status Database::OpenWalForAppend(uint64_t valid_bytes) {
  const std::string wal = WalPath(dir_);
  GOOD_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      options_.env->NewWritableFile(wal, /*truncate=*/valid_bytes == 0));
  if (valid_bytes > 0) {
    GOOD_ASSIGN_OR_RETURN(uint64_t size, options_.env->FileSize(wal));
    if (size != valid_bytes) {
      // Cut off the torn tail so new appends continue the valid prefix.
      GOOD_RETURN_NOT_OK(file->Truncate(valid_bytes));
    }
  }
  writer_ = std::make_unique<LogWriter>(std::move(file), valid_bytes,
                                        options_.sync_every_append);
  return Status::OK();
}

Status Database::CheckWritable() const {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (recovery_.degraded) {
    return Status::Unavailable(
        "database is open read-only (degraded salvage mode); reopen with "
        "SalvageMode::kSalvage to repair and accept writes");
  }
  if (poisoned_) {
    return Status::FailedPrecondition(
        "database is poisoned by an earlier unrecoverable log failure; "
        "reopen to recover");
  }
  return Status::OK();
}

Status Database::AppendWithRetry(std::string_view payload,
                                 ops::ApplyStats* stats) {
  // Transient (common::IsRetriable) append faults are retried on a
  // shared capped-and-jittered backoff schedule (common::Backoff);
  // every failed attempt's torn bytes are truncated away before the
  // next try so the record never lands twice. Permanent faults surface
  // immediately.
  common::BackoffPolicy policy;
  policy.max_retries = options_.wal_retry_limit;
  policy.initial_delay = options_.wal_retry_backoff;
  policy.max_delay = options_.wal_retry_max_backoff;
  policy.seed = next_seq_;
  common::Backoff backoff(policy);
  while (true) {
    Status logged = writer_->AppendRecord(payload);
    if (logged.ok()) break;
    Status undone = writer_->UndoLastAppend();
    if (!undone.ok()) {
      // The log may now disagree with memory; refuse further writes.
      poisoned_ = true;
      return logged;
    }
    if (!common::IsRetriable(logged)) return logged;
    if (!backoff.CanRetry()) return logged;
    std::chrono::microseconds delay = backoff.NextDelay();
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  if (stats != nullptr) stats->wal_retries += backoff.retries();
  return Status::OK();
}

Status Database::Apply(const method::Operation& op, ops::ApplyStats* stats) {
  GOOD_RETURN_NOT_OK(CheckWritable());
  GOOD_ASSIGN_OR_RETURN(std::string text,
                        program::WriteOperation(db_.scheme, op));
  std::string payload;
  payload.reserve(sizeof(uint64_t) + text.size());
  AppendFixed64(&payload, next_seq_);
  payload += text;
  // Write-ahead: the operation reaches the log before the instance.
  GOOD_RETURN_NOT_OK(AppendWithRetry(payload, stats));
  method::Executor exec(Registry(), options_.exec);
  Status applied = exec.Execute(op, &db_.scheme, &db_.instance, stats);
  if (!applied.ok()) return Undo(std::move(applied));
  ++next_seq_;
  ++log_ops_;
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every) {
    GOOD_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status Database::ApplyTransaction(const std::vector<method::Operation>& ops,
                                  ops::ApplyStats* stats,
                                  ops::Footprint* footprint) {
  GOOD_RETURN_NOT_OK(CheckWritable());
  if (footprint != nullptr) *footprint = ops::Footprint{};
  if (ops.empty()) return Status::OK();
  // Execute first, under a rollback scope, serializing each operation
  // against the scheme as it stands (exactly what replay will see).
  // The record is appended only once the whole sequence succeeded, so
  // the log never holds a fragment of a transaction — the inverse of
  // Apply's write-ahead order, with the same invariant: log and memory
  // agree on every return path.
  const schema::Scheme scheme_before = db_.scheme;
  program::OperationWriter record;
  ops::Transaction txn(&db_.scheme, &db_.instance);
  method::Executor exec(Registry(), options_.exec);
  for (const method::Operation& op : ops) {
    GOOD_RETURN_NOT_OK(record.Append(db_.scheme, op));
    GOOD_RETURN_NOT_OK(exec.Execute(op, &db_.scheme, &db_.instance, stats));
  }
  if (footprint != nullptr) {
    *footprint = ops::CollectFootprint(txn.journal());
    footprint->scheme_changed = !(db_.scheme == scheme_before);
  }
  std::string payload;
  AppendFixed64(&payload, next_seq_);
  payload += record.Take();
  GOOD_RETURN_NOT_OK(AppendWithRetry(payload, stats));
  txn.Commit();
  ++next_seq_;
  ++log_ops_;
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every) {
    GOOD_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status Database::SyncWal() {
  GOOD_RETURN_NOT_OK(CheckWritable());
  if (writer_ == nullptr) {
    return Status::FailedPrecondition("database has no open log");
  }
  Status synced = writer_->Sync();
  if (!synced.ok()) {
    // A failed fsync leaves the durability of every record appended
    // since the last barrier unknowable (the kernel may have dropped
    // the dirty pages — or persisted them), while the in-memory state
    // already includes those transactions. Memory and log cannot be
    // reconciled, so refuse further writes and report the failure as
    // non-retriable: a caller that re-ran the "failed" transactions
    // could find them applied twice after recovery.
    poisoned_ = true;
    return Status::DataLoss(
        "group-commit fsync failed; the affected transactions are "
        "applied in memory and may or may not be durable — reopen to "
        "recover a consistent state (" + synced.message() + ")");
  }
  return Status::OK();
}

Status Database::ApplyAll(const std::vector<method::Operation>& ops,
                          ops::ApplyStats* stats) {
  for (const method::Operation& op : ops) {
    GOOD_RETURN_NOT_OK(Apply(op, stats));
  }
  return Status::OK();
}

Status Database::Undo(Status cause) {
  Status undone = writer_->UndoLastAppend();
  if (!undone.ok()) {
    // The log may now disagree with memory; refuse further writes.
    poisoned_ = true;
  }
  return cause;
}

Status Database::Checkpoint() {
  GOOD_RETURN_NOT_OK(CheckWritable());
  FileEnv* env = options_.env;
  std::string payload;
  AppendFixed64(&payload, next_seq_);
  payload += program::WriteDatabase(db_);
  std::string framed;
  framed.reserve(kRecordHeaderSize + payload.size());
  AppendRecordTo(&framed, payload);

  const std::string tmp = dir_ + "/snapshot.tmp";
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(tmp, /*truncate=*/true));
  GOOD_RETURN_NOT_OK(file->Append(framed));
  GOOD_RETURN_NOT_OK(file->Sync());
  GOOD_RETURN_NOT_OK(file->Close());
  // Atomic publish, keeping the displaced snapshot as the salvage
  // fallback. A crash on either side of either rename leaves a
  // recoverable chain: before the first, the old snapshot is current;
  // between them, recovery finds snapshot.prev plus the untruncated
  // log; after the second, the new snapshot is current.
  const std::string snap = SnapshotPath(dir_);
  if (env->FileExists(snap)) {
    GOOD_RETURN_NOT_OK(env->RenameFile(snap, PreviousSnapshotPath(dir_)));
  }
  GOOD_RETURN_NOT_OK(env->RenameFile(tmp, snap));
  GOOD_RETURN_NOT_OK(env->SyncDir(dir_));

  // Snapshot durable — the log is now redundant. A crash before the
  // truncation below is handled at recovery by sequence-number skip.
  if (writer_ != nullptr) {
    (void)writer_->Close();
    writer_.reset();
  }
  Status reset = OpenWalForAppend(0);
  if (!reset.ok()) {
    poisoned_ = true;  // no log to append to
    return reset;
  }
  log_ops_ = 0;
  ops_since_checkpoint_ = 0;
  return Status::OK();
}

ScrubReport Database::Scrub(const ScrubOptions& options) const {
  return storage::Scrub(db_.scheme, db_.instance, options);
}

Status Database::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (writer_ == nullptr) return Status::OK();
  Status synced = writer_->Sync();
  Status closed = writer_->Close();
  writer_.reset();
  if (!synced.ok()) return synced;
  return closed;
}

}  // namespace good::storage
