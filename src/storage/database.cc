#include "storage/database.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

#include "common/interner.h"
#include "common/retry.h"
#include "ops/transaction.h"
#include "program/op_serialize.h"
#include "program/serialize.h"
#include "program/text.h"
#include "storage/crc32.h"

namespace good::storage {
namespace {

const method::MethodRegistry& EmptyRegistry() {
  static const method::MethodRegistry* empty = new method::MethodRegistry();
  return *empty;
}

/// Collects every class an operation's execution can read or write:
/// the labels of its pattern nodes plus any label the operation
/// introduces nodes under. Returns false when the footprint cannot be
/// determined statically — a method call executes whatever its body
/// holds, so with quarantined partitions present it cannot be proven
/// safe from its top-level form alone.
bool CollectOpClasses(const method::Operation& op,
                      std::unordered_set<Symbol>* classes) {
  bool analyzable = true;
  std::visit(
      [&](const auto& concrete) {
        using T = std::decay_t<decltype(concrete)>;
        if constexpr (std::is_same_v<T, method::MethodCallOp>) {
          analyzable = false;
          for (graph::NodeId n : concrete.pattern.AllNodes()) {
            classes->insert(concrete.pattern.LabelOf(n));
          }
        } else {
          const auto& pattern = concrete.source_pattern();
          for (graph::NodeId n : pattern.AllNodes()) {
            classes->insert(pattern.LabelOf(n));
          }
          if constexpr (std::is_same_v<T, ops::NodeAddition>) {
            classes->insert(concrete.new_label());
          } else if constexpr (std::is_same_v<T, ops::Abstraction>) {
            classes->insert(concrete.set_label());
          } else if constexpr (std::is_same_v<T, ops::ComputedEdgeAddition>) {
            classes->insert(concrete.output_label());
          }
        }
      },
      op);
  return analyzable;
}

}  // namespace

std::string_view SalvageModeToString(SalvageMode mode) {
  switch (mode) {
    case SalvageMode::kStrict:
      return "strict";
    case SalvageMode::kSalvage:
      return "salvage";
    case SalvageMode::kReadOnlyDegraded:
      return "read-only-degraded";
  }
  return "unknown";
}

std::string RecoveryReport::ToString() const {
  if (created) return "created fresh database";
  std::string out = "replayed " + std::to_string(ops_replayed) +
                    " ops, skipped " + std::to_string(ops_skipped);
  if (ops_quarantined > 0) {
    out += ", quarantined " + std::to_string(ops_quarantined);
  }
  if (dropped_torn_tail) out += ", dropped torn tail";
  if (bytes_truncated > 0) {
    out += ", truncated " + std::to_string(bytes_truncated) + " B";
  }
  if (used_previous_snapshot) out += ", from previous snapshot";
  if (migrated_legacy_snapshot) out += ", migrated legacy snapshot";
  if (partitions_quarantined > 0) {
    out += ", " + std::to_string(partitions_quarantined) +
           " partition(s) quarantined";
    if (dangling_edges_dropped > 0) {
      out += " (" + std::to_string(dangling_edges_dropped) +
             " dangling edges dropped)";
    }
  }
  if (salvaged) out += " [salvaged: " + salvage.ToString() + "]";
  if (partial_degraded) out += " (partially degraded)";
  if (degraded) out += " (read-only degraded)";
  return out;
}

std::string Database::ManifestPath(const std::string& dir) {
  return dir + "/manifest.good";
}

std::string Database::PreviousManifestPath(const std::string& dir) {
  return dir + "/manifest.prev";
}

std::string Database::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.good";
}

std::string Database::PreviousSnapshotPath(const std::string& dir) {
  return dir + "/snapshot.prev";
}

std::string Database::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

std::string Database::QuarantinePath(const std::string& dir) {
  return dir + "/wal.quarantine";
}

std::string Database::PartitionQuarantinePath(const std::string& dir) {
  return dir + "/partition.quarantine";
}

Database::Database(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.env == nullptr) options_.env = FileEnv::Default();
}

const method::MethodRegistry* Database::Registry() const {
  return options_.methods != nullptr ? options_.methods : &EmptyRegistry();
}

Result<Database> Database::Open(const std::string& dir, Options options) {
  return Open(dir, program::Database{}, std::move(options));
}

Result<Database> Database::Open(const std::string& dir,
                                program::Database initial, Options options) {
  Database db(dir, options);
  FileEnv* env = db.options_.env;
  const bool degraded =
      db.options_.salvage_mode == SalvageMode::kReadOnlyDegraded;
  if (!degraded) {
    // A degraded open must not mutate anything — not even mkdir.
    GOOD_RETURN_NOT_OK(env->CreateDirs(dir));
  }
  const bool has_manifest = env->FileExists(ManifestPath(dir)) ||
                            env->FileExists(PreviousManifestPath(dir));
  const bool has_legacy = env->FileExists(SnapshotPath(dir)) ||
                          env->FileExists(PreviousSnapshotPath(dir));
  if (has_manifest || has_legacy) {
    db.recovery_.degraded = degraded;
    GOOD_RETURN_NOT_OK(db.LoadSnapshot());
    uint64_t valid_bytes = 0;
    GOOD_RETURN_NOT_OK(db.ReplayWal(&valid_bytes));
    if (!degraded) {
      GOOD_RETURN_NOT_OK(db.SyncPartitionQuarantineSidecar());
      GOOD_RETURN_NOT_OK(db.OpenWalForAppend(valid_bytes));
      if (!db.have_manifest_) {
        // Legacy monolithic layout: the recovered state is checkpointed
        // into the partitioned layout right away; the now-stale legacy
        // snapshot files are swept by the checkpoint's GC. A crash
        // anywhere in between re-runs the migration on the next open
        // (before the manifest commits) or is covered by the ordinary
        // sequence-number skip (after it).
        GOOD_RETURN_NOT_OK(db.Checkpoint());
        db.recovery_.migrated_legacy_snapshot = true;
      }
    }
  } else {
    if (degraded) {
      return Status::FailedPrecondition(
          "no database in " + dir + " to serve in read-only degraded mode");
    }
    // No snapshot. An intact log record would mean operations were
    // durably acknowledged but their base state is gone.
    const std::string wal = WalPath(dir);
    if (env->FileExists(wal)) {
      GOOD_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(wal));
      GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(bytes));
      if (!contents.records.empty()) {
        return Status::DataLoss("log " + wal +
                                " holds operations but the snapshot " +
                                "they apply to is missing");
      }
    }
    db.db_ = std::move(initial);
    db.recovery_.created = true;
    // The bootstrap checkpoint persists the initial state and creates
    // the (empty) log.
    GOOD_RETURN_NOT_OK(db.Checkpoint());
  }
  return db;
}

Status Database::LoadManifestFile(const std::string& path) {
  auto bytes = options_.env->ReadFileToString(path);
  if (!bytes.ok()) {
    return Status::DataLoss("manifest " + path +
                            " unreadable: " + bytes.status().message());
  }
  auto decoded = DecodeManifest(*bytes);
  if (!decoded.ok()) {
    return Status::DataLoss("manifest " + path +
                            " is damaged: " + decoded.status().message());
  }
  const bool allow_quarantine =
      options_.salvage_mode != SalvageMode::kStrict;
  auto loaded = LoadCheckpoint(options_.env, dir_, *decoded, allow_quarantine);
  if (!loaded.ok()) return loaded.status();
  db_ = std::move(loaded->db);
  next_seq_ = loaded->next_seq;
  last_scheme_text_ = std::move(loaded->scheme_text);
  recovery_.partitions = std::move(loaded->partitions);
  recovery_.partitions_quarantined = loaded->quarantined.size();
  recovery_.dangling_edges_dropped = loaded->dangling_edges_dropped;
  quarantined_.clear();
  quarantined_.insert(loaded->quarantined.begin(), loaded->quarantined.end());
  recovery_.partial_degraded = !quarantined_.empty();
  manifest_ = std::move(*decoded);
  have_manifest_ = true;
  return Status::OK();
}

Status Database::LoadSnapshotFile(const std::string& path) {
  GOOD_ASSIGN_OR_RETURN(std::string bytes,
                        options_.env->ReadFileToString(path));
  auto contents = ReadLogRecords(bytes);
  if (!contents.ok()) {
    return Status::DataLoss("snapshot " + path +
                            " is corrupt: " + contents.status().message());
  }
  if (contents->records.size() != 1 || contents->dropped_torn_tail ||
      contents->valid_bytes != bytes.size()) {
    return Status::DataLoss("snapshot " + path +
                            " is damaged (expected exactly one intact "
                            "record)");
  }
  std::string_view payload = contents->records[0];
  auto seq = ConsumeFixed64(&payload);
  if (!seq.ok()) {
    return Status::DataLoss("snapshot " + path + " has no sequence number");
  }
  auto parsed = program::ParseDatabase(std::string(payload));
  if (!parsed.ok()) {
    return Status::DataLoss("snapshot " + path + " does not parse: " +
                            parsed.status().ToString());
  }
  db_ = std::move(*parsed);
  next_seq_ = *seq;
  return Status::OK();
}

Status Database::LoadSnapshot() {
  FileEnv* env = options_.env;
  const std::string man = ManifestPath(dir_);
  const std::string man_prev = PreviousManifestPath(dir_);
  if (env->FileExists(man)) {
    Status loaded = LoadManifestFile(man);
    if (loaded.ok()) return loaded;
    if (options_.salvage_mode == SalvageMode::kStrict) return loaded;
    // Salvage modes: the current manifest chain is unusable — fall back
    // to the one the last checkpoint displaced. Note the asymmetry with
    // partition damage: a *readable* manifest with damaged partitions
    // already returned OK above with those partitions quarantined,
    // because the WAL was truncated at that manifest's commit — falling
    // back to manifest.prev would lose every operation since the
    // previous checkpoint for ALL classes, strictly worse than serving
    // the healthy ones and quarantining the rest.
    if (env->FileExists(man_prev)) {
      // Reset whatever the failed attempt half-filled.
      db_ = program::Database{};
      recovery_.partitions.clear();
      recovery_.partitions_quarantined = 0;
      recovery_.dangling_edges_dropped = 0;
      recovery_.partial_degraded = false;
      quarantined_.clear();
      Status fallback = LoadManifestFile(man_prev);
      if (fallback.ok()) {
        recovery_.used_previous_snapshot = true;
        recovery_.salvaged = true;
        return fallback;
      }
    }
    return loaded;  // both damaged: surface the primary failure
  }
  if (env->FileExists(man_prev)) {
    // No current manifest but a previous one: our own checkpoint crash
    // window (between the two manifest renames). The untruncated log
    // still holds everything since the previous checkpoint, so this
    // recovers fully — in every mode, strict included.
    GOOD_RETURN_NOT_OK(LoadManifestFile(man_prev));
    recovery_.used_previous_snapshot = true;
    return Status::OK();
  }

  // No manifest at all: the legacy monolithic layout. Loaded once here;
  // Open's first checkpoint migrates it to the partitioned layout.
  const std::string snap = SnapshotPath(dir_);
  const std::string prev = PreviousSnapshotPath(dir_);
  if (env->FileExists(snap)) {
    Status loaded = LoadSnapshotFile(snap);
    if (loaded.ok()) return loaded;
    if (options_.salvage_mode == SalvageMode::kStrict) return loaded;
    // Salvage modes: the current snapshot is damaged — fall back to the
    // one the last checkpoint displaced. Operations checkpointed into
    // the damaged snapshot and truncated out of the log are gone; the
    // sequence-number check in replay keeps us from papering over that
    // hole with misordered operations.
    if (env->FileExists(prev)) {
      Status fallback = LoadSnapshotFile(prev);
      if (fallback.ok()) {
        recovery_.used_previous_snapshot = true;
        recovery_.salvaged = true;
        return fallback;
      }
    }
    return loaded;  // both damaged: surface the primary failure
  }
  // No current snapshot but a previous one: the legacy layout's own
  // checkpoint crash window; recovers fully in every mode.
  GOOD_RETURN_NOT_OK(LoadSnapshotFile(prev));
  recovery_.used_previous_snapshot = true;
  return Status::OK();
}

Status Database::ReplayRecord(std::string_view op_text, size_t index) {
  // A record holds one operation (Apply) or a whole transaction's
  // sequence (ApplyTransaction). Either way replay is atomic per
  // record: the rollback scope guarantees a record that fails midway
  // leaves the state exactly at the previous record boundary — which
  // is what lets salvage mode keep serving the replayed prefix.
  auto reader = program::OperationReader::Open(std::string(op_text));
  if (!reader.ok()) {
    return Status::DataLoss("log record " + std::to_string(index) +
                            " does not tokenize: " +
                            reader.status().ToString());
  }
  ops::Transaction txn(&db_.scheme, &db_.instance);
  method::Executor exec(Registry(), options_.exec);
  size_t ops_in_record = 0;
  while (!reader->AtEnd()) {
    auto op = reader->Next(db_.scheme);
    if (!op.ok()) {
      return Status::DataLoss("log record " + std::to_string(index) +
                              " does not parse: " + op.status().ToString());
    }
    // A record touching a quarantined class must NOT replay: its
    // pattern would silently match nothing (the class's nodes are
    // absent, not empty) and execution would fabricate a state the
    // pre-crash database never held. Failing here ends the salvaged
    // prefix; the record is quarantined with the rest of the tail.
    Status available = CheckOpAvailable(*op);
    if (!available.ok()) {
      return Status::DataLoss("log record " + std::to_string(index) +
                              " touches a quarantined partition: " +
                              available.message());
    }
    Status applied = exec.Execute(*op, &db_.scheme, &db_.instance);
    if (!applied.ok()) {
      return Status::DataLoss("log record " + std::to_string(index) +
                              " does not replay: " + applied.ToString());
    }
    ++ops_in_record;
  }
  if (ops_in_record == 0) {
    return Status::DataLoss("log record " + std::to_string(index) +
                            " holds no operations");
  }
  txn.Commit();
  ++next_seq_;
  ++recovery_.ops_replayed;
  return Status::OK();
}

Status Database::ReplayWal(uint64_t* valid_bytes) {
  *valid_bytes = 0;
  const std::string wal = WalPath(dir_);
  if (!options_.env->FileExists(wal)) return Status::OK();
  GOOD_ASSIGN_OR_RETURN(std::string bytes,
                        options_.env->ReadFileToString(wal));
  if (options_.salvage_mode == SalvageMode::kStrict) {
    return ReplayWalStrict(bytes, valid_bytes);
  }
  return ReplayWalSalvage(wal, bytes, valid_bytes);
}

Status Database::ReplayWalStrict(std::string_view bytes,
                                 uint64_t* valid_bytes) {
  GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(bytes));
  *valid_bytes = contents.valid_bytes;
  recovery_.dropped_torn_tail = contents.dropped_torn_tail;
  recovery_.bytes_truncated = bytes.size() - contents.valid_bytes;
  const uint64_t snapshot_seq = next_seq_;
  for (size_t i = 0; i < contents.records.size(); ++i) {
    // Replay executes real operations — a huge log tail can take a
    // while, so recovery is cancellable like any other long engine run.
    GOOD_RETURN_NOT_OK(options_.recovery_deadline.Check());
    std::string_view payload = contents.records[i];
    auto seq = ConsumeFixed64(&payload);
    if (!seq.ok()) {
      return Status::DataLoss("log record " + std::to_string(i) +
                              " has no sequence number");
    }
    if (*seq < snapshot_seq) {
      // Residue from a checkpoint that renamed its snapshot but crashed
      // before truncating the log; the snapshot already contains it.
      if (recovery_.ops_replayed > 0) {
        return Status::DataLoss("log record " + std::to_string(i) +
                                " is out of sequence order");
      }
      ++recovery_.ops_skipped;
      continue;
    }
    if (*seq != next_seq_) {
      return Status::DataLoss(
          "log sequence gap at record " + std::to_string(i) + ": expected " +
          std::to_string(next_seq_) + ", found " + std::to_string(*seq));
    }
    GOOD_RETURN_NOT_OK(ReplayRecord(payload, i));
  }
  log_ops_ = contents.records.size();
  ops_since_checkpoint_ = recovery_.ops_replayed;
  return Status::OK();
}

Status Database::ReplayWalSalvage(const std::string& wal,
                                  std::string_view bytes,
                                  uint64_t* valid_bytes) {
  SalvageResult scan = WalSalvager::Scan(bytes);
  const uint64_t snapshot_seq = next_seq_;
  recovery_.dropped_torn_tail =
      !scan.report.dropped.empty() &&
      scan.report.dropped.back().offset + scan.report.dropped.back().length ==
          bytes.size();
  // A lone dropped range at the exact end of the clean prefix is the
  // ordinary torn tail strict mode tolerates too; everything else is
  // real salvage work.
  const bool torn_tail_only =
      scan.report.clean ||
      (scan.report.dropped.size() == 1 &&
       scan.report.dropped[0].offset == scan.report.clean_prefix_bytes &&
       recovery_.dropped_torn_tail);

  // Replay the longest prefix of frames that is sound to execute:
  // contiguous sequence numbers, parseable, and executable. The first
  // frame that is none of these ends the prefix — an intact frame past
  // a hole may depend on lost operations, so executing it would
  // fabricate state.
  std::vector<SalvagedFrame> kept;
  size_t stop_index = scan.frames.size();
  for (size_t i = 0; i < scan.frames.size(); ++i) {
    GOOD_RETURN_NOT_OK(options_.recovery_deadline.Check());
    std::string_view payload = scan.frames[i].payload;
    auto seq = ConsumeFixed64(&payload);
    if (!seq.ok()) {
      stop_index = i;
      break;
    }
    if (*seq < snapshot_seq) {
      if (recovery_.ops_replayed > 0) {
        stop_index = i;  // misordered — do not trust anything after
        break;
      }
      // Checkpoint residue; the snapshot already contains it. Dropped
      // from the rewritten log (it is durable in the snapshot).
      ++recovery_.ops_skipped;
      continue;
    }
    if (*seq != next_seq_) {
      stop_index = i;  // a hole in the history
      break;
    }
    if (!ReplayRecord(payload, i).ok()) {
      stop_index = i;
      break;
    }
    kept.push_back(scan.frames[i]);
  }
  // Frames past the stop point are salvageable but not replayable:
  // quarantine them alongside the corrupt byte ranges.
  for (size_t i = stop_index; i < scan.frames.size(); ++i) {
    const uint64_t extent = kRecordHeaderSize + scan.frames[i].payload.size();
    scan.report.dropped.push_back(DroppedRange{
        scan.frames[i].offset, extent, SalvageDropReason::kUnreplayable});
    scan.report.bytes_dropped += extent;
    scan.report.bytes_kept -= extent;
    ++recovery_.ops_quarantined;
  }
  std::sort(scan.report.dropped.begin(), scan.report.dropped.end(),
            [](const DroppedRange& a, const DroppedRange& b) {
              return a.offset < b.offset;
            });
  scan.report.frames_kept = kept.size();
  scan.report.clean = scan.report.dropped.empty();

  const bool stopped = stop_index < scan.frames.size();
  recovery_.salvaged |= stopped || !torn_tail_only;
  recovery_.salvage = scan.report;
  log_ops_ = recovery_.ops_skipped + recovery_.ops_replayed;
  ops_since_checkpoint_ = recovery_.ops_replayed;

  if (options_.salvage_mode == SalvageMode::kReadOnlyDegraded) {
    // Report only; the damaged file stays byte-for-byte as found.
    *valid_bytes = 0;
    return Status::OK();
  }
  if (stopped || !torn_tail_only || recovery_.used_previous_snapshot) {
    // Real damage: preserve every dropped byte in the sidecar, then
    // rewrite the log to exactly the replayed prefix (atomically — a
    // crash mid-repair leaves the damaged original, and salvage is
    // idempotent).
    GOOD_RETURN_NOT_OK(WalSalvager::WriteQuarantine(
        options_.env, QuarantinePath(dir_), bytes, scan));
    GOOD_RETURN_NOT_OK(
        WalSalvager::RewriteLog(options_.env, wal, kept, kept.size()));
    uint64_t kept_bytes = 0;
    for (const SalvagedFrame& frame : kept) {
      kept_bytes += kRecordHeaderSize + frame.payload.size();
    }
    *valid_bytes = kept_bytes;
    recovery_.bytes_truncated = bytes.size() - kept_bytes;
    log_ops_ = kept.size();
  } else {
    // Clean log or plain torn tail: behave exactly like strict mode
    // (the tail is truncated by OpenWalForAppend).
    *valid_bytes = scan.report.clean_prefix_bytes;
    recovery_.bytes_truncated = bytes.size() - *valid_bytes;
  }
  return Status::OK();
}

Status Database::OpenWalForAppend(uint64_t valid_bytes) {
  const std::string wal = WalPath(dir_);
  GOOD_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      options_.env->NewWritableFile(wal, /*truncate=*/valid_bytes == 0));
  if (valid_bytes > 0) {
    GOOD_ASSIGN_OR_RETURN(uint64_t size, options_.env->FileSize(wal));
    if (size != valid_bytes) {
      // Cut off the torn tail so new appends continue the valid prefix.
      GOOD_RETURN_NOT_OK(file->Truncate(valid_bytes));
    }
  }
  writer_ = std::make_unique<LogWriter>(std::move(file), valid_bytes,
                                        options_.sync_every_append);
  return Status::OK();
}

Status Database::CheckWritable() const {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (recovery_.degraded) {
    return Status::Unavailable(
        "database is open read-only (degraded salvage mode); reopen with "
        "SalvageMode::kSalvage to repair and accept writes");
  }
  if (poisoned_) {
    return Status::FailedPrecondition(
        "database is poisoned by an earlier unrecoverable log failure; "
        "reopen to recover");
  }
  return Status::OK();
}

std::vector<std::string> Database::quarantined_classes() const {
  std::vector<std::string> names;
  names.reserve(quarantined_.size());
  for (Symbol cls : quarantined_) names.push_back(SymName(cls));
  std::sort(names.begin(), names.end());
  return names;
}

Status Database::CheckClassAvailable(Symbol cls) const {
  if (quarantined_.find(cls) == quarantined_.end()) return Status::OK();
  return Status::Unavailable(
      "class '" + SymName(cls) +
      "' is unavailable: its snapshot partition was quarantined at "
      "recovery (see " + PartitionQuarantinePath(dir_) + ")");
}

Status Database::CheckOpAvailable(const method::Operation& op) const {
  if (quarantined_.empty()) return Status::OK();
  std::unordered_set<Symbol> classes;
  const bool analyzable = CollectOpClasses(op, &classes);
  for (Symbol cls : classes) {
    GOOD_RETURN_NOT_OK(CheckClassAvailable(cls));
  }
  if (!analyzable) {
    std::string joined;
    for (const std::string& name : quarantined_classes()) {
      if (!joined.empty()) joined += ", ";
      joined += name;
    }
    return Status::Unavailable(
        "method calls are rejected while partitions are quarantined — "
        "their bodies' class footprint cannot be checked statically "
        "(quarantined: " + joined + ")");
  }
  return Status::OK();
}

Status Database::CheckOpsAvailable(
    const std::vector<method::Operation>& ops) const {
  if (quarantined_.empty()) return Status::OK();
  for (const method::Operation& op : ops) {
    GOOD_RETURN_NOT_OK(CheckOpAvailable(op));
  }
  return Status::OK();
}

Status Database::AppendWithRetry(std::string_view payload,
                                 ops::ApplyStats* stats) {
  // Transient (common::IsRetriable) append faults are retried on a
  // shared capped-and-jittered backoff schedule (common::Backoff);
  // every failed attempt's torn bytes are truncated away before the
  // next try so the record never lands twice. Permanent faults surface
  // immediately.
  common::BackoffPolicy policy;
  policy.max_retries = options_.wal_retry_limit;
  policy.initial_delay = options_.wal_retry_backoff;
  policy.max_delay = options_.wal_retry_max_backoff;
  policy.seed = next_seq_;
  common::Backoff backoff(policy);
  while (true) {
    Status logged = writer_->AppendRecord(payload);
    if (logged.ok()) break;
    Status undone = writer_->UndoLastAppend();
    if (!undone.ok()) {
      // The log may now disagree with memory; refuse further writes.
      poisoned_ = true;
      return logged;
    }
    if (!common::IsRetriable(logged)) return logged;
    if (!backoff.CanRetry()) return logged;
    std::chrono::microseconds delay = backoff.NextDelay();
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  if (stats != nullptr) stats->wal_retries += backoff.retries();
  return Status::OK();
}

Status Database::Apply(const method::Operation& op, ops::ApplyStats* stats) {
  GOOD_RETURN_NOT_OK(CheckWritable());
  GOOD_RETURN_NOT_OK(CheckOpAvailable(op));
  GOOD_ASSIGN_OR_RETURN(std::string text,
                        program::WriteOperation(db_.scheme, op));
  std::string payload;
  payload.reserve(sizeof(uint64_t) + text.size());
  AppendFixed64(&payload, next_seq_);
  payload += text;
  // Write-ahead: the operation reaches the log before the instance.
  GOOD_RETURN_NOT_OK(AppendWithRetry(payload, stats));
  method::Executor exec(Registry(), options_.exec);
  Status applied = exec.Execute(op, &db_.scheme, &db_.instance, stats);
  if (!applied.ok()) return Undo(std::move(applied));
  ++next_seq_;
  ++log_ops_;
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every) {
    GOOD_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status Database::ApplyTransaction(const std::vector<method::Operation>& ops,
                                  ops::ApplyStats* stats,
                                  ops::Footprint* footprint) {
  GOOD_RETURN_NOT_OK(CheckWritable());
  GOOD_RETURN_NOT_OK(CheckOpsAvailable(ops));
  if (footprint != nullptr) *footprint = ops::Footprint{};
  if (ops.empty()) return Status::OK();
  // Execute first, under a rollback scope, serializing each operation
  // against the scheme as it stands (exactly what replay will see).
  // The record is appended only once the whole sequence succeeded, so
  // the log never holds a fragment of a transaction — the inverse of
  // Apply's write-ahead order, with the same invariant: log and memory
  // agree on every return path.
  const schema::Scheme scheme_before = db_.scheme;
  program::OperationWriter record;
  ops::Transaction txn(&db_.scheme, &db_.instance);
  method::Executor exec(Registry(), options_.exec);
  for (const method::Operation& op : ops) {
    GOOD_RETURN_NOT_OK(record.Append(db_.scheme, op));
    GOOD_RETURN_NOT_OK(exec.Execute(op, &db_.scheme, &db_.instance, stats));
  }
  if (footprint != nullptr) {
    *footprint = ops::CollectFootprint(txn.journal());
    footprint->scheme_changed = !(db_.scheme == scheme_before);
  }
  std::string payload;
  AppendFixed64(&payload, next_seq_);
  payload += record.Take();
  GOOD_RETURN_NOT_OK(AppendWithRetry(payload, stats));
  txn.Commit();
  ++next_seq_;
  ++log_ops_;
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every) {
    GOOD_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status Database::SyncWal() {
  GOOD_RETURN_NOT_OK(CheckWritable());
  if (writer_ == nullptr) {
    return Status::FailedPrecondition("database has no open log");
  }
  Status synced = writer_->Sync();
  if (!synced.ok()) {
    // A failed fsync leaves the durability of every record appended
    // since the last barrier unknowable (the kernel may have dropped
    // the dirty pages — or persisted them), while the in-memory state
    // already includes those transactions. Memory and log cannot be
    // reconciled, so refuse further writes and report the failure as
    // non-retriable: a caller that re-ran the "failed" transactions
    // could find them applied twice after recovery.
    poisoned_ = true;
    return Status::DataLoss(
        "group-commit fsync failed; the affected transactions are "
        "applied in memory and may or may not be durable — reopen to "
        "recover a consistent state (" + synced.message() + ")");
  }
  return Status::OK();
}

Status Database::ApplyAll(const std::vector<method::Operation>& ops,
                          ops::ApplyStats* stats) {
  for (const method::Operation& op : ops) {
    GOOD_RETURN_NOT_OK(Apply(op, stats));
  }
  return Status::OK();
}

Status Database::Undo(Status cause) {
  Status undone = writer_->UndoLastAppend();
  if (!undone.ok()) {
    // The log may now disagree with memory; refuse further writes.
    poisoned_ = true;
  }
  return cause;
}

Status Database::WriteFileWithRetry(const std::string& name,
                                    std::string_view bytes, size_t* retries) {
  // Checkpoint files are unreferenced until the manifest commits, so a
  // failed attempt needs no cleanup: the retry reopens with truncate
  // and starts over. Same backoff schedule and transient/permanent
  // split as WAL appends.
  common::BackoffPolicy policy;
  policy.max_retries = options_.wal_retry_limit;
  policy.initial_delay = options_.wal_retry_backoff;
  policy.max_delay = options_.wal_retry_max_backoff;
  policy.seed = next_seq_;
  common::Backoff backoff(policy);
  const std::string path = dir_ + "/" + name;
  while (true) {
    Status wrote = [&]() -> Status {
      GOOD_ASSIGN_OR_RETURN(
          std::unique_ptr<WritableFile> file,
          options_.env->NewWritableFile(path, /*truncate=*/true));
      GOOD_RETURN_NOT_OK(file->Append(bytes));
      GOOD_RETURN_NOT_OK(file->Sync());
      return file->Close();
    }();
    if (wrote.ok()) break;
    if (!common::IsRetriable(wrote)) return wrote;
    if (!backoff.CanRetry()) return wrote;
    std::chrono::microseconds delay = backoff.NextDelay();
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  if (retries != nullptr) *retries += backoff.retries();
  return Status::OK();
}

Status Database::Checkpoint(CheckpointStats* stats) {
  GOOD_RETURN_NOT_OK(CheckWritable());
  FileEnv* env = options_.env;
  CheckpointStats local;

  Manifest next;
  next.next_seq = next_seq_;
  next.file_number = have_manifest_ ? manifest_.file_number : 1;
  next.node_frontier = db_.instance.NodeFrontier();

  // Scheme file: rewritten only when its serialized text changed.
  std::string scheme_text = program::WriteScheme(db_.scheme);
  if (have_manifest_ && scheme_text == last_scheme_text_) {
    next.scheme = manifest_.scheme;
  } else {
    std::string framed;
    AppendRecordTo(&framed, scheme_text);
    next.scheme.file = SchemeFileName(next.file_number++);
    next.scheme.crc = Crc32(framed);
    next.scheme.bytes = framed.size();
    GOOD_RETURN_NOT_OK(
        WriteFileWithRetry(next.scheme.file, framed, &local.io_retries));
    local.scheme_written = true;
    local.bytes_written += framed.size();
  }

  // Quarantined partitions are carried forward untouched — entry and
  // file bytes alike — so offline repair stays possible. (Their classes
  // cannot have been dirtied: every write path rejects them.)
  for (const auto& [cls_name, entry] : manifest_.partitions) {
    if (quarantined_.count(Sym(cls_name)) > 0) {
      next.partitions.emplace(cls_name, entry);
      ++local.partitions_quarantined;
    }
  }

  // Healthy classes: clean entries are carried forward by reference,
  // dirty or new ones get a fresh immutable file, and entries whose
  // class no longer holds nodes are dropped. File numbers only become
  // durable when the manifest commits, so the files of a *crashed*
  // checkpoint are simply overwritten by the next attempt.
  const std::unordered_set<Symbol>& dirty = db_.instance.dirty_classes();
  std::vector<Symbol> labels = db_.scheme.object_labels();
  {
    std::vector<Symbol> printable = db_.scheme.printable_labels();
    labels.insert(labels.end(), printable.begin(), printable.end());
  }
  for (Symbol cls : labels) {
    if (quarantined_.count(cls) > 0) continue;
    const std::string name = SymName(cls);
    auto it = manifest_.partitions.find(name);
    if (have_manifest_ && it != manifest_.partitions.end() &&
        dirty.count(cls) == 0) {
      next.partitions.emplace(name, it->second);
      ++local.partitions_carried;
      continue;
    }
    if (db_.instance.CountNodesWithLabel(cls) == 0) continue;
    PartitionEntry entry;
    std::string framed = EncodePartition(db_.scheme, db_.instance, cls,
                                         &entry.nodes, &entry.edges);
    entry.file = PartitionFileName(next.file_number++);
    entry.crc = Crc32(framed);
    entry.bytes = framed.size();
    GOOD_RETURN_NOT_OK(
        WriteFileWithRetry(entry.file, framed, &local.io_retries));
    local.bytes_written += framed.size();
    next.partitions.emplace(name, std::move(entry));
    ++local.partitions_written;
  }

  std::string manifest_bytes = EncodeManifest(next);
  GOOD_RETURN_NOT_OK(
      WriteFileWithRetry("manifest.tmp", manifest_bytes, &local.io_retries));
  local.bytes_written += manifest_bytes.size();

  // Atomic publish, keeping the displaced manifest as the salvage
  // fallback. A crash on either side of either rename leaves a
  // recoverable chain: before the first, the old manifest is current;
  // between them, recovery finds manifest.prev plus the untruncated
  // log; after the second, the new manifest is current. When no
  // current manifest exists (recovery in that very window), the
  // displacement is skipped so manifest.prev is never consumed — a
  // crashed checkpoint on top of a crashed checkpoint still leaves a
  // complete chain.
  const std::string man = ManifestPath(dir_);
  if (env->FileExists(man)) {
    GOOD_RETURN_NOT_OK(env->RenameFile(man, PreviousManifestPath(dir_)));
  }
  GOOD_RETURN_NOT_OK(env->RenameFile(dir_ + "/manifest.tmp", man));
  GOOD_RETURN_NOT_OK(env->SyncDir(dir_));

  manifest_ = std::move(next);
  have_manifest_ = true;
  last_scheme_text_ = std::move(scheme_text);
  db_.instance.ClearDirtyClasses();

  // Manifest durable — the log is now redundant. A crash before the
  // truncation below is handled at recovery by sequence-number skip.
  if (writer_ != nullptr) {
    (void)writer_->Close();
    writer_.reset();
  }
  Status reset = OpenWalForAppend(0);
  if (!reset.ok()) {
    poisoned_ = true;  // no log to append to
    return reset;
  }
  log_ops_ = 0;
  ops_since_checkpoint_ = 0;

  // Best-effort sweep of files neither manifest references (including
  // a migrated legacy snapshot). Failures are ignored: the sweep is
  // idempotent and the next checkpoint retries it.
  RemoveUnreferencedFiles();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

void Database::RemoveUnreferencedFiles() {
  FileEnv* env = options_.env;
  std::unordered_set<std::string> referenced;
  // Conservative: when either manifest exists but cannot be decoded,
  // skip the sweep entirely — better to leak files than to delete ones
  // a manifest might still name.
  const auto collect = [&](const std::string& path) -> bool {
    if (!env->FileExists(path)) return true;
    auto bytes = env->ReadFileToString(path);
    if (!bytes.ok()) return false;
    auto decoded = DecodeManifest(*bytes);
    if (!decoded.ok()) return false;
    referenced.insert(decoded->scheme.file);
    for (const auto& [cls, entry] : decoded->partitions) {
      referenced.insert(entry.file);
    }
    return true;
  };
  if (!collect(ManifestPath(dir_)) || !collect(PreviousManifestPath(dir_))) {
    return;
  }
  auto names = env->ListDir(dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    const bool checkpoint_file =
        (name.starts_with("part-") || name.starts_with("scheme-")) &&
        name.ends_with(".good");
    if (!checkpoint_file || referenced.count(name) > 0) continue;
    (void)env->RemoveFile(dir_ + "/" + name);
  }
  // A committed manifest supersedes the legacy monolithic snapshot.
  for (const std::string& legacy :
       {SnapshotPath(dir_), PreviousSnapshotPath(dir_),
        dir_ + "/snapshot.tmp"}) {
    if (env->FileExists(legacy)) (void)env->RemoveFile(legacy);
  }
}

Status Database::SyncPartitionQuarantineSidecar() {
  FileEnv* env = options_.env;
  const std::string path = PartitionQuarantinePath(dir_);
  if (quarantined_.empty()) {
    if (env->FileExists(path)) {
      GOOD_RETURN_NOT_OK(env->RemoveFile(path));
    }
    return Status::OK();
  }
  std::ostringstream os;
  os << "# Partitions quarantined at recovery. Their files are left on\n"
     << "# disk byte-for-byte for inspection and repair (good_dbtool);\n"
     << "# reads and writes touching these classes return kUnavailable.\n";
  for (const PartitionLoadResult& p : recovery_.partitions) {
    if (p.state != PartitionState::kQuarantined) continue;
    os << "partition " << program::text::WriteName(p.class_name) << " "
       << program::text::Quote(p.file) << " "
       << program::text::Quote(p.detail) << ";\n";
  }
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path, /*truncate=*/true));
  GOOD_RETURN_NOT_OK(file->Append(os.str()));
  GOOD_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

ScrubReport Database::Scrub(const ScrubOptions& options) const {
  return storage::Scrub(db_.scheme, db_.instance, options);
}

Status Database::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (writer_ == nullptr) return Status::OK();
  Status synced = writer_->Sync();
  Status closed = writer_->Close();
  writer_.reset();
  if (!synced.ok()) return synced;
  return closed;
}

}  // namespace good::storage
