#include "storage/database.h"

#include <thread>
#include <utility>

#include "program/op_serialize.h"
#include "program/serialize.h"

namespace good::storage {
namespace {

const method::MethodRegistry& EmptyRegistry() {
  static const method::MethodRegistry* empty = new method::MethodRegistry();
  return *empty;
}

}  // namespace

std::string Database::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.good";
}

std::string Database::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

Database::Database(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.env == nullptr) options_.env = FileEnv::Default();
}

const method::MethodRegistry* Database::Registry() const {
  return options_.methods != nullptr ? options_.methods : &EmptyRegistry();
}

Result<Database> Database::Open(const std::string& dir, Options options) {
  return Open(dir, program::Database{}, std::move(options));
}

Result<Database> Database::Open(const std::string& dir,
                                program::Database initial, Options options) {
  Database db(dir, options);
  FileEnv* env = db.options_.env;
  GOOD_RETURN_NOT_OK(env->CreateDirs(dir));
  if (env->FileExists(SnapshotPath(dir))) {
    GOOD_RETURN_NOT_OK(db.LoadSnapshot());
    uint64_t valid_bytes = 0;
    GOOD_RETURN_NOT_OK(db.ReplayWal(&valid_bytes));
    GOOD_RETURN_NOT_OK(db.OpenWalForAppend(valid_bytes));
  } else {
    // No snapshot. An intact log record would mean operations were
    // durably acknowledged but their base state is gone.
    const std::string wal = WalPath(dir);
    if (env->FileExists(wal)) {
      GOOD_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(wal));
      GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(bytes));
      if (!contents.records.empty()) {
        return Status::DataLoss("log " + wal +
                                " holds operations but the snapshot " +
                                "they apply to is missing");
      }
    }
    db.db_ = std::move(initial);
    db.recovery_.created = true;
    // The bootstrap checkpoint persists the initial state and creates
    // the (empty) log.
    GOOD_RETURN_NOT_OK(db.Checkpoint());
  }
  return db;
}

Status Database::LoadSnapshot() {
  const std::string path = SnapshotPath(dir_);
  GOOD_ASSIGN_OR_RETURN(std::string bytes,
                        options_.env->ReadFileToString(path));
  auto contents = ReadLogRecords(bytes);
  if (!contents.ok()) {
    return Status::DataLoss("snapshot " + path +
                            " is corrupt: " + contents.status().message());
  }
  if (contents->records.size() != 1 || contents->dropped_torn_tail ||
      contents->valid_bytes != bytes.size()) {
    return Status::DataLoss("snapshot " + path +
                            " is damaged (expected exactly one intact "
                            "record)");
  }
  std::string_view payload = contents->records[0];
  auto seq = ConsumeFixed64(&payload);
  if (!seq.ok()) {
    return Status::DataLoss("snapshot " + path + " has no sequence number");
  }
  auto parsed = program::ParseDatabase(std::string(payload));
  if (!parsed.ok()) {
    return Status::DataLoss("snapshot " + path + " does not parse: " +
                            parsed.status().ToString());
  }
  db_ = std::move(*parsed);
  next_seq_ = *seq;
  return Status::OK();
}

Status Database::ReplayWal(uint64_t* valid_bytes) {
  *valid_bytes = 0;
  const std::string wal = WalPath(dir_);
  if (!options_.env->FileExists(wal)) return Status::OK();
  GOOD_ASSIGN_OR_RETURN(std::string bytes,
                        options_.env->ReadFileToString(wal));
  GOOD_ASSIGN_OR_RETURN(LogContents contents, ReadLogRecords(bytes));
  *valid_bytes = contents.valid_bytes;
  recovery_.dropped_torn_tail = contents.dropped_torn_tail;
  const uint64_t snapshot_seq = next_seq_;
  for (size_t i = 0; i < contents.records.size(); ++i) {
    std::string_view payload = contents.records[i];
    auto seq = ConsumeFixed64(&payload);
    if (!seq.ok()) {
      return Status::DataLoss("log record " + std::to_string(i) +
                              " has no sequence number");
    }
    if (*seq < snapshot_seq) {
      // Residue from a checkpoint that renamed its snapshot but crashed
      // before truncating the log; the snapshot already contains it.
      if (recovery_.ops_replayed > 0) {
        return Status::DataLoss("log record " + std::to_string(i) +
                                " is out of sequence order");
      }
      ++recovery_.ops_skipped;
      continue;
    }
    if (*seq != next_seq_) {
      return Status::DataLoss(
          "log sequence gap at record " + std::to_string(i) + ": expected " +
          std::to_string(next_seq_) + ", found " + std::to_string(*seq));
    }
    auto op = program::ParseOperation(db_.scheme, std::string(payload));
    if (!op.ok()) {
      return Status::DataLoss("log record " + std::to_string(i) +
                              " does not parse: " + op.status().ToString());
    }
    method::Executor exec(Registry(), options_.exec);
    Status applied = exec.Execute(*op, &db_.scheme, &db_.instance);
    if (!applied.ok()) {
      return Status::DataLoss("log record " + std::to_string(i) +
                              " does not replay: " + applied.ToString());
    }
    ++next_seq_;
    ++recovery_.ops_replayed;
  }
  log_ops_ = contents.records.size();
  ops_since_checkpoint_ = recovery_.ops_replayed;
  return Status::OK();
}

Status Database::OpenWalForAppend(uint64_t valid_bytes) {
  const std::string wal = WalPath(dir_);
  GOOD_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      options_.env->NewWritableFile(wal, /*truncate=*/valid_bytes == 0));
  if (valid_bytes > 0) {
    GOOD_ASSIGN_OR_RETURN(uint64_t size, options_.env->FileSize(wal));
    if (size != valid_bytes) {
      // Cut off the torn tail so new appends continue the valid prefix.
      GOOD_RETURN_NOT_OK(file->Truncate(valid_bytes));
    }
  }
  writer_ = std::make_unique<LogWriter>(std::move(file), valid_bytes,
                                        options_.sync_every_append);
  return Status::OK();
}

Status Database::Apply(const method::Operation& op, ops::ApplyStats* stats) {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "database is poisoned by an earlier unrecoverable log failure; "
        "reopen to recover");
  }
  GOOD_ASSIGN_OR_RETURN(std::string text,
                        program::WriteOperation(db_.scheme, op));
  std::string payload;
  payload.reserve(sizeof(uint64_t) + text.size());
  AppendFixed64(&payload, next_seq_);
  payload += text;
  // Write-ahead: the operation reaches the log before the instance.
  // Transient append faults are retried with exponential backoff; every
  // failed attempt's torn bytes are truncated away before the next try
  // so the record never lands twice.
  size_t retries = 0;
  while (true) {
    Status logged = writer_->AppendRecord(payload);
    if (logged.ok()) break;
    Status undone = writer_->UndoLastAppend();
    if (!undone.ok()) {
      // The log may now disagree with memory; refuse further writes.
      poisoned_ = true;
      return logged;
    }
    if (retries >= options_.wal_retry_limit) return logged;
    ++retries;
    if (options_.wal_retry_backoff.count() > 0) {
      std::this_thread::sleep_for(options_.wal_retry_backoff *
                                  (1 << (retries - 1)));
    }
  }
  if (stats != nullptr) stats->wal_retries += retries;
  method::Executor exec(Registry(), options_.exec);
  Status applied = exec.Execute(op, &db_.scheme, &db_.instance, stats);
  if (!applied.ok()) return Undo(std::move(applied));
  ++next_seq_;
  ++log_ops_;
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every) {
    GOOD_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status Database::ApplyAll(const std::vector<method::Operation>& ops,
                          ops::ApplyStats* stats) {
  for (const method::Operation& op : ops) {
    GOOD_RETURN_NOT_OK(Apply(op, stats));
  }
  return Status::OK();
}

Status Database::Undo(Status cause) {
  Status undone = writer_->UndoLastAppend();
  if (!undone.ok()) {
    // The log may now disagree with memory; refuse further writes.
    poisoned_ = true;
  }
  return cause;
}

Status Database::Checkpoint() {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "database is poisoned by an earlier unrecoverable log failure");
  }
  FileEnv* env = options_.env;
  std::string payload;
  AppendFixed64(&payload, next_seq_);
  payload += program::WriteDatabase(db_);
  std::string framed;
  framed.reserve(kRecordHeaderSize + payload.size());
  AppendRecordTo(&framed, payload);

  const std::string tmp = dir_ + "/snapshot.tmp";
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(tmp, /*truncate=*/true));
  GOOD_RETURN_NOT_OK(file->Append(framed));
  GOOD_RETURN_NOT_OK(file->Sync());
  GOOD_RETURN_NOT_OK(file->Close());
  // Atomic publish; a crash on either side of the rename leaves a
  // consistent (old or new) snapshot.
  GOOD_RETURN_NOT_OK(env->RenameFile(tmp, SnapshotPath(dir_)));
  GOOD_RETURN_NOT_OK(env->SyncDir(dir_));

  // Snapshot durable — the log is now redundant. A crash before the
  // truncation below is handled at recovery by sequence-number skip.
  if (writer_ != nullptr) {
    (void)writer_->Close();
    writer_.reset();
  }
  Status reset = OpenWalForAppend(0);
  if (!reset.ok()) {
    poisoned_ = true;  // no log to append to
    return reset;
  }
  log_ops_ = 0;
  ops_since_checkpoint_ = 0;
  return Status::OK();
}

Status Database::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (writer_ == nullptr) return Status::OK();
  Status synced = writer_->Sync();
  Status closed = writer_->Close();
  writer_.reset();
  if (!synced.ok()) return synced;
  return closed;
}

}  // namespace good::storage
