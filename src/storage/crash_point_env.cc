#include "storage/crash_point_env.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace good::storage {

std::string_view CrashModeToString(CrashMode mode) {
  switch (mode) {
    case CrashMode::kCutBeforeOp:
      return "cut-before-op";
    case CrashMode::kTornWrite:
      return "torn-write";
    case CrashMode::kLoseUnsynced:
      return "lose-unsynced";
  }
  return "unknown";
}

/// Tracks the logical and last-synced sizes of one file so a
/// lose-unsynced crash can roll the durable bytes back.
class CrashPointFile final : public WritableFile {
 public:
  CrashPointFile(std::unique_ptr<WritableFile> base, CrashPointEnv* env,
                 uint64_t size)
      : base_(std::move(base)), env_(env), size_(size), synced_(size) {
    env_->open_files_.push_back(this);
  }

  ~CrashPointFile() override {
    auto& files = env_->open_files_;
    files.erase(std::remove(files.begin(), files.end(), this), files.end());
  }

  Status Append(std::string_view data) override {
    if (env_->crashed_) return env_->DeadIfCrashed();
    const size_t n = ++env_->ops_;
    if (env_->schedule_.crash_at != 0 && n == env_->schedule_.crash_at &&
        env_->schedule_.mode == CrashMode::kTornWrite) {
      // Persist a prefix as durable sectors, then die. No error path in
      // the caller runs — the torn bytes stay on disk for the next
      // incarnation to find.
      const CrashSchedule& s = env_->schedule_;
      const size_t keep = s.torn_keep_den == 0
                              ? data.size() / 2
                              : data.size() * s.torn_keep_num /
                                    s.torn_keep_den;
      Status wrote = base_->Append(data.substr(0, keep));
      if (wrote.ok()) {
        size_ += keep;
        synced_ = std::max(synced_, size_);  // treated as durable
      }
      env_->FireCrash();
      return Status::Unavailable("simulated crash: torn write at boundary " +
                                 std::to_string(n));
    }
    if (env_->schedule_.crash_at != 0 && n == env_->schedule_.crash_at) {
      env_->FireCrash();
      return Status::Unavailable("simulated crash at boundary " +
                                 std::to_string(n));
    }
    Status s = base_->Append(data);
    if (s.ok()) size_ += data.size();
    return s;
  }

  Status Sync() override {
    GOOD_RETURN_NOT_OK(env_->Boundary());
    Status s = base_->Sync();
    if (s.ok()) synced_ = size_;
    return s;
  }

  Status Truncate(uint64_t size) override {
    GOOD_RETURN_NOT_OK(env_->Boundary());
    Status s = base_->Truncate(size);
    if (s.ok()) {
      size_ = size;
      synced_ = std::min(synced_, size);
    }
    return s;
  }

  Status Close() override {
    // Not a boundary: closing mutates no data. A close after the crash
    // is the destructor of a dead process's fd table — quietly allowed.
    return base_->Close();
  }

  /// The lose-unsynced damage model: whatever was appended but never
  /// synced evaporates with the page cache.
  void DropUnsynced() {
    if (synced_ < size_) {
      (void)base_->Truncate(synced_);
      size_ = synced_;
    }
  }

 private:
  std::unique_ptr<WritableFile> base_;
  CrashPointEnv* env_;
  uint64_t size_;
  uint64_t synced_;
};

CrashPointEnv::CrashPointEnv(FileEnv* base)
    : base_(base != nullptr ? base : FileEnv::Default()) {}

CrashPointEnv::~CrashPointEnv() = default;

void CrashPointEnv::SetSchedule(const CrashSchedule& schedule) {
  schedule_ = schedule;
  ops_ = 0;
  crashed_ = false;
}

Status CrashPointEnv::DeadIfCrashed() const {
  if (crashed_) {
    return Status::Unavailable("simulated crash: process is dead");
  }
  return Status::OK();
}

Status CrashPointEnv::Boundary() {
  GOOD_RETURN_NOT_OK(DeadIfCrashed());
  const size_t n = ++ops_;
  if (schedule_.crash_at != 0 && n == schedule_.crash_at) {
    FireCrash();
    return Status::Unavailable("simulated crash at boundary " +
                               std::to_string(n));
  }
  return Status::OK();
}

void CrashPointEnv::FireCrash() {
  crashed_ = true;
  if (schedule_.mode == CrashMode::kLoseUnsynced) {
    for (CrashPointFile* file : open_files_) file->DropUnsynced();
  }
}

Result<std::unique_ptr<WritableFile>> CrashPointEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  GOOD_RETURN_NOT_OK(DeadIfCrashed());
  if (truncate) {
    // Destroys existing bytes — a mutating boundary.
    GOOD_RETURN_NOT_OK(Boundary());
  }
  uint64_t size = 0;
  if (!truncate && base_->FileExists(path)) {
    GOOD_ASSIGN_OR_RETURN(size, base_->FileSize(path));
  }
  GOOD_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<CrashPointFile>(std::move(file), this, size));
}

Result<std::string> CrashPointEnv::ReadFileToString(const std::string& path) {
  GOOD_RETURN_NOT_OK(DeadIfCrashed());
  return base_->ReadFileToString(path);
}

bool CrashPointEnv::FileExists(const std::string& path) {
  return !crashed_ && base_->FileExists(path);
}

Result<uint64_t> CrashPointEnv::FileSize(const std::string& path) {
  GOOD_RETURN_NOT_OK(DeadIfCrashed());
  return base_->FileSize(path);
}

Status CrashPointEnv::RenameFile(const std::string& from,
                                 const std::string& to) {
  GOOD_RETURN_NOT_OK(Boundary());
  return base_->RenameFile(from, to);
}

Status CrashPointEnv::RemoveFile(const std::string& path) {
  GOOD_RETURN_NOT_OK(Boundary());
  return base_->RemoveFile(path);
}

Result<std::vector<std::string>> CrashPointEnv::ListDir(
    const std::string& path) {
  // Read-only: not a crash boundary, but a dead process cannot list.
  GOOD_RETURN_NOT_OK(DeadIfCrashed());
  return base_->ListDir(path);
}

Status CrashPointEnv::CreateDirs(const std::string& path) {
  GOOD_RETURN_NOT_OK(DeadIfCrashed());
  return base_->CreateDirs(path);
}

Status CrashPointEnv::SyncDir(const std::string& path) {
  GOOD_RETURN_NOT_OK(Boundary());
  return base_->SyncDir(path);
}

}  // namespace good::storage
