#include "storage/wal.h"

#include <limits>

#include "storage/crc32.h"

namespace good::storage {

void AppendFixed32(std::string* dst, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    dst->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

uint32_t DecodeFixed32(std::string_view bytes) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return value;
}

void AppendFixed64(std::string* dst, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    dst->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

Result<uint64_t> ConsumeFixed64(std::string_view* input) {
  if (input->size() < 8) {
    return Status::InvalidArgument("fixed64 needs 8 bytes, have " +
                                   std::to_string(input->size()));
  }
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>((*input)[i]);
  }
  input->remove_prefix(8);
  return value;
}

void AppendRecordTo(std::string* dst, std::string_view payload) {
  AppendFixed32(dst, static_cast<uint32_t>(payload.size()));
  AppendFixed32(dst, Crc32(payload));
  dst->append(payload);
}

Result<LogContents> ReadLogRecords(std::string_view file_bytes) {
  LogContents out;
  uint64_t pos = 0;
  const uint64_t total = file_bytes.size();
  while (pos < total) {
    const uint64_t remaining = total - pos;
    if (remaining < kRecordHeaderSize) {
      out.dropped_torn_tail = true;  // partial header at EOF
      break;
    }
    const uint32_t length = DecodeFixed32(file_bytes.substr(pos, 4));
    const uint32_t stored_crc = DecodeFixed32(file_bytes.substr(pos + 4, 4));
    if (length > remaining - kRecordHeaderSize) {
      out.dropped_torn_tail = true;  // payload cut off at EOF
      break;
    }
    std::string_view payload =
        file_bytes.substr(pos + kRecordHeaderSize, length);
    if (Crc32(payload) != stored_crc) {
      if (pos + kRecordHeaderSize + length == total) {
        out.dropped_torn_tail = true;  // checksum-failing final record
        break;
      }
      return Status::DataLoss(
          "record at offset " + std::to_string(pos) +
          " failed its checksum with " +
          std::to_string(total - pos - kRecordHeaderSize - length) +
          " bytes following it");
    }
    out.records.emplace_back(payload);
    pos += kRecordHeaderSize + length;
    out.valid_bytes = pos;
  }
  return out;
}

Status LogWriter::AppendRecord(std::string_view payload) {
  std::string framed;
  framed.reserve(kRecordHeaderSize + payload.size());
  AppendRecordTo(&framed, payload);
  last_record_offset_ = size_;
  Status s = file_->Append(framed);
  if (!s.ok()) return s;
  size_ += framed.size();
  if (sync_each_) {
    GOOD_RETURN_NOT_OK(file_->Sync());
  }
  return Status::OK();
}

Status LogWriter::UndoLastAppend() {
  GOOD_RETURN_NOT_OK(file_->Truncate(last_record_offset_));
  size_ = last_record_offset_;
  return Status::OK();
}

Status LogWriter::TruncateTo(uint64_t offset) {
  if (offset > size_) {
    return Status::InvalidArgument(
        "TruncateTo(" + std::to_string(offset) + ") is past the log end (" +
        std::to_string(size_) + ")");
  }
  GOOD_RETURN_NOT_OK(file_->Truncate(offset));
  size_ = offset;
  if (last_record_offset_ > offset) last_record_offset_ = offset;
  return Status::OK();
}

}  // namespace good::storage
