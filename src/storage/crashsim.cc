#include "storage/crashsim.h"

#include <algorithm>
#include <filesystem>

#include "graph/isomorphism.h"
#include "program/serialize.h"
#include "storage/database.h"

namespace good::storage {
namespace {

const method::MethodRegistry& EmptyRegistry() {
  static const method::MethodRegistry* empty = new method::MethodRegistry();
  return *empty;
}

/// Applies the workload through one env; `acked` counts the Apply
/// calls that returned OK before the first failure. The call sequence
/// (Open, Apply*, Close) is identical in the counting run and every
/// crash run, so boundary numbering lines up across runs.
struct WorkloadRun {
  size_t acked = 0;
  bool opened = false;
};

WorkloadRun RunWorkload(const CrashSimOptions& options,
                        const std::string& dir, FileEnv* env) {
  WorkloadRun run;
  Options o;
  o.env = env;
  o.methods = options.methods;
  o.exec = options.exec;
  o.checkpoint_every = options.checkpoint_every;
  o.sync_every_append = options.sync_every_append;
  // A real crash leaves torn bytes on disk because no cleanup code
  // runs. Retrying (which truncates them) would mask exactly the states
  // recovery must handle, so the crashing process never retries.
  o.wal_retry_limit = 0;
  o.wal_retry_backoff = std::chrono::microseconds{0};
  auto db = Database::Open(dir, options.initial, o);
  if (!db.ok()) return run;
  run.opened = true;
  for (const method::Operation& op : options.workload) {
    if (!db->Apply(op).ok()) break;
    ++run.acked;
  }
  (void)db->Close();
  return run;
}

}  // namespace

std::string CrashSimReport::ToString() const {
  std::string out = std::to_string(boundaries) + " boundaries, " +
                    std::to_string(schedules_explored) + " schedules (" +
                    std::to_string(crashes_simulated) + " crashes), " +
                    std::to_string(recovered_ok) + " recovered ok, " +
                    std::to_string(divergences.size()) + " divergences";
  if (!complete) out += " [INCOMPLETE]";
  return out;
}

Result<CrashSimReport> ExploreCrashPoints(const CrashSimOptions& options) {
  if (options.dir_prefix.empty()) {
    return Status::InvalidArgument("crashsim needs a scratch dir_prefix");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir_prefix, ec);
  if (ec) {
    return Status::Internal("cannot create " + options.dir_prefix + ": " +
                            ec.message());
  }
  const method::MethodRegistry* registry =
      options.methods != nullptr ? options.methods : &EmptyRegistry();

  // Oracle: pure in-memory replay. oracle[m] is the database after the
  // first m workload operations; no file system is involved, so any
  // disagreement with recovery is the storage engine's fault.
  std::vector<program::Database> oracle;
  oracle.reserve(options.workload.size() + 1);
  oracle.push_back(options.initial);
  for (size_t i = 0; i < options.workload.size(); ++i) {
    program::Database next = oracle.back();
    method::Executor exec(registry, options.exec);
    Status applied =
        exec.Execute(options.workload[i], &next.scheme, &next.instance);
    if (!applied.ok()) {
      return Status::InvalidArgument(
          "crashsim workload op " + std::to_string(i) +
          " fails even without crashes: " + applied.ToString());
    }
    oracle.push_back(std::move(next));
  }

  CrashSimReport report;

  // Crash-free counting run establishes the exploration range.
  {
    const std::string dir = options.dir_prefix + "/count";
    std::filesystem::remove_all(dir, ec);
    CrashPointEnv env;
    env.SetSchedule(CrashSchedule{});  // crash_at = 0: never fires
    WorkloadRun run = RunWorkload(options, dir, &env);
    if (!run.opened || run.acked != options.workload.size()) {
      return Status::InvalidArgument(
          "crashsim workload does not run clean (acked " +
          std::to_string(run.acked) + " of " +
          std::to_string(options.workload.size()) + ")");
    }
    report.boundaries = env.ops_seen();
    std::filesystem::remove_all(dir, ec);
  }

  for (CrashMode mode : options.modes) {
    for (size_t k = 1; k <= report.boundaries; ++k) {
      if (!options.deadline.Check().ok()) return report;  // incomplete

      const std::string dir = options.dir_prefix + "/" +
                              std::string(CrashModeToString(mode)) + "_" +
                              std::to_string(k);
      std::filesystem::remove_all(dir, ec);
      CrashPointEnv env;
      CrashSchedule schedule;
      schedule.crash_at = k;
      schedule.mode = mode;
      env.SetSchedule(schedule);
      WorkloadRun run = RunWorkload(options, dir, &env);
      ++report.schedules_explored;
      if (env.crashed()) ++report.crashes_simulated;

      auto diverge = [&](std::string detail) {
        report.divergences.push_back(
            CrashSimDivergence{schedule, run.acked, std::move(detail)});
      };

      // The rebooted process: a clean default env, strict recovery.
      Options reopen;
      reopen.methods = options.methods;
      reopen.exec = options.exec;
      auto recovered = Database::Open(dir, options.initial, reopen);
      if (!recovered.ok()) {
        diverge("reopen after crash failed: " +
                recovered.status().ToString());
        std::filesystem::remove_all(dir, ec);
        continue;
      }

      // Committed-prefix window (see file comment in crashsim.h).
      const size_t hi = std::min(run.acked + 1, options.workload.size());
      const size_t lo = (mode == CrashMode::kLoseUnsynced &&
                         !options.sync_every_append)
                            ? 0
                            : run.acked;
      bool matched = false;
      for (size_t m = lo; m <= hi && !matched; ++m) {
        matched = program::WriteScheme(recovered->scheme()) ==
                      program::WriteScheme(oracle[m].scheme) &&
                  graph::IsIsomorphic(recovered->instance(),
                                      oracle[m].instance);
      }
      if (!matched) {
        diverge("recovered state matches no oracle prefix in [" +
                std::to_string(lo) + ", " + std::to_string(hi) +
                "]; recovery: " + recovered->recovery().ToString());
      } else {
        ScrubReport scrub = recovered->Scrub();
        if (!scrub.clean()) {
          diverge("recovered instance fails scrub: " + scrub.problems[0]);
        } else {
          ++report.recovered_ok;
        }
      }
      (void)recovered->Close();
      std::filesystem::remove_all(dir, ec);
    }
  }
  report.complete = true;
  return report;
}

}  // namespace good::storage
