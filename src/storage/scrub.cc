#include "storage/scrub.h"

#include <algorithm>

namespace good::storage {
namespace {

/// Deadline poll stride: cheap enough to be invisible, frequent enough
/// that a slice overshoots its budget by at most a few nodes.
constexpr size_t kPollStride = 64;

bool Contains(const std::vector<graph::NodeId>& list, graph::NodeId node) {
  return std::find(list.begin(), list.end(), node) != list.end();
}

}  // namespace

void Scrubber::Reset() {
  report_ = ScrubReport{};
  cursor_ = 0;
  alive_seen_ = 0;
  out_edges_seen_ = 0;
  label_census_.clear();
}

void Scrubber::ScrubNode(graph::NodeId node) {
  const graph::Instance& g = *instance_;
  const schema::Scheme& s = *scheme_;
  const std::string name = "node #" + std::to_string(node.id);
  auto problem = [&](std::string text) {
    report_.problems.push_back(name + " " + std::move(text));
  };

  const Symbol label = g.LabelOf(node);
  ++alive_seen_;
  ++label_census_[label];
  const size_t problems_before = report_.problems.size();
  const size_t edges_before = report_.edges_scrubbed;

  // Scheme conformance of the node itself.
  if (!s.IsNodeLabel(label)) {
    problem("label '" + SymName(label) + "' is not a node label");
  } else if (s.IsPrintableLabel(label)) {
    if (g.HasPrintValue(node)) {
      const Value& value = *g.PrintValueOf(node);
      auto domain = s.DomainOf(label);
      if (!domain.ok()) {
        problem("printable label without a domain: " +
                domain.status().ToString());
      } else if (value.kind() != *domain) {
        problem("print value outside the domain of '" + SymName(label) + "'");
      }
      // Printable dedup: the (label, value) map must resolve to this
      // very node — a duplicate or a stale map entry both surface here.
      auto dedup = g.FindPrintable(label, value);
      if (!dedup.has_value()) {
        problem("missing from the printable dedup index");
      } else if (*dedup != node) {
        problem("printable dedup index resolves to node #" +
                std::to_string(dedup->id) + " instead");
      }
    }
  } else if (g.HasPrintValue(node)) {
    problem("is an object node but carries a print value");
  }

  // Outgoing edges: typing, uniqueness, and agreement of all three
  // redundant indexes (edge set, out index, target's in index).
  std::unordered_map<Symbol, size_t> out_census, in_census;
  std::unordered_map<Symbol, Symbol> successor_label;
  for (const auto& [edge_label, target] : g.OutEdges(node)) {
    ++report_.edges_scrubbed;
    ++out_edges_seen_;
    ++out_census[edge_label];
    if (!g.HasNode(target)) {
      problem("has a '" + SymName(edge_label) + "' edge to dead node #" +
              std::to_string(target.id));
      continue;
    }
    if (!s.HasTriple(label, edge_label, g.LabelOf(target))) {
      problem("edge '" + SymName(edge_label) +
              "' is not licensed by any scheme triple");
    }
    auto [it, inserted] =
        successor_label.emplace(edge_label, g.LabelOf(target));
    if (!inserted && it->second != g.LabelOf(target)) {
      problem("has '" + SymName(edge_label) +
              "' successors with unequal labels");
    }
    if (s.IsFunctionalEdgeLabel(edge_label) &&
        out_census[edge_label] > 1) {
      problem("has multiple functional '" + SymName(edge_label) + "' edges");
    }
    if (!g.HasEdge(node, edge_label, target)) {
      problem("edge '" + SymName(edge_label) + "' missing from the edge set");
    }
    if (!Contains(g.OutTargets(node, edge_label), target)) {
      problem("edge '" + SymName(edge_label) + "' missing from the out index");
    }
    if (!Contains(g.InSources(target, edge_label), node)) {
      problem("edge '" + SymName(edge_label) +
              "' missing from the target's in index");
    }
  }
  // Incoming edges: every recorded predecessor must know about us.
  for (const auto& [source, edge_label] : g.InEdges(node)) {
    ++in_census[edge_label];
    if (!g.HasNode(source)) {
      problem("has a '" + SymName(edge_label) + "' edge from dead node #" +
              std::to_string(source.id));
      continue;
    }
    if (!g.HasEdge(source, edge_label, node)) {
      problem("incoming '" + SymName(edge_label) +
              "' edge missing from the edge set");
    }
    if (!Contains(g.OutTargets(source, edge_label), node)) {
      problem("incoming '" + SymName(edge_label) +
              "' edge missing from the source's out index");
    }
  }
  // Cardinality agreement catches *stale* index entries — an index can
  // contain every listed edge and still be too big.
  for (const auto& [edge_label, count] : out_census) {
    if (g.OutDegree(node, edge_label) != count) {
      problem("out index size disagrees for '" + SymName(edge_label) + "'");
    }
  }
  for (const auto& [edge_label, count] : in_census) {
    if (g.InDegree(node, edge_label) != count) {
      problem("in index size disagrees for '" + SymName(edge_label) + "'");
    }
  }
  // Label index membership.
  if (!Contains(g.NodesWithLabel(label), node)) {
    problem("missing from the label index for '" + SymName(label) + "'");
  }

  // Attribute this node's totals to its class — the snapshot-partition
  // unit — so a red pass names which partition to suspect.
  ClassScrubOutcome& outcome = report_.per_class[SymName(label)];
  ++outcome.nodes_scrubbed;
  outcome.edges_scrubbed += report_.edges_scrubbed - edges_before;
  outcome.problems += report_.problems.size() - problems_before;
}

Status Scrubber::Step(const ScrubOptions& options) {
  if (report_.complete) return Status::OK();
  const std::vector<graph::NodeId> nodes = instance_->AllNodes();
  auto it = std::lower_bound(
      nodes.begin(), nodes.end(), graph::NodeId{cursor_},
      [](graph::NodeId a, graph::NodeId b) { return a.id < b.id; });
  size_t scrubbed_this_call = 0;
  for (; it != nodes.end(); ++it) {
    if (options.deadline.armed() && scrubbed_this_call % kPollStride == 0) {
      Status cutoff = options.deadline.Check();
      if (!cutoff.ok()) {
        cursor_ = it->id;  // resume here next call
        return cutoff;
      }
    }
    if (options.max_nodes != 0 && scrubbed_this_call >= options.max_nodes) {
      cursor_ = it->id;
      return Status::OK();  // paused, report_.complete stays false
    }
    ScrubNode(*it);
    ++report_.nodes_scrubbed;
    ++scrubbed_this_call;
  }
  cursor_ = static_cast<uint32_t>(-1);

  // Whole-instance totals (exact when the pass ran without concurrent
  // mutation; see file comment).
  if (alive_seen_ != instance_->num_nodes()) {
    report_.problems.push_back(
        "alive-node count disagrees: walked " + std::to_string(alive_seen_) +
        ", instance reports " + std::to_string(instance_->num_nodes()));
  }
  if (out_edges_seen_ != instance_->num_edges()) {
    report_.problems.push_back(
        "edge count disagrees: walked " + std::to_string(out_edges_seen_) +
        ", instance reports " + std::to_string(instance_->num_edges()));
  }
  for (const auto& [label, count] : label_census_) {
    if (instance_->CountNodesWithLabel(label) != count) {
      report_.problems.push_back(
          "label index cardinality disagrees for '" + SymName(label) + "'");
    }
  }
  report_.complete = true;
  return Status::OK();
}

ScrubReport Scrub(const schema::Scheme& scheme,
                  const graph::Instance& instance,
                  const ScrubOptions& options) {
  Scrubber scrubber(&scheme, &instance);
  (void)scrubber.Step(options);
  return scrubber.report();
}

}  // namespace good::storage
