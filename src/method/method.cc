#include "method/method.h"

#include <string>
#include <utility>

#include "graph/restrict.h"
#include "ops/transaction.h"

namespace good::method {

using graph::Instance;
using schema::Scheme;

Symbol ReceiverEdgeLabel() { return Sym("$receiver"); }

Status MethodRegistry::Register(Method method) {
  // Copy the key before moving the method into the map: emplace argument
  // evaluation order is unspecified.
  const std::string name = method.spec.name;
  if (name.empty()) {
    return Status::InvalidArgument("method name must not be empty");
  }
  auto [it, inserted] =
      methods_.emplace(name, std::make_unique<Method>(std::move(method)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("method '" + name + "' already registered");
  }
  return Status::OK();
}

Result<const Method*> MethodRegistry::Find(const std::string& name) const {
  auto it = methods_.find(name);
  if (it == methods_.end()) {
    return Status::NotFound("no method named '" + name + "'");
  }
  return it->second.get();
}

namespace {

/// Copies `original` and augments it with a K-labeled node per the call
/// semantics: head-bound operations get the K-node wired to their bound
/// pattern nodes; head-less operations get an isolated K-node.
Result<Pattern> AugmentPattern(const Pattern& original,
                               const std::optional<HeadBinding>& head,
                               Symbol k_label, const Scheme& scheme,
                               const MethodSpec& spec) {
  Pattern augmented = original;
  GOOD_ASSIGN_OR_RETURN(NodeId k_node,
                        augmented.AddObjectNode(scheme, k_label));
  if (!head.has_value()) return augmented;
  for (const auto& [param, node] : head->params) {
    if (!spec.params.contains(param)) {
      return Status::InvalidArgument(
          "head binds '" + SymName(param) + "' which is not a parameter of "
          "method '" + spec.name + "'");
    }
    if (!augmented.HasNode(node)) {
      return Status::InvalidArgument(
          "head binding for '" + SymName(param) +
          "' references a node outside the source pattern");
    }
    if (augmented.LabelOf(node) != spec.params.at(param)) {
      return Status::InvalidArgument(
          "head binding for '" + SymName(param) + "' must point to a node "
          "labeled '" + SymName(spec.params.at(param)) + "'");
    }
    GOOD_RETURN_NOT_OK(augmented.AddEdge(scheme, k_node, param, node));
  }
  if (head->receiver.has_value()) {
    if (!augmented.HasNode(*head->receiver)) {
      return Status::InvalidArgument(
          "head receiver binding references a node outside the source "
          "pattern");
    }
    if (augmented.LabelOf(*head->receiver) != spec.receiver_label) {
      return Status::InvalidArgument(
          "head receiver binding must point to a node labeled '" +
          SymName(spec.receiver_label) + "'");
    }
    GOOD_RETURN_NOT_OK(augmented.AddEdge(scheme, k_node, ReceiverEdgeLabel(),
                                         *head->receiver));
  }
  return augmented;
}

/// Rebuilds `po.op` over the augmented pattern (pattern node ids are
/// stable under augmentation, so designators carry over unchanged).
Result<Operation> AugmentOperation(const ParameterizedOp& po, Symbol k_label,
                                   const Scheme& scheme,
                                   const MethodSpec& spec) {
  struct Visitor {
    Symbol k_label;
    const Scheme& scheme;
    const MethodSpec& spec;
    const std::optional<HeadBinding>& head;

    Result<Operation> operator()(const ops::NodeAddition& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p, AugmentPattern(op.source_pattern(), head, k_label,
                                    scheme, spec));
      ops::NodeAddition out(std::move(p), op.new_label(), op.edges());
      out.set_filter(op.filter());
      return Operation(std::move(out));
    }
    Result<Operation> operator()(const ops::EdgeAddition& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p, AugmentPattern(op.source_pattern(), head, k_label,
                                    scheme, spec));
      ops::EdgeAddition out(std::move(p), op.edges());
      out.set_filter(op.filter());
      return Operation(std::move(out));
    }
    Result<Operation> operator()(const ops::NodeDeletion& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p, AugmentPattern(op.source_pattern(), head, k_label,
                                    scheme, spec));
      ops::NodeDeletion out(std::move(p), op.target());
      out.set_filter(op.filter());
      return Operation(std::move(out));
    }
    Result<Operation> operator()(const ops::EdgeDeletion& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p, AugmentPattern(op.source_pattern(), head, k_label,
                                    scheme, spec));
      ops::EdgeDeletion out(std::move(p), op.edges());
      out.set_filter(op.filter());
      return Operation(std::move(out));
    }
    Result<Operation> operator()(const ops::Abstraction& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p, AugmentPattern(op.source_pattern(), head, k_label,
                                    scheme, spec));
      ops::Abstraction out(std::move(p), op.node(), op.set_label(),
                           op.member_edge(), op.grouping_edge());
      out.set_filter(op.filter());
      return Operation(std::move(out));
    }
    Result<Operation> operator()(const ops::ComputedEdgeAddition& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p, AugmentPattern(op.source_pattern(), head, k_label,
                                    scheme, spec));
      ops::ComputedEdgeAddition out(std::move(p), op.inputs(), op.fn(),
                                    op.source(), op.edge_label(),
                                    op.output_label(), op.output_domain());
      out.set_filter(op.filter());
      return Operation(std::move(out));
    }
    Result<Operation> operator()(const MethodCallOp& op) {
      GOOD_ASSIGN_OR_RETURN(
          Pattern p,
          AugmentPattern(op.pattern, head, k_label, scheme, spec));
      return Operation(MethodCallOp{std::move(p), op.method_name, op.args,
                                    op.receiver, op.filter});
    }
  };
  return std::visit(Visitor{k_label, scheme, spec, po.head}, po.op);
}

}  // namespace

Status Executor::ChargeStep() {
  if (options_.deadline.armed()) {
    GOOD_RETURN_NOT_OK(options_.deadline.Check());
  }
  if (++steps_ > options_.max_steps) {
    return Status::ResourceExhausted(
        "operation budget exhausted after " + std::to_string(steps_ - 1) +
        " steps (non-terminating method recursion?)");
  }
  return Status::OK();
}

Symbol Executor::FreshCallLabel(const Scheme& scheme,
                                const std::string& method_name) {
  while (true) {
    std::string candidate =
        "$call:" + method_name + ":" + std::to_string(call_counter_++);
    Symbol sym = Sym(candidate);
    if (!scheme.HasLabel(sym)) return sym;
  }
}

Status Executor::Execute(const Operation& op, Scheme* scheme,
                         Instance* instance, ops::ApplyStats* stats) {
  steps_ = 0;
  ops::Transaction txn(scheme, instance);
  GOOD_RETURN_NOT_OK(ExecuteAt(op, scheme, instance, stats, 0));
  txn.Commit();
  return Status::OK();
}

Status Executor::ExecuteAll(const std::vector<Operation>& ops, Scheme* scheme,
                            Instance* instance, ops::ApplyStats* stats) {
  steps_ = 0;
  for (const Operation& op : ops) {
    ops::Transaction txn(scheme, instance);
    GOOD_RETURN_NOT_OK(ExecuteAt(op, scheme, instance, stats, 0));
    txn.Commit();
  }
  return Status::OK();
}

Status Executor::ExecuteAt(const Operation& op, Scheme* scheme,
                           Instance* instance, ops::ApplyStats* stats,
                           size_t depth) {
  GOOD_RETURN_NOT_OK(ChargeStep());
  struct Visitor {
    Executor* self;
    Scheme* scheme;
    Instance* instance;
    ops::ApplyStats* stats;
    size_t depth;
    const common::Deadline* deadline;

    Status operator()(const ops::NodeAddition& o) {
      return o.Apply(scheme, instance, stats, deadline);
    }
    Status operator()(const ops::EdgeAddition& o) {
      return o.Apply(scheme, instance, stats, deadline);
    }
    Status operator()(const ops::NodeDeletion& o) {
      return o.Apply(scheme, instance, stats, deadline);
    }
    Status operator()(const ops::EdgeDeletion& o) {
      return o.Apply(scheme, instance, stats, deadline);
    }
    Status operator()(const ops::Abstraction& o) {
      return o.Apply(scheme, instance, stats, deadline);
    }
    Status operator()(const ops::ComputedEdgeAddition& o) {
      return o.Apply(scheme, instance, stats, deadline);
    }
    Status operator()(const MethodCallOp& o) {
      return self->ExecuteCall(o, scheme, instance, stats, depth);
    }
  };
  const common::Deadline* deadline =
      options_.deadline.armed() ? &options_.deadline : nullptr;
  return std::visit(Visitor{this, scheme, instance, stats, depth, deadline},
                    op);
}

Status Executor::ExecuteCall(const MethodCallOp& call, Scheme* scheme,
                             Instance* instance, ops::ApplyStats* stats,
                             size_t depth) {
  if (depth >= options_.max_depth) {
    return Status::ResourceExhausted("method call depth limit reached");
  }
  if (registry_ == nullptr) {
    return Status::FailedPrecondition("executor has no method registry");
  }
  GOOD_ASSIGN_OR_RETURN(const Method* m, registry_->Find(call.method_name));
  const MethodSpec& spec = m->spec;

  // -- Validate the actual parameters against the specification: g must
  //    be total on L_M and label-correct; the receiver node must carry
  //    R_M.
  if (call.args.size() != spec.params.size()) {
    return Status::InvalidArgument(
        "call to '" + spec.name + "' supplies " +
        std::to_string(call.args.size()) + " parameters, expected " +
        std::to_string(spec.params.size()));
  }
  for (const auto& [param, label] : spec.params) {
    auto it = call.args.find(param);
    if (it == call.args.end()) {
      return Status::InvalidArgument("call to '" + spec.name +
                                     "' misses parameter '" +
                                     SymName(param) + "'");
    }
    if (!call.pattern.HasNode(it->second)) {
      return Status::InvalidArgument(
          "actual parameter '" + SymName(param) +
          "' is not a node of the call pattern");
    }
    if (call.pattern.LabelOf(it->second) != label) {
      return Status::InvalidArgument(
          "actual parameter '" + SymName(param) + "' must be labeled '" +
          SymName(label) + "'");
    }
  }
  if (!call.pattern.HasNode(call.receiver)) {
    return Status::InvalidArgument(
        "call receiver is not a node of the call pattern");
  }
  if (call.pattern.LabelOf(call.receiver) != spec.receiver_label) {
    return Status::InvalidArgument("call receiver must be labeled '" +
                                   SymName(spec.receiver_label) + "'");
  }

  // -- Step 1: the binding node addition with a fresh K label.
  const Scheme base = *scheme;  // S: the scheme before the call.
  Symbol k_label = FreshCallLabel(*scheme, spec.name);
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (const auto& [param, node] : call.args) bold.emplace_back(param, node);
  bold.emplace_back(ReceiverEdgeLabel(), call.receiver);
  ops::NodeAddition binder(call.pattern, k_label, std::move(bold));
  if (call.filter) binder.set_filter(call.filter);
  const common::Deadline* deadline =
      options_.deadline.armed() ? &options_.deadline : nullptr;
  ops::ApplyStats binder_stats;
  GOOD_RETURN_NOT_OK(binder.Apply(scheme, instance, &binder_stats, deadline));
  if (stats != nullptr) stats->matchings += binder_stats.matchings;

  // -- Step 2: execute the body once, set-oriented over all K-nodes.
  //    With zero K-nodes every transformed body operation has zero
  //    matchings, so the body is skipped — this is also the recursion
  //    cutoff (Figure 22 halts when a receiver has no older version).
  if (instance->CountNodesWithLabel(k_label) > 0) {
    for (const ParameterizedOp& po : m->body) {
      GOOD_ASSIGN_OR_RETURN(Operation oper,
                            AugmentOperation(po, k_label, *scheme, spec));
      GOOD_RETURN_NOT_OK(
          ExecuteAt(oper, scheme, instance, stats, depth + 1));
    }
  }

  // -- Step 3: delete the K-nodes.
  {
    Pattern k_pattern;
    GOOD_ASSIGN_OR_RETURN(NodeId k_node,
                          k_pattern.AddObjectNode(*scheme, k_label));
    ops::NodeDeletion cleanup(std::move(k_pattern), k_node);
    GOOD_RETURN_NOT_OK(cleanup.Apply(scheme, instance, nullptr, deadline));
  }

  // -- Step 4: result scheme is S ∪ C_M; restrict the instance to it,
  //    filtering out in-body temporaries (Figures 24-25).
  GOOD_ASSIGN_OR_RETURN(*scheme, Scheme::Union(base, m->interface));
  GOOD_RETURN_NOT_OK(graph::RestrictToScheme(*scheme, instance));
  return Status::OK();
}

}  // namespace good::method
