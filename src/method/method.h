/// \file method.h
/// \brief The GOOD method mechanism (Section 3.6 of the paper).
///
/// A method is a named procedure with four parts:
///  - a *specification* (s_M, R_M): the parameter labels (functional
///    edge labels mapped to node labels) and the receiver node label —
///    drawn as the diamond node in the figures;
///  - a *body*: a sequence of parameterized operations — operations
///    whose source pattern may contain the M-head (diamond) node binding
///    pattern nodes to the formal receiver / parameters;
///  - an *interface* C_M: a scheme describing the method's effect at the
///    scheme level, used to filter out temporaries from the result;
///  - *calls* MC[J, M, g, n]: invoke the body for every matching of the
///    call pattern J, with g mapping parameter labels to pattern nodes
///    and n the receiver pattern node.
///
/// Call semantics (implemented literally from the paper):
///  1. Pick a fresh object label K and run the node addition
///     NA[J, K, {(λ, g(λ)) : λ ∈ L_M} ∪ {($receiver, n)}], creating one
///     K-node per distinct (parameters, receiver) binding.
///  2. For each body operation PO_i build OPER_i: substitute the M-head
///     diamond by a K-labeled pattern node (edges preserved), or — if
///     PO_i has no head — add an isolated K-node to its pattern. Execute
///     the OPER_i in order.
///  3. Delete all K-nodes (ND over the single-K-node pattern).
///  4. The result scheme is S ∪ C_M (S = the scheme *before* the call)
///     and the result instance is the restriction to it — temporaries
///     whose labels are in neither S nor C_M vanish (Figures 24-25).
///
/// Because every transformed body operation's pattern contains a K-node,
/// a call whose pattern has no matchings (zero K-nodes) is a no-op; for
/// recursive calls this is precisely the termination condition of
/// Figure 22, and the executor uses it to cut off recursion. A step
/// budget guards genuinely diverging programs (methods make the language
/// Turing-complete, Section 4.3).

#ifndef GOOD_METHOD_METHOD_H_
#define GOOD_METHOD_METHOD_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "graph/instance.h"
#include "ops/computed.h"
#include "ops/operations.h"
#include "pattern/matcher.h"
#include "schema/scheme.h"

namespace good::method {

using graph::NodeId;
using pattern::Pattern;

/// \brief Method specification (s_M, R_M) plus the method's name.
struct MethodSpec {
  std::string name;
  /// s_M: parameter edge label -> node label of the parameter.
  std::map<Symbol, Symbol> params;
  /// R_M: node label of the receiver.
  Symbol receiver_label;
};

/// \brief The M-head (diamond) node of a parameterized body operation:
/// binds pattern nodes of the operation's source pattern to formal
/// parameters / the formal receiver.
struct HeadBinding {
  /// Parameter edge label -> pattern node. Keys must be parameter
  /// labels of the enclosing method; at most one edge per label.
  std::map<Symbol, NodeId> params;
  /// The pattern node bound to the receiver, if the head has the
  /// (unlabeled, in the figures) receiver edge.
  std::optional<NodeId> receiver;
};

/// \brief A method call operation MC[J, M, g, n]. Usable both at top
/// level and (with a HeadBinding) inside method bodies — recursion is a
/// body call to the enclosing method (Figure 22).
struct MethodCallOp {
  Pattern pattern;
  std::string method_name;
  /// g: parameter edge label -> pattern node carrying the actual value.
  std::map<Symbol, NodeId> args;
  /// n: the pattern node receiving the call.
  NodeId receiver;
  /// Optional Section 4.1 predicate restricting which matchings of the
  /// call pattern trigger the method — also how crossed (negated)
  /// stopping conditions of recursive macros are expressed (Figure 29).
  ops::MatchFilter filter;
};

/// \brief Any GOOD operation: the five basic operations, the external-
/// function extension (Section 4.1), or a method call.
using Operation =
    std::variant<ops::NodeAddition, ops::EdgeAddition, ops::NodeDeletion,
                 ops::EdgeDeletion, ops::Abstraction,
                 ops::ComputedEdgeAddition, MethodCallOp>;

/// \brief One step of a method body.
struct ParameterizedOp {
  Operation op;
  /// Present when the operation's pattern is augmented with the M-head
  /// diamond node.
  std::optional<HeadBinding> head;
};

/// \brief A complete method definition.
struct Method {
  MethodSpec spec;
  std::vector<ParameterizedOp> body;
  /// C_M: the method interface, a scheme. The call result is restricted
  /// to (caller scheme ∪ interface).
  schema::Scheme interface;
};

/// \brief Named collection of methods available to an Executor.
class MethodRegistry {
 public:
  /// Registers `method`; its name must be unused.
  Status Register(Method method);

  /// Looks up a method by name; NotFound if absent.
  Result<const Method*> Find(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return methods_.contains(name);
  }

  size_t size() const { return methods_.size(); }

  /// All registered methods, in name order (for serialization and
  /// introspection).
  std::vector<const Method*> All() const {
    std::vector<const Method*> out;
    out.reserve(methods_.size());
    for (const auto& [name, method] : methods_) {
      (void)name;
      out.push_back(method.get());
    }
    return out;
  }

 private:
  std::map<std::string, std::unique_ptr<Method>> methods_;
};

/// \brief Execution limits.
struct ExecOptions {
  /// Total operation budget across all (possibly recursive) calls; a
  /// diverging program yields ResourceExhausted.
  size_t max_steps = 1'000'000;
  /// Maximum method-call nesting depth.
  size_t max_depth = 10'000;
  /// Execution cutoff: a wall-clock expiry and/or cancellation token.
  /// Checked before every charged step and threaded into each
  /// operation's pattern matching, so a stuck program surfaces
  /// kDeadlineExceeded / kCancelled promptly. Defaults to unarmed
  /// (never fires).
  common::Deadline deadline;
};

/// \brief Executes operations — including method calls — against a
/// database (scheme + instance).
class Executor {
 public:
  explicit Executor(const MethodRegistry* registry, ExecOptions options = {})
      : registry_(registry), options_(options) {}

  /// Executes one operation. Basic operations dispatch to their Apply;
  /// method calls follow the Section 3.6 semantics described above.
  /// All-or-nothing: on any failure — a mid-body error, an exhausted
  /// budget, a deadline interrupt — the scheme and instance are rolled
  /// back to their pre-call state.
  Status Execute(const Operation& op, schema::Scheme* scheme,
                 graph::Instance* instance,
                 ops::ApplyStats* stats = nullptr);

  /// Executes a sequence of operations in order. Each operation is its
  /// own transaction (matching the storage layer's one-WAL-record-per-
  /// operation semantics): a failure rolls back the failing operation
  /// whole, while earlier operations of the sequence remain applied.
  Status ExecuteAll(const std::vector<Operation>& ops, schema::Scheme* scheme,
                    graph::Instance* instance,
                    ops::ApplyStats* stats = nullptr);

  /// Operations executed by the last top-level Execute/ExecuteAll run
  /// (including those inside method bodies).
  size_t steps_used() const { return steps_; }

 private:
  Status ExecuteCall(const MethodCallOp& call, schema::Scheme* scheme,
                     graph::Instance* instance, ops::ApplyStats* stats,
                     size_t depth);
  Status ExecuteAt(const Operation& op, schema::Scheme* scheme,
                   graph::Instance* instance, ops::ApplyStats* stats,
                   size_t depth);
  Status ChargeStep();

  /// Returns an object label unused by `scheme`, derived from the
  /// method name.
  Symbol FreshCallLabel(const schema::Scheme& scheme,
                        const std::string& method_name);

  const MethodRegistry* registry_;
  ExecOptions options_;
  size_t steps_ = 0;
  size_t call_counter_ = 0;
};

/// The reserved functional edge label binding a call's K-node to the
/// receiver (the paper draws this edge unlabeled).
Symbol ReceiverEdgeLabel();

}  // namespace good::method

#endif  // GOOD_METHOD_METHOD_H_
