#include "server/protocol.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "program/op_serialize.h"
#include "program/serialize.h"

namespace good::server {
namespace {

/// First whitespace-separated token of a command line.
std::string_view FirstToken(std::string_view line) {
  size_t start = line.find_first_not_of(" \t");
  if (start == std::string_view::npos) return {};
  size_t end = line.find_first_of(" \t", start);
  if (end == std::string_view::npos) end = line.size();
  return line.substr(start, end - start);
}

/// Everything after the first token, trimmed.
std::string_view RestAfterToken(std::string_view line) {
  size_t start = line.find_first_not_of(" \t");
  if (start == std::string_view::npos) return {};
  size_t end = line.find_first_of(" \t", start);
  if (end == std::string_view::npos) return {};
  size_t rest = line.find_first_not_of(" \t", end);
  if (rest == std::string_view::npos) return {};
  return line.substr(rest);
}

void Ok(std::string_view head, std::string* out) {
  out->append("ok");
  if (!head.empty()) {
    out->push_back(' ');
    out->append(head);
  }
  out->push_back('\n');
}

void OkWithBody(std::string_view head, std::string_view body,
                std::string* out) {
  out->append("ok+ ");
  out->append(head);
  out->push_back('\n');
  out->append(DotStuff(body));
}

void Err(const Status& status, std::string* out) {
  // The status line must stay a single line; fold any embedded
  // newlines in the message.
  std::string message = status.message();
  std::replace(message.begin(), message.end(), '\n', ' ');
  out->append("err ");
  out->append(StatusCodeToString(status.code()));
  out->push_back(' ');
  out->append(message);
  out->push_back('\n');
}

/// True for commands whose request carries a dot-terminated body.
bool TakesBody(std::string_view command) {
  return command == "exec" || command == "count" || command == "match";
}

/// One line per matching: "p->n" pairs in pattern-node order.
std::string RenderMatchings(const std::vector<pattern::Matching>& matchings) {
  std::ostringstream out;
  for (const pattern::Matching& matching : matchings) {
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    pairs.reserve(matching.map().size());
    for (const auto& [pattern_node, instance_node] : matching.map()) {
      pairs.emplace_back(pattern_node.id, instance_node.id);
    }
    std::sort(pairs.begin(), pairs.end());
    bool first = true;
    for (const auto& [p, n] : pairs) {
      if (!first) out << ' ';
      first = false;
      out << p << "->" << n;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace

std::string DotStuff(std::string_view body) {
  std::string out;
  out.reserve(body.size() + 8);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    std::string_view line = body.substr(
        pos, eol == std::string_view::npos ? body.size() - pos : eol - pos);
    if (!line.empty() && line.front() == '.') out.push_back('.');
    out.append(line);
    out.push_back('\n');
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  out.append(".\n");
  return out;
}

std::string EncodeRequest(std::string_view command_line,
                          const std::string* body) {
  std::string out(command_line);
  out.push_back('\n');
  if (body != nullptr) out.append(DotStuff(*body));
  return out;
}

Connection::Connection(Server* server) : server_(server) {
  auto session = server->TryStartSession();
  if (session.ok()) {
    session_ = std::move(*session);
  } else {
    admission_ = session.status();
  }
}

void Connection::QuotaViolation(const std::string& what, std::string* out) {
  server_->overload_counters().BumpQuota();
  Err(Status::ResourceExhausted(what), out);
  // The stream cannot be resynchronized past an over-quota line/body;
  // drop the buffered bytes and tell the transport to hang up.
  input_.clear();
  body_.clear();
  pending_command_.clear();
  in_body_ = false;
  closed_ = true;
}

void Connection::Feed(std::string_view bytes, std::string* out) {
  if (closed_) return;
  const ServerLimits& limits = server_->limits();
  input_.append(bytes);
  size_t start = 0;
  for (;;) {
    size_t eol = input_.find('\n', start);
    if (eol == std::string::npos) break;
    std::string_view line(input_.data() + start, eol - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > limits.max_line_bytes) {
      QuotaViolation("protocol line of " + std::to_string(line.size()) +
                         " bytes exceeds the " +
                         std::to_string(limits.max_line_bytes) +
                         "-byte limit",
                     out);
      return;
    }
    HandleLine(line, out);
    if (closed_) {
      input_.clear();
      return;
    }
    start = eol + 1;
  }
  input_.erase(0, start);
  // An unterminated line may never terminate; cap the backlog too so a
  // newline-free stream cannot buffer unboundedly.
  if (input_.size() > limits.max_line_bytes) {
    QuotaViolation("unterminated protocol line exceeds the " +
                       std::to_string(limits.max_line_bytes) +
                       "-byte limit",
                   out);
  }
}

void Connection::HandleLine(std::string_view line, std::string* out) {
  if (closed_) return;
  if (in_body_) {
    if (line == ".") {
      in_body_ = false;
      std::string command = std::move(pending_command_);
      std::string body = std::move(body_);
      pending_command_.clear();
      body_.clear();
      Dispatch(command, body, out);
      return;
    }
    // Undo dot-stuffing: a body line starting with '.' arrives with
    // one extra leading dot.
    if (!line.empty() && line.front() == '.') line.remove_prefix(1);
    if (body_.size() + line.size() + 1 > server_->limits().max_body_bytes) {
      QuotaViolation("request body exceeds the " +
                         std::to_string(server_->limits().max_body_bytes) +
                         "-byte limit",
                     out);
      return;
    }
    body_.append(line);
    body_.push_back('\n');
    return;
  }
  if (FirstToken(line).empty()) return;  // blank lines between requests
  if (TakesBody(FirstToken(line))) {
    pending_command_.assign(line);
    in_body_ = true;
    return;
  }
  Dispatch(std::string(line), std::string(), out);
}

void Connection::Dispatch(const std::string& command_line,
                          const std::string& body, std::string* out) {
  std::string_view command = FirstToken(command_line);

  if (command == "quit") {
    closed_ = true;
    Ok("bye", out);
    return;
  }
  if (command == "stats") {
    OverloadStats overload = server_->overload_stats();
    PipelineStats pipeline = server_->pipeline_stats();
    // Partition health rides along so an operator's first `stats` call
    // shows whether recovery quarantined any snapshot partitions (those
    // classes answer kUnavailable until repaired; see good_dbtool).
    std::string quarantined;
    for (const std::string& cls :
         server_->database().quarantined_classes()) {
      quarantined += quarantined.empty() ? " quarantined " : ",";
      quarantined += cls;
    }
    Ok("stats shed " + std::to_string(overload.shed_connections) +
           " shed_sessions " + std::to_string(overload.shed_sessions) +
           " evicted " + std::to_string(overload.evicted_sessions) +
           " quota " + std::to_string(overload.quota_rejections) +
           " sessions " + std::to_string(server_->active_sessions()) +
           " committed " + std::to_string(pipeline.committed) +
           " conflicts " + std::to_string(pipeline.conflicts) +
           " batches " + std::to_string(pipeline.batches) + quarantined,
       out);
    return;
  }
  if (session_ == nullptr) {
    // Admission control refused this connection a session; every
    // stateful request sheds with the (retriable) reason. `stats` and
    // `quit` above still work so a load-shedding server stays
    // observable and connections close politely.
    Err(admission_, out);
    return;
  }

  if (command == "hello") {
    Ok(std::string(kProtocolVersion) + " base " +
           std::to_string(session_->base_version()),
       out);
    return;
  }
  if (command == "version") {
    Ok("version " + std::to_string(server_->current_version()->id), out);
    return;
  }
  if (command == "base") {
    Ok("base " + std::to_string(session_->base_version()), out);
    return;
  }
  if (command == "refresh") {
    Status status = session_->Refresh();
    if (!status.ok()) {
      Err(status, out);
      return;
    }
    Ok("base " + std::to_string(session_->base_version()), out);
    return;
  }
  if (command == "exec") {
    auto reader = program::OperationReader::Open(body);
    if (!reader.ok()) {
      Err(reader.status(), out);
      return;
    }
    // The body is all-or-nothing: a failure at any operation rolls the
    // session back to the pre-body state, so the client never has to
    // guess which prefix of a rejected body stayed buffered (its
    // commit-retry replay rebuilds exactly the accepted bodies).
    Session::Savepoint savepoint = session_->MakeSavepoint();
    size_t applied = 0;
    while (!reader->AtEnd()) {
      // Parse against the evolving view scheme: an operation may use
      // labels an earlier operation of the same body introduced.
      auto op = reader->Next(session_->view().scheme);
      if (!op.ok()) {
        session_->RollbackTo(&savepoint);
        Err(op.status(), out);
        return;
      }
      Status status = session_->Execute(*op);
      if (!status.ok()) {
        session_->RollbackTo(&savepoint);
        Err(status, out);
        return;
      }
      ++applied;
    }
    session_->ReleaseSavepoint(&savepoint);
    Ok("applied " + std::to_string(applied), out);
    return;
  }
  if (command == "count" || command == "match") {
    auto pattern = program::ParsePattern(session_->view().scheme, body);
    if (!pattern.ok()) {
      Err(pattern.status(), out);
      return;
    }
    if (command == "count") {
      auto count = session_->Count(*pattern);
      if (!count.ok()) {
        Err(count.status(), out);
        return;
      }
      Ok("count " + std::to_string(*count), out);
      return;
    }
    auto matchings = session_->Match(*pattern);
    if (!matchings.ok()) {
      Err(matchings.status(), out);
      return;
    }
    OkWithBody("matchings " + std::to_string(matchings->size()),
               RenderMatchings(*matchings), out);
    return;
  }
  if (command == "dump") {
    OkWithBody("database", program::WriteDatabase(session_->view()), out);
    return;
  }
  if (command == "commit") {
    CommitResult result = session_->Commit();
    if (!result.ok()) {
      Err(result.status, out);
      return;
    }
    Ok("committed " + std::to_string(result.version) + " batch " +
           std::to_string(result.batch_size),
       out);
    return;
  }
  if (command == "rollback") {
    session_->Rollback();
    Ok("rolledback", out);
    return;
  }
  if (command == "deadline") {
    std::string_view arg = RestAfterToken(command_line);
    if (arg == "none") {
      session_->exec_options().deadline = common::Deadline();
      Ok("deadline none", out);
      return;
    }
    uint64_t ms = 0;
    auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), ms);
    if (ec != std::errc() || ptr != arg.data() + arg.size()) {
      Err(Status::InvalidArgument(
              "deadline takes a millisecond count or 'none'"),
          out);
      return;
    }
    session_->exec_options().deadline =
        common::Deadline::After(std::chrono::milliseconds(ms));
    Ok("deadline " + std::to_string(ms), out);
    return;
  }
  Err(Status::InvalidArgument("unknown command '" + std::string(command) +
                              "'"),
      out);
}

}  // namespace good::server
