#include "server/chaos.h"

#include <algorithm>
#include <thread>

namespace good::server {

const char* ChaosModeName(ChaosMode mode) {
  switch (mode) {
    case ChaosMode::kShortWrite:
      return "short-write";
    case ChaosMode::kShortRead:
      return "short-read";
    case ChaosMode::kDisconnect:
      return "disconnect";
    case ChaosMode::kDelay:
      return "delay";
  }
  return "unknown";
}

ChaosTransport::ChaosTransport(Transport* inner, ChaosOptions options)
    : inner_(inner), options_(options),
      rng_(options.seed + 0x9e3779b97f4a7c15ull) {
  boundaries_until_fault_ = 0;
  FaultsThisBoundary();  // burn the zeroth boundary to arm the schedule
  faults_ = 0;
}

uint64_t ChaosTransport::NextRandom() {
  uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool ChaosTransport::FaultsThisBoundary() {
  if (boundaries_until_fault_ > 0) {
    --boundaries_until_fault_;
    return false;
  }
  // Re-arm: next fault after a uniform gap in [1, 2*period] boundaries
  // (0 when period is 0 — every boundary faults).
  boundaries_until_fault_ =
      options_.period == 0 ? 0 : 1 + NextRandom() % (2 * options_.period);
  ++faults_;
  return true;
}

Status ChaosTransport::Disconnect(const char* during) {
  disconnected_ = true;
  (void)inner_->Close();
  return Status::Unavailable(std::string("chaos: connection torn during ") +
                             during);
}

Status ChaosTransport::Write(std::string_view bytes) {
  if (disconnected_) {
    return Status::Unavailable("chaos: connection already torn");
  }
  if (!FaultsThisBoundary()) return inner_->Write(bytes);
  switch (options_.mode) {
    case ChaosMode::kShortWrite: {
      // Deliver everything, but torn into small seeded fragments with
      // pauses so the peer's recv() sees the tears.
      while (!bytes.empty()) {
        size_t piece = 1 + NextRandom() % 5;
        piece = std::min(piece, bytes.size());
        GOOD_RETURN_NOT_OK(inner_->Write(bytes.substr(0, piece)));
        bytes.remove_prefix(piece);
        if (!bytes.empty()) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              50 + NextRandom() % 150));
        }
      }
      return Status::OK();
    }
    case ChaosMode::kDisconnect: {
      // A seeded prefix escapes before the cut — possibly a whole
      // request, so the server may apply what the caller saw fail.
      size_t sent = NextRandom() % (bytes.size() + 1);
      if (sent > 0) (void)inner_->Write(bytes.substr(0, sent));
      return Disconnect("write");
    }
    case ChaosMode::kDelay:
      if (options_.max_delay.count() > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            NextRandom() %
            static_cast<uint64_t>(options_.max_delay.count() + 1)));
      }
      return inner_->Write(bytes);
    case ChaosMode::kShortRead:
      return inner_->Write(bytes);  // this family faults reads only
  }
  return inner_->Write(bytes);
}

Result<std::string> ChaosTransport::ReadLine() {
  if (disconnected_) {
    return Status::Unavailable("chaos: connection already torn");
  }
  if (!FaultsThisBoundary()) return inner_->ReadLine();
  switch (options_.mode) {
    case ChaosMode::kShortRead: {
      // Tear the response across tiny receive chunks for this call.
      inner_->set_recv_chunk_limit(1 + NextRandom() % 4);
      Result<std::string> line = inner_->ReadLine();
      inner_->set_recv_chunk_limit(0);
      return line;
    }
    case ChaosMode::kDisconnect:
      return Disconnect("read");
    case ChaosMode::kDelay:
      if (options_.max_delay.count() > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            NextRandom() %
            static_cast<uint64_t>(options_.max_delay.count() + 1)));
      }
      return inner_->ReadLine();
    case ChaosMode::kShortWrite:
      return inner_->ReadLine();  // this family faults writes only
  }
  return inner_->ReadLine();
}

Status ChaosTransport::Close() {
  disconnected_ = true;
  return inner_->Close();
}

}  // namespace good::server
