/// \file limits.h
/// \brief Admission control and resource quotas for the server front
/// door.
///
/// The session/commit layers assume cooperative callers; the network
/// does not cooperate. ServerLimits is the single knob set bounding
/// what one client — slow, greedy, or hostile — can cost the process:
///
///  - **Admission**: at most `max_connections` sockets are served at
///    once (excess connections are shed with a retriable
///    `err Unavailable busy` and closed) and at most `max_sessions`
///    protocol sessions exist server-wide (covers in-process
///    LocalTransport connections too).
///  - **I/O deadlines**: a connection that sends no byte for
///    `idle_timeout`, or stalls the server's response write for
///    `write_timeout`, is evicted — the slow-loris defence. All socket
///    I/O goes through poll-with-deadline (server/socket.cc).
///  - **Quotas**: a protocol line longer than `max_line_bytes`, a
///    dot-stuffed body larger than `max_body_bytes`, or a session
///    working copy grown by more than `max_working_delta` nodes+edges
///    is rejected with a typed kResourceExhausted instead of being
///    buffered without bound. Line/body violations also close the
///    connection: past a quota the stream cannot be resynchronized.
///
/// Every shed/eviction/rejection bumps an OverloadCounters slot, and
/// the protocol `stats` command reports them — degradation under load
/// is observable, not silent.

#ifndef GOOD_SERVER_LIMITS_H_
#define GOOD_SERVER_LIMITS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace good::server {

/// \brief Hard bounds on what the server accepts from the network.
/// Zero never means "unlimited" — every limit is enforced as given;
/// callers wanting laxer behavior raise the value explicitly.
struct ServerLimits {
  /// Concurrent socket connections served; excess accepts are shed
  /// with `err Unavailable busy` + close.
  size_t max_connections = 64;
  /// Concurrent sessions server-wide (socket and in-process); excess
  /// session starts are rejected with kUnavailable.
  size_t max_sessions = 256;
  /// Longest accepted protocol line (command or body line), excluding
  /// the newline. Also bounds the unterminated-line backlog a
  /// connection may buffer.
  size_t max_line_bytes = 64 * 1024;
  /// Largest accepted dot-stuffed request body (exec/count/match).
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Maximum growth (nodes + edges added beyond the pinned snapshot)
  /// of one session's uncommitted working copy.
  size_t max_working_delta = 1'000'000;
  /// A connection sending no byte for this long is evicted.
  std::chrono::milliseconds idle_timeout{30'000};
  /// A connection not draining its response for this long is evicted.
  std::chrono::milliseconds write_timeout{10'000};
};

/// \brief Point-in-time copy of the overload counters. Connection-cap
/// and session-cap sheds are counted separately so an operator can
/// tell which limit is firing.
struct OverloadStats {
  uint64_t shed_connections = 0;   ///< Accepts refused at the cap.
  uint64_t shed_sessions = 0;      ///< Session starts refused at the cap.
  uint64_t evicted_sessions = 0;   ///< Connections cut for stalling.
  uint64_t quota_rejections = 0;   ///< Requests over a resource quota.
};

/// \brief Monotonic overload counters, bumped from accept loops,
/// connection handlers and sessions concurrently.
class OverloadCounters {
 public:
  void BumpShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void BumpShedSession() {
    shed_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpEvicted() { evicted_.fetch_add(1, std::memory_order_relaxed); }
  void BumpQuota() { quota_.fetch_add(1, std::memory_order_relaxed); }

  OverloadStats Snapshot() const {
    OverloadStats stats;
    stats.shed_connections = shed_.load(std::memory_order_relaxed);
    stats.shed_sessions = shed_sessions_.load(std::memory_order_relaxed);
    stats.evicted_sessions = evicted_.load(std::memory_order_relaxed);
    stats.quota_rejections = quota_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> shed_sessions_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> quota_{0};
};

}  // namespace good::server

#endif  // GOOD_SERVER_LIMITS_H_
