/// \file client.h
/// \brief C++ client for the text protocol, with automatic retry of
/// retriable commit failures.
///
/// The client speaks protocol.h over an abstract byte Transport, so
/// the same code drives an in-process server (LocalTransport — no
/// sockets, used by tests and benches) and a remote one
/// (server/socket.h). Wire errors decode back into Status values via
/// StatusCodeFromString, so a caller sees the same error model as an
/// embedded storage::Database user.
///
/// Transactions and retry: Exec bodies are buffered client-side until
/// Commit/Rollback. When Commit fails with a *retriable* status
/// (common::IsRetriable — a first-committer-wins kAborted or a
/// transient kUnavailable), the server has already discarded the
/// transaction and re-pinned a fresh snapshot, so the client replays
/// the buffered bodies against the new snapshot and commits again, up
/// to ClientOptions::max_commit_retries times. Non-retriable failures
/// (kDeadlineExceeded, validation errors) surface immediately.

#ifndef GOOD_SERVER_CLIENT_H_
#define GOOD_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "server/protocol.h"

namespace good::server {

/// \brief A bidirectional byte stream to one server connection.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Sends raw bytes.
  virtual Status Write(std::string_view bytes) = 0;
  /// Receives the next line, without its trailing newline.
  virtual Result<std::string> ReadLine() = 0;
  /// Tears the connection down early (later calls fail). Default no-op
  /// for transports with nothing to tear down.
  virtual Status Close() { return Status::OK(); }
  /// Caps how many bytes one underlying read may pull (0 restores the
  /// transport default). A fault-injection hook — ChaosTransport uses
  /// it to force short reads; transports without a byte stream ignore
  /// it.
  virtual void set_recv_chunk_limit(size_t bytes) { (void)bytes; }
};

/// \brief In-process transport: drives a Connection directly. The
/// protocol is strict request-then-response, so every response is
/// fully buffered by the time the request bytes are consumed.
class LocalTransport final : public Transport {
 public:
  explicit LocalTransport(Server* server) : connection_(server) {}

  Status Write(std::string_view bytes) override {
    connection_.Feed(bytes, &output_);
    return Status::OK();
  }

  Result<std::string> ReadLine() override {
    size_t eol = output_.find('\n', read_pos_);
    if (eol == std::string::npos) {
      return Status::Internal(
          "local transport has no buffered response line (request "
          "incomplete?)");
    }
    std::string line = output_.substr(read_pos_, eol - read_pos_);
    read_pos_ = eol + 1;
    if (read_pos_ == output_.size()) {
      output_.clear();
      read_pos_ = 0;
    }
    return line;
  }

 private:
  Connection connection_;
  std::string output_;
  size_t read_pos_ = 0;
};

struct ClientOptions {
  /// Replays-and-retries after a retriable commit failure. 0 disables
  /// auto-retry.
  size_t max_commit_retries = 3;
  /// Sleep before the first retry (doubling per attempt up to
  /// `max_retry_backoff`); zero disables sleeping.
  std::chrono::microseconds retry_backoff{500};
  /// Ceiling on any single retry sleep — backoff never doubles past
  /// this.
  std::chrono::microseconds max_retry_backoff{100'000};
  /// Seed for the ±25% jitter spreading concurrent retriers apart
  /// (common::Backoff). 0 (the default) draws per-client entropy at
  /// construction, so clients built with default options do not retry
  /// in lockstep; set a nonzero seed to replay an exact delay
  /// sequence (tests).
  uint64_t retry_jitter_seed = 0;
};

/// \brief One parsed server reply.
struct ServerReply {
  Status status;     ///< OK for `ok`/`ok+`, decoded code for `err`.
  std::string head;  ///< Arguments of the ok line.
  std::string body;  ///< Un-stuffed body of an `ok+` reply.
};

/// \brief Protocol client. Single-threaded, like the connection it
/// drives.
class Client {
 public:
  /// `transport` is borrowed and must outlive the client.
  explicit Client(Transport* transport, ClientOptions options = {})
      : transport_(transport), options_(options) {
    if (options_.retry_jitter_seed == 0) {
      // Distinct jitter stream per client by default: mix the object
      // address with the construction time so concurrent clients that
      // fail together do not back off in lockstep.
      options_.retry_jitter_seed =
          static_cast<uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) ^
          (static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this)) *
           0x9e3779b97f4a7c15ull);
    }
  }

  /// Handshake; verifies the protocol version.
  Status Hello();

  /// Newest published version on the server.
  Result<uint64_t> Version();
  /// The session's pinned base version.
  Result<uint64_t> Base();
  /// Re-pins the newest version; returns its id.
  Result<uint64_t> Refresh();

  /// Buffers and executes an operation sequence (text form, see
  /// program/op_serialize.h) on the session's working copy.
  Status Exec(const std::string& ops_text);
  /// Typed convenience: serializes `ops` against `scheme` first.
  Status Exec(const schema::Scheme& scheme,
              const std::vector<method::Operation>& ops);

  /// Matching count of a pattern block (text form) in the session view.
  Result<size_t> Count(const std::string& pattern_text);
  /// Matchings, one rendered line each ("p->n" pairs).
  Result<std::vector<std::string>> Match(const std::string& pattern_text);
  /// Full database text (program/serialize.h) of the session view.
  Result<std::string> Dump();

  struct CommitAck {
    uint64_t version = 0;
    size_t batch_size = 0;
    /// Replays performed by auto-retry before this ack.
    size_t retries = 0;
  };

  /// Commits the buffered operations; auto-retries retriable failures
  /// (see the file comment). On success the buffer is cleared.
  Result<CommitAck> Commit();

  /// Discards buffered operations, server- and client-side.
  Status Rollback();

  /// Bounds subsequent session calls (and commit waits) server-side.
  Status SetDeadline(std::chrono::milliseconds budget);
  Status ClearDeadline();

  /// Raw head of the `stats` reply ("stats shed <n> evicted <n> ...").
  /// Works even on a connection refused by admission control.
  Result<std::string> Stats();

  /// Closes the exchange politely.
  Status Quit();

 private:
  /// One request-response exchange.
  Result<ServerReply> RoundTrip(std::string_view command_line,
                                const std::string* body);

  Transport* transport_;
  ClientOptions options_;
  /// Exec bodies since the last commit/rollback, for commit retry.
  std::vector<std::string> txn_bodies_;
};

}  // namespace good::server

#endif  // GOOD_SERVER_CLIENT_H_
