/// \file version.h
/// \brief Immutable database versions and the published-version chain.
///
/// The multi-session server gives every reader a *snapshot*: an
/// immutable (scheme, instance) pair frozen at some commit boundary.
/// A Version is one such pair plus the commit epoch that produced it
/// and the write footprint of the producing transaction. Versions are
/// shared by `std::shared_ptr<const Version>`: pinning a snapshot is a
/// refcount increment, an arbitrary number of readers share one copy,
/// and a version is reclaimed the moment its last reader unpins it —
/// the epoch-pinning scheme of the ISSUE without any explicit epoch
/// bookkeeping.
///
/// The VersionChain is the single point of publication. The commit
/// pipeline publishes a new Version after each group-commit fsync;
/// sessions pin `Current()` when they begin. The chain also retains a
/// bounded history of recent commit footprints so the pipeline can run
/// the first-committer-wins validation: a transaction based on version
/// B conflicts iff some version with id in (B, current] has an
/// overlapping footprint (ops/footprint.h). When B has fallen behind
/// the retained window the check fails closed with kAborted
/// ("snapshot too old") — retrying against a fresh snapshot is the
/// documented reaction, and common::IsRetriable classifies it so.

#ifndef GOOD_SERVER_VERSION_H_
#define GOOD_SERVER_VERSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "common/result.h"
#include "ops/footprint.h"
#include "program/program.h"

namespace good::server {

/// \brief One immutable committed state of the database.
///
/// `db` is frozen at construction and never mutated afterwards; const
/// access from any number of threads is safe. `footprint` is the write
/// set of the transaction whose commit produced this version (empty for
/// the base version recovery produced).
struct Version {
  /// Commit epoch: 0 for the recovered base, then one per commit in
  /// serial commit order.
  uint64_t id = 0;
  program::Database db;
  ops::Footprint footprint;
};

using VersionRef = std::shared_ptr<const Version>;

/// \brief Thread-safe publication point for versions, with the bounded
/// footprint history backing first-committer-wins validation.
///
/// Publication order is the serial commit order: `Publish` requires
/// strictly increasing ids, and `Current()` returns the newest
/// published version. All members are safe to call concurrently.
class VersionChain {
 public:
  /// Retains the footprints of up to `max_history` recent commits for
  /// conflict validation. A transaction whose base version is older
  /// than the retained window cannot be validated and is aborted as
  /// "snapshot too old".
  explicit VersionChain(size_t max_history = 64)
      : max_history_(max_history == 0 ? 1 : max_history) {}

  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  /// Installs `base` as the sole version and clears the footprint
  /// history. Called once at server open with the recovered state.
  void Reset(VersionRef base);

  /// The newest published version; never null after Reset.
  VersionRef Current() const;

  /// Id of the newest published version.
  uint64_t current_id() const;

  /// First-committer-wins validation for a transaction based on
  /// `base_id` with write set `footprint`: returns the id of the
  /// earliest version in (base_id, current] whose footprint overlaps,
  /// or 0 when none does. Returns kAborted when `base_id` predates the
  /// retained footprint window (validation impossible — retry against
  /// a fresh snapshot).
  Result<uint64_t> FirstConflict(uint64_t base_id,
                                 const ops::Footprint& footprint) const;

  /// Publishes `version` as the new current state and records its
  /// footprint in the history window. `version->id` must exceed the
  /// current id; publications happen in serial commit order.
  void Publish(VersionRef version);

 private:
  const size_t max_history_;
  mutable std::mutex mu_;
  VersionRef current_;
  /// (id, footprint) of recent commits, ascending and contiguous in id.
  std::deque<std::pair<uint64_t, ops::Footprint>> history_;
};

}  // namespace good::server

#endif  // GOOD_SERVER_VERSION_H_
