#include "server/commit_pipeline.h"

#include <chrono>
#include <string>
#include <utility>

namespace good::server {

CommitPipeline::CommitPipeline(storage::Database* db, VersionChain* chain,
                               PipelineOptions options)
    : db_(db), chain_(chain), options_(options) {
  next_commit_id_ = chain_->current_id();
  committer_ = std::thread([this] { CommitterLoop(); });
}

CommitPipeline::~CommitPipeline() { Stop(); }

void CommitPipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (committer_.joinable()) committer_.join();
}

PipelineStats CommitPipeline::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void CommitPipeline::Finish(const std::shared_ptr<Pending>& pending,
                            CommitResult result) {
  {
    std::lock_guard<std::mutex> lock(pending->mu);
    pending->result = std::move(result);
    pending->done = true;
  }
  pending->cv.notify_all();
}

CommitResult CommitPipeline::Commit(std::vector<method::Operation> ops,
                                    uint64_t base_version,
                                    ops::Footprint footprint,
                                    common::Deadline deadline) {
  auto pending = std::make_shared<Pending>();
  pending->ops = std::move(ops);
  pending->base_version = base_version;
  pending->footprint = std::move(footprint);
  pending->deadline = deadline;

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      CommitResult rejected;
      rejected.status = Status::Unavailable("commit pipeline is stopped");
      return rejected;
    }
    queue_.push_back(pending);
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(pending->mu);
  while (!pending->done) {
    if (!deadline.armed()) {
      pending->cv.wait(lock);
      continue;
    }
    // Poll coarsely: the deadline can fire from the wall clock or a
    // cancel token, neither of which pulses our condition variable.
    pending->cv.wait_for(lock, std::chrono::milliseconds(2));
    if (pending->done) break;
    Status cut = deadline.Check();
    if (cut.ok()) continue;
    // Expired while waiting. Abandon the entry if the committer has
    // not claimed it yet — then nothing was applied and the session
    // rolls back cleanly. If the claim already happened the outcome is
    // imminent; await it so the result is never ambiguous.
    Pending::State expected = Pending::State::kQueued;
    if (pending->state.compare_exchange_strong(expected,
                                               Pending::State::kAbandoned)) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.abandoned;
      }
      CommitResult abandoned;
      abandoned.status = cut;
      return abandoned;
    }
    while (!pending->done) pending->cv.wait(lock);
    break;
  }
  return pending->result;
}

void CommitPipeline::CommitterLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      size_t take = options_.max_batch == 0 ? 1 : options_.max_batch;
      while (!queue_.empty() && batch.size() < take) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    // Entries applied in this batch, awaiting the fsync barrier.
    struct Applied {
      std::shared_ptr<Pending> pending;
      std::shared_ptr<Version> version;
      CommitResult result;
    };
    std::vector<Applied> applied;

    for (auto& pending : batch) {
      Pending::State expected = Pending::State::kQueued;
      if (!pending->state.compare_exchange_strong(expected,
                                                  Pending::State::kClaimed)) {
        continue;  // abandoned by a deadline waiter; nothing to ack
      }
      CommitResult result;

      Status cut = pending->deadline.Check();
      if (!cut.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.expired;
        result.status = std::move(cut);
        Finish(pending, std::move(result));
        continue;
      }

      // First-committer-wins: against published versions newer than
      // the base snapshot, then against this batch's earlier (not yet
      // published) applies.
      uint64_t conflict = 0;
      Result<uint64_t> check =
          chain_->FirstConflict(pending->base_version, pending->footprint);
      if (!check.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.conflicts;
        result.status = check.status();
        Finish(pending, std::move(result));
        continue;
      }
      conflict = *check;
      if (conflict == 0) {
        for (const Applied& earlier : applied) {
          if (earlier.version->id <= pending->base_version) continue;
          if (earlier.version->footprint.Overlaps(pending->footprint)) {
            conflict = earlier.version->id;
            break;
          }
        }
      }
      if (conflict != 0) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.conflicts;
        }
        result.conflict_version = conflict;
        result.status = Status::Aborted(
            "write-write conflict: version " + std::to_string(conflict) +
            " committed after base " + std::to_string(pending->base_version) +
            " touched an overlapping footprint (" +
            pending->footprint.ToString() + ")");
        Finish(pending, std::move(result));
        continue;
      }

      ops::Footprint applied_footprint;
      Status apply = db_->ApplyTransaction(pending->ops, &result.stats,
                                           &applied_footprint);
      if (!apply.ok()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.failures;
        result.status = std::move(apply);
        Finish(pending, std::move(result));
        continue;
      }

      // Record the union of the declared (snapshot-side) and applied
      // (authoritative-side) write sets: pattern rebinding against the
      // evolved state may touch nodes the snapshot run did not, and
      // future validations must see both.
      for (graph::NodeId node : pending->footprint.nodes) {
        applied_footprint.nodes.insert(node);
      }
      for (const graph::Edge& edge : pending->footprint.edges) {
        applied_footprint.edges.insert(edge);
      }
      applied_footprint.scheme_changed |= pending->footprint.scheme_changed;

      auto version = std::make_shared<Version>();
      version->id = ++next_commit_id_;
      version->db = db_->database();
      version->footprint = std::move(applied_footprint);
      result.version = version->id;

      applied.push_back(
          {std::move(pending), std::move(version), std::move(result)});
    }

    if (applied.empty()) continue;

    // Group commit: one fsync makes the whole batch durable; only then
    // are the versions published and the waiters acked. An fsync
    // failure poisons the database (SyncWal) and is surfaced to every
    // waiter as non-retriable kDataLoss — the transactions are applied
    // in memory with unknowable durability, so a client must never
    // auto-retry them (that could apply them twice after recovery).
    // The versions are still published to keep readers consistent with
    // the authoritative in-memory state.
    Status sync = db_->SyncWal();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches;
      if (sync.ok()) stats_.committed += applied.size();
      else stats_.failures += applied.size();
    }
    for (Applied& item : applied) {
      chain_->Publish(item.version);
      item.result.batch_size = applied.size();
      if (!sync.ok()) item.result.status = sync;
      Finish(item.pending, std::move(item.result));
    }
  }
}

}  // namespace good::server
