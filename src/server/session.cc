#include "server/session.h"

#include <utility>

#include "ops/footprint.h"

namespace good::server {

// ---- Server ----------------------------------------------------------------

Server::Server(storage::Database db, ServerOptions options)
    : options_(options),
      db_(std::move(db)),
      chain_(options.version_history) {}

Result<std::unique_ptr<Server>> Server::Open(storage::Database db,
                                             ServerOptions options) {
  // A degraded (read-only) handle is accepted: sessions serve snapshot
  // reads, and the storage layer rejects every authoritative apply with
  // kUnavailable, which the pipeline surfaces per commit.
  std::unique_ptr<Server> server(new Server(std::move(db), options));
  auto base = std::make_shared<Version>();
  base->id = 0;
  base->db = server->db_.database();
  server->chain_.Reset(std::move(base));
  server->pipeline_ = std::make_unique<CommitPipeline>(
      &server->db_, &server->chain_,
      PipelineOptions{.max_batch = options.max_batch});
  return server;
}

Server::~Server() {
  if (pipeline_) pipeline_->Stop();
  if (!closed_) (void)db_.Close();
}

std::unique_ptr<Session> Server::StartSession() {
  active_sessions_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(this, chain_.Current()));
}

Result<std::unique_ptr<Session>> Server::TryStartSession() {
  // Optimistically claim a slot; back out if that overshot the cap.
  // Two racing starts can then both be rejected at exactly the cap —
  // shedding one admissible session under a burst is the safe side.
  size_t live = active_sessions_.fetch_add(1, std::memory_order_relaxed);
  if (live >= options_.limits.max_sessions) {
    active_sessions_.fetch_sub(1, std::memory_order_relaxed);
    overload_.BumpShedSession();
    return Status::Unavailable(
        "busy: session limit (" +
        std::to_string(options_.limits.max_sessions) +
        ") reached; retry later");
  }
  return std::unique_ptr<Session>(new Session(this, chain_.Current()));
}

Status Server::Close() {
  if (pipeline_) pipeline_->Stop();
  if (closed_) return Status::OK();
  closed_ = true;
  return db_.Close();
}

// ---- Session ---------------------------------------------------------------

Session::Session(Server* server, VersionRef pinned)
    : server_(server), exec_(server->options_.exec),
      pinned_(std::move(pinned)) {}

Session::~Session() {
  server_->active_sessions_.fetch_sub(1, std::memory_order_relaxed);
}

Status Session::Refresh() {
  if (dirty()) {
    return Status::FailedPrecondition(
        "session has buffered writes; commit or rollback before refresh");
  }
  DiscardWorking();
  pinned_ = server_->chain_.Current();
  return Status::OK();
}

Result<std::vector<pattern::Matching>> Session::Match(
    const pattern::Pattern& pattern) const {
  pattern::MatchOptions options;
  options.deadline = &exec_.deadline;
  pattern::Matcher matcher(pattern, view().instance, options);
  return matcher.FindAllChecked();
}

Result<size_t> Session::Count(const pattern::Pattern& pattern) const {
  pattern::MatchOptions options;
  options.deadline = &exec_.deadline;
  pattern::Matcher matcher(pattern, view().instance, options);
  return matcher.CountChecked();
}

Status Session::EnsureWorking() {
  if (working_) return Status::OK();
  working_ = std::make_unique<program::Database>(pinned_->db);
  txn_ = std::make_unique<ops::Transaction>(&working_->scheme,
                                            &working_->instance);
  return Status::OK();
}

void Session::DiscardWorking() {
  if (txn_) {
    // The copy is discarded whole; committing the scope just detaches
    // and clears the journal without replaying inverse mutations.
    txn_->Commit();
    txn_.reset();
  }
  working_.reset();
  ops_.clear();
}

Status Session::Execute(const method::Operation& op) {
  GOOD_RETURN_NOT_OK(EnsureWorking());
  // The quota savepoint brackets just this operation: the executor
  // rolls back its own failures, but a *successful* operation that
  // blew the working-copy growth quota must be undone too.
  Savepoint quota_scope = MakeSavepoint();
  method::Executor executor(server_->options_.methods, exec_);
  Status executed =
      executor.Execute(op, &working_->scheme, &working_->instance);
  if (!executed.ok()) {
    ReleaseSavepoint(&quota_scope);  // executor already rolled back
    return executed;
  }
  size_t pinned_size =
      pinned_->db.instance.num_nodes() + pinned_->db.instance.num_edges();
  size_t working_size =
      working_->instance.num_nodes() + working_->instance.num_edges();
  size_t quota = server_->options_.limits.max_working_delta;
  if (working_size > pinned_size && working_size - pinned_size > quota) {
    RollbackTo(&quota_scope);
    server_->overload_.BumpQuota();
    return Status::ResourceExhausted(
        "session working copy would grow by more than " +
        std::to_string(quota) +
        " nodes+edges beyond its snapshot; commit smaller transactions");
  }
  ReleaseSavepoint(&quota_scope);
  ops_.push_back(op);
  return Status::OK();
}

Status Session::ExecuteAll(const std::vector<method::Operation>& ops) {
  Savepoint savepoint = MakeSavepoint();
  for (const method::Operation& op : ops) {
    Status status = Execute(op);
    if (!status.ok()) {
      RollbackTo(&savepoint);
      return status;
    }
  }
  ReleaseSavepoint(&savepoint);
  return Status::OK();
}

Session::Savepoint Session::MakeSavepoint() {
  Savepoint savepoint;
  savepoint.buffered_ops = ops_.size();
  if (working_) {
    savepoint.scope = std::make_unique<ops::Transaction>(
        &working_->scheme, &working_->instance);
  }
  return savepoint;
}

void Session::ReleaseSavepoint(Savepoint* sp) {
  // A nested commit keeps its journal entries, so the outer scope —
  // and the commit footprint collected from it — still covers the
  // region's mutations.
  if (sp->scope) sp->scope->Commit();
  sp->scope.reset();
}

void Session::RollbackTo(Savepoint* sp) {
  if (sp->scope) {
    sp->scope->Rollback();
    sp->scope.reset();
    ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(sp->buffered_ops),
               ops_.end());
    return;
  }
  // The region itself created the working copy (the session was clean
  // at the savepoint); discard it whole.
  DiscardWorking();
}

CommitResult Session::Commit() {
  CommitResult result;
  if (ops_.empty()) {
    DiscardWorking();
    pinned_ = server_->chain_.Current();
    result.status = Status::OK();
    result.version = pinned_->id;
    return result;
  }
  ops::Footprint footprint = ops::CollectFootprint(txn_->journal());
  footprint.scheme_changed = !(working_->scheme == pinned_->db.scheme);

  result = server_->pipeline_->Commit(std::move(ops_), pinned_->id,
                                      std::move(footprint), exec_.deadline);
  // Whatever the outcome the local preview is obsolete: on success the
  // authoritative re-execution is the real state (isomorphic, but with
  // its own node ids); on failure nothing was applied. Either way the
  // session continues from the newest published version.
  DiscardWorking();
  pinned_ = server_->chain_.Current();
  return result;
}

void Session::Rollback() {
  DiscardWorking();
  pinned_ = server_->chain_.Current();
}

}  // namespace good::server
