#include "server/client.h"

#include <charconv>
#include <thread>
#include <utility>

#include "program/op_serialize.h"

namespace good::server {
namespace {

/// Parses the value following `key` in an ok-line head like
/// "committed 7 batch 3".
Result<uint64_t> HeadValue(const std::string& head, std::string_view key) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t end = head.find(' ', pos);
    if (end == std::string::npos) end = head.size();
    std::string_view token(head.data() + pos, end - pos);
    if (token == key) {
      size_t vstart = end + 1;
      if (vstart >= head.size()) break;
      size_t vend = head.find(' ', vstart);
      if (vend == std::string::npos) vend = head.size();
      uint64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(head.data() + vstart, head.data() + vend, value);
      if (ec != std::errc() || ptr != head.data() + vend) break;
      return value;
    }
    pos = end + 1;
  }
  return Status::Internal("malformed server reply: expected '" +
                          std::string(key) + " <n>' in \"" + head + "\"");
}

}  // namespace

Result<ServerReply> Client::RoundTrip(std::string_view command_line,
                                      const std::string* body) {
  GOOD_RETURN_NOT_OK(transport_->Write(EncodeRequest(command_line, body)));
  GOOD_ASSIGN_OR_RETURN(std::string status_line, transport_->ReadLine());

  ServerReply reply;
  bool has_body = false;
  std::string_view line = status_line;
  if (line.rfind("ok+", 0) == 0) {
    has_body = true;
    line.remove_prefix(line.size() > 3 ? 4 : 3);
  } else if (line.rfind("ok", 0) == 0) {
    line.remove_prefix(line.size() > 2 ? 3 : 2);
  } else if (line.rfind("err ", 0) == 0) {
    line.remove_prefix(4);
    size_t space = line.find(' ');
    std::string_view code_name =
        space == std::string_view::npos ? line : line.substr(0, space);
    std::string message =
        space == std::string_view::npos
            ? std::string()
            : std::string(line.substr(space + 1));
    reply.status = Status(StatusCodeFromString(code_name), std::move(message));
    return reply;
  } else {
    return Status::Internal("malformed server reply: \"" + status_line +
                            "\"");
  }
  reply.head.assign(line);
  if (has_body) {
    for (;;) {
      GOOD_ASSIGN_OR_RETURN(std::string body_line, transport_->ReadLine());
      if (body_line == ".") break;
      std::string_view content = body_line;
      if (!content.empty() && content.front() == '.') content.remove_prefix(1);
      reply.body.append(content);
      reply.body.push_back('\n');
    }
  }
  return reply;
}

Status Client::Hello() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("hello", nullptr));
  if (!reply.status.ok()) return reply.status;
  if (reply.head.rfind(kProtocolVersion, 0) != 0) {
    return Status::Unimplemented("server speaks \"" + reply.head +
                                 "\", client speaks " +
                                 std::string(kProtocolVersion));
  }
  return Status::OK();
}

Result<uint64_t> Client::Version() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("version", nullptr));
  GOOD_RETURN_NOT_OK(reply.status);
  return HeadValue(reply.head, "version");
}

Result<uint64_t> Client::Base() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("base", nullptr));
  GOOD_RETURN_NOT_OK(reply.status);
  return HeadValue(reply.head, "base");
}

Result<uint64_t> Client::Refresh() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("refresh", nullptr));
  GOOD_RETURN_NOT_OK(reply.status);
  return HeadValue(reply.head, "base");
}

Status Client::Exec(const std::string& ops_text) {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("exec", &ops_text));
  GOOD_RETURN_NOT_OK(reply.status);
  txn_bodies_.push_back(ops_text);
  return Status::OK();
}

Status Client::Exec(const schema::Scheme& scheme,
                    const std::vector<method::Operation>& ops) {
  GOOD_ASSIGN_OR_RETURN(std::string text,
                        program::WriteOperations(scheme, ops));
  return Exec(text);
}

Result<size_t> Client::Count(const std::string& pattern_text) {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("count", &pattern_text));
  GOOD_RETURN_NOT_OK(reply.status);
  GOOD_ASSIGN_OR_RETURN(uint64_t count, HeadValue(reply.head, "count"));
  return static_cast<size_t>(count);
}

Result<std::vector<std::string>> Client::Match(
    const std::string& pattern_text) {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("match", &pattern_text));
  GOOD_RETURN_NOT_OK(reply.status);
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < reply.body.size()) {
    size_t eol = reply.body.find('\n', pos);
    if (eol == std::string::npos) eol = reply.body.size();
    lines.push_back(reply.body.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

Result<std::string> Client::Dump() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("dump", nullptr));
  GOOD_RETURN_NOT_OK(reply.status);
  return std::move(reply.body);
}

Result<Client::CommitAck> Client::Commit() {
  auto commit_once = [this]() -> Result<ServerReply> {
    return RoundTrip("commit", nullptr);
  };

  GOOD_ASSIGN_OR_RETURN(ServerReply reply, commit_once());
  common::BackoffPolicy policy;
  policy.max_retries = options_.max_commit_retries;
  policy.initial_delay = options_.retry_backoff;
  policy.max_delay = options_.max_retry_backoff;
  policy.seed = options_.retry_jitter_seed;
  common::Backoff backoff(policy);
  while (!reply.status.ok() && common::IsRetriable(reply.status) &&
         backoff.CanRetry()) {
    // The server discarded the transaction and re-pinned a fresh
    // snapshot; replay the buffered bodies against it and try again.
    std::chrono::microseconds delay = backoff.NextDelay();
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    for (const std::string& ops_text : txn_bodies_) {
      GOOD_ASSIGN_OR_RETURN(ServerReply exec_reply,
                            RoundTrip("exec", &ops_text));
      if (!exec_reply.status.ok()) {
        // The replay itself failed (e.g. a concurrent commit removed
        // what the operations need); roll the partial replay back and
        // surface the failure — retrying the commit would be wrong.
        GOOD_ASSIGN_OR_RETURN(ServerReply rollback_reply,
                              RoundTrip("rollback", nullptr));
        (void)rollback_reply;
        return exec_reply.status;
      }
    }
    GOOD_ASSIGN_OR_RETURN(reply, commit_once());
  }
  GOOD_RETURN_NOT_OK(reply.status);

  CommitAck ack;
  ack.retries = backoff.retries();
  GOOD_ASSIGN_OR_RETURN(ack.version, HeadValue(reply.head, "committed"));
  GOOD_ASSIGN_OR_RETURN(uint64_t batch, HeadValue(reply.head, "batch"));
  ack.batch_size = static_cast<size_t>(batch);
  txn_bodies_.clear();
  return ack;
}

Status Client::Rollback() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("rollback", nullptr));
  GOOD_RETURN_NOT_OK(reply.status);
  txn_bodies_.clear();
  return Status::OK();
}

Status Client::SetDeadline(std::chrono::milliseconds budget) {
  GOOD_ASSIGN_OR_RETURN(
      ServerReply reply,
      RoundTrip("deadline " + std::to_string(budget.count()), nullptr));
  return reply.status;
}

Status Client::ClearDeadline() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply,
                        RoundTrip("deadline none", nullptr));
  return reply.status;
}

Result<std::string> Client::Stats() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("stats", nullptr));
  GOOD_RETURN_NOT_OK(reply.status);
  return std::move(reply.head);
}

Status Client::Quit() {
  GOOD_ASSIGN_OR_RETURN(ServerReply reply, RoundTrip("quit", nullptr));
  return reply.status;
}

}  // namespace good::server
