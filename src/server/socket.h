/// \file socket.h
/// \brief POSIX socket front-end: a listener serving the text protocol
/// and a matching client Transport.
///
/// The protocol state machine (server/protocol.h) is socket-free; this
/// file is the thin glue that pumps bytes between it and a TCP
/// (loopback) or unix-domain socket. Each accepted connection gets its
/// own handler thread owning one Connection (and hence one Session) —
/// the thread-per-connection model the session layer's single-threaded
/// contract expects.
///
/// The listener enforces the server's front-door limits
/// (Server::limits(), see server/limits.h):
///
///  - accepts past ServerLimits::max_connections are *shed*: the
///    socket gets one retriable `err Unavailable busy ...` line and is
///    closed, the accept loop keeps running, and
///    OverloadCounters::shed_connections is bumped;
///  - every served and connected fd is put in non-blocking mode, so
///    readiness is decided solely by the poll-with-deadline helper —
///    a peer that stops draining makes send() return EAGAIN instead
///    of blocking the handler past its write timeout;
///  - every read and write in a handler goes through poll-with-
///    deadline. A connection that sends nothing for
///    ServerLimits::idle_timeout — including one stalled mid-line, the
///    slow-loris case — or does not drain its response within
///    ServerLimits::write_timeout is *evicted* (best-effort
///    `err Unavailable ...` line, close, evicted_sessions bumped).

#ifndef GOOD_SERVER_SOCKET_H_
#define GOOD_SERVER_SOCKET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "server/client.h"
#include "server/session.h"

namespace good::server {

/// \brief Client transport over a connected socket.
class SocketTransport final : public Transport {
 public:
  /// Connects to a TCP server (numeric IPv4 host, typically
  /// "127.0.0.1").
  static Result<std::unique_ptr<SocketTransport>> ConnectTcp(
      const std::string& host, int port);

  /// Connects to a unix-domain socket path.
  static Result<std::unique_ptr<SocketTransport>> ConnectUnix(
      const std::string& path);

  ~SocketTransport() override;

  Status Write(std::string_view bytes) override;
  Result<std::string> ReadLine() override;

  /// Half-closes the socket: in-flight reads/writes (also from other
  /// threads) fail promptly with kUnavailable. Idempotent.
  Status Close() override;

  void set_recv_chunk_limit(size_t bytes) override {
    recv_chunk_limit_ = bytes;
  }

  /// Bounds every subsequent Write/ReadLine: expiry mid-call returns
  /// kDeadlineExceeded / kCancelled without blocking further. An
  /// unarmed deadline (the default) blocks indefinitely.
  void set_io_deadline(common::Deadline deadline) { deadline_ = deadline; }

  /// Longest line ReadLine buffers before giving up with
  /// kResourceExhausted — without it a peer that never sends a newline
  /// would grow the buffer without bound.
  void set_max_line_bytes(size_t bytes) { max_line_bytes_ = bytes; }
  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;
  size_t recv_chunk_limit_ = 0;  // 0 = default chunk size
  size_t max_line_bytes_ = 16 * 1024 * 1024;
  common::Deadline deadline_;
};

/// \brief Accept loop serving the text protocol on one listening
/// socket.
class SocketServer {
 public:
  struct Options {
    /// When non-empty, listen on this unix-domain socket path
    /// (removed and rebound).
    std::string unix_path;
    /// Otherwise listen on 127.0.0.1:tcp_port; 0 picks an ephemeral
    /// port (see port()).
    int tcp_port = 0;
    /// When > 0, shrink each accepted socket's SO_SNDBUF to this many
    /// bytes. A test knob: a small send buffer makes the write-timeout
    /// eviction reachable with small responses.
    int sndbuf_bytes = 0;
  };

  /// Binds, listens, and starts the accept thread. `server` is
  /// borrowed and must outlive the SocketServer; its
  /// ServerLimits/OverloadCounters govern admission and eviction.
  static Result<std::unique_ptr<SocketServer>> Listen(Server* server,
                                                      Options options);

  /// Stops accepting, shuts down live connections, joins all threads.
  ~SocketServer();

  /// The bound TCP port (0 for unix-domain listeners).
  int port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  /// Connections accepted so far (admitted, not shed).
  size_t connections_accepted() const;

  /// Connections currently being served.
  size_t active_connections() const;

  void Stop();

 private:
  SocketServer(Server* server, Options options, int listen_fd, int port)
      : server_(server), options_(std::move(options)), listen_fd_(listen_fd),
        port_(port) {}

  void AcceptLoop();
  void Serve(int fd, uint64_t id);
  /// Joins handlers that finished since the last reap (called by the
  /// accept loop so a long-lived server does not accumulate one
  /// unjoined thread per connection ever accepted).
  void ReapFinishedHandlers();

  Server* server_;
  Options options_;
  int listen_fd_;
  int port_;

  mutable std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> live_fds_;
  std::map<uint64_t, std::thread> handlers_;
  /// Ids of handlers that have finished serving and can be joined.
  std::vector<uint64_t> finished_;
  uint64_t next_handler_id_ = 0;
  size_t accepted_ = 0;
  std::mutex join_mu_;
  std::thread acceptor_;
};

}  // namespace good::server

#endif  // GOOD_SERVER_SOCKET_H_
