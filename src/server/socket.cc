#include "server/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "server/protocol.h"

namespace good::server {
namespace {

using std::chrono::milliseconds;

/// Poll slice: the longest any blocking socket wait goes without
/// re-checking deadlines, idle budgets, and cancellation.
constexpr int kPollSliceMs = 100;

Status SocketError(const std::string& context, int err) {
  return Status::Unavailable(context + ": " + std::strerror(err));
}

/// Every served or connected fd is non-blocking: readiness is decided
/// by WaitReady alone, so a full send buffer (or a spuriously-woken
/// recv) returns EAGAIN and loops back into the deadline/idle-budget
/// poll instead of blocking the thread past its timeout.
Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return SocketError("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return SocketError("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return Status::OK();
}

/// Waits until `fd` is ready for `events`. Returns true when ready,
/// false when `idle_budget` (>= 0) elapsed with no readiness; `deadline`
/// expiry/cancellation and poll failures surface as typed errors.
Result<bool> WaitReady(int fd, short events, const common::Deadline& deadline,
                       milliseconds idle_budget) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    GOOD_RETURN_NOT_OK(deadline.Check());
    int wait_ms = kPollSliceMs;
    if (idle_budget.count() >= 0) {
      auto elapsed = std::chrono::duration_cast<milliseconds>(
          std::chrono::steady_clock::now() - start);
      auto remaining = idle_budget - elapsed;
      if (remaining.count() <= 0) return false;
      wait_ms = static_cast<int>(
          std::min<long long>(remaining.count(), kPollSliceMs));
    }
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return SocketError("poll", errno);
    }
    // POLLHUP/POLLERR count as ready: the following recv/send reports
    // the condition precisely.
    if (ready > 0) return true;
  }
}

/// Sends all of `bytes`, polling writability under `deadline` — a peer
/// that stops draining its receive window stalls here and is cut off
/// with the deadline's typed status.
Status SendAll(int fd, std::string_view bytes,
               const common::Deadline& deadline) {
  while (!bytes.empty()) {
    GOOD_ASSIGN_OR_RETURN(bool ready,
                          WaitReady(fd, POLLOUT, deadline, milliseconds{-1}));
    (void)ready;  // no idle budget: only the deadline cuts the wait
    ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return SocketError("send", errno);
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

/// Best-effort single-shot send for shed/eviction notices: never
/// blocks the accept loop or an exiting handler.
void SendNotice(int fd, std::string_view line) {
  (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

}  // namespace

// ---- SocketTransport -------------------------------------------------------

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectTcp(
    const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return SocketError("connect " + host + ":" + std::to_string(port), err);
  }
  // Non-blocking after the (blocking) connect: Write/ReadLine readiness
  // is governed by WaitReady and set_io_deadline, never by the kernel
  // blocking an fd.
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectUnix(
    const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket", errno);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return SocketError("connect " + path, err);
  }
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status SocketTransport::Close() {
  // Half-close only: the fd stays allocated (so no concurrent reuse
  // race) and every blocked or future read/write fails promptly.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  return Status::OK();
}

Status SocketTransport::Write(std::string_view bytes) {
  return SendAll(fd_, bytes, deadline_);
}

Result<std::string> SocketTransport::ReadLine() {
  for (;;) {
    size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_line_bytes_) {
      return Status::ResourceExhausted(
          "peer sent a line longer than " + std::to_string(max_line_bytes_) +
          " bytes; closing rather than buffering without bound");
    }
    GOOD_ASSIGN_OR_RETURN(
        bool ready, WaitReady(fd_, POLLIN, deadline_, milliseconds{-1}));
    (void)ready;
    char chunk[4096];
    size_t want = sizeof(chunk);
    if (recv_chunk_limit_ > 0) want = std::min(want, recv_chunk_limit_);
    ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return SocketError("recv", errno);
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

// ---- SocketServer ----------------------------------------------------------

Result<std::unique_ptr<SocketServer>> SocketServer::Listen(Server* server,
                                                           Options options) {
  int fd = -1;
  int port = 0;
  if (!options.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return SocketError("socket", errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return Status::InvalidArgument("unix socket path too long: " +
                                     options.unix_path);
    }
    std::memcpy(addr.sun_path, options.unix_path.c_str(),
                options.unix_path.size() + 1);
    ::unlink(options.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      int err = errno;
      ::close(fd);
      return SocketError("bind " + options.unix_path, err);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return SocketError("socket", errno);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      int err = errno;
      ::close(fd);
      return SocketError("bind 127.0.0.1:" + std::to_string(options.tcp_port),
                         err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      int err = errno;
      ::close(fd);
      return SocketError("getsockname", err);
    }
    port = ntohs(bound.sin_port);
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return SocketError("listen", err);
  }
  std::unique_ptr<SocketServer> listener(
      new SocketServer(server, std::move(options), fd, port));
  listener->acceptor_ = std::thread([raw = listener.get()] {
    raw->AcceptLoop();
  });
  return listener;
}

SocketServer::~SocketServer() { Stop(); }

size_t SocketServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

size_t SocketServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_fds_.size();
}

void SocketServer::Stop() {
  std::map<uint64_t, std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (listen_fd_ >= 0) {
      // shutdown() wakes the blocking accept; close() releases the fd.
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
    finished_.clear();
  }
  {
    std::lock_guard<std::mutex> join_lock(join_mu_);
    if (acceptor_.joinable()) acceptor_.join();
  }
  for (auto& [id, handler] : handlers) {
    if (handler.joinable()) handler.join();
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void SocketServer::ReapFinishedHandlers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : finished_) {
      auto it = handlers_.find(id);
      if (it == handlers_.end()) continue;  // Stop() already took it
      done.push_back(std::move(it->second));
      handlers_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: the marked threads are past their last
  // shared-state access and exit promptly.
  for (std::thread& handler : done) {
    if (handler.joinable()) handler.join();
  }
}

void SocketServer::AcceptLoop() {
  int listen_fd;
  {
    // Copy under the lock once; Stop may later close the fd (waking
    // accept) but never reuses the variable this loop reads.
    std::lock_guard<std::mutex> lock(mu_);
    listen_fd = listen_fd_;
  }
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      int err = errno;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;  // listener closed by Stop
      }
      // A transient accept failure must not kill the listener: that
      // would turn an overload burst into a permanent outage while the
      // process stays up. ECONNABORTED is a peer resetting before we
      // accepted (routine under connection floods); EMFILE/ENFILE/
      // ENOBUFS/ENOMEM are descriptor/memory pressure that draining
      // connections will relieve — back off briefly and retry.
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        std::this_thread::sleep_for(milliseconds(10));
        continue;
      }
      return;  // the listening socket itself is broken (e.g. EBADF)
    }
    if (!SetNonBlocking(fd).ok()) {
      // Without O_NONBLOCK the write-timeout eviction cannot work;
      // refuse the connection rather than serve it un-evictable.
      ::close(fd);
      continue;
    }
    if (options_.sndbuf_bytes > 0) {
      int sndbuf = options_.sndbuf_bytes;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }
    ReapFinishedHandlers();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    if (live_fds_.size() >= server_->limits().max_connections) {
      // Load shedding: refuse with a retriable, observable error
      // instead of queuing unboundedly behind a full handler pool.
      server_->overload_counters().BumpShed();
      SendNotice(fd,
                 "err Unavailable busy: connection limit reached; retry "
                 "later\n");
      ::close(fd);
      continue;
    }
    ++accepted_;
    live_fds_.push_back(fd);
    uint64_t id = next_handler_id_++;
    handlers_.emplace(id, std::thread([this, fd, id] { Serve(fd, id); }));
  }
}

void SocketServer::Serve(int fd, uint64_t id) {
  Connection connection(server_);
  const ServerLimits& limits = server_->limits();
  const common::Deadline no_deadline;  // handlers bound waits by budgets
  std::string out;
  char chunk[4096];
  while (!connection.closed()) {
    auto readable =
        WaitReady(fd, POLLIN, no_deadline,
                  std::chrono::duration_cast<milliseconds>(
                      limits.idle_timeout));
    if (!readable.ok()) break;  // poll failure: treat as disconnect
    if (!*readable) {
      // Idle timeout: the slow-loris eviction. One best-effort notice,
      // then the connection is gone and its handler thread with it.
      server_->overload_counters().BumpEvicted();
      SendNotice(fd,
                 "err Unavailable idle timeout: connection evicted\n");
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      // EAGAIN: the non-blocking fd woke spuriously; re-enter the
      // idle-budget poll rather than treating it as a disconnect.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (n == 0) break;  // peer hung up
    out.clear();
    connection.Feed(std::string_view(chunk, static_cast<size_t>(n)), &out);
    if (!out.empty()) {
      Status written = SendAll(
          fd, out, common::Deadline::After(limits.write_timeout));
      if (!written.ok()) {
        if (written.IsDeadlineExceeded()) {
          // The peer stopped draining its responses: evict rather than
          // pin this handler on a full send buffer.
          server_->overload_counters().BumpEvicted();
        }
        break;
      }
    }
  }
  {
    // Unregister before closing: once close() recycles the descriptor
    // number, a concurrent Stop() must not shutdown() it by mistake.
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
    finished_.push_back(id);
  }
  ::close(fd);
}

}  // namespace good::server
