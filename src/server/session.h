/// \file session.h
/// \brief The multi-session server: snapshot-isolated sessions over one
/// durable database.
///
/// A Server owns a storage::Database and turns it into a service many
/// sessions use concurrently:
///
///  - **Reads** never block and never see partial writes. A session
///    pins the current published Version (a shared_ptr — pinning is a
///    refcount bump) and all its queries run against that immutable
///    snapshot plus its own buffered writes.
///  - **Writes** are buffered locally. Execute() runs each operation
///    against a private working copy of the snapshot under an undo
///    journal, so the session reads its own writes and collects the
///    transaction's write footprint for free.
///  - **Commit** ships the buffered operations to the single-writer
///    CommitPipeline, which validates them first-committer-wins
///    against everything committed since the session's base snapshot,
///    re-executes them against the authoritative database, and group
///    commits (one fsync per batch of adjacent commits). The session
///    then re-pins the latest published version.
///
/// Operations are deterministic up to the choice of new object ids
/// (Section 3 of the paper), so the authoritative re-execution at
/// commit produces a state isomorphic to the session's working copy —
/// the working copy is a preview, the committed version is the truth.
///
/// Thread model: Server, VersionChain and CommitPipeline are
/// thread-safe; each Session must be used by one thread at a time
/// (the usual connection-handler ownership).

#ifndef GOOD_SERVER_SESSION_H_
#define GOOD_SERVER_SESSION_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "method/method.h"
#include "ops/transaction.h"
#include "pattern/matcher.h"
#include "server/commit_pipeline.h"
#include "server/limits.h"
#include "server/version.h"
#include "storage/database.h"

namespace good::server {

class Session;

struct ServerOptions {
  /// Maximum commits fsynced together (see PipelineOptions::max_batch).
  size_t max_batch = 8;
  /// Commit footprints retained for first-committer-wins validation; a
  /// session whose snapshot falls further behind gets kAborted
  /// ("snapshot too old") at commit and must retry on a fresh pin.
  size_t version_history = 64;
  /// Methods available to session operations. Borrowed; may be null
  /// when no `call` operations are executed. Must match the registry
  /// the database was opened with.
  const method::MethodRegistry* methods = nullptr;
  /// Default execution limits for new sessions (per-session overrides
  /// via Session::exec_options()). The deadline member also bounds
  /// commit waits.
  method::ExecOptions exec;
  /// Admission-control and resource quotas enforced at the front door
  /// (sessions, protocol, sockets) — see server/limits.h.
  ServerLimits limits;
};

/// \brief Shared front-end over one durable database.
class Server {
 public:
  /// Takes ownership of `db` (already recovered via
  /// storage::Database::Open; open it with sync_every_append=false to
  /// get real group commit) and publishes its state as version 0.
  static Result<std::unique_ptr<Server>> Open(storage::Database db,
                                              ServerOptions options = {});

  ~Server();

  /// Starts a session pinned to the current published version.
  /// Unconditional — the embedded (in-process, trusted) entry point.
  std::unique_ptr<Session> StartSession();

  /// Admission-controlled session start: rejects with a retriable
  /// kUnavailable once ServerLimits::max_sessions sessions are live.
  /// The network front-end (protocol/socket) goes through here.
  Result<std::unique_ptr<Session>> TryStartSession();

  /// The newest published version (never null).
  VersionRef current_version() const { return chain_.Current(); }

  PipelineStats pipeline_stats() const { return pipeline_->stats(); }

  /// Front-door limits every layer above enforces.
  const ServerLimits& limits() const { return options_.limits; }

  /// Shed/eviction/quota counters (see server/limits.h); shared with
  /// the socket listener and every connection.
  OverloadCounters& overload_counters() { return overload_; }
  OverloadStats overload_stats() const { return overload_.Snapshot(); }

  /// Sessions currently alive (socket-backed and embedded).
  size_t active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }

  /// Stops the commit pipeline (draining queued commits), then syncs
  /// and closes the database. Sessions keep serving snapshot reads;
  /// commits are rejected with kUnavailable. Idempotent.
  Status Close();

  /// The underlying database (authoritative state; for tests/tools).
  const storage::Database& database() const { return db_; }

 private:
  friend class Session;

  Server(storage::Database db, ServerOptions options);

  ServerOptions options_;
  storage::Database db_;
  VersionChain chain_;
  std::unique_ptr<CommitPipeline> pipeline_;
  OverloadCounters overload_;
  std::atomic<size_t> active_sessions_{0};
  bool closed_ = false;
};

/// \brief One client's snapshot-isolated view and write buffer.
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session();

  // ---- Snapshot ------------------------------------------------------------

  /// Id of the pinned base version.
  uint64_t base_version() const { return pinned_->id; }

  /// The pinned immutable version (shared with every other pinner).
  const VersionRef& snapshot() const { return pinned_; }

  /// The session's view: the pinned snapshot overlaid with its own
  /// uncommitted writes (read-your-writes). The reference is stable
  /// until the next Execute/Commit/Rollback/Refresh.
  const program::Database& view() const {
    return working_ ? *working_ : pinned_->db;
  }

  /// Re-pins the newest published version. Rejected with
  /// kFailedPrecondition while writes are buffered.
  Status Refresh();

  // ---- Reads ---------------------------------------------------------------

  /// Matchings of `pattern` in the session view, under the session
  /// deadline.
  Result<std::vector<pattern::Matching>> Match(
      const pattern::Pattern& pattern) const;

  /// Matching count of `pattern` in the session view.
  Result<size_t> Count(const pattern::Pattern& pattern) const;

  // ---- Writes --------------------------------------------------------------

  /// Executes `op` against the private working copy (creating it on
  /// first write) and buffers it for commit. On error the working copy
  /// is rolled back to the previous operation boundary and nothing is
  /// buffered. An operation that grows the working copy past
  /// ServerLimits::max_working_delta nodes+edges beyond the pinned
  /// snapshot is rolled back the same way and rejected with
  /// kResourceExhausted (non-retriable: the same operations would blow
  /// the same quota again).
  Status Execute(const method::Operation& op);

  /// Executes a sequence all-or-nothing: on the first failure the
  /// session rolls back to the state before the call (bodies buffered
  /// by earlier calls stay) and the failure is returned.
  Status ExecuteAll(const std::vector<method::Operation>& ops);

  // ---- Savepoints ----------------------------------------------------------

  /// A mark in the buffered transaction: everything executed after
  /// MakeSavepoint() can be undone together with RollbackTo(), leaving
  /// older buffered state untouched — the all-or-nothing unit a
  /// multi-operation request body needs. Move-only; resolve each
  /// savepoint with exactly one of ReleaseSavepoint()/RollbackTo()
  /// before the next Commit/Rollback/Refresh.
  struct Savepoint {
    /// Operations buffered when the savepoint was taken.
    size_t buffered_ops = 0;
    /// Nested undo scope over the working copy. Null when the session
    /// was clean at the savepoint — rollback then discards the working
    /// copy whole.
    std::unique_ptr<ops::Transaction> scope;
  };

  /// Marks the current transaction state.
  Savepoint MakeSavepoint();

  /// Accepts everything executed since `sp`; it stays buffered for
  /// commit (the enclosing transaction can still roll it all back).
  void ReleaseSavepoint(Savepoint* sp);

  /// Undoes every operation executed since `sp` — instance mutations
  /// exactly via the undo journal, scheme via the savepoint snapshot —
  /// and drops them from the commit buffer.
  void RollbackTo(Savepoint* sp);

  /// True iff writes are buffered.
  bool dirty() const { return !ops_.empty(); }
  const std::vector<method::Operation>& buffered_ops() const { return ops_; }

  // ---- Transaction control -------------------------------------------------

  /// Ships the buffered operations through the commit pipeline and
  /// blocks for the group-commit ack, honoring exec_options().deadline
  /// while queued. Whatever the outcome the local buffer is discarded
  /// and the session re-pins the newest published version; on OK that
  /// version includes this commit. An empty commit is a no-op refresh.
  CommitResult Commit();

  /// Discards buffered writes and re-pins the newest version.
  void Rollback();

  /// Execution limits for this session's reads, writes and commit
  /// waits. Mutable — e.g. `exec_options().deadline =
  /// common::Deadline::After(50ms)` bounds the next calls.
  method::ExecOptions& exec_options() { return exec_; }
  const method::ExecOptions& exec_options() const { return exec_; }

 private:
  friend class Server;

  Session(Server* server, VersionRef pinned);

  /// Engages the working copy + undo scope on first write.
  Status EnsureWorking();
  /// Discards the working copy (journal detached via scope commit —
  /// the copy is thrown away, replaying inverses would be wasted work).
  void DiscardWorking();

  Server* server_;
  method::ExecOptions exec_;
  VersionRef pinned_;
  /// Engaged on first write: a private copy of the pinned snapshot.
  std::unique_ptr<program::Database> working_;
  /// Outermost undo scope over `working_`; its journal accumulates
  /// every buffered operation's mutations (nested executor scopes keep
  /// their entries), yielding the whole-transaction footprint.
  std::unique_ptr<ops::Transaction> txn_;
  std::vector<method::Operation> ops_;
};

}  // namespace good::server

#endif  // GOOD_SERVER_SESSION_H_
