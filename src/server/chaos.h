/// \file chaos.h
/// \brief Deterministic network-fault injection for the client
/// transport.
///
/// ChaosTransport decorates any Transport and injects one family of
/// faults at seeded *operation boundaries* — the same design as the
/// storage layer's CrashPointEnv (storage/fault_env.h), moved up to
/// the wire: every Write/ReadLine call counts one boundary, a seeded
/// schedule picks which boundaries fault, and the whole fault sequence
/// is a pure function of (options, seed). A failing chaos episode
/// therefore replays exactly from its seed.
///
/// Fault families (ChaosMode):
///  - kShortWrite: a faulting Write is delivered in several small
///    seeded fragments (with brief pauses), so the server sees request
///    lines torn across arbitrary recv() boundaries. All bytes still
///    arrive — this probes reassembly, not loss.
///  - kShortRead: a faulting ReadLine caps the underlying transport's
///    receive chunk size to a few bytes (Transport::
///    set_recv_chunk_limit), tearing responses on the client side.
///  - kDisconnect: a faulting Write delivers only a seeded prefix and
///    then closes the connection; a faulting ReadLine closes it before
///    reading. The caller observes kUnavailable and — crucially for
///    commits — cannot know whether the server applied the request.
///  - kDelay: a faulting call first sleeps a seeded duration (bounded
///    by ChaosOptions::max_delay), probing idle-timeout interaction.
///
/// After an injected disconnect every further call returns
/// kUnavailable, like a real torn socket. The decorator is
/// single-threaded, matching the Transport contract.

#ifndef GOOD_SERVER_CHAOS_H_
#define GOOD_SERVER_CHAOS_H_

#include <chrono>
#include <cstdint>

#include "server/client.h"

namespace good::server {

/// \brief Which fault family a ChaosTransport injects.
enum class ChaosMode {
  kShortWrite,
  kShortRead,
  kDisconnect,
  kDelay,
};

const char* ChaosModeName(ChaosMode mode);

struct ChaosOptions {
  ChaosMode mode = ChaosMode::kShortWrite;
  /// Seed of the fault schedule; same (options, seed) -> same faults.
  uint64_t seed = 0;
  /// Mean spacing between faulting boundaries: each gap is drawn
  /// uniformly from [1, 2*period]. 0 faults every boundary.
  size_t period = 3;
  /// Upper bound on one injected kDelay sleep.
  std::chrono::microseconds max_delay{2000};
};

/// \brief Transport decorator injecting seeded faults (see file
/// comment). Borrows `inner`, which must outlive it.
class ChaosTransport final : public Transport {
 public:
  ChaosTransport(Transport* inner, ChaosOptions options);

  Status Write(std::string_view bytes) override;
  Result<std::string> ReadLine() override;
  Status Close() override;
  void set_recv_chunk_limit(size_t bytes) override {
    inner_->set_recv_chunk_limit(bytes);
  }

  /// Faults injected so far.
  size_t faults_injected() const { return faults_; }
  /// True once a kDisconnect fault tore the connection.
  bool disconnected() const { return disconnected_; }

 private:
  /// Next value of the seeded stream (splitmix64).
  uint64_t NextRandom();
  /// Counts one boundary; true iff the schedule faults it (then
  /// re-arms the schedule and counts the fault).
  bool FaultsThisBoundary();
  /// Tears the connection down chaos-side.
  Status Disconnect(const char* during);

  Transport* inner_;
  ChaosOptions options_;
  uint64_t rng_;
  uint64_t boundaries_until_fault_;
  size_t faults_ = 0;
  bool disconnected_ = false;
};

}  // namespace good::server

#endif  // GOOD_SERVER_CHAOS_H_
