/// \file commit_pipeline.h
/// \brief Single-writer commit queue with group commit.
///
/// Sessions build transactions against pinned snapshots and submit
/// them here; a dedicated committer thread serializes all writes to
/// the storage::Database. Each submitted commit passes through:
///
///  1. **Claim** — the committer atomically claims the queue entry. A
///     waiter whose deadline expired first abandons the entry instead
///     (compare-and-swap on the entry state), so a session blocked in
///     commit past ExecOptions::deadline returns kDeadlineExceeded and
///     its transaction is never applied.
///  2. **Validate** — first-committer-wins: the transaction's write
///     footprint (collected by the session from its undo journal) is
///     checked against every version committed after the transaction's
///     base snapshot (VersionChain::FirstConflict) and against the
///     commits applied earlier in the same batch. Overlap aborts the
///     commit with kAborted and the id of the winning version.
///  3. **Apply** — the operations re-execute against the authoritative
///     database via storage::Database::ApplyTransaction: one undo
///     scope, one WAL record, appended *unsynced*.
///  4. **Group commit** — after applying every claimed entry of the
///     batch the committer issues a single SyncWal(). Only then are
///     the new versions published and the waiting sessions acked, so
///     an acknowledged commit is durable and a crash can only lose
///     whole unacknowledged transactions. A failed barrier poisons
///     the database and acks the batch with non-retriable kDataLoss:
///     the transactions' durability is ambiguous, so clients must not
///     re-run them (see storage::Database::SyncWal).
///
/// Because exactly one thread applies transactions, the final
/// (scheme, instance) is by construction the serial execution of the
/// committed transactions in ack order — the differential gate the
/// stress tests check by isomorphism against a serial oracle.

#ifndef GOOD_SERVER_COMMIT_PIPELINE_H_
#define GOOD_SERVER_COMMIT_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "method/method.h"
#include "ops/footprint.h"
#include "server/version.h"
#include "storage/database.h"

namespace good::server {

/// \brief Per-commit acknowledgement.
struct CommitResult {
  /// OK; kAborted (lost a first-committer-wins race, see
  /// `conflict_version`); kDeadlineExceeded (abandoned while queued or
  /// expired before apply); or a storage error.
  Status status;
  /// The version this commit produced (set on success).
  uint64_t version = 0;
  /// On kAborted: the committed version whose footprint overlapped.
  uint64_t conflict_version = 0;
  /// Commits made durable by the same fsync (>= 1 on success) — the
  /// observable group-commit batch size.
  size_t batch_size = 0;
  /// Execution counters from the authoritative apply.
  ops::ApplyStats stats;

  bool ok() const { return status.ok(); }
};

/// \brief Aggregate pipeline counters (monotonic; for tests, benches
/// and observability).
struct PipelineStats {
  uint64_t committed = 0;    ///< Transactions applied and acked OK.
  uint64_t conflicts = 0;    ///< Commits rejected by validation.
  uint64_t abandoned = 0;    ///< Entries abandoned by deadline waiters.
  uint64_t expired = 0;      ///< Claimed entries expired before apply.
  uint64_t failures = 0;     ///< Applies rejected by the storage layer.
  uint64_t batches = 0;      ///< Group-commit fsync barriers issued.
};

struct PipelineOptions {
  /// Maximum commits applied under one fsync barrier.
  size_t max_batch = 8;
};

/// \brief The single-writer commit queue. Thread-safe; one committer
/// thread owns all writes to the database.
class CommitPipeline {
 public:
  /// `db` and `chain` are borrowed and must outlive the pipeline. The
  /// database should be opened with Options::sync_every_append=false —
  /// with per-append fsync enabled the pipeline still works but every
  /// record syncs eagerly and the group-commit barrier is a no-op.
  CommitPipeline(storage::Database* db, VersionChain* chain,
                 PipelineOptions options = {});

  /// Stops the committer (draining queued commits) and joins it.
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Submits one transaction and blocks until it is acked, rejected,
  /// or abandoned. `base_version` is the id of the snapshot the
  /// transaction was built against and `footprint` its write set on
  /// that snapshot. `deadline` bounds the wait: expiry while still
  /// queued abandons the commit (nothing applied, kDeadlineExceeded);
  /// once the committer has claimed the entry the outcome is awaited
  /// regardless (it is imminent and unambiguous).
  CommitResult Commit(std::vector<method::Operation> ops,
                      uint64_t base_version, ops::Footprint footprint,
                      common::Deadline deadline);

  /// Drains the queue, stops and joins the committer. Commits
  /// submitted after Stop are rejected with kUnavailable. Idempotent.
  void Stop();

  PipelineStats stats() const;

 private:
  struct Pending {
    enum class State : int { kQueued = 0, kClaimed = 1, kAbandoned = 2 };
    std::atomic<State> state{State::kQueued};
    std::vector<method::Operation> ops;
    uint64_t base_version = 0;
    ops::Footprint footprint;
    common::Deadline deadline;
    // Completion handshake.
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    CommitResult result;
  };

  void CommitterLoop();
  static void Finish(const std::shared_ptr<Pending>& pending,
                     CommitResult result);

  storage::Database* db_;
  VersionChain* chain_;
  const PipelineOptions options_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  PipelineStats stats_;

  uint64_t next_commit_id_ = 0;  // committer thread only
  std::mutex join_mu_;
  std::thread committer_;
};

}  // namespace good::server

#endif  // GOOD_SERVER_COMMIT_PIPELINE_H_
