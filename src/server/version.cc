#include "server/version.h"

#include <string>

namespace good::server {

void VersionChain::Reset(VersionRef base) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(base);
  history_.clear();
}

VersionRef VersionChain::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t VersionChain::current_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->id : 0;
}

Result<uint64_t> VersionChain::FirstConflict(
    uint64_t base_id, const ops::Footprint& footprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t current_id = current_ ? current_->id : 0;
  if (base_id >= current_id) return uint64_t{0};  // up to date
  // The history window covers [front.id, back.id]; we need every id in
  // (base_id, current_id]. Publications are contiguous, so the window
  // suffices iff it reaches back to base_id + 1.
  if (history_.empty() || history_.front().first > base_id + 1) {
    return Status::Aborted(
        "snapshot too old: base version " + std::to_string(base_id) +
        " predates the retained footprint window; retry against a fresh "
        "snapshot");
  }
  for (const auto& [id, committed] : history_) {
    if (id <= base_id) continue;
    if (committed.Overlaps(footprint)) return id;
  }
  return uint64_t{0};
}

void VersionChain::Publish(VersionRef version) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.emplace_back(version->id, version->footprint);
  while (history_.size() > max_history_) history_.pop_front();
  current_ = std::move(version);
}

}  // namespace good::server
