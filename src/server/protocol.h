/// \file protocol.h
/// \brief The line-oriented text protocol and its server-side state
/// machine.
///
/// The wire format is plain text, one request-response exchange at a
/// time, reusing the existing textual forms for everything structured
/// (program/op_serialize.h for operations and patterns,
/// program/serialize.h for database dumps):
///
/// \code
/// request  = command-line [ body ]
/// command  = "hello" | "version" | "base" | "refresh" | "deadline" ...
/// body     = dot-stuffed lines, terminated by a line containing "."
/// response = "ok" [args] NL            ; success, no body
///          | "ok+" [args] NL body      ; success, body follows
///          | "err" CODE message NL     ; failure (CODE = StatusCode name)
/// \endcode
///
/// Bodies use SMTP-style dot-stuffing: a body line beginning with '.'
/// is sent with an extra leading dot, and the body ends at the first
/// line that is exactly ".". Commands carrying a body: `exec` (an
/// operation sequence), `count` and `match` (a pattern block).
///
/// Session commands:
///  - `hello`            -> `ok good/1 base <id>`
///  - `version`          -> `ok version <id>`         (newest published)
///  - `base`             -> `ok base <id>`            (pinned snapshot)
///  - `refresh`          -> `ok base <id>`            (re-pin newest)
///  - `exec` + ops       -> `ok applied <n>`          (buffer writes)
///  - `count` + pattern  -> `ok count <n>`
///  - `match` + pattern  -> `ok+ matchings <n>` + one line per matching
///  - `dump`             -> `ok+ database` + scheme/instance text
///  - `commit`           -> `ok committed <version> batch <k>`
///  - `rollback`         -> `ok rolledback`
///  - `deadline <ms>`    -> `ok` (bounds later calls; `deadline none`
///                          disarms)
///  - `quit`             -> `ok bye` and the connection closes
///
/// The Connection class is deliberately socket-free: it consumes raw
/// bytes and appends response bytes to a caller buffer, so the same
/// state machine serves a TCP/unix socket (server/socket.h), an
/// in-process loopback (server/client.h) and plain string-driven
/// tests.

#ifndef GOOD_SERVER_PROTOCOL_H_
#define GOOD_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "server/session.h"

namespace good::server {

/// Protocol identifier sent in the `hello` response.
inline constexpr std::string_view kProtocolVersion = "good/1";

/// Dot-stuffs `body` for the wire: every line starting with '.' gains
/// a leading dot, a missing final newline is added, and the ".\n"
/// terminator is appended.
std::string DotStuff(std::string_view body);

/// Serializes one request (command line plus optional dot-stuffed
/// body) — the client-side counterpart of Connection.
std::string EncodeRequest(std::string_view command_line,
                          const std::string* body);

/// \brief Server-side per-connection state machine.
///
/// Feed() raw bytes in, read response bytes out. Each connection owns
/// one Session; single-threaded like the session it wraps.
class Connection {
 public:
  explicit Connection(Server* server)
      : server_(server), session_(server->StartSession()) {}

  /// Consumes `bytes`; every completed request appends its response to
  /// `*out`. Incomplete trailing lines are buffered for the next call.
  void Feed(std::string_view bytes, std::string* out);

  /// True after `quit`; further input is ignored.
  bool closed() const { return closed_; }

  Session& session() { return *session_; }

 private:
  void HandleLine(std::string_view line, std::string* out);
  void Dispatch(const std::string& command_line, const std::string& body,
                std::string* out);

  Server* server_;
  std::unique_ptr<Session> session_;
  std::string input_;
  bool in_body_ = false;
  std::string pending_command_;
  std::string body_;
  bool closed_ = false;
};

}  // namespace good::server

#endif  // GOOD_SERVER_PROTOCOL_H_
