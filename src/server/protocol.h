/// \file protocol.h
/// \brief The line-oriented text protocol and its server-side state
/// machine.
///
/// The wire format is plain text, one request-response exchange at a
/// time, reusing the existing textual forms for everything structured
/// (program/op_serialize.h for operations and patterns,
/// program/serialize.h for database dumps):
///
/// \code
/// request  = command-line [ body ]
/// command  = "hello" | "version" | "base" | "refresh" | "deadline" ...
/// body     = dot-stuffed lines, terminated by a line containing "."
/// response = "ok" [args] NL            ; success, no body
///          | "ok+" [args] NL body      ; success, body follows
///          | "err" CODE message NL     ; failure (CODE = StatusCode name)
/// \endcode
///
/// Bodies use SMTP-style dot-stuffing: a body line beginning with '.'
/// is sent with an extra leading dot, and the body ends at the first
/// line that is exactly ".". Commands carrying a body: `exec` (an
/// operation sequence), `count` and `match` (a pattern block).
///
/// Session commands:
///  - `hello`            -> `ok good/1 base <id>`
///  - `version`          -> `ok version <id>`         (newest published)
///  - `base`             -> `ok base <id>`            (pinned snapshot)
///  - `refresh`          -> `ok base <id>`            (re-pin newest)
///  - `exec` + ops       -> `ok applied <n>`          (buffer writes)
///  - `count` + pattern  -> `ok count <n>`
///  - `match` + pattern  -> `ok+ matchings <n>` + one line per matching
///  - `dump`             -> `ok+ database` + scheme/instance text
///  - `commit`           -> `ok committed <version> batch <k>`
///  - `rollback`         -> `ok rolledback`
///  - `deadline <ms>`    -> `ok` (bounds later calls; `deadline none`
///                          disarms)
///  - `stats`            -> `ok stats shed <n> shed_sessions <n>
///                          evicted <n> quota <n> sessions <n>
///                          committed <n> conflicts <n> batches <n>
///                          [quarantined <cls>,<cls>,...]`
///                          (overload + pipeline counters; `shed` is
///                          connection-cap sheds, `shed_sessions`
///                          session-cap rejections; the trailing
///                          `quarantined` token appears only when
///                          recovery quarantined snapshot partitions —
///                          those classes answer kUnavailable)
///  - `quit`             -> `ok bye` and the connection closes
///
/// The Connection class is deliberately socket-free: it consumes raw
/// bytes and appends response bytes to a caller buffer, so the same
/// state machine serves a TCP/unix socket (server/socket.h), an
/// in-process loopback (server/client.h) and plain string-driven
/// tests.
///
/// Overload behavior (see server/limits.h): a connection admitted past
/// the session cap answers every request with a retriable
/// `err Unavailable busy ...` until the client quits; a line longer
/// than max_line_bytes or a body larger than max_body_bytes draws
/// `err ResourceExhausted ...` and closes the connection — past a
/// quota the line stream cannot be resynchronized, and closing is the
/// predictable-degradation answer. The protocol is strict
/// request-then-response, so at most one request is in flight per
/// connection by construction; pipelined bytes are bounded by the
/// line/body quotas.

#ifndef GOOD_SERVER_PROTOCOL_H_
#define GOOD_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "server/session.h"

namespace good::server {

/// Protocol identifier sent in the `hello` response.
inline constexpr std::string_view kProtocolVersion = "good/1";

/// Dot-stuffs `body` for the wire: every line starting with '.' gains
/// a leading dot, a missing final newline is added, and the ".\n"
/// terminator is appended.
std::string DotStuff(std::string_view body);

/// Serializes one request (command line plus optional dot-stuffed
/// body) — the client-side counterpart of Connection.
std::string EncodeRequest(std::string_view command_line,
                          const std::string* body);

/// \brief Server-side per-connection state machine.
///
/// Feed() raw bytes in, read response bytes out. Each connection owns
/// one Session; single-threaded like the session it wraps.
class Connection {
 public:
  /// Starts the connection's session through admission control
  /// (Server::TryStartSession). Past the session cap the connection
  /// still constructs but is session-less: every request draws the
  /// retriable busy error (has_session() false).
  explicit Connection(Server* server);

  /// Consumes `bytes`; every completed request appends its response to
  /// `*out`. Incomplete trailing lines are buffered for the next call.
  void Feed(std::string_view bytes, std::string* out);

  /// True after `quit` or a fatal quota violation; further input is
  /// ignored and the transport should close the connection.
  bool closed() const { return closed_; }

  /// False when admission control rejected the session.
  bool has_session() const { return session_ != nullptr; }

  Session& session() { return *session_; }

 private:
  void HandleLine(std::string_view line, std::string* out);
  void Dispatch(const std::string& command_line, const std::string& body,
                std::string* out);
  /// Emits the error, bumps the quota counter, and closes.
  void QuotaViolation(const std::string& what, std::string* out);

  Server* server_;
  std::unique_ptr<Session> session_;
  /// Why TryStartSession rejected (session_ null).
  Status admission_;
  std::string input_;
  bool in_body_ = false;
  std::string pending_command_;
  std::string body_;
  bool closed_ = false;
};

}  // namespace good::server

#endif  // GOOD_SERVER_PROTOCOL_H_
