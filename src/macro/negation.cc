#include "macro/negation.h"

#include <algorithm>
#include <memory>
#include <set>

namespace good::macros {

using graph::Instance;

namespace {

/// Candidate visits between deadline polls inside an extension check;
/// small because crossed parts are tiny patterns and the caller may be
/// filtering thousands of matchings under one deadline.
constexpr size_t kExtensionPollStride = 64;

/// Backtracking extension check: given the images of the positive nodes,
/// does an assignment of the crossed nodes exist that realizes every
/// edge of the full pattern?
class ExtensionCheck {
 public:
  ExtensionCheck(const NegatedPattern& negated, const Instance& instance,
                 const Matching& positive_matching,
                 const common::Deadline* deadline = nullptr)
      : negated_(negated),
        instance_(instance),
        deadline_(deadline),
        armed_(deadline != nullptr && deadline->armed()) {
    for (NodeId n : negated.positive_nodes) {
      images_[n] = positive_matching.At(n);
    }
    std::set<NodeId> positive(negated.positive_nodes.begin(),
                              negated.positive_nodes.end());
    for (NodeId n : negated.full.AllNodes()) {
      if (!positive.contains(n)) crossed_.push_back(n);
    }
  }

  /// Extensibility, or the interrupt that cut the search short. An
  /// already-expired deadline is observed up front (tiny searches may
  /// finish under the poll stride).
  Result<bool> Extensible() {
    if (armed_) GOOD_RETURN_NOT_OK(deadline_->Check());
    const bool extensible = Recurse(0);
    GOOD_RETURN_NOT_OK(interrupt_);
    return extensible;
  }

 private:
  /// Stride-gated deadline poll; false means stop (interrupt_ set).
  bool Poll() {
    if ((++polls_ & (kExtensionPollStride - 1)) != 0) return true;
    Status expired = deadline_->Check();
    if (expired.ok()) return true;
    interrupt_ = std::move(expired);
    return false;
  }

  /// All full-pattern edges whose endpoints are both assigned must be
  /// present in the instance.
  bool EdgesConsistent() const {
    for (NodeId m : negated_.full.AllNodes()) {
      auto mit = images_.find(m);
      if (mit == images_.end()) continue;
      for (const auto& [label, target] : negated_.full.OutEdges(m)) {
        auto tit = images_.find(target);
        if (tit == images_.end()) continue;
        if (!instance_.HasEdge(mit->second, label, tit->second)) return false;
      }
    }
    return true;
  }

  bool Recurse(size_t index) {
    if (index == crossed_.size()) return EdgesConsistent();
    NodeId m = crossed_[index];
    std::vector<NodeId> candidates;
    if (negated_.full.HasPrintValue(m)) {
      auto found = instance_.FindPrintable(negated_.full.LabelOf(m),
                                           *negated_.full.PrintValueOf(m));
      if (found.has_value()) candidates.push_back(*found);
    } else {
      candidates = instance_.NodesWithLabel(negated_.full.LabelOf(m));
    }
    for (NodeId t : candidates) {
      if (armed_ && !Poll()) return false;
      images_[m] = t;
      // Prune early: partial assignments must stay edge-consistent.
      if (EdgesConsistent() && Recurse(index + 1)) return true;
    }
    images_.erase(m);
    return false;
  }

  const NegatedPattern& negated_;
  const Instance& instance_;
  const common::Deadline* deadline_;
  const bool armed_;
  size_t polls_ = 0;
  Status interrupt_;
  std::unordered_map<NodeId, NodeId> images_;
  std::vector<NodeId> crossed_;
};

Result<bool> IsExtensibleChecked(const NegatedPattern& negated,
                                 const Instance& instance,
                                 const Matching& positive_matching,
                                 const common::Deadline* deadline) {
  return ExtensionCheck(negated, instance, positive_matching, deadline)
      .Extensible();
}

}  // namespace

Result<Pattern> NegatedPattern::PositivePart() const {
  Pattern positive = full;  // Node ids stay stable under removal.
  std::set<NodeId> keep(positive_nodes.begin(), positive_nodes.end());
  for (NodeId n : positive_nodes) {
    if (!full.HasNode(n)) {
      return Status::InvalidArgument(
          "positive node list references a node outside the pattern");
    }
  }
  for (NodeId n : full.AllNodes()) {
    if (!keep.contains(n)) {
      GOOD_RETURN_NOT_OK(positive.RemoveNode(n));
    }
  }
  for (const graph::Edge& e : crossed_edges) {
    if (!full.HasEdge(e.source, e.label, e.target)) {
      return Status::InvalidArgument(
          "crossed edge is not an edge of the pattern");
    }
    GOOD_RETURN_NOT_OK(positive.RemoveEdge(e.source, e.label, e.target));
  }
  return positive;
}

Result<std::vector<Matching>> EvaluateNegated(
    const NegatedPattern& negated, const Instance& instance,
    const common::Deadline* deadline) {
  GOOD_ASSIGN_OR_RETURN(Pattern positive, negated.PositivePart());
  pattern::MatchOptions options;
  options.deadline = deadline;
  GOOD_ASSIGN_OR_RETURN(
      std::vector<Matching> matchings,
      pattern::Matcher(positive, instance, options).FindAllChecked());
  std::vector<Matching> out;
  for (Matching& m : matchings) {
    GOOD_ASSIGN_OR_RETURN(
        bool extensible, IsExtensibleChecked(negated, instance, m, deadline));
    if (!extensible) out.push_back(std::move(m));
  }
  return out;
}

Result<ops::MatchFilter> NegationFilter(const NegatedPattern& negated,
                                        const common::Deadline* deadline) {
  // Sanity-check the structure up front; the filter itself can then
  // only fail on a deadline interrupt.
  GOOD_RETURN_NOT_OK(negated.PositivePart().status());
  auto shared = std::make_shared<NegatedPattern>(negated);
  return ops::MatchFilter(
      [shared, deadline](const Matching& m,
                         const Instance& instance) -> Result<bool> {
        GOOD_ASSIGN_OR_RETURN(
            bool extensible,
            IsExtensibleChecked(*shared, instance, m, deadline));
        return !extensible;
      });
}

Result<std::vector<method::Operation>> NegationToOperations(
    const NegatedPattern& negated, const schema::Scheme& scheme,
    Symbol intermediate_label) {
  GOOD_ASSIGN_OR_RETURN(Pattern positive, negated.PositivePart());

  // Labels "$neg:<i>" bind the Intermediate node to the images of the
  // positive nodes (the 1, 2, 3 edges of Figure 27).
  std::vector<Symbol> index_labels;
  for (size_t i = 0; i < negated.positive_nodes.size(); ++i) {
    index_labels.push_back(Sym("$neg:" + std::to_string(i)));
  }

  // Pattern construction needs a scratch scheme that already carries the
  // intermediate label and index triples; applying the operations
  // performs the real minimal extension.
  schema::Scheme scratch = scheme;
  GOOD_RETURN_NOT_OK(scratch.EnsureObjectLabel(intermediate_label));
  for (size_t i = 0; i < negated.positive_nodes.size(); ++i) {
    GOOD_RETURN_NOT_OK(scratch.EnsureFunctionalEdgeLabel(index_labels[i]));
    GOOD_RETURN_NOT_OK(scratch.EnsureTriple(
        intermediate_label, index_labels[i],
        negated.full.LabelOf(negated.positive_nodes[i])));
  }

  // Step 1 (Figure 27, top): tag every positive matching.
  std::vector<std::pair<Symbol, NodeId>> bold;
  for (size_t i = 0; i < negated.positive_nodes.size(); ++i) {
    bold.emplace_back(index_labels[i], negated.positive_nodes[i]);
  }
  ops::NodeAddition tag(positive, intermediate_label, bold);

  // Step 2 (Figure 27, middle): delete the tags of extensible matchings.
  Pattern prune = negated.full;
  GOOD_ASSIGN_OR_RETURN(NodeId intermediate,
                        prune.AddObjectNode(scratch, intermediate_label));
  for (size_t i = 0; i < negated.positive_nodes.size(); ++i) {
    GOOD_RETURN_NOT_OK(prune.AddEdge(scratch, intermediate, index_labels[i],
                                     negated.positive_nodes[i]));
  }
  ops::NodeDeletion sweep(std::move(prune), intermediate);

  std::vector<method::Operation> out;
  out.emplace_back(std::move(tag));
  out.emplace_back(std::move(sweep));
  return out;
}

}  // namespace good::macros
