/// \file inheritance.h
/// \brief Inheritance via marked isa edges (Section 4.2, Figures 30-31).
///
/// Functional scheme edges between object labels can be marked as
/// subclass ("isa") edges (schema::Scheme::MarkIsa). The effect to the
/// user is that all properties of the superclass objects are also
/// available on the corresponding subclass objects, so queries may
/// mention inherited properties directly (Figure 30). Internally this is
/// a macro, realized two equivalent ways (both implemented and tested
/// against each other):
///  - *Pattern rewriting* (Figure 31): an edge drawn on a node whose own
///    label does not license it is moved up an inserted chain of
///    isa-edges to the nearest superclass that does license it.
///  - *Virtual view*: materialize the instance obtained by copying each
///    isa-target's outgoing edges down to the isa-source (a sequence of
///    edge additions, to fixpoint across levels), then evaluate the
///    original pattern. Subclass properties take precedence: a
///    functional edge already present on the source is not overridden.

#ifndef GOOD_MACRO_INHERITANCE_H_
#define GOOD_MACRO_INHERITANCE_H_

#include "graph/instance.h"
#include "pattern/matcher.h"
#include "schema/scheme.h"

namespace good::macros {

/// \brief Rewrites `pattern` so that every edge is licensed by its
/// source node's own label, inserting isa-chains to superclasses where
/// needed (Figure 31). Original pattern node ids remain valid. Fails
/// with InvalidArgument when an edge is licensed by no (super)class.
Result<pattern::Pattern> RewriteWithInheritance(const schema::Scheme& scheme,
                                                const pattern::Pattern& p);

/// \brief The inheritance view of a database: scheme and instance with
/// superclass properties copied down to subclass objects.
struct VirtualView {
  schema::Scheme scheme;
  graph::Instance instance;
};

/// \brief Materializes the virtual view of (scheme, instance): triples
/// and edges of isa-targets are copied to isa-sources, iterated to
/// fixpoint across multiple inheritance levels.
Result<VirtualView> BuildVirtualView(const schema::Scheme& scheme,
                                     const graph::Instance& instance);

}  // namespace good::macros

#endif  // GOOD_MACRO_INHERITANCE_H_
