/// \file recursive.h
/// \brief Recursive (starred) addition operations (Section 4.1,
/// Figures 28-29).
///
/// A starred edge addition repeats "as long as new edges can be added" —
/// a fixpoint, the canonical example being the transitive closure of
/// links-to. Two routes are provided and tested for equivalence:
///  - RecursiveEdgeAddition::Apply runs the edge addition to fixpoint
///    directly (with an iteration cap: recursive *node* additions can
///    diverge, as the paper warns);
///  - TransitiveClosureMethod builds the Figure 29 method translation —
///    a method whose body performs the underlying non-starred addition
///    and then calls itself with a crossed (negated) stopping condition.

#ifndef GOOD_MACRO_RECURSIVE_H_
#define GOOD_MACRO_RECURSIVE_H_

#include <string>

#include "method/method.h"
#include "ops/operations.h"

namespace good::macros {

/// \brief A starred edge addition: apply the underlying EdgeAddition
/// repeatedly until the instance stops changing.
class RecursiveEdgeAddition {
 public:
  RecursiveEdgeAddition(pattern::Pattern pattern,
                        std::vector<ops::EdgeSpec> edges,
                        size_t max_iterations = 1'000'000)
      : underlying_(std::move(pattern), std::move(edges)),
        max_iterations_(max_iterations) {}

  /// Runs to fixpoint. Returns ResourceExhausted if the cap is hit.
  Status Apply(schema::Scheme* scheme, graph::Instance* instance,
               ops::ApplyStats* stats = nullptr) const;

  const ops::EdgeAddition& underlying() const { return underlying_; }
  void set_filter(ops::MatchFilter filter) {
    underlying_.set_filter(std::move(filter));
  }

  /// Fixpoint strategy — see ops::EvalMode. kIncremental (the default)
  /// seeds each iteration's matching from the edges the previous
  /// iteration added (read off an undo journal window) and pins the
  /// compiled search plans for the run; both modes add the same edges
  /// in the same number of iterations.
  void set_eval_mode(ops::EvalMode mode) { eval_mode_ = mode; }
  ops::EvalMode eval_mode() const { return eval_mode_; }

 private:
  ops::EdgeAddition underlying_;
  size_t max_iterations_;
  ops::EvalMode eval_mode_ = ops::EvalMode::kIncremental;
};

/// \brief The Figure 29 translation for the transitive-closure starred
/// addition: a method `name` over `node_label` nodes that, given
/// receiver x and argument y, adds a `closure_edge` from x to y and
/// recurses to every `base_edge`-successor z of y for which the
/// closure edge x -> z is still absent (the crossed stopping condition).
///
/// `closure_edge` must be (or will be registered as) multivalued.
Result<method::Method> TransitiveClosureMethod(const schema::Scheme& scheme,
                                               Symbol node_label,
                                               Symbol base_edge,
                                               Symbol closure_edge,
                                               const std::string& name);

/// \brief The initial call of Figure 29 (bottom): invoke `name` for
/// every base edge x -> y with receiver x and argument y.
Result<method::MethodCallOp> TransitiveClosureCall(
    const schema::Scheme& scheme, Symbol node_label, Symbol base_edge,
    const std::string& name);

}  // namespace good::macros

#endif  // GOOD_MACRO_RECURSIVE_H_
