/// \file set_query.h
/// \brief The set-building query idiom of Figures 26 and 30.
///
/// Queries like "give the SET of the names of the info nodes ..." are
/// drawn in the paper as a bold Answer node with a bold multivalued
/// contains edge — shorthand for an empty-pattern node addition creating
/// one Answer object followed by an edge addition linking it to every
/// matched node (the Figure 12/13 two-step). SetQuery packages that
/// idiom, optionally with a negated condition (Figure 26 combines both).

#ifndef GOOD_MACRO_SET_QUERY_H_
#define GOOD_MACRO_SET_QUERY_H_

#include <vector>

#include "macro/negation.h"
#include "ops/operations.h"

namespace good::macros {

/// \brief A set-building query: collect the images of `collect` over
/// the (possibly negated) condition's matchings under a fresh
/// `answer_label` object via multivalued `member_edge` edges.
struct SetQuery {
  NegatedPattern condition;
  graph::NodeId collect;
  Symbol answer_label;
  Symbol member_edge;
};

/// \brief Executes the query: creates the answer object (even when no
/// matching exists — the set is then empty) and links the collected
/// nodes. Returns the answer node.
Result<graph::NodeId> RunSetQuery(const SetQuery& query,
                                  schema::Scheme* scheme,
                                  graph::Instance* instance);

/// \brief Convenience: the members of an answer node.
std::vector<graph::NodeId> AnswerMembers(const graph::Instance& instance,
                                         graph::NodeId answer,
                                         Symbol member_edge);

}  // namespace good::macros

#endif  // GOOD_MACRO_SET_QUERY_H_
