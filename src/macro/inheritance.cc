#include "macro/inheritance.h"

#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace good::macros {

using graph::Instance;
using graph::NodeId;
using pattern::Pattern;
using schema::Scheme;

namespace {

/// BFS over marked isa triples from `from` towards a class licensing
/// (·, edge, target_label); returns the chain of (isa edge label,
/// superclass) hops, empty if `from` itself licenses the edge.
Result<std::vector<std::pair<Symbol, Symbol>>> FindLiftingPath(
    const Scheme& scheme, Symbol from, Symbol edge, Symbol target_label) {
  if (scheme.HasTriple(from, edge, target_label)) {
    return std::vector<std::pair<Symbol, Symbol>>{};
  }
  // Parent pointers for path reconstruction.
  std::map<Symbol, std::pair<Symbol, Symbol>> parent;  // class -> (via, from)
  std::map<Symbol, Symbol> via_edge;  // class -> isa edge label used
  std::deque<Symbol> queue{from};
  std::map<Symbol, bool> seen{{from, true}};
  while (!queue.empty()) {
    Symbol cur = queue.front();
    queue.pop_front();
    for (const auto& [isa_edge, super] : scheme.DirectSuperclasses(cur)) {
      if (seen[super]) continue;
      seen[super] = true;
      parent[super] = {isa_edge, cur};
      if (scheme.HasTriple(super, edge, target_label)) {
        // Reconstruct from `super` back to `from`.
        std::vector<std::pair<Symbol, Symbol>> path;
        Symbol walk = super;
        while (walk != from) {
          auto [e, prev] = parent[walk];
          path.emplace_back(e, walk);
          walk = prev;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(super);
    }
  }
  return Status::InvalidArgument(
      "edge '" + SymName(edge) + "' towards '" + SymName(target_label) +
      "' is licensed by neither '" + SymName(from) +
      "' nor any of its superclasses");
}

}  // namespace

Result<Pattern> RewriteWithInheritance(const Scheme& scheme,
                                       const Pattern& p) {
  Pattern out = p;
  // Chain-node cache: (original node, class label) -> pattern node, so
  // several lifted edges of one node share the inserted isa chain.
  std::map<std::pair<NodeId, Symbol>, NodeId> chain;

  for (NodeId n : p.AllNodes()) {
    const Symbol own_label = p.LabelOf(n);
    for (const auto& [edge, target] : p.OutEdges(n)) {
      const Symbol target_label = p.LabelOf(target);
      GOOD_ASSIGN_OR_RETURN(
          auto path, FindLiftingPath(scheme, own_label, edge, target_label));
      if (path.empty()) continue;  // Licensed as drawn.
      // Walk / build the isa chain upward from n.
      NodeId cur = n;
      for (const auto& [isa_edge, super] : path) {
        auto key = std::make_pair(n, super);
        auto it = chain.find(key);
        if (it != chain.end()) {
          cur = it->second;
          continue;
        }
        GOOD_ASSIGN_OR_RETURN(NodeId up, out.AddObjectNode(scheme, super));
        GOOD_RETURN_NOT_OK(out.AddEdge(scheme, cur, isa_edge, up));
        chain.emplace(key, up);
        cur = up;
      }
      // Move the edge to the top of the chain.
      GOOD_RETURN_NOT_OK(out.RemoveEdge(n, edge, target));
      GOOD_RETURN_NOT_OK(out.AddEdge(scheme, cur, edge, target));
    }
  }
  return out;
}

Result<VirtualView> BuildVirtualView(const Scheme& scheme,
                                     const Instance& instance) {
  VirtualView view{scheme, instance};

  // Scheme closure: every triple of a superclass is also available on
  // the subclass; iterate for multi-level hierarchies.
  bool scheme_changed = true;
  while (scheme_changed) {
    scheme_changed = false;
    std::vector<schema::Triple> triples = view.scheme.triples();
    for (const schema::Triple& t : triples) {
      for (Symbol label : view.scheme.object_labels()) {
        for (const auto& [isa_edge, super] :
             view.scheme.DirectSuperclasses(label)) {
          (void)isa_edge;
          if (super != t.source) continue;
          if (!view.scheme.HasTriple(label, t.edge, t.target)) {
            GOOD_RETURN_NOT_OK(
                view.scheme.EnsureTriple(label, t.edge, t.target));
            scheme_changed = true;
          }
        }
      }
    }
  }

  // Instance closure: copy the isa-target's outgoing edges down to the
  // isa-source. Functional properties already present on the source take
  // precedence (the subclass overrides); inconsistent multivalued
  // targets are skipped rather than failing the view.
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId sub : view.instance.AllNodes()) {
      // Snapshot both adjacency lists: AddEdge below appends to sub's
      // out-edges, which would invalidate live iterators.
      const auto sub_out = view.instance.OutEdges(sub);
      for (const auto& [edge, super] : sub_out) {
        if (!view.scheme.IsIsaTriple(view.instance.LabelOf(sub), edge,
                                     view.instance.LabelOf(super))) {
          continue;
        }
        const auto super_out = view.instance.OutEdges(super);
        for (const auto& [prop, target] : super_out) {
          if (view.instance.HasEdge(sub, prop, target)) continue;
          if (!view.scheme.HasTriple(view.instance.LabelOf(sub), prop,
                                     view.instance.LabelOf(target))) {
            continue;
          }
          if (view.scheme.IsFunctionalEdgeLabel(prop) &&
              view.instance.FunctionalTarget(sub, prop).has_value()) {
            continue;  // Own property wins.
          }
          Status s = view.instance.AddEdge(view.scheme, sub, prop, target);
          if (s.ok()) {
            changed = true;
          } else if (!s.IsFailedPrecondition()) {
            return s;
          }
        }
      }
    }
  }
  return view;
}

}  // namespace good::macros
