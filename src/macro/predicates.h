/// \file predicates.h
/// \brief Condition-box helpers (Section 4.1): ready-made MatchFilters
/// over printable pattern nodes, in the style of QBE's condition boxes.

#ifndef GOOD_MACRO_PREDICATES_H_
#define GOOD_MACRO_PREDICATES_H_

#include <utility>

#include "common/value.h"
#include "ops/operations.h"
#include "pattern/matcher.h"

namespace good::macros {

namespace internal {
inline const Value* PrintOf(const pattern::Matching& m,
                            const graph::Instance& g,
                            graph::NodeId pattern_node) {
  const auto& v = g.PrintValueOf(m.At(pattern_node));
  return v.has_value() ? &*v : nullptr;
}
}  // namespace internal

/// The matched node's value compares to `bound` as requested; matchings
/// whose node carries no value are rejected.
inline ops::MatchFilter ValueEquals(graph::NodeId node, Value bound) {
  return [node, bound = std::move(bound)](const pattern::Matching& m,
                                          const graph::Instance& g) {
    const Value* v = internal::PrintOf(m, g, node);
    return v != nullptr && *v == bound;
  };
}

inline ops::MatchFilter ValueLess(graph::NodeId node, Value bound) {
  return [node, bound = std::move(bound)](const pattern::Matching& m,
                                          const graph::Instance& g) {
    const Value* v = internal::PrintOf(m, g, node);
    return v != nullptr && *v < bound;
  };
}

inline ops::MatchFilter ValueGreater(graph::NodeId node, Value bound) {
  return [node, bound = std::move(bound)](const pattern::Matching& m,
                                          const graph::Instance& g) {
    const Value* v = internal::PrintOf(m, g, node);
    return v != nullptr && *v > bound;
  };
}

/// Inclusive range check — e.g. "created between Jan 1 and Jan 31, 1990"
/// from Section 4.1.
inline ops::MatchFilter ValueInRange(graph::NodeId node, Value lo, Value hi) {
  return [node, lo = std::move(lo), hi = std::move(hi)](
             const pattern::Matching& m, const graph::Instance& g) {
    const Value* v = internal::PrintOf(m, g, node);
    return v != nullptr && lo <= *v && *v <= hi;
  };
}

/// The values of two matched nodes differ (Figure 26's query needs
/// created != modified when expressed as a predicate).
inline ops::MatchFilter ValuesDiffer(graph::NodeId a, graph::NodeId b) {
  return [a, b](const pattern::Matching& m, const graph::Instance& g) {
    const Value* va = internal::PrintOf(m, g, a);
    const Value* vb = internal::PrintOf(m, g, b);
    return va != nullptr && vb != nullptr && !(*va == *vb);
  };
}

// The combinators short-circuit like && / || but propagate a failed
// operand (e.g. a deadline-interrupted negation filter) instead of
// treating it as a boolean.

inline ops::MatchFilter And(ops::MatchFilter a, ops::MatchFilter b) {
  return [a = std::move(a), b = std::move(b)](
             const pattern::Matching& m,
             const graph::Instance& g) -> Result<bool> {
    GOOD_ASSIGN_OR_RETURN(bool left, a(m, g));
    if (!left) return false;
    return b(m, g);
  };
}

inline ops::MatchFilter Or(ops::MatchFilter a, ops::MatchFilter b) {
  return [a = std::move(a), b = std::move(b)](
             const pattern::Matching& m,
             const graph::Instance& g) -> Result<bool> {
    GOOD_ASSIGN_OR_RETURN(bool left, a(m, g));
    if (left) return true;
    return b(m, g);
  };
}

inline ops::MatchFilter Not(ops::MatchFilter a) {
  return [a = std::move(a)](const pattern::Matching& m,
                            const graph::Instance& g) -> Result<bool> {
    GOOD_ASSIGN_OR_RETURN(bool value, a(m, g));
    return !value;
  };
}

}  // namespace good::macros

#endif  // GOOD_MACRO_PREDICATES_H_
