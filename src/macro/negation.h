/// \file negation.h
/// \brief Negated (crossed) patterns and their simulation (Section 4.1,
/// Figures 26-27).
///
/// Pattern matching checks for the *presence* of nodes and edges; some
/// queries need their *absence* — the paper draws crossed nodes and
/// edges for this. A negated pattern consists of a positive pattern plus
/// crossed extensions; its matchings are the matchings of the positive
/// part that cannot be extended to any matching of the full pattern.
///
/// Two evaluation routes are provided, and tests check they agree:
///  - Direct: enumerate positive matchings, reject the extensible ones.
///  - Translation (Figure 27): a node addition tags every positive
///    matching with an Intermediate node (one functional edge per
///    positive pattern node), a node deletion removes the Intermediate
///    nodes whose matching extends to the full pattern, and the
///    surviving Intermediate nodes represent the result.

#ifndef GOOD_MACRO_NEGATION_H_
#define GOOD_MACRO_NEGATION_H_

#include <vector>

#include "method/method.h"
#include "ops/operations.h"
#include "pattern/matcher.h"

namespace good::macros {

using graph::NodeId;
using pattern::Matching;
using pattern::Pattern;

/// \brief A pattern with crossed (negated) parts.
///
/// `full` contains both the positive and the crossed elements;
/// `positive_nodes` lists the nodes of the positive part. The crossed
/// part is everything else: crossed nodes (nodes of `full` outside
/// `positive_nodes`) and crossed edges (edges of `full` incident to a
/// crossed node, plus edges explicitly listed in `crossed_edges` between
/// positive nodes — e.g. Figure 26 crosses only the modified edge).
struct NegatedPattern {
  Pattern full;
  std::vector<NodeId> positive_nodes;
  std::vector<graph::Edge> crossed_edges;

  /// The positive sub-pattern: `full` restricted to `positive_nodes`
  /// minus `crossed_edges`.
  Result<Pattern> PositivePart() const;
};

/// \brief Direct semantics: matchings of the positive part (restricted
/// to positive nodes) that cannot be extended to a matching of `full`.
/// A non-null armed `deadline` interrupts both the positive-part
/// matching and the extension checks with kDeadlineExceeded/kCancelled.
Result<std::vector<Matching>> EvaluateNegated(
    const NegatedPattern& negated, const graph::Instance& instance,
    const common::Deadline* deadline = nullptr);

/// \brief Builds a MatchFilter over the positive part that accepts
/// exactly the non-extensible matchings — this is how crossed patterns
/// attach to any operation (and how Figure 29 expresses recursion
/// stopping conditions). The filter evaluates against the instance
/// passed at match time, so it sees edges added by earlier rounds.
/// `deadline` (optional, not owned, must outlive the filter) is polled
/// by every extension check the filter runs: an interrupted check
/// surfaces as a failed Result instead of masking the timeout as
/// "rejected" — an interrupted negation check is NOT a definitive
/// negative.
Result<ops::MatchFilter> NegationFilter(
    const NegatedPattern& negated,
    const common::Deadline* deadline = nullptr);

/// \brief The Figure 27 simulation: returns the two operations
/// (tagging NA over the positive part, pruning ND over the full
/// pattern) that leave exactly one `intermediate_label` node per
/// surviving matching, with functional edges "$neg:<i>" to the images of
/// the positive nodes (in `positive_nodes` order). `scheme` is only used
/// to construct the operation patterns; applying the operations performs
/// the real minimal scheme extension.
Result<std::vector<method::Operation>> NegationToOperations(
    const NegatedPattern& negated, const schema::Scheme& scheme,
    Symbol intermediate_label);

}  // namespace good::macros

#endif  // GOOD_MACRO_NEGATION_H_
