#include "macro/set_query.h"

namespace good::macros {

using graph::Instance;
using graph::NodeId;
using schema::Scheme;

Result<NodeId> RunSetQuery(const SetQuery& query, Scheme* scheme,
                           Instance* instance) {
  GOOD_ASSIGN_OR_RETURN(pattern::Pattern positive,
                        query.condition.PositivePart());
  if (!positive.HasNode(query.collect)) {
    return Status::InvalidArgument(
        "the collected node must be a positive node of the condition");
  }

  // Step 1 (Figure 12): one fresh answer object via an empty-pattern
  // node addition. To make repeated queries independent, we do not
  // reuse existing answer objects: a fresh label instance is required,
  // so we fail if an answer object already exists.
  if (scheme->HasLabel(query.answer_label) &&
      instance->CountNodesWithLabel(query.answer_label) > 0) {
    return Status::AlreadyExists(
        "an object labeled '" + SymName(query.answer_label) +
        "' already exists; use a fresh answer label per query");
  }
  ops::NodeAddition na(pattern::Pattern(), query.answer_label, {});
  GOOD_RETURN_NOT_OK(na.Apply(scheme, instance));
  auto answers = instance->NodesWithLabel(query.answer_label);
  if (answers.size() != 1) {
    return Status::Internal("expected exactly one answer object");
  }
  NodeId answer = answers[0];

  // Step 2 (Figure 13): link the collected images. The pattern is the
  // positive condition extended with the answer node; the negated part
  // becomes a match filter.
  pattern::Pattern with_answer = positive;
  GOOD_ASSIGN_OR_RETURN(NodeId answer_node,
                        with_answer.AddObjectNode(*scheme,
                                                  query.answer_label));
  ops::EdgeAddition ea(
      std::move(with_answer),
      {ops::EdgeSpec{answer_node, query.member_edge, query.collect,
                     /*functional=*/false}});
  const bool negated = !query.condition.crossed_edges.empty() ||
                       query.condition.full.num_nodes() >
                           query.condition.positive_nodes.size();
  if (negated) {
    GOOD_ASSIGN_OR_RETURN(ops::MatchFilter filter,
                          NegationFilter(query.condition));
    ea.set_filter(std::move(filter));
  }
  GOOD_RETURN_NOT_OK(ea.Apply(scheme, instance));
  return answer;
}

std::vector<NodeId> AnswerMembers(const Instance& instance, NodeId answer,
                                  Symbol member_edge) {
  return instance.OutTargets(answer, member_edge);
}

}  // namespace good::macros
